#!/usr/bin/env python
"""Export Fig. 5-style DPU execution traces.

Runs the same query stream twice — naive id-order layout vs the full
load-balancing stack — with the tracer attached, prints the imbalance
summary of each, and writes Chrome-trace JSON files you can open at
https://ui.perfetto.dev (each row is one DPU; ragged right edges are
the stragglers the paper's Fig. 5 illustrates).

Run:  python examples/execution_trace.py
Outputs: trace_naive.json, trace_balanced.json
"""

from repro import (
    DrimAnnEngine,
    IndexParams,
    LayoutConfig,
    PimSystemConfig,
    load_dataset,
)
from repro.pim.trace import Tracer


def main() -> None:
    print("Loading sift-like-20k ...")
    ds = load_dataset("sift-like-20k", seed=0, num_queries=200)
    params = IndexParams(
        nlist=128, nprobe=8, k=10, num_subspaces=32, codebook_size=128
    )
    system = PimSystemConfig(num_dpus=16)

    arms = [
        (
            "naive",
            LayoutConfig(min_split_size=None, max_copies=0, allocation="id_order"),
            False,
        ),
        ("balanced", LayoutConfig(min_split_size=300, max_copies=2), True),
    ]

    quant = None
    for name, layout, sched in arms:
        tracer = Tracer()
        engine = DrimAnnEngine.build(
            ds.base,
            params,
            system_config=system,
            layout_config=layout,
            heat_queries=ds.queries[:50],
            prebuilt_quantized=quant,
            tracer=tracer,
            seed=0,
        )
        quant = engine.quantized
        _, timing = engine.search(ds.queries, with_scheduler=sched)
        out = f"trace_{name}.json"
        tracer.export_chrome_trace(out)
        print(f"\n{name}:")
        print(f"  {tracer.summary()}")
        print(f"  pim time {timing.pim_seconds * 1e3:.2f} ms, "
              f"tail ratio {timing.tail_ratio:.2f}")
        print(f"  wrote {out} ({tracer.num_events} events)")


if __name__ == "__main__":
    main()
