#!/usr/bin/env python
"""Paper-scale projections from the analytic performance model.

The simulator runs laptop-scale corpora, but the five-phase model
(Eqs. 1-12) evaluates at *any* scale for free. This example projects
DRIM-ANN at the paper's actual configuration — SIFT100M, 10,000
queries, 2,530 DPUs @ 450 MHz vs the 32-thread Xeon — and prints the
nlist/nprobe sweeps and the Fig. 13 compute-scaling forecast, for a
side-by-side look against the paper's reported numbers.

Run:  python examples/paper_scale_projection.py
"""

import numpy as np

from repro import AnalyticPerfModel, DatasetShape, HardwareProfile, IndexParams
from repro.pim.config import paper_system_config


def geomean(xs):
    return float(np.exp(np.mean(np.log(xs))))


def main() -> None:
    shape = DatasetShape(num_points=100_000_000, dim=128, num_queries=10_000)
    cpu = HardwareProfile.for_cpu()  # Xeon Gold 5218-class
    cpu_model = AnalyticPerfModel(shape, cpu)

    print("SIFT100M, 10k queries, 2,530 DPUs vs 32-thread Xeon (modeled)\n")

    print(f"{'nlist':>8s} {'nprobe':>7s} {'pim QPS':>10s} {'cpu QPS':>9s} {'speedup':>8s}")
    speedups = []
    pim = HardwareProfile.for_pim(paper_system_config())
    for nlist_log in (13, 14, 15, 16):
        p = IndexParams(
            nlist=2**nlist_log, nprobe=96, k=10, num_subspaces=16, codebook_size=256
        )
        t_pim = AnalyticPerfModel(shape, pim, multiplier_less=True).split_seconds(p)
        t_cpu = cpu_model.total_seconds(p)
        speedups.append(t_cpu / t_pim)
        print(
            f"{'2^' + str(nlist_log):>8s} {96:>7d} {10_000 / t_pim:>10,.0f} "
            f"{10_000 / t_cpu:>9,.0f} {t_cpu / t_pim:>7.2f}x"
        )
    for nprobe in (32, 64, 128):
        p = IndexParams(
            nlist=2**14, nprobe=nprobe, k=10, num_subspaces=16, codebook_size=256
        )
        t_pim = AnalyticPerfModel(shape, pim, multiplier_less=True).split_seconds(p)
        t_cpu = cpu_model.total_seconds(p)
        speedups.append(t_cpu / t_pim)
        print(
            f"{'2^14':>8s} {nprobe:>7d} {10_000 / t_pim:>10,.0f} "
            f"{10_000 / t_cpu:>9,.0f} {t_cpu / t_pim:>7.2f}x"
        )
    print(
        f"\nideal-model geomean speedup: {geomean(speedups):.2f}x "
        "(paper measures 2.92x end-to-end; the ideal model ignores load "
        "imbalance — the Fig. 10(b) gap)"
    )

    print("\nFig. 13 forecast — DPU compute scaled up:")
    p = IndexParams(nlist=2**14, nprobe=96, k=10, num_subspaces=16, codebook_size=256)
    t_cpu = cpu_model.total_seconds(p)
    for scale in (1.0, 2.0, 5.0):
        prof = HardwareProfile.for_pim(
            paper_system_config().with_compute_scale(scale)
        )
        t = AnalyticPerfModel(shape, prof, multiplier_less=True).split_seconds(p)
        print(f"  {scale:.0f}x compute -> {t_cpu / t:5.2f}x over CPU "
              f"(paper: {'2.92x' if scale == 1 else '4.63x' if scale == 2 else '7.12x'})")

    print("\nPer-phase view at nlist=2^14 (who is compute- vs IO-bound):")
    model = AnalyticPerfModel(shape, pim, multiplier_less=True)
    for phase, est in model.estimate(p).items():
        bound = "compute" if est.compute_bound else "IO"
        print(
            f"  {phase}: {est.seconds * 1e3:8.2f} ms  {bound}-bound  "
            f"C2IO={est.c2io:.3f} slots/byte"
        )


if __name__ == "__main__":
    main()
