#!/usr/bin/env python
"""Quickstart: build a DRIM-ANN engine and search a synthetic corpus.

Walks the whole pipeline on a small SIFT-like dataset:

1. generate a clustered uint8 corpus with exact ground truth;
2. build the engine (trains IVF-PQ, quantizes it for the FPU-less
   DPUs, lays clusters out across the simulated UPMEM system);
3. run a batched search and inspect recall + the timing breakdown.

Run:  python examples/quickstart.py
"""

from repro import (
    DrimAnnEngine,
    IndexParams,
    LayoutConfig,
    PimSystemConfig,
    load_dataset,
    recall_at_k,
)


def main() -> None:
    print("Loading sift-like-20k (20,000 x 128 uint8) ...")
    ds = load_dataset("sift-like-20k", seed=0, num_queries=200, ground_truth_k=10)

    # Index parameters in the paper's notation: nlist clusters, probe
    # nprobe of them per query, M PQ sub-spaces of CB entries, top-K.
    params = IndexParams(
        nlist=128, nprobe=8, k=10, num_subspaces=32, codebook_size=128
    )

    print("Building the engine (train -> quantize -> layout -> load DPUs) ...")
    engine = DrimAnnEngine.build(
        ds.base,
        params,
        system_config=PimSystemConfig(num_dpus=32),
        layout_config=LayoutConfig(min_split_size=300, max_copies=2),
        heat_queries=ds.queries[:50],  # sample set for cluster-heat estimation
        seed=0,
    )
    rep = engine.report
    print(
        f"  {rep.num_shards} shards over 32 DPUs, "
        f"{max(rep.replica_counts.values())} max replicas/cluster, "
        f"offline load {rep.offline_transfer_seconds * 1e3:.1f} ms"
    )

    print("Searching 200 queries ...")
    result, timing = engine.search(ds.queries)

    recall = recall_at_k(result.ids, ds.ground_truth, 10)
    print(f"\nrecall@10 = {recall:.3f}")
    print(f"timing: {timing.summary()}")
    print("\nPer-kernel share of DPU cycles (the paper's Fig. 8 view):")
    for kernel, share in timing.kernel_shares().items():
        print(f"  {kernel:3s} {share:6.1%}")

    # Sanity: the engine must agree with the host-side integer reference.
    ref = engine.reference_search(ds.queries)
    agree = (result.distances == ref.distances).all()
    print(f"\nmatches host reference bit-for-bit: {bool(agree)}")


if __name__ == "__main__":
    main()
