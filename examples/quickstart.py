#!/usr/bin/env python
"""Quickstart: build a DRIM-ANN engine and search a synthetic corpus.

Walks the whole pipeline on a small SIFT-like dataset:

1. generate a clustered uint8 corpus with exact ground truth;
2. bundle every knob into one :class:`EngineConfig` and build the
   engine (trains IVF-PQ, quantizes it for the FPU-less DPUs, lays
   clusters out across the simulated UPMEM system);
3. run a batched search and inspect recall, the timing breakdown, and
   the observability snapshot the engine collected along the way.

Run:  python examples/quickstart.py
"""

from repro import (
    DrimAnnEngine,
    EngineConfig,
    IndexParams,
    LayoutConfig,
    ObsConfig,
    PimSystemConfig,
    load_dataset,
    recall_at_k,
)


def main() -> None:
    print("Loading sift-like-20k (20,000 x 128 uint8) ...")
    ds = load_dataset("sift-like-20k", seed=0, num_queries=200, ground_truth_k=10)

    # Every knob lives in one validated bundle. Index parameters use
    # the paper's notation: nlist clusters, probe nprobe of them per
    # query, M PQ sub-spaces of CB entries, top-K. Observability is
    # off by default; enabling it makes search() return a metrics
    # snapshot alongside the results.
    config = EngineConfig(
        index=IndexParams(
            nlist=128, nprobe=8, k=10, num_subspaces=32, codebook_size=128
        ),
        system=PimSystemConfig(num_dpus=32),
        layout=LayoutConfig(min_split_size=300, max_copies=2),
        obs=ObsConfig(enabled=True),
    )

    print("Building the engine (train -> quantize -> layout -> load DPUs) ...")
    engine = DrimAnnEngine.from_config(
        ds.base,
        config,
        heat_queries=ds.queries[:50],  # sample set for cluster-heat estimation
        seed=0,
    )
    rep = engine.report
    print(
        f"  {rep.num_shards} shards over 32 DPUs, "
        f"{max(rep.replica_counts.values())} max replicas/cluster, "
        f"offline load {rep.offline_transfer_seconds * 1e3:.1f} ms"
    )

    print("Searching 200 queries ...")
    outcome = engine.search(ds.queries)
    result, timing = outcome  # unpacks like the historical two-tuple

    recall = recall_at_k(result.ids, ds.ground_truth, 10)
    print(f"\nrecall@10 = {recall:.3f}")
    print(f"timing: {timing.summary()}")
    print("\nPer-kernel share of DPU cycles (the paper's Fig. 8 view):")
    for kernel, share in timing.kernel_shares().items():
        print(f"  {kernel:3s} {share:6.1%}")

    # The metrics snapshot carries the same story as structured series:
    # per-phase time histograms, per-DPU scheduler load, fault counters.
    snap = outcome.metrics
    print("\nObservability snapshot:")
    print(f"  queries counted: {snap.value('drimann_engine_queries_total'):.0f}")
    for s in snap.series("drimann_phase_seconds"):
        phase = s["labels"]["phase"]
        print(f"  phase {phase:3s} total {s['sum'] * 1e3:8.3f} ms")
    # snap.write_json("metrics.json") / snap.write_prometheus("metrics.prom")
    # export the same snapshot for dashboards.

    # Sanity: the engine must agree with the host-side integer reference.
    ref = engine.reference_search(ds.queries)
    agree = (result.distances == ref.distances).all()
    print(f"\nmatches host reference bit-for-bit: {bool(agree)}")


if __name__ == "__main__":
    main()
