#!/usr/bin/env python
"""Architecture-aware index tuning (the paper's §III DSE).

Given a dataset and an accuracy constraint (recall@10 >= 0.8 in the
paper), find the (nlist, nprobe, M, CB) configuration with the best
*modeled* PIM throughput whose *measured* recall meets the constraint.
The accuracy oracle is expensive (train + search per configuration), so
the explorer uses constrained Bayesian optimization: a GP models the
recall surface and expected-feasible-improvement picks each next
configuration to measure.

Run:  python examples/dse_tuning.py
"""

from repro import (
    DatasetShape,
    DesignSpaceExplorer,
    HardwareProfile,
    IndexParams,
    PimSystemConfig,
    load_dataset,
    recall_at_k,
)
from repro.ann import IVFPQIndex
from repro.core.quantized import build_quantized_index

ACCURACY_CONSTRAINT = 0.70  # scaled-down corpus; the paper uses 0.8


def main() -> None:
    print("Loading sift-like-20k ...")
    ds = load_dataset("sift-like-20k", seed=0, num_queries=150, ground_truth_k=10)

    shape = DatasetShape(
        num_points=ds.num_base, dim=ds.dim, num_queries=ds.num_queries
    )
    profile = HardwareProfile.for_pim(PimSystemConfig(num_dpus=32))

    dse = DesignSpaceExplorer(
        shape,
        profile,
        nlist_values=[64, 128, 256],
        nprobe_values=[2, 4, 8, 16],
        m_values=[16, 32],
        cb_values=[64, 128],
        k=10,
    )
    print(f"design space: {dse.space.size} configurations")

    oracle_calls = 0
    cache = {}

    def accuracy_oracle(params: IndexParams) -> float:
        """Expensive measured-recall oracle with per-index caching."""
        nonlocal oracle_calls
        key = (params.nlist, params.num_subspaces, params.codebook_size)
        if key not in cache:
            index = IVFPQIndex.build(
                ds.base,
                nlist=params.nlist,
                num_subspaces=params.num_subspaces,
                codebook_size=params.codebook_size,
                seed=0,
            )
            cache[key] = build_quantized_index(index)
        oracle_calls += 1
        res = cache[key].reference_search(ds.queries, params.k, params.nprobe)
        rec = recall_at_k(res.ids, ds.ground_truth, 10)
        print(
            f"  measured nlist={params.nlist:<4d} nprobe={params.nprobe:<3d} "
            f"M={params.num_subspaces:<3d} CB={params.codebook_size:<4d} "
            f"recall@10={rec:.3f}"
        )
        return rec

    print(f"\nExploring under recall@10 >= {ACCURACY_CONSTRAINT} ...")
    result = dse.explore(
        accuracy_oracle, ACCURACY_CONSTRAINT, num_iterations=14, seed=0
    )

    print(f"\noracle calls used: {result.oracle_calls} / {dse.space.size} configs")
    if result.found_feasible:
        p = result.best_params
        print(
            f"best feasible: nlist={p.nlist} nprobe={p.nprobe} "
            f"M={p.num_subspaces} CB={p.codebook_size}"
        )
        print(
            f"  measured recall@10 = {result.best_accuracy:.3f}, "
            f"modeled batch time = {result.best_modeled_seconds * 1e3:.2f} ms"
        )
    else:
        print("no feasible configuration found — relax the constraint")


if __name__ == "__main__":
    main()
