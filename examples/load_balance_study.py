#!/usr/bin/env python
"""Anatomy of the load balancer (the paper's §IV, Figs. 11/12).

Builds the same index four ways and shows how each mechanism
contributes to closing the gap between the slowest and average DPU:

  A. id-order layout, no splitting/duplication, static scheduling
     (the paper's baseline — "clusters allocated to DPUs in ID order");
  B. + heat-aware greedy allocation;
  C. + cluster splitting;
  D. + duplication and runtime scheduling (full DRIM-ANN).

Run:  python examples/load_balance_study.py
"""

from repro import (
    DrimAnnEngine,
    IndexParams,
    LayoutConfig,
    PimSystemConfig,
    load_dataset,
)


def build_and_run(ds, params, quant, layout, with_scheduler, label):
    engine = DrimAnnEngine.build(
        ds.base,
        params,
        system_config=PimSystemConfig(num_dpus=32),
        layout_config=layout,
        heat_queries=ds.queries[:100],
        prebuilt_quantized=quant,
        seed=0,
    )
    _, timing = engine.search(ds.queries, with_scheduler=with_scheduler)
    return engine, timing


def main() -> None:
    print("Loading sift-like-20k with skewed queries ...")
    ds = load_dataset("sift-like-20k", seed=0, num_queries=300)
    params = IndexParams(
        nlist=128, nprobe=8, k=10, num_subspaces=32, codebook_size=128
    )

    arms = [
        (
            "A: id-order baseline",
            LayoutConfig(min_split_size=None, max_copies=0, allocation="id_order"),
            False,
        ),
        (
            "B: + heat allocation",
            LayoutConfig(min_split_size=None, max_copies=0),
            False,
        ),
        (
            "C: + splitting",
            LayoutConfig(min_split_size=250, max_copies=0),
            False,
        ),
        (
            "D: + duplication + runtime scheduling",
            LayoutConfig(min_split_size=250, max_copies=2),
            True,
        ),
    ]

    quant = None
    baseline_time = None
    print(f"\n{'arm':<40s} {'PIM ms':>9s} {'busy':>6s} {'speedup':>8s}")
    for label, layout, sched in arms:
        engine, timing = build_and_run(ds, params, quant, layout, sched, label)
        if quant is None:
            quant = engine.quantized  # reuse training across arms
        if baseline_time is None:
            baseline_time = timing.pim_seconds
        print(
            f"{label:<40s} {timing.pim_seconds * 1e3:9.2f} "
            f"{timing.mean_busy_fraction:6.1%} "
            f"{baseline_time / timing.pim_seconds:7.2f}x"
        )

    print(
        "\nThe busy column is mean-DPU-cycles / max-DPU-cycles per batch: "
        "1.0 means no DPU waits (paper: the slowest DPU bounds every batch)."
    )


if __name__ == "__main__":
    main()
