#!/usr/bin/env python
"""RAG-style retrieval workload on the PIM engine.

The paper motivates ANNS with retrieval-augmented generation: a stream
of embedding queries arrives in bursts, topics shift over time (hot
documents change), and the serving system must sustain throughput
under that skew. This example models exactly that:

* a DEEP-like corpus stands in for a passage-embedding store;
* queries arrive in batches whose hot topics drift between batches
  (``drift=0.3``) — the regime where the paper's inter-batch filter
  pays off;
* we compare the load-balanced engine against a naive id-order layout
  and report throughput plus per-batch DPU utilization.

Run:  python examples/rag_retrieval.py
"""

import numpy as np

from repro import (
    DrimAnnEngine,
    IndexParams,
    LayoutConfig,
    PimSystemConfig,
    load_dataset,
    make_query_workload,
    recall_at_k,
)
from repro.data.ground_truth import exact_topk


def run(engine: DrimAnnEngine, workload, label: str, use_scheduler: bool):
    total_queries = len(workload.queries)
    result, timing = engine.search(workload.queries, with_scheduler=use_scheduler)
    qps = total_queries / timing.e2e_seconds
    print(
        f"  {label:<22s} {qps:>12,.0f} QPS   "
        f"DPU busy {timing.mean_busy_fraction:5.1%}   "
        f"PIM time {timing.pim_seconds * 1e3:8.2f} ms"
    )
    return result, timing


def main() -> None:
    print("Loading deep-like-20k passage-embedding corpus ...")
    ds = load_dataset("deep-like-20k", seed=7)

    print("Simulating a bursty RAG query stream (hot topics drift) ...")
    workload = make_query_workload(
        ds,
        num_queries=400,
        batch_size=64,
        zipf_skew=1.2,  # a few hot topics dominate each burst
        hot_fraction=0.08,
        drift=0.3,  # topics shift between bursts
        noise_scale=4.0,
        seed=8,
    )
    gt = exact_topk(ds.base, workload.queries, 10)

    params = IndexParams(
        nlist=128, nprobe=8, k=10, num_subspaces=32, codebook_size=128
    )
    system = PimSystemConfig(num_dpus=32)

    print("\nBuilding engines ...")
    balanced = DrimAnnEngine.build(
        ds.base,
        params,
        system_config=system,
        layout_config=LayoutConfig(min_split_size=250, max_copies=2),
        heat_queries=workload.queries[:100],
        seed=0,
    )
    naive = DrimAnnEngine.build(
        ds.base,
        params,
        system_config=system,
        layout_config=LayoutConfig(
            min_split_size=None, max_copies=0, allocation="id_order"
        ),
        prebuilt_quantized=balanced.quantized,
        seed=0,
    )

    print("\nServing the query stream:")
    res_bal, t_bal = run(balanced, workload, "load-balanced", True)
    res_naive, t_naive = run(naive, workload, "id-order layout", False)

    speedup = t_naive.pim_seconds / t_bal.pim_seconds
    print(f"\nload-balancing speedup on this stream: {speedup:.2f}x")

    r_bal = recall_at_k(res_bal.ids, gt, 10)
    r_naive = recall_at_k(res_naive.ids, gt, 10)
    print(f"recall@10: balanced={r_bal:.3f}, naive={r_naive:.3f} (identical math)")
    assert np.allclose(
        np.sort(res_bal.distances, axis=1), np.sort(res_naive.distances, axis=1)
    ), "layout must never change results"


if __name__ == "__main__":
    main()
