#!/usr/bin/env python
"""Verify the paper's load-imbalance preconditions on a dataset.

The paper's §IV-B grounds the load balancer in three observations about
real corpora and workloads. Before trusting any layout knobs, check
that *your* dataset exhibits them. This script measures all three plus
intrinsic dimensionality (the property that makes PQ viable) on a
synthetic preset — swap in your own vectors via repro.data.io_vecs.

Run:  python examples/dataset_characterization.py
"""

from repro.ann import IVFIndex
from repro.data import (
    AccessStats,
    ClusterSizeStats,
    intrinsic_dimension_estimate,
    load_dataset,
)


def main() -> None:
    print("Loading sift-like-20k ...")
    ds = load_dataset("sift-like-20k", seed=0, num_queries=300)

    print("\n-- Geometry ------------------------------------------------")
    idim = intrinsic_dimension_estimate(ds.base)
    print(f"ambient dimension:   {ds.dim}")
    print(f"intrinsic dimension: {idim:.1f} (participation ratio)")
    print("  -> low intrinsic dimension is what makes PQ codes accurate")

    print("\nBuilding a 128-list IVF index for workload analysis ...")
    ivf = IVFIndex.build(ds.base, nlist=128, seed=0)

    print("\n-- Observation 1: unbalanced cluster sizes ------------------")
    s = ClusterSizeStats.from_sizes(ivf.list_sizes())
    print(f"mean size {s.mean:.0f}, std {s.std:.0f}, max {s.max:.0f}")
    print(f"imbalance factor {s.imbalance_factor:.2f} (1.0 = even), "
          f"gini {s.gini:.2f}")
    print("  -> motivates cluster splitting (LayoutConfig.min_split_size)")

    print("\n-- Observations 2 & 3: access contention and skew ------------")
    probes = ivf.locate(ds.queries.astype(float), 8)
    a = AccessStats.from_probes(probes, ivf.nlist, batch_size=64)
    print(f"busiest cluster takes {a.top1_share:.1%} of all accesses")
    print(f"hottest 10% of clusters take {a.top10pct_share:.1%}")
    print(f"rank-frequency Zipf exponent {a.zipf_exponent:.2f}")
    print(f"mean same-batch contention {a.mean_batch_contention:.1f} "
          "hits on the busiest cluster per 64-query batch")
    print("  -> motivates duplication (max_copies) and runtime scheduling")


if __name__ == "__main__":
    main()
