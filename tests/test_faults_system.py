import numpy as np
import pytest

from repro.analysis.tracecheck import check_tracer
from repro.faults import FaultConfig, FaultPlan
from repro.pim.config import DpuConfig, PimSystemConfig
from repro.pim.dpu import Dpu
from repro.pim.system import PimSystem, ShardData
from repro.pim.trace import Tracer


@pytest.fixture()
def make_system(small_quantized):
    """Factory: 4-DPU system with cluster i resident on DPU i."""

    def make(fault_plan=None, tracer=None):
        cfg = PimSystemConfig(num_dpus=4, dpus_per_rank=4)
        system = PimSystem(cfg, tracer=tracer, fault_plan=fault_plan)
        system.load_codebooks(small_quantized.codebooks)
        for d in range(4):
            system.place_shard(
                d,
                ShardData(
                    shard_key=f"c{d}",
                    centroid=small_quantized.centroids[d],
                    ids=small_quantized.cluster_ids[d],
                    codes=small_quantized.cluster_codes[d],
                ),
            )
        return system

    return make


@pytest.fixture()
def batch_queries(small_ds):
    return small_ds.queries[:2]


def _run(system, assignments, queries):
    return system.run_batch(assignments, queries, 10, multiplier_less=False)


class TestRunBatchValidation:
    @pytest.mark.parametrize("bad", [-1, 4, 99])
    def test_out_of_range_dpu_rejected(self, make_system, batch_queries, bad):
        system = make_system()
        with pytest.raises(ValueError, match="out of range"):
            _run(system, {bad: [(0, "c0")]}, batch_queries)

    def test_valid_ids_accepted(self, make_system, batch_queries):
        system = make_system()
        partials, timing = _run(system, {0: [(0, "c0")]}, batch_queries)
        assert len(partials) == 1
        assert timing.failed_tasks == []


class TestFailStop:
    def test_dead_dpu_tasks_reported_not_executed(
        self, make_system, batch_queries
    ):
        plan = FaultPlan(
            num_dpus=4, config=FaultConfig(), fail_at_batch={1: 0}
        )
        system = make_system(fault_plan=plan)
        partials, timing = _run(
            system, {0: [(0, "c0")], 1: [(0, "c1"), (1, "c1")]}, batch_queries
        )
        assert timing.failed_tasks == [(0, "c1"), (1, "c1")]
        assert {p.query_index for p in partials} == {0}
        assert system.dead_dpus() == {1}

    def test_crash_batch_respected(self, make_system, batch_queries):
        plan = FaultPlan(
            num_dpus=4, config=FaultConfig(), fail_at_batch={2: 1}
        )
        system = make_system(fault_plan=plan)
        _, t0 = _run(system, {2: [(0, "c2")]}, batch_queries)
        assert t0.failed_tasks == []
        _, t1 = _run(system, {2: [(0, "c2")]}, batch_queries)
        assert t1.failed_tasks == [(0, "c2")]


class TestStragglers:
    def test_derated_dpu_stretches_critical_path(
        self, make_system, batch_queries
    ):
        derates = np.array([1.0, 1.0, 1.0, 0.5])
        plan = FaultPlan(num_dpus=4, config=FaultConfig(), derates=derates)
        healthy = make_system()
        slow = make_system(fault_plan=plan)
        assignments = {3: [(0, "c3")]}
        _, t_h = _run(healthy, assignments, batch_queries)
        _, t_s = _run(slow, assignments, batch_queries)
        assert t_s.pim_seconds == pytest.approx(2.0 * t_h.pim_seconds)

    def test_batch_time_is_max_over_effective_clocks(
        self, make_system, batch_queries
    ):
        derates = np.array([1.0, 1.0, 1.0, 0.5])
        plan = FaultPlan(num_dpus=4, config=FaultConfig(), derates=derates)
        system = make_system(fault_plan=plan)
        _, timing = _run(
            system, {0: [(0, "c0")], 3: [(0, "c3")]}, batch_queries
        )
        freq = system.config.dpu.frequency_hz
        expected = max(timing.per_dpu_cycles / (freq * derates))
        assert timing.pim_seconds == pytest.approx(expected)


class TestTransients:
    def test_retry_counted_and_results_unchanged(
        self, make_system, batch_queries
    ):
        plan = FaultPlan(
            num_dpus=4,
            config=FaultConfig(),
            transients=frozenset({(0, 0)}),
        )
        tracer = Tracer()
        system = make_system(fault_plan=plan, tracer=tracer)
        partials, timing = _run(system, {0: [(0, "c0")]}, batch_queries)
        assert timing.transient_retries == 1
        retry_events = [e for e in tracer.events if "#retry" in e.detail]
        assert retry_events, "retry must be visible on the trace"
        assert check_tracer(tracer) == []

        clean = make_system()
        ref, _ = _run(clean, {0: [(0, "c0")]}, batch_queries)
        np.testing.assert_array_equal(partials[0].ids, ref[0].ids)
        np.testing.assert_array_equal(
            partials[0].distances, ref[0].distances
        )

    def test_retry_charges_extra_cycles(self, make_system, batch_queries):
        plan = FaultPlan(
            num_dpus=4, config=FaultConfig(), transients=frozenset({(0, 0)})
        )
        faulty = make_system(fault_plan=plan)
        clean = make_system()
        _, t_f = _run(faulty, {0: [(0, "c0")]}, batch_queries)
        _, t_c = _run(clean, {0: [(0, "c0")]}, batch_queries)
        assert t_f.per_dpu_cycles[0] > t_c.per_dpu_cycles[0]


class TestTransferTimeouts:
    def test_timeout_charged_and_logged(self, make_system, batch_queries):
        plan = FaultPlan(
            num_dpus=4,
            config=FaultConfig(),
            transfer_timeouts=frozenset({0}),
        )
        faulty = make_system(fault_plan=plan)
        clean = make_system()
        _, t_f = _run(faulty, {0: [(0, "c0")]}, batch_queries)
        _, t_c = _run(clean, {0: [(0, "c0")]}, batch_queries)
        assert t_f.transfer_timeouts == 1
        assert t_f.transfer_seconds == pytest.approx(
            t_c.transfer_seconds + plan.config.transfer_timeout_s
        )
        kinds = [e.kind for e in faulty.transfer.events]
        assert "timeout" in kinds


class TestDpuStall:
    def test_stall_counts_toward_total_not_kernels(self):
        dpu = Dpu(0, DpuConfig())
        dpu.stall(100.0)
        assert dpu.total_cycles == 100.0
        assert dpu.cycles_by_kernel == {}

    def test_negative_stall_rejected(self):
        dpu = Dpu(0, DpuConfig())
        with pytest.raises(ValueError):
            dpu.stall(-1.0)

    def test_reset_clears_stall(self):
        dpu = Dpu(0, DpuConfig())
        dpu.stall(10.0)
        dpu.reset_ledger()
        assert dpu.total_cycles == 0.0
