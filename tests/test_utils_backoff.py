"""Unit tests for the shared retry/backoff policy."""

import numpy as np
import pytest

from repro.faults.plan import FaultConfig
from repro.utils.backoff import BackoffPolicy, BackoffSequence


class TestPolicy:
    def test_raw_delay_is_exponential(self):
        p = BackoffPolicy(base_s=1e-4, multiplier=2.0)
        assert p.raw_delay(0) == pytest.approx(1e-4)
        assert p.raw_delay(1) == pytest.approx(2e-4)
        assert p.raw_delay(3) == pytest.approx(8e-4)

    def test_cap_limits_delay(self):
        p = BackoffPolicy(base_s=1e-4, multiplier=2.0, cap_s=3e-4)
        assert p.raw_delay(0) == pytest.approx(1e-4)
        assert p.raw_delay(5) == pytest.approx(3e-4)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError, match="attempt"):
            BackoffPolicy().raw_delay(-1)

    @pytest.mark.parametrize(
        "kw",
        [
            {"base_s": -1.0},
            {"multiplier": 0.5},
            {"cap_s": -1.0},
            {"jitter": 1.0},
            {"jitter": -0.1},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            BackoffPolicy(**kw)

    def test_dict_roundtrip(self):
        p = BackoffPolicy(base_s=2e-4, multiplier=3.0, cap_s=1e-2, jitter=0.25)
        assert BackoffPolicy.from_dict(p.to_dict()) == p

    def test_fault_config_exposes_policy(self):
        cfg = FaultConfig(retry_backoff_s=5e-4)
        p = cfg.backoff_policy()
        assert p.base_s == pytest.approx(5e-4)
        assert p.multiplier == pytest.approx(2.0)
        # No jitter: bit-compatible with the pre-extraction engine path.
        assert p.jitter == 0.0


class TestSequence:
    def test_no_jitter_matches_raw_schedule(self):
        p = BackoffPolicy(base_s=1e-4, multiplier=2.0)
        seq = p.sequence(seed=0)
        delays = [seq.next_delay() for _ in range(4)]
        assert delays == pytest.approx([p.raw_delay(i) for i in range(4)])
        assert seq.total_s == pytest.approx(sum(delays))

    def test_jitter_is_seed_deterministic(self):
        p = BackoffPolicy(base_s=1e-4, jitter=0.5)
        a = [p.sequence(seed=7).next_delay() for _ in range(1)]
        b = [p.sequence(seed=7).next_delay() for _ in range(1)]
        assert a == b
        seq1, seq2 = p.sequence(seed=7), p.sequence(seed=7)
        assert [seq1.next_delay() for _ in range(6)] == pytest.approx(
            [seq2.next_delay() for _ in range(6)]
        )

    def test_jitter_bounded(self):
        p = BackoffPolicy(base_s=1e-4, multiplier=1.0, jitter=0.3)
        seq = p.sequence(seed=3)
        for _ in range(64):
            d = seq.next_delay()
            assert 0.7e-4 <= d <= 1.3e-4

    def test_jitter_streams_differ_across_seeds(self):
        p = BackoffPolicy(base_s=1e-4, jitter=0.5)
        a = p.sequence(seed=1)
        b = p.sequence(seed=2)
        assert any(
            a.next_delay() != pytest.approx(b.next_delay()) for _ in range(8)
        )

    def test_reset_restarts_attempts_but_not_jitter_stream(self):
        p = BackoffPolicy(base_s=1e-4, multiplier=2.0, jitter=0.5)
        seq = p.sequence(seed=11)
        first_burst = [seq.next_delay() for _ in range(3)]
        seq.reset()
        assert seq.attempt == 0
        second_burst = [seq.next_delay() for _ in range(3)]
        # Same schedule, fresh jitter draws: bursts stay decorrelated.
        assert first_burst != pytest.approx(second_burst)

    def test_accepts_generator_seed(self):
        rng = np.random.default_rng(5)
        seq = BackoffSequence(BackoffPolicy(jitter=0.5), seed=rng)
        assert seq.next_delay() > 0.0
