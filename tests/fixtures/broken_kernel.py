"""Deliberately-wrong resource contract for the cost cross-check tests.

Claims the RC kernel does twice the subtractions it actually performs
(and misreports its MRAM traffic), so ``check_contract_module`` on this
file must produce instruction-mix-drift and memory-traffic-drift
findings. Used by the analyzer tests and the CLI ``--kernel-module``
strict-exit test.
"""

from repro.analysis.contracts import KernelShape, ResourceContract, WramTerm
from repro.pim.isa import InstructionMix
from repro.pim.memory import MemoryTraffic


def _broken_mix(s: KernelShape) -> InstructionMix:
    # Wrong: RC performs g*d adds, not 2*g*d.
    return InstructionMix(
        add=float(2 * s.g * s.d),
        load=float(2 * s.g * s.d),
        store=float(s.g * s.d),
    )


def _broken_traffic(s: KernelShape) -> MemoryTraffic:
    # Wrong: the centroid stream is g*d bytes, not g*d*4.
    return MemoryTraffic(
        sequential_read=float(4 * s.g * s.d), transactions=float(s.g)
    )


CONTRACT = ResourceContract(
    kernel="RC",
    instruction_mix=_broken_mix,
    memory_traffic=_broken_traffic,
    wram_terms=lambda s: [WramTerm("query", s.d)],
    dma_transfers=lambda s: {"centroid": float(s.d)},
    notes="test fixture: intentionally overstates adds and traffic",
)
