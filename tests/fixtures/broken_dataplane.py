"""Seeded-broken data-plane module for the drimsan static rules.

Every function below violates exactly one of AL006-AL012; the test
suite asserts :func:`repro.analysis.concurrency.lint_file` reports each
of them (and nothing else) on this file. Never import this module.
"""

import random
import threading
import time
from multiprocessing import shared_memory

import numpy as np

PENDING = []  # AL007: module-level mutable state read by a worker


def al006_leaky_segment(payload):
    shm = shared_memory.SharedMemory(create=True, size=1024)
    shm.buf[: len(payload)] = payload  # an exception here leaks the segment
    shm.close()
    shm.unlink()


def al007_worker():
    return list(PENDING)


def al007_spawn():
    t = threading.Thread(target=al007_worker)
    t.start()
    t.join()
    return t


def al008_jitter():
    return random.random() * 0.010


def al009_merge(shard_ids):
    pending = set(shard_ids)
    out = []
    for sid in pending:
        out.append(sid)
    return out


def al010_stamped_result(rows):
    stamp = time.time()
    return {"rows": rows, "stamp": stamp}


def al011_rank(distances):
    return np.argsort(distances)


def al012_fire_and_forget(fn):
    t = threading.Thread(target=fn)
    t.start()
