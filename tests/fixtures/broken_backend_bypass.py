"""Deliberate kernel-registry bypass for the AL013 lint tests.

Calls the staged scan internal directly instead of resolving a backend
through ``repro.pim.backend`` — exactly the pattern the
``kernel-registry-bypass`` rule must flag (exactly once on this file).
Never import this module; it exists only to be linted.
"""

from repro.pim.kernels import scan_distances, topk_rows


def sneaky_scan(luts, codes, ids, k):
    # Wrong: pins the serial NumPy implementation and skips backend
    # selection, guarded fallback, and the kernel metrics.
    dists = scan_distances(luts, codes)
    return topk_rows(dists, ids, k)
