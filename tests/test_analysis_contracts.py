"""Resource contracts and the static resource checkers."""

import numpy as np
import pytest

from repro.analysis.contracts import (
    KernelShape,
    mix_delta,
    square_lut_bytes,
    traffic_delta,
)
from repro.analysis.findings import Severity
from repro.analysis.resources import (
    check_dma,
    check_dse_grid,
    check_tasklets,
    check_wram,
    infeasible_grid_points,
    wram_breakdown,
)
from repro.pim.config import DpuConfig
from repro.pim.kernels import KERNEL_CONTRACTS
from repro.pim.kernels.residual import run_residual


def _shape(m=32, cb=128, dim=128, **kw):
    return KernelShape(
        g=1, d=dim, m=m, cb=cb, dsub=dim // m, k=10,
        code_bytes=1 if cb <= 256 else 2, **kw,
    )


class TestContractRegistry:
    def test_all_kernels_declare_contracts(self):
        assert set(KERNEL_CONTRACTS) == {"RC", "LC", "DC", "CL", "TS"}

    def test_contract_matches_kernel_cost(self, rng):
        """The RC closed form agrees with what the kernel reports."""
        g, d = 3, 16
        q = rng.integers(0, 255, size=(g, d)).astype(np.uint8)
        c = rng.integers(0, 255, size=d).astype(np.uint8)
        _, cost = run_residual(q, c)
        contract = KERNEL_CONTRACTS["RC"]
        shape = KernelShape(g=g, d=d)
        assert mix_delta(contract.instruction_mix(shape), cost.instructions) == {}
        assert traffic_delta(contract.memory_traffic(shape), cost.traffic) == {}

    def test_square_lut_footprint(self):
        # 8-bit operands, levels=3: (2*765+1) entries of 4 B.
        assert square_lut_bytes(8, levels=3) == (2 * 765 + 1) * 4


class TestWram:
    def test_defaults_fit(self):
        assert check_wram(_shape(), DpuConfig()) == []

    def test_breakdown_charges_every_kernel_term(self):
        bd = wram_breakdown(_shape(), DpuConfig())
        assert "adc_lut" in bd
        assert bd["adc_lut"] == 32 * 128 * 4
        assert "square_lut" in bd  # multiplier-less resident table
        assert all(v >= 0 for v in bd.values())

    def test_overflow_at_24_tasklets(self):
        """(M=32, CB=256) fits at 16 tasklets but not at 24.

        The LUT-only check (32 KB <= 56 KB) passes this config; only
        the full residency model rejects it.
        """
        shape = _shape(cb=256)
        assert check_wram(shape, DpuConfig(num_tasklets=16)) == []
        findings = check_wram(shape, DpuConfig(num_tasklets=24))
        assert [f.rule for f in findings] == ["wram-overflow"]
        f = findings[0]
        assert f.severity == Severity.ERROR
        assert f.data["total_bytes"] > f.data["capacity_bytes"] == 64 * 1024
        assert shape.adc_lut_bytes <= 56 * 1024  # old check would pass it

    def test_grid_sweep_catches_overflow(self):
        findings = check_dse_grid(
            dim=128,
            nlist_values=(128,),
            m_values=(16, 32),
            cb_values=(128, 256),
            tasklet_values=(16, 24),
        )
        bad = infeasible_grid_points(findings)
        assert {"rule": "wram-overflow", "nlist": 128, "m": 32,
                "cb": 256, "num_tasklets": 24} in bad
        # The same (m, cb) at 16 tasklets stays feasible.
        assert not any(
            p["m"] == 32 and p["cb"] == 256 and p["num_tasklets"] == 16
            for p in bad
        )

    def test_grid_reports_indivisible_m(self):
        findings = check_dse_grid(
            dim=100, nlist_values=(16,), m_values=(3,), cb_values=(16,)
        )
        assert any(f.rule == "dim-indivisible" for f in findings)


class TestDmaAndTasklets:
    def test_misaligned_centroid_stream(self):
        # d=12: the RC centroid DMA is 12 B, not 8-byte aligned.
        findings = check_dma(KernelShape(g=1, d=12, m=4, cb=8, dsub=3, k=2))
        mis = [f for f in findings if f.rule == "dma-misaligned"]
        assert any(f.data["bytes"] == 12.0 for f in mis)

    def test_aligned_defaults_have_no_dma_warnings(self):
        findings = check_dma(_shape())
        assert all(f.severity < Severity.WARNING for f in findings)

    def test_tasklet_underfill(self):
        findings = check_tasklets(DpuConfig(num_tasklets=8))
        assert [f.rule for f in findings] == ["tasklet-underfill"]
        assert findings[0].severity == Severity.WARNING

    def test_full_pipeline_no_warning(self):
        assert check_tasklets(DpuConfig(num_tasklets=16)) == []


class TestKernelShape:
    def test_inconsistent_subspaces_rejected(self):
        with pytest.raises(ValueError, match="m\\*dsub"):
            KernelShape(d=128, m=16, dsub=4)

    def test_from_index_params(self):
        from repro.core.params import IndexParams

        p = IndexParams(nlist=128, nprobe=8, k=10,
                        num_subspaces=16, codebook_size=512)
        s = KernelShape.from_index_params(p, dim=128)
        assert (s.m, s.cb, s.dsub, s.k) == (16, 512, 8, 10)
        assert s.code_bytes == 2  # CB > 256 needs 2-byte codes
