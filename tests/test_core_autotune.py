import numpy as np
import pytest

from repro.core.autotune import BatchTuneResult, tune_batch_size


class TestTuneThroughput:
    def test_returns_best_of_sweep(self, small_engine, small_ds):
        res = tune_batch_size(
            small_engine,
            small_ds.queries[:80],
            candidates=(16, 64),
            apply=False,
        )
        assert res.best_batch_size in (16, 64)
        assert len(res.sweep) == 2
        best_score = res.score_of(res.best_batch_size)
        assert all(best_score >= s for _, s in res.sweep)

    def test_apply_installs_winner(self, small_ds, small_quantized, small_params):
        from repro.core import DrimAnnEngine, SearchParams
        from repro.pim.config import PimSystemConfig

        eng = DrimAnnEngine.build(
            small_ds.base,
            small_params,
            search_params=SearchParams(batch_size=32),
            system_config=PimSystemConfig(num_dpus=8),
            prebuilt_quantized=small_quantized,
            seed=0,
        )
        res = tune_batch_size(
            eng, small_ds.queries[:60], candidates=(16, 64), apply=True
        )
        assert eng.search_params.batch_size == res.best_batch_size

    def test_no_apply_restores_original(self, small_engine, small_ds):
        before = small_engine.search_params.batch_size
        tune_batch_size(
            small_engine, small_ds.queries[:40], candidates=(16,), apply=False
        )
        assert small_engine.search_params.batch_size == before

    def test_results_unaffected_by_tuning(self, small_engine, small_ds):
        ref = small_engine.reference_search(small_ds.queries[:30])
        tune_batch_size(
            small_engine, small_ds.queries[:30], candidates=(8, 32), apply=True
        )
        res, _ = small_engine.search(small_ds.queries[:30])
        np.testing.assert_allclose(
            np.sort(res.distances, axis=1), np.sort(ref.distances, axis=1)
        )


class TestTuneP99:
    def test_p99_objective(self, small_engine, small_ds):
        res = tune_batch_size(
            small_engine,
            small_ds.queries[:80],
            objective="p99",
            arrival_rate_qps=20_000,
            candidates=(8, 64),
            apply=False,
        )
        assert res.objective == "p99"
        best_score = res.score_of(res.best_batch_size)
        assert all(best_score <= s for _, s in res.sweep)

    def test_p99_requires_rate(self, small_engine, small_ds):
        with pytest.raises(ValueError, match="arrival_rate_qps"):
            tune_batch_size(
                small_engine, small_ds.queries[:10], objective="p99"
            )


class TestValidation:
    def test_bad_objective(self, small_engine, small_ds):
        with pytest.raises(ValueError, match="objective"):
            tune_batch_size(
                small_engine, small_ds.queries[:10], objective="latency"
            )

    def test_empty_candidates(self, small_engine, small_ds):
        with pytest.raises(ValueError, match="candidates"):
            tune_batch_size(
                small_engine, small_ds.queries[:10], candidates=()
            )

    def test_score_of_unknown(self):
        r = BatchTuneResult(best_batch_size=8, objective="throughput", sweep=((8, 1.0),))
        with pytest.raises(KeyError):
            r.score_of(99)
