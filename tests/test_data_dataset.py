import numpy as np
import pytest

from repro.data import Dataset


def _mk(n=10, d=4, q=3, gt_k=2):
    base = np.zeros((n, d), dtype=np.uint8)
    queries = np.zeros((q, d), dtype=np.uint8)
    gt = np.zeros((q, gt_k), dtype=np.int64)
    return base, queries, gt


class TestDatasetValidation:
    def test_minimal(self):
        base, _, _ = _mk()
        ds = Dataset(name="t", base=base)
        assert ds.num_base == 10 and ds.dim == 4 and ds.num_queries == 0

    def test_with_queries_and_gt(self):
        base, q, gt = _mk()
        ds = Dataset(name="t", base=base, queries=q, ground_truth=gt)
        assert ds.num_queries == 3

    def test_query_dim_mismatch(self):
        base, _, _ = _mk()
        with pytest.raises(ValueError, match="dimension"):
            Dataset(name="t", base=base, queries=np.zeros((3, 5)))

    def test_gt_without_queries(self):
        base, _, gt = _mk()
        with pytest.raises(ValueError, match="without queries"):
            Dataset(name="t", base=base, ground_truth=gt)

    def test_gt_row_mismatch(self):
        base, q, _ = _mk()
        with pytest.raises(ValueError, match="query count"):
            Dataset(name="t", base=base, queries=q, ground_truth=np.zeros((4, 2)))

    def test_base_must_be_2d(self):
        with pytest.raises(ValueError):
            Dataset(name="t", base=np.zeros(5))


class TestSubsetQueries:
    def test_subset(self):
        base, q, gt = _mk()
        ds = Dataset(name="t", base=base, queries=q, ground_truth=gt)
        sub = ds.subset_queries(2)
        assert sub.num_queries == 2
        assert sub.ground_truth.shape[0] == 2
        assert sub.base is ds.base

    def test_subset_clamps(self):
        base, q, gt = _mk()
        ds = Dataset(name="t", base=base, queries=q, ground_truth=gt)
        assert ds.subset_queries(99).num_queries == 3

    def test_subset_requires_queries(self):
        base, _, _ = _mk()
        with pytest.raises(ValueError, match="no queries"):
            Dataset(name="t", base=base).subset_queries(1)
