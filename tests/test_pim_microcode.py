"""Cross-validation: the kernels' analytic instruction mixes must match
what an instruction-by-instruction execution of the same inner loops
actually performs."""

import numpy as np
import pytest

from repro.core.square_lut import SquareLut
from repro.pim.kernels import run_distance_scan, run_lut_build, run_residual
from repro.pim.microcode import (
    MicroMachine,
    run_dc_micro,
    run_lc_micro,
    run_rc_micro,
)


@pytest.fixture()
def shapes(rng):
    d, m, cb, dsub, n = 16, 4, 8, 4, 12
    query = rng.integers(0, 255, size=d).astype(np.uint8)
    centroid = rng.integers(0, 255, size=d).astype(np.uint8)
    books = rng.integers(-100, 100, size=(m, cb, dsub)).astype(np.int16)
    codes = rng.integers(0, cb, size=(n, m)).astype(np.uint8)
    return query, centroid, books, codes


class TestRcValidation:
    def test_results_match(self, shapes):
        query, centroid, *_ = shapes
        mm = MicroMachine()
        micro = run_rc_micro(mm, query.astype(np.int64), centroid.astype(np.int64))
        vec, _ = run_residual(query[None], centroid)
        np.testing.assert_array_equal(micro, vec[0].astype(np.int64))

    def test_counts_match_kernel_mix(self, shapes):
        query, centroid, *_ = shapes
        mm = MicroMachine()
        run_rc_micro(mm, query.astype(np.int64), centroid.astype(np.int64))
        _, cost = run_residual(query[None], centroid)
        assert mm.counts.add == cost.instructions.add
        assert mm.counts.load == cost.instructions.load
        assert mm.counts.store == cost.instructions.store


class TestLcValidation:
    @pytest.mark.parametrize("use_lut", [False, True])
    def test_results_match(self, shapes, use_lut):
        query, centroid, books, _ = shapes
        residual = query.astype(np.int32) - centroid.astype(np.int32)
        sq = SquareLut.for_bit_width(8, levels=3) if use_lut else None
        mm = MicroMachine()
        micro = run_lc_micro(mm, residual.astype(np.int64), books, sq)
        vec, _ = run_lut_build(residual[None], books, sq)
        np.testing.assert_array_equal(micro, vec[0])

    @pytest.mark.parametrize("use_lut", [False, True])
    def test_counts_match_kernel_mix(self, shapes, use_lut):
        query, centroid, books, _ = shapes
        residual = (query.astype(np.int32) - centroid.astype(np.int32))
        sq = SquareLut.for_bit_width(8, levels=3) if use_lut else None
        mm = MicroMachine()
        run_lc_micro(mm, residual.astype(np.int64), books, sq)
        _, cost = run_lut_build(residual[None], books, sq)
        mix = cost.instructions
        assert mm.counts.add == mix.add
        assert mm.counts.mul == mix.mul
        assert mm.counts.load == mix.load
        assert mm.counts.store == mix.store
        assert mm.counts.control == mix.control


class TestDcValidation:
    def test_results_match(self, shapes):
        query, centroid, books, codes = shapes
        residual = query.astype(np.int32) - centroid.astype(np.int32)
        luts, _ = run_lut_build(residual[None], books)
        mm = MicroMachine()
        micro = run_dc_micro(mm, luts[0], codes)
        vec, _ = run_distance_scan(luts, codes)
        np.testing.assert_array_equal(micro, vec[0])

    def test_counts_match_kernel_mix(self, shapes):
        query, centroid, books, codes = shapes
        residual = query.astype(np.int32) - centroid.astype(np.int32)
        luts, _ = run_lut_build(residual[None], books)
        mm = MicroMachine()
        run_dc_micro(mm, luts[0], codes)
        _, cost = run_distance_scan(luts, codes)
        mix = cost.instructions
        assert mm.counts.add == mix.add
        assert mm.counts.load == mix.load
        assert mm.counts.control == mix.control


class TestMachine:
    def test_counters_start_zero(self):
        mm = MicroMachine()
        assert mm.counts.total() == 0

    def test_each_op_counts_once(self):
        mm = MicroMachine()
        arr = np.zeros(4, dtype=np.int64)
        mm.add(1, 2)
        mm.sub(3, 1)
        mm.mul(2, 2)
        mm.compare(1, 2)
        mm.load(arr, 0)
        mm.store(arr, 0, 7)
        mm.control(2)
        c = mm.counts
        assert (c.add, c.mul, c.compare, c.load, c.store, c.control) == (
            2, 1, 1, 1, 1, 2,
        )
