"""Property-based sanity of the analytic performance model.

Monotonicity laws the model must satisfy regardless of parameters:
more work (higher nprobe, bigger corpus) can never be faster; more
hardware (more units, more bandwidth) can never be slower.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import DatasetShape, IndexParams
from repro.core.perf_model import PHASES, AnalyticPerfModel, HardwareProfile
from repro.pim.config import PimSystemConfig

shape_strategy = st.builds(
    DatasetShape,
    num_points=st.integers(10_000, 10_000_000),
    dim=st.sampled_from([64, 128, 256]),
    num_queries=st.integers(10, 10_000),
)

params_strategy = st.builds(
    lambda nlist_log, nprobe_log, k, m_log, cb_log: IndexParams(
        nlist=2**nlist_log,
        nprobe=min(2**nprobe_log, 2**nlist_log),
        k=k,
        num_subspaces=2**m_log,
        codebook_size=2**cb_log,
    ),
    nlist_log=st.integers(4, 14),
    nprobe_log=st.integers(0, 7),
    k=st.sampled_from([1, 10, 100]),
    m_log=st.integers(2, 5),
    cb_log=st.integers(4, 8),
)


def _model(shape, num_dpus=64, **kw):
    return AnalyticPerfModel(
        shape, HardwareProfile.for_pim(PimSystemConfig(num_dpus=num_dpus)), **kw
    )


class TestMonotonicity:
    @given(shape=shape_strategy, params=params_strategy)
    @settings(max_examples=60, deadline=None)
    def test_all_phases_positive(self, shape, params):
        m = _model(shape)
        for ph in PHASES:
            est = m.phase(params, ph)
            assert est.seconds > 0
            # TS compute is 0 at k=1 (Eq. 9's logK-1 factor); every
            # other phase must do work.
            if ph == "TS" and params.k == 1:
                assert est.issue_slots >= 0
            else:
                assert est.issue_slots > 0

    @given(shape=shape_strategy, params=params_strategy)
    @settings(max_examples=40, deadline=None)
    def test_more_nprobe_never_faster(self, shape, params):
        if params.nprobe * 2 > params.nlist:
            return
        m = _model(shape)
        t1 = m.total_seconds(params)
        t2 = m.total_seconds(params.replace(nprobe=params.nprobe * 2))
        assert t2 >= t1 * 0.999

    @given(shape=shape_strategy, params=params_strategy)
    @settings(max_examples=40, deadline=None)
    def test_more_dpus_never_slower(self, shape, params):
        t64 = _model(shape, num_dpus=64).total_seconds(params)
        t256 = _model(shape, num_dpus=256).total_seconds(params)
        assert t256 <= t64 * 1.001

    @given(shape=shape_strategy, params=params_strategy)
    @settings(max_examples=40, deadline=None)
    def test_multiplier_less_never_slower_on_pim(self, shape, params):
        with_mul = _model(shape, multiplier_less=False).phase(params, "LC")
        without = _model(shape, multiplier_less=True).phase(params, "LC")
        assert without.seconds <= with_mul.seconds * 1.001

    @given(shape=shape_strategy, params=params_strategy)
    @settings(max_examples=40, deadline=None)
    def test_split_never_exceeds_total(self, shape, params):
        m = _model(shape)
        assert m.split_seconds(params) <= m.total_seconds(params) * 1.5 + 1.0
        # with no host phases, split == pim-side sum
        assert m.split_seconds(params, host_phases=()) == pytest.approx(
            m.total_seconds(params)
        )

    @given(shape=shape_strategy, params=params_strategy)
    @settings(max_examples=40, deadline=None)
    def test_paper_io_mode_never_faster(self, shape, params):
        split = _model(shape, io_mode="split").total_seconds(params)
        paper = _model(shape, io_mode="paper").total_seconds(params)
        assert paper >= split * 0.999
