import json

import numpy as np
import pytest

from repro.core.square_lut import SquareLut
from repro.pim import PimSystem, PimSystemConfig
from repro.pim.system import ShardData
from repro.pim.trace import TraceEvent, Tracer


@pytest.fixture()
def traced_system(rng):
    tracer = Tracer()
    s = PimSystem(PimSystemConfig(num_dpus=2), tracer=tracer)
    s.load_codebooks(rng.integers(-50, 50, size=(4, 8, 4)).astype(np.int16))
    s.load_square_lut(SquareLut.for_bit_width(8, levels=3))
    for i in range(2):
        s.place_shard(
            i,
            ShardData(
                shard_key=f"s{i}",
                centroid=rng.integers(0, 255, size=16).astype(np.uint8),
                ids=np.arange(10, dtype=np.int64) + 10 * i,
                codes=rng.integers(0, 8, size=(10, 4)).astype(np.uint8),
            ),
        )
    return s, tracer


class TestTraceEvent:
    def test_cycles(self):
        e = TraceEvent(name="LC", dpu_id=0, start_cycle=10, end_cycle=30, batch=0)
        assert e.cycles == 20

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent(name="LC", dpu_id=0, start_cycle=30, end_cycle=10, batch=0)


class TestTracerWithSystem:
    def test_events_recorded(self, traced_system, rng):
        s, tracer = traced_system
        q = rng.integers(0, 255, size=(2, 16)).astype(np.uint8)
        s.run_batch({0: [(0, "s0")], 1: [(1, "s1")]}, q, k=3)
        names = {e.name for e in tracer.events}
        assert names == {"RC", "LC", "DC", "TS"}
        assert len(tracer.events) == 8  # 4 kernels x 2 tasks

    def test_timeline_contiguous_per_dpu(self, traced_system, rng):
        s, tracer = traced_system
        q = rng.integers(0, 255, size=(3, 16)).astype(np.uint8)
        s.run_batch({0: [(0, "s0"), (1, "s0"), (2, "s0")]}, q, k=3)
        evs = tracer.events_on(0)
        for prev, nxt in zip(evs, evs[1:]):
            assert nxt.start_cycle == pytest.approx(prev.end_cycle)

    def test_busy_cycles_match_dpu_ledger(self, traced_system, rng):
        s, tracer = traced_system
        q = rng.integers(0, 255, size=(2, 16)).astype(np.uint8)
        s.run_batch({0: [(0, "s0")], 1: [(1, "s1")]}, q, k=3)
        busy = tracer.busy_cycles_per_dpu()
        for dpu in s.dpus:
            assert busy[dpu.dpu_id] == pytest.approx(dpu.total_cycles)

    def test_batch_counter(self, traced_system, rng):
        s, tracer = traced_system
        q = rng.integers(0, 255, size=(1, 16)).astype(np.uint8)
        s.run_batch({0: [(0, "s0")]}, q, k=3)
        s.run_batch({1: [(0, "s1")]}, q, k=3)
        batches = {e.batch for e in tracer.events}
        assert len(batches) == 2

    def test_makespan(self, traced_system, rng):
        s, tracer = traced_system
        q = rng.integers(0, 255, size=(2, 16)).astype(np.uint8)
        s.run_batch({0: [(0, "s0"), (1, "s0")]}, q, k=3)
        assert tracer.makespan_cycles() == pytest.approx(s.dpus[0].total_cycles)

    def test_chrome_export(self, traced_system, rng, tmp_path):
        s, tracer = traced_system
        q = rng.integers(0, 255, size=(1, 16)).astype(np.uint8)
        s.run_batch({0: [(0, "s0")]}, q, k=3)
        path = str(tmp_path / "trace.json")
        tracer.export_chrome_trace(path)
        with open(path) as f:
            data = json.load(f)
        complete = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(complete) == tracer.num_events
        ev = complete[0]
        assert "dur" in ev and ev["dur"] >= 0

    def test_chrome_export_metadata_labels(self, traced_system, rng, tmp_path):
        s, tracer = traced_system
        q = rng.integers(0, 255, size=(2, 16)).astype(np.uint8)
        s.run_batch({0: [(0, "s0")], 1: [(1, "s1")]}, q, k=3)
        path = str(tmp_path / "trace.json")
        tracer.export_chrome_trace(path)
        with open(path) as f:
            data = json.load(f)
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert {"name": "PIM system (simulated DPUs)"} in [
            e["args"] for e in meta if e["name"] == "process_name"
        ]
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name"
        }
        assert thread_names == {0: "DPU 0", 1: "DPU 1"}

    def test_record_rejects_negative_dpu_id(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="dpu_id"):
            tracer.record("LC", -1, 0.0, 10.0)

    def test_summary_and_clear(self, traced_system, rng):
        s, tracer = traced_system
        q = rng.integers(0, 255, size=(1, 16)).astype(np.uint8)
        s.run_batch({0: [(0, "s0")]}, q, k=3)
        assert "events" in tracer.summary()
        tracer.clear()
        assert tracer.num_events == 0
        assert tracer.summary() == "empty trace"

    def test_untraced_system_unaffected(self, rng):
        s = PimSystem(PimSystemConfig(num_dpus=1))
        assert s.tracer is None


class TestEngineIntegration:
    def test_engine_with_tracer(self, small_ds, small_quantized, small_params):
        from repro.core import DrimAnnEngine

        tracer = Tracer()
        eng = DrimAnnEngine.build(
            small_ds.base,
            small_params,
            system_config=PimSystemConfig(num_dpus=4),
            prebuilt_quantized=small_quantized,
            tracer=tracer,
            seed=0,
        )
        _, bd = eng.search(small_ds.queries[:40])
        assert tracer.num_events > 0
        # Trace busy cycles must reconcile with the batch ledgers.
        busy = sum(tracer.busy_cycles_per_dpu().values())
        ledger = sum(d.total_cycles for d in eng.system.dpus)
        assert busy == pytest.approx(ledger)
        # Tracing must not change results.
        ref = eng.reference_search(small_ds.queries[:40])
        res, _ = eng.search(small_ds.queries[:40])
        np.testing.assert_allclose(
            np.sort(res.distances, axis=1), np.sort(ref.distances, axis=1)
        )
