import pytest

from repro.core.accuracy import AccuracyTable
from repro.core.frontier import knee_point, pareto_frontier
from repro.core.params import DatasetShape, IndexParams
from repro.core.perf_model import AnalyticPerfModel, HardwareProfile
from repro.pim.config import PimSystemConfig


@pytest.fixture(scope="module")
def model():
    shape = DatasetShape(num_points=1_000_000, dim=128, num_queries=100)
    return AnalyticPerfModel(
        shape,
        HardwareProfile.for_pim(PimSystemConfig(num_dpus=64)),
        multiplier_less=True,
    )


def _table():
    t = AccuracyTable()
    # recall grows with nprobe; time does too -> a real trade-off.
    for nprobe, rec in ((2, 0.6), (4, 0.72), (8, 0.8), (16, 0.84), (32, 0.85)):
        t.record(
            IndexParams(nlist=1024, nprobe=nprobe, k=10, num_subspaces=16),
            rec,
        )
    return t


class TestParetoFrontier:
    def test_recall_strictly_increasing(self, model):
        f = pareto_frontier(_table(), model)
        recalls = [p.recall for p in f]
        assert recalls == sorted(recalls)
        assert len(set(recalls)) == len(recalls)

    def test_time_ascending(self, model):
        f = pareto_frontier(_table(), model)
        times = [p.modeled_seconds for p in f]
        assert times == sorted(times)

    def test_dominated_points_removed(self, model):
        t = _table()
        # A strictly dominated point: same nprobe=32 cost but lower recall
        # than the nprobe=16 point (cheaper AND better exists).
        t.record(
            IndexParams(nlist=1024, nprobe=32, k=10, num_subspaces=32),
            0.5,
        )
        f = pareto_frontier(t, model)
        assert all(p.recall > 0.5 for p in f)

    def test_empty_table(self, model):
        assert pareto_frontier(AccuracyTable(), model) == []

    def test_invalid_m_skipped(self, model):
        t = AccuracyTable()
        t.record(
            IndexParams(nlist=64, nprobe=2, k=10, num_subspaces=7), 0.9
        )  # 128 % 7 != 0
        assert pareto_frontier(t, model) == []


class TestKnee:
    def test_knee_in_frontier(self, model):
        f = pareto_frontier(_table(), model)
        knee = knee_point(f)
        assert knee in f

    def test_knee_prefers_elbow(self, model):
        """Diminishing returns: the knee shouldn't be the most expensive
        point (nprobe=32 buys +0.01 recall for 2x the time)."""
        f = pareto_frontier(_table(), model)
        knee = knee_point(f)
        assert knee.params.nprobe < 32

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            knee_point([])

    def test_singleton(self, model):
        f = pareto_frontier(_table(), model)[:1]
        assert knee_point(f) == f[0]
