import numpy as np
import pytest

from repro.ann import recall_at_k
from repro.core.quantized import (
    CODEBOOK_CLIP,
    QuantizedIndexData,
    build_quantized_index,
)


class TestBuild:
    def test_dtypes(self, small_quantized):
        q = small_quantized
        assert q.centroids.dtype == np.uint8
        assert q.codebooks.dtype == np.int16
        assert np.abs(q.codebooks).max() <= CODEBOOK_CLIP

    def test_shape_passthrough(self, small_quantized, small_index):
        assert small_quantized.nlist == small_index.nlist
        assert small_quantized.num_points == small_index.num_points
        assert small_quantized.num_subspaces == small_index.pq.num_subspaces

    def test_cluster_sizes(self, small_quantized, small_index):
        np.testing.assert_array_equal(
            small_quantized.cluster_sizes(), small_index.ivf.list_sizes()
        )

    def test_rotated_index_rejected(self, small_ds):
        from repro.ann import IVFPQIndex

        idx = IVFPQIndex.build(
            small_ds.base[:2000],
            nlist=8,
            num_subspaces=16,
            codebook_size=16,
            use_opq=True,
            seed=0,
        )
        with pytest.raises(ValueError, match="rotation"):
            build_quantized_index(idx)

    def test_validation_dtype(self, small_quantized):
        with pytest.raises(TypeError, match="uint8"):
            QuantizedIndexData(
                centroids=small_quantized.centroids.astype(np.float32),
                codebooks=small_quantized.codebooks,
                cluster_ids=small_quantized.cluster_ids,
                cluster_codes=small_quantized.cluster_codes,
            )


class TestIntegerPipeline:
    def test_locate_is_exact_integer_l2(self, small_quantized, small_ds):
        q = small_ds.queries[:10]
        probes = small_quantized.locate(q, 5)
        d = (
            (q[:, None].astype(np.int64) - small_quantized.centroids[None].astype(np.int64))
            ** 2
        ).sum(-1)
        want = np.argsort(d, axis=1, kind="stable")[:, :5]
        dw = np.take_along_axis(d, want, 1)
        dg = np.take_along_axis(d, probes, 1)
        np.testing.assert_array_equal(dg, dw)

    def test_lut_is_exact(self, small_quantized, small_ds):
        res = small_quantized.residual(small_ds.queries[0], 3)
        lut = small_quantized.build_lut(res)
        m, cb, dsub = small_quantized.codebooks.shape
        want = (
            (
                res.astype(np.int64).reshape(m, 1, dsub)
                - small_quantized.codebooks.astype(np.int64)
            )
            ** 2
        ).sum(-1)
        np.testing.assert_array_equal(lut, want)

    def test_build_luts_batched(self, small_quantized, small_ds):
        rs = np.stack(
            [small_quantized.residual(small_ds.queries[i], 0) for i in range(4)]
        )
        luts = small_quantized.build_luts(rs)
        for i in range(4):
            np.testing.assert_array_equal(
                luts[i], small_quantized.build_lut(rs[i])
            )

    def test_reference_search_recall(self, small_quantized, small_ds):
        res = small_quantized.reference_search(small_ds.queries, 10, 16)
        rec = recall_at_k(res.ids, small_ds.ground_truth, 10)
        assert rec > 0.5

    def test_quantization_close_to_float_reference(
        self, small_quantized, small_index, small_ds
    ):
        """Integer rounding should cost only a little recall."""
        rq = small_quantized.reference_search(small_ds.queries, 10, 8)
        rf = small_index.search(small_ds.queries, 10, 8)
        rec_q = recall_at_k(rq.ids, small_ds.ground_truth, 10)
        rec_f = recall_at_k(rf.ids, small_ds.ground_truth, 10)
        assert abs(rec_q - rec_f) < 0.1

    def test_nprobe_bounds(self, small_quantized, small_ds):
        with pytest.raises(ValueError):
            small_quantized.locate(small_ds.queries[:1], 0)
