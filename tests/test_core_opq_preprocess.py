import numpy as np
import pytest

from repro.core.opq_preprocess import OpqPreprocessor


@pytest.fixture(scope="module")
def trained(small_ds):
    return OpqPreprocessor.train(
        small_ds.base[:4000], num_subspaces=16, seed=0
    )


class TestTrain:
    def test_rotation_orthogonal(self, trained):
        r = trained.rotation
        np.testing.assert_allclose(r @ r.T, np.eye(r.shape[0]), atol=1e-8)

    def test_output_uint8(self, trained, small_ds):
        out = trained.transform(small_ds.base[:100])
        assert out.dtype == np.uint8
        assert out.shape == (100, small_ds.dim)

    def test_little_clipping(self, trained, small_ds):
        """The affine fit should keep almost everything in-range."""
        x = small_ds.base[:2000].astype(np.float64)
        rot = x @ trained.rotation.T
        mapped = trained.scale * rot + trained.offset
        clipped = np.mean((mapped < 0) | (mapped > 255))
        assert clipped < 0.02

    def test_deterministic(self, small_ds):
        a = OpqPreprocessor.train(small_ds.base[:2000], 16, seed=3)
        b = OpqPreprocessor.train(small_ds.base[:2000], 16, seed=3)
        np.testing.assert_allclose(a.rotation, b.rotation)

    def test_dim_mismatch(self, trained):
        with pytest.raises(ValueError, match="dim"):
            trained.transform(np.zeros((3, 5)))

    def test_validation(self):
        with pytest.raises(ValueError, match="square"):
            OpqPreprocessor(rotation=np.zeros((3, 4)), scale=1.0, offset=0.0)
        with pytest.raises(ValueError, match="scale"):
            OpqPreprocessor(rotation=np.eye(3), scale=0.0, offset=0.0)


class TestGeometry:
    def test_neighbor_ranks_mostly_preserved(self, trained, small_ds):
        """Orthogonal rotation preserves L2; requantization only
        perturbs near-ties."""
        from repro.ann.distance import l2_sq

        base = small_ds.base[:500]
        q = small_ds.queries[:20]
        d_orig = l2_sq(q.astype(np.float64), base.astype(np.float64))
        tb = trained.transform(base)
        tq = trained.transform(q)
        d_rot = l2_sq(tq.astype(np.float64), tb.astype(np.float64))
        nn_orig = d_orig.argmin(axis=1)
        nn_rot = d_rot.argmin(axis=1)
        assert (nn_orig == nn_rot).mean() > 0.8


class TestEngineIntegration:
    def test_opq_engine_matches_its_reference(self, small_ds):
        from repro.core import DrimAnnEngine, IndexParams
        from repro.pim.config import PimSystemConfig

        params = IndexParams(
            nlist=32, nprobe=4, k=10, num_subspaces=16, codebook_size=32
        )
        eng = DrimAnnEngine.build(
            small_ds.base[:5000],
            params,
            system_config=PimSystemConfig(num_dpus=8),
            use_opq=True,
            seed=0,
        )
        assert eng.preprocessor is not None
        q = small_ds.queries[:30]
        res, _ = eng.search(q)
        ref = eng.reference_search(q)
        np.testing.assert_allclose(
            np.sort(res.distances, axis=1), np.sort(ref.distances, axis=1)
        )

    def test_opq_with_prebuilt_rejected(self, small_ds, small_quantized, small_params):
        from repro.core import DrimAnnEngine

        with pytest.raises(ValueError, match="use_opq"):
            DrimAnnEngine.build(
                small_ds.base,
                small_params,
                use_opq=True,
                prebuilt_quantized=small_quantized,
                seed=0,
            )
