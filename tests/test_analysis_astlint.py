"""AST lint rules: one positive and one negative case per rule."""

from repro.analysis.astlint import lint_source, lint_tree

KERNEL_PATH = "src/repro/pim/kernels/fake.py"
OTHER_PATH = "src/repro/core/fake.py"


def _rules(source, path):
    return [f.rule for f in lint_source(source, path)]


class TestKernelTraffic:
    def test_untracked_access_flagged(self):
        src = (
            "def run_fake(x):\n"
            "    return x[0] + x[1]\n"
        )
        assert "kernel-traffic" in _rules(src, KERNEL_PATH)

    def test_charged_access_clean(self):
        src = (
            "def run_fake(x):\n"
            "    t = MemoryTraffic(sequential_read=float(x.nbytes))\n"
            "    return x[0], t\n"
        )
        assert "kernel-traffic" not in _rules(src, KERNEL_PATH)

    def test_cost_delegation_counts_as_charging(self):
        src = (
            "def run_fake(x):\n"
            "    return x[0], fake_cost(len(x), x.nbytes)\n"
        )
        assert "kernel-traffic" not in _rules(src, KERNEL_PATH)

    def test_declared_pure_helper_exempt(self):
        src = (
            "def gather_fake(x):\n"
            '    """Functional core. No cost accounting — callers\n'
            '    charge fake_cost separately."""\n'
            "    return x[0] + x[1]\n"
        )
        assert "kernel-traffic" not in _rules(src, KERNEL_PATH)

    def test_undeclared_pure_helper_still_flagged(self):
        src = (
            'def gather_fake(x):\n'
            '    """Some helper."""\n'
            "    return x[0] + x[1]\n"
        )
        assert "kernel-traffic" in _rules(src, KERNEL_PATH)

    def test_rule_scoped_to_kernel_dir(self):
        src = "def f(x):\n    return x[0]\n"
        assert "kernel-traffic" not in _rules(src, OTHER_PATH)


class TestRngBypass:
    def test_direct_np_random_flagged(self):
        src = "import numpy as np\nr = np.random.default_rng(0)\n"
        findings = lint_source(src, OTHER_PATH)
        hits = [f for f in findings if f.rule == "rng-bypass"]
        assert len(hits) == 1
        assert hits[0].line == 2

    def test_ensure_rng_clean(self):
        src = (
            "from repro.utils.rng import ensure_rng\n"
            "r = ensure_rng(0)\n"
        )
        assert "rng-bypass" not in _rules(src, OTHER_PATH)

    def test_rng_module_itself_exempt(self):
        src = "import numpy as np\nr = np.random.default_rng(0)\n"
        assert _rules(src, "src/repro/utils/rng.py") == []


class TestFloatInIntegerPath:
    def test_astype_float_flagged(self):
        src = "def run_fake(x):\n    return x.astype('float32')\n"
        assert "float-in-integer-path" in _rules(src, KERNEL_PATH)

    def test_dtype_kwarg_flagged(self):
        src = (
            "import numpy as np\n"
            "def run_fake(n):\n"
            "    return np.zeros(n, dtype=np.float64)\n"
        )
        assert "float-in-integer-path" in _rules(src, KERNEL_PATH)

    def test_int_dtypes_clean(self):
        src = "def run_fake(x):\n    return x.astype('int32')\n"
        assert "float-in-integer-path" not in _rules(src, KERNEL_PATH)

    def test_floats_fine_outside_dpu_paths(self):
        src = "def f(x):\n    return x.astype('float32')\n"
        assert "float-in-integer-path" not in _rules(src, OTHER_PATH)


class TestMutableDefault:
    def test_list_default_flagged(self):
        src = (
            "from dataclasses import dataclass\n"
            "@dataclass\n"
            "class C:\n"
            "    xs: list = []\n"
        )
        assert "mutable-default" in _rules(src, OTHER_PATH)

    def test_field_default_mutable_flagged(self):
        src = (
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class C:\n"
            "    xs: dict = field(default={})\n"
        )
        assert "mutable-default" in _rules(src, OTHER_PATH)

    def test_default_factory_clean(self):
        src = (
            "from dataclasses import dataclass, field\n"
            "@dataclass\n"
            "class C:\n"
            "    xs: list = field(default_factory=list)\n"
        )
        assert "mutable-default" not in _rules(src, OTHER_PATH)

    def test_plain_class_exempt(self):
        src = "class C:\n    xs = []\n"
        assert "mutable-default" not in _rules(src, OTHER_PATH)


class TestUnchargedKernelCall:
    def test_uncharged_run_flagged(self):
        src = (
            "def execute(dpu, q, c):\n"
            "    out, cost = run_residual(q, c)\n"
            "    return out\n"
        )
        findings = lint_source(src, OTHER_PATH)
        hits = [f for f in findings if f.rule == "uncharged-kernel-call"]
        assert len(hits) == 1
        assert "run_residual" in hits[0].message

    def test_charged_run_clean(self):
        src = (
            "def execute(self, dpu, q, c):\n"
            "    out, cost = run_residual(q, c)\n"
            "    self._charge(dpu, cost)\n"
            "    return out\n"
        )
        assert "uncharged-kernel-call" not in _rules(src, OTHER_PATH)

    def test_method_call_spelling_counts(self):
        src = (
            "def execute(self, dpu, q, c):\n"
            "    out, cost = kernels.run_lut_build(q, c)\n"
            "    system.charge(dpu, cost)\n"
            "    return out\n"
        )
        assert "uncharged-kernel-call" not in _rules(src, OTHER_PATH)

    def test_kernel_package_exempt(self):
        src = (
            "def run_fake(q, c):\n"
            "    return run_residual(q, c)\n"
        )
        assert "uncharged-kernel-call" not in _rules(src, KERNEL_PATH)

    def test_analysis_package_exempt(self):
        src = (
            "def measure(shape):\n"
            "    _, cost = run_distance_scan(shape, shape)\n"
            "    return cost\n"
        )
        path = "src/repro/analysis/fake.py"
        assert "uncharged-kernel-call" not in _rules(src, path)


class TestRegistryBypass:
    def test_direct_scan_call_flagged(self):
        src = (
            "def sneaky(luts, codes):\n"
            "    return scan_distances(luts, codes)\n"
        )
        assert "kernel-registry-bypass" in _rules(src, OTHER_PATH)

    def test_stacked_variant_flagged(self):
        src = (
            "def sneaky(jobs):\n"
            "    return kernels.scan_distances_stacked(jobs.luts, jobs.codes)\n"
        )
        assert "kernel-registry-bypass" in _rules(src, OTHER_PATH)

    def test_registry_scan_clean(self):
        src = (
            "def fine(luts, codes):\n"
            "    backend = resolve_backend('auto')\n"
            "    return backend.scan(luts, codes)\n"
        )
        assert "kernel-registry-bypass" not in _rules(src, OTHER_PATH)

    def test_kernel_package_exempt(self):
        src = (
            "def run_fused(luts, codes):\n"
            "    return scan_distances(luts, codes)\n"
        )
        assert "kernel-registry-bypass" not in _rules(src, KERNEL_PATH)

    def test_backend_package_exempt(self):
        src = (
            "def scan(self, luts, codes):\n"
            "    return scan_distances(luts, codes)\n"
        )
        path = "src/repro/pim/backend/fake.py"
        assert "kernel-registry-bypass" not in _rules(src, path)

    def test_seeded_fixture_trips_exactly_once(self):
        import os

        from repro.analysis.astlint import lint_file

        fixture = os.path.join(
            os.path.dirname(__file__), "fixtures", "broken_backend_bypass.py"
        )
        hits = [
            f for f in lint_file(fixture)
            if f.rule == "kernel-registry-bypass"
        ]
        assert len(hits) == 1


class TestEntryPoints:
    def test_syntax_error_is_a_finding(self):
        findings = lint_source("def broken(:\n", OTHER_PATH)
        assert [f.rule for f in findings] == ["syntax-error"]

    def test_shipped_package_is_clean(self):
        import repro
        import os

        root = os.path.dirname(os.path.abspath(repro.__file__))
        errors = [f for f in lint_tree(root) if f.severity >= 30]
        assert errors == []
