"""The parallel data plane: bit-exact scans, graceful degradation.

Every executor (legacy per-call pool, persistent zero-copy pool, the
stacked vectorized path) must be a pure wall-clock knob: enabling one
cannot change a single output bit, no failure (creation, worker death,
missing residency) may surface past ``scan_groups``, and every
degradation must leave a fallback event for the metrics layer. The
shared-memory arena additionally guarantees its segment is unlinked on
close — checkable via :func:`assert_no_leaked_segments`.
"""

import numpy as np
import pytest

from repro.pim.kernels import scan_distances, scan_distances_stacked, topk_rows
from repro.pim.parallel import (
    POOL_MIN_POINTS,
    ROW_CHUNK,
    VECTOR_MIN_JOBS,
    ExecutionPlanner,
    PersistentShardPool,
    SharedShardArena,
    ShardExecutor,
    assert_no_leaked_segments,
    leaked_segment_names,
    make_executor,
    scan_jobs_stacked,
    scan_shard_group,
)
from repro.testing import CANONICAL_CONFIGS, build_canonical_engine, canonical_dataset


def _jobs(rng, n_jobs=3, g=7, m=8, cb=16, n=50, k=5):
    jobs = []
    for _ in range(n_jobs):
        luts = rng.integers(0, 255, size=(g, m, cb), dtype=np.uint32)
        codes = rng.integers(0, cb, size=(n, m), dtype=np.uint8)
        ids = rng.permutation(10_000)[:n].astype(np.int64)
        jobs.append((luts, codes, ids, k))
    return jobs


def _assert_rows_equal(got, want):
    assert len(got) == len(want)
    for (gi, gd), (wi, wd) in zip(got, want):
        np.testing.assert_array_equal(gi, wi)
        np.testing.assert_array_equal(gd, wd)


class TestScanShardGroup:
    def test_matches_unchunked_kernels(self, rng):
        (luts, codes, ids, k), = _jobs(rng, n_jobs=1)
        rows = scan_shard_group(luts, codes, ids, k)
        want = topk_rows(scan_distances(luts, codes), ids, k)
        _assert_rows_equal(rows, want)

    def test_row_chunking_is_invisible(self, rng):
        (luts, codes, ids, k), = _jobs(rng, n_jobs=1, g=11)
        base = scan_shard_group(luts, codes, ids, k, row_chunk=ROW_CHUNK)
        for chunk in (1, 2, 3, 5, 11, 64):
            _assert_rows_equal(
                scan_shard_group(luts, codes, ids, k, row_chunk=chunk), base
            )


class TestShardExecutor:
    def test_parallel_matches_serial(self, rng):
        jobs = _jobs(rng, n_jobs=4)
        serial = [scan_shard_group(*j) for j in jobs]
        ex = ShardExecutor(2)
        try:
            got = ex.scan_groups(jobs)
        finally:
            ex.close()
        assert len(got) == len(serial)
        for g, s in zip(got, serial):
            _assert_rows_equal(g, s)

    def test_single_job_stays_in_process(self, rng):
        ex = ShardExecutor(2)
        try:
            got = ex.scan_groups(_jobs(rng, n_jobs=1))
        finally:
            ex.close()
        assert ex._pool is None  # never spun up for < 2 jobs
        assert len(got) == 1

    def test_pool_creation_failure_degrades_to_serial(self, rng, monkeypatch):
        ex = ShardExecutor(2)
        monkeypatch.setattr(
            "concurrent.futures.ProcessPoolExecutor",
            lambda *a, **kw: (_ for _ in ()).throw(OSError("no fork")),
        )
        jobs = _jobs(rng, n_jobs=3)
        got = ex.scan_groups(jobs)
        assert ex._broken and not ex.parallel
        serial = [scan_shard_group(*j) for j in jobs]
        for g, s in zip(got, serial):
            _assert_rows_equal(g, s)

    def test_broken_pool_mid_flight_degrades_permanently(self, rng):
        class _DeadPool:
            def map(self, fn, jobs):
                raise BrokenPipeError("worker died")

            def shutdown(self, **kw):
                pass

        ex = ShardExecutor(2)
        ex._pool = _DeadPool()
        jobs = _jobs(rng, n_jobs=3)
        got = ex.scan_groups(jobs)
        assert ex._broken and not ex.parallel
        assert ex._pool is None  # close() ran
        serial = [scan_shard_group(*j) for j in jobs]
        for g, s in zip(got, serial):
            _assert_rows_equal(g, s)
        # subsequent calls stay serial and keep working
        again = ex.scan_groups(jobs)
        for g, s in zip(again, serial):
            _assert_rows_equal(g, s)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            ShardExecutor(-1)

    @pytest.mark.parametrize("n", [0, 1])
    def test_make_executor_disabled(self, n):
        assert make_executor(n) is None

    def test_make_executor_enabled(self):
        ex = make_executor(2, shard_pool="percall")
        assert isinstance(ex, ShardExecutor) and ex.num_workers == 2


class TestScanJobsStacked:
    def test_uniform_shapes_match_serial(self, rng):
        jobs = _jobs(rng, n_jobs=5)
        got = scan_jobs_stacked(jobs)
        for g, j in zip(got, jobs):
            _assert_rows_equal(g, scan_shard_group(*j))

    def test_mixed_shapes_match_serial(self, rng):
        """Different-shape buckets and singletons all come back in order."""
        jobs = (
            _jobs(rng, n_jobs=2, g=7, n=50)
            + _jobs(rng, n_jobs=3, g=4, n=31)
            + _jobs(rng, n_jobs=1, g=9, n=17)
        )
        order = rng.permutation(len(jobs))
        shuffled = [jobs[i] for i in order]
        got = scan_jobs_stacked(shuffled)
        for g, j in zip(got, shuffled):
            _assert_rows_equal(g, scan_shard_group(*j))

    def test_chunking_budget_is_invisible(self, rng, monkeypatch):
        jobs = _jobs(rng, n_jobs=6)
        base = scan_jobs_stacked(jobs)
        # Tiny budget: every job overflows and falls back per-group.
        monkeypatch.setattr("repro.pim.parallel._STACK_CHUNK_BYTES", 1)
        tiny = scan_jobs_stacked(jobs)
        for g, s in zip(tiny, base):
            _assert_rows_equal(g, s)

    def test_stacked_kernel_matches_per_job_kernel(self, rng):
        jobs = _jobs(rng, n_jobs=3)
        luts = np.stack([j[0] for j in jobs])
        codes = np.stack([j[1] for j in jobs])
        dists = scan_distances_stacked(luts, codes)
        for ji, (l, c, _i, _k) in enumerate(jobs):
            np.testing.assert_array_equal(dists[ji], scan_distances(l, c))


class TestSharedShardArena:
    def _arrays(self, rng):
        return {
            "codes:a": rng.integers(0, 16, size=(40, 8), dtype=np.uint8),
            "ids:a": rng.permutation(1000)[:40].astype(np.int64),
            "codes:b": rng.integers(0, 16, size=(7, 8), dtype=np.uint8),
            "ids:b": rng.permutation(1000)[:7].astype(np.int64),
        }

    def test_roundtrip_views_equal_inputs(self, rng):
        arrays = self._arrays(rng)
        with SharedShardArena.create(arrays) as arena:
            for key, arr in arrays.items():
                view = arena.view(key)
                np.testing.assert_array_equal(view, arr)
                assert not view.flags.writeable
        assert_no_leaked_segments()

    def test_attach_sees_owner_data(self, rng):
        arrays = self._arrays(rng)
        owner = SharedShardArena.create(arrays)
        try:
            # In-process attach with untrack=False models a forked
            # worker (shared resource tracker must not be poked).
            peer = SharedShardArena.attach(
                owner.name, owner.manifest, untrack=False
            )
            try:
                for key, arr in arrays.items():
                    np.testing.assert_array_equal(peer.view(key), arr)
            finally:
                peer.close()
        finally:
            owner.close()
        assert_no_leaked_segments()

    def test_close_unlinks_and_untracks(self, rng):
        arena = SharedShardArena.create(self._arrays(rng))
        assert arena.name in leaked_segment_names()
        arena.close()
        assert arena.name not in leaked_segment_names()
        arena.close()  # idempotent

    def test_close_with_live_views_still_unlinks(self, rng):
        """A leaked view cannot block the unlink guarantee.

        Dereferencing the view afterwards is undefined (the mapping is
        gone) — callers must drop views before close, as the worker
        loop does — but the segment name must not leak either way.
        """
        arena = SharedShardArena.create(self._arrays(rng))
        view = arena.view("codes:a")
        arena.close()
        assert_no_leaked_segments()
        del view


class TestPersistentShardPool:
    def _hosted_pool(self, rng, jobs, workers=2):
        pool = PersistentShardPool(workers)
        keys = [f"s{i}" for i in range(len(jobs))]
        pool.host_shards(
            {k: (j[1], j[2]) for k, j in zip(keys, jobs)}
        )
        return pool, keys

    def test_parity_with_serial(self, rng):
        jobs = _jobs(rng, n_jobs=5)
        serial = [scan_shard_group(*j) for j in jobs]
        pool, keys = self._hosted_pool(rng, jobs)
        with pool:
            assert pool.wait_warm()
            got = pool.scan_groups(jobs, keys=keys)
        assert not pool.take_fallback_events()
        for g, s in zip(got, serial):
            _assert_rows_equal(g, s)
        assert_no_leaked_segments()

    def test_steady_state_reuses_workers(self, rng):
        jobs = _jobs(rng, n_jobs=4)
        serial = [scan_shard_group(*j) for j in jobs]
        pool, keys = self._hosted_pool(rng, jobs)
        with pool:
            first_procs = None
            for _ in range(3):
                got = pool.scan_groups(jobs, keys=keys)
                for g, s in zip(got, serial):
                    _assert_rows_equal(g, s)
                pids = [p.pid for p in pool._procs]
                if first_procs is None:
                    first_procs = pids
                assert pids == first_procs  # no respawn between rounds

    def test_missing_residency_falls_back_and_records(self, rng):
        jobs = _jobs(rng, n_jobs=4)
        serial = [scan_shard_group(*j) for j in jobs]
        pool, keys = self._hosted_pool(rng, jobs)
        with pool:
            got = pool.scan_groups(jobs, keys=None)  # no keys at all
            assert pool.take_fallback_events() == ["no-residency"]
            for g, s in zip(got, serial):
                _assert_rows_equal(g, s)
            got = pool.scan_groups(jobs, keys=["nope"] * len(jobs))
            assert pool.take_fallback_events() == ["no-residency"]
            for g, s in zip(got, serial):
                _assert_rows_equal(g, s)

    def test_single_job_stays_in_process(self, rng):
        jobs = _jobs(rng, n_jobs=1)
        pool, keys = self._hosted_pool(rng, jobs)
        with pool:
            got = pool.scan_groups(jobs, keys=keys)
            assert not pool.started  # never spun up for < 2 jobs
        assert len(got) == 1

    def test_worker_death_degrades_serially_and_records(self, rng):
        jobs = _jobs(rng, n_jobs=4)
        serial = [scan_shard_group(*j) for j in jobs]
        pool, keys = self._hosted_pool(rng, jobs)
        with pool:
            assert pool.wait_warm()
            for proc in pool._procs:
                proc.terminate()
                proc.join(timeout=2.0)
            got = pool.scan_groups(jobs, keys=keys)
            events = pool.take_fallback_events()
            assert "scan-failure" in events or "worker-death" in events
            assert pool._broken and not pool.parallel
            for g, s in zip(got, serial):
                _assert_rows_equal(g, s)
            # subsequent rounds keep working serially
            again = pool.scan_groups(jobs, keys=keys)
            for g, s in zip(again, serial):
                _assert_rows_equal(g, s)
        assert_no_leaked_segments()

    def test_rehost_restarts_workers(self, rng):
        jobs = _jobs(rng, n_jobs=4)
        pool, keys = self._hosted_pool(rng, jobs)
        with pool:
            assert pool.wait_warm()
            old_pids = [p.pid for p in pool._procs]
            jobs2 = _jobs(rng, n_jobs=3)
            keys2 = [f"t{i}" for i in range(len(jobs2))]
            pool.host_shards(
                {k: (j[1], j[2]) for k, j in zip(keys2, jobs2)}
            )
            assert not pool.started  # stopped; restarted on demand
            got = pool.scan_groups(jobs2, keys=keys2)
            new_pids = [p.pid for p in pool._procs]
            assert new_pids and new_pids != old_pids
            serial = [scan_shard_group(*j) for j in jobs2]
            for g, s in zip(got, serial):
                _assert_rows_equal(g, s)
        assert_no_leaked_segments()

    def test_close_is_idempotent_and_unlinks(self, rng):
        jobs = _jobs(rng, n_jobs=2)
        pool, _keys = self._hosted_pool(rng, jobs)
        pool.close()
        pool.close()
        assert_no_leaked_segments()


class TestExecutionPlanner:
    def _warm_exec(self):
        class _Warm:
            parallel = True

            def ready(self):
                return True

            def ensure_started(self):
                pass

        return _Warm()

    def _cold_exec(self):
        class _Cold:
            parallel = True
            started = 0

            def ready(self):
                return False

            def ensure_started(self):
                self.started += 1

        return _Cold()

    def test_serial_mode_always_serial(self):
        p = ExecutionPlanner()
        path = p.choose(
            "serial", num_jobs=100, scan_points=1 << 30,
            executor=self._warm_exec(),
        )
        assert path == "serial"

    def test_vectorized_needs_min_jobs_and_no_faults(self):
        p = ExecutionPlanner()
        assert p.choose("vectorized", num_jobs=4, scan_points=0) == "vectorized"
        assert (
            p.choose("vectorized", num_jobs=VECTOR_MIN_JOBS - 1, scan_points=0)
            == "serial"
        )
        assert (
            p.choose("vectorized", num_jobs=4, scan_points=0, fault_active=True)
            == "serial"
        )

    def test_pool_mode_degrades_without_executor(self):
        p = ExecutionPlanner()
        assert p.choose("pool", num_jobs=4, scan_points=0) == "vectorized"
        assert p.choose("pool", num_jobs=1, scan_points=0) == "serial"
        assert (
            p.choose("pool", num_jobs=4, scan_points=0,
                     executor=self._warm_exec())
            == "pool"
        )

    def test_auto_small_round_stays_vectorized(self):
        p = ExecutionPlanner()
        path = p.choose(
            "auto", num_jobs=4, scan_points=POOL_MIN_POINTS - 1,
            executor=self._warm_exec(),
        )
        assert path == "vectorized"

    def test_auto_large_round_takes_warm_pool(self):
        p = ExecutionPlanner()
        path = p.choose(
            "auto", num_jobs=4, scan_points=POOL_MIN_POINTS,
            executor=self._warm_exec(),
        )
        assert path == "pool"

    def test_auto_cold_pool_warms_in_background(self):
        ex = self._cold_exec()
        p = ExecutionPlanner()
        path = p.choose(
            "auto", num_jobs=4, scan_points=1 << 30, executor=ex
        )
        assert path == "vectorized"  # round never blocks on spawn
        assert ex.started == 1

    def test_fault_rounds_stay_serial_under_auto(self):
        p = ExecutionPlanner()
        path = p.choose(
            "auto", num_jobs=4, scan_points=0, fault_active=True
        )
        assert path == "serial"

    def test_decisions_are_counted(self):
        p = ExecutionPlanner()
        p.choose("serial", num_jobs=1, scan_points=0)
        p.choose("serial", num_jobs=1, scan_points=0)
        p.choose("vectorized", num_jobs=4, scan_points=0)
        assert p.decisions == {"serial": 2, "vectorized": 1}


class TestMakeExecutorKinds:
    def test_default_is_persistent(self):
        ex = make_executor(2)
        assert isinstance(ex, PersistentShardPool) and ex.kind == "persistent"

    def test_percall_selects_legacy_pool(self):
        ex = make_executor(2, shard_pool="percall")
        assert isinstance(ex, ShardExecutor) and ex.kind == "percall"

    def test_unknown_pool_rejected(self):
        with pytest.raises(ValueError, match="shard_pool"):
            make_executor(2, shard_pool="magic")


class TestEndToEndParity:
    def test_shard_workers_do_not_change_results(self):
        """Engine output with a 2-worker pool is bit-identical to serial."""
        name = "split-replicated"
        queries = canonical_dataset().queries[
            : CANONICAL_CONFIGS[name]["num_queries"]
        ]
        serial_engine = build_canonical_engine(name, shard_workers=0)
        res_s, _ = serial_engine.search(queries)
        par_engine = build_canonical_engine(name, shard_workers=2)
        try:
            res_p, _ = par_engine.search(queries)
        finally:
            par_engine.system.close()
        np.testing.assert_array_equal(res_s.ids, res_p.ids)
        np.testing.assert_array_equal(res_s.distances, res_p.distances)

    @pytest.mark.parametrize("shard_pool", ["persistent", "percall"])
    def test_pool_kinds_do_not_change_results(self, shard_pool):
        name = "split-replicated"
        queries = canonical_dataset().queries[
            : CANONICAL_CONFIGS[name]["num_queries"]
        ]
        serial_engine = build_canonical_engine(name, shard_workers=0)
        res_s, _ = serial_engine.search(queries)
        engine = build_canonical_engine(
            name, plan="pool", shard_workers=2, shard_pool=shard_pool
        )
        try:
            res_p, _ = engine.search(queries)
        finally:
            engine.close()
        np.testing.assert_array_equal(res_s.ids, res_p.ids)
        np.testing.assert_array_equal(res_s.distances, res_p.distances)
        assert_no_leaked_segments()

    def test_engine_close_unlinks_segments(self):
        engine = build_canonical_engine(
            "split-replicated", plan="pool", shard_workers=2
        )
        queries = canonical_dataset().queries[:8]
        engine.search(queries)
        engine.close()
        assert_no_leaked_segments()


class TestCrashPathHardening:
    """Teardown guarantees under worker SIGKILL and concurrent close."""

    def _hosted_pool(self, rng, jobs, workers=2):
        pool = PersistentShardPool(workers)
        keys = [f"s{i}" for i in range(len(jobs))]
        pool.host_shards({k: (j[1], j[2]) for k, j in zip(keys, jobs)})
        return pool, keys

    def test_sigkilled_workers_still_unlink_on_close(self, rng):
        """SIGKILL (no cleanup handlers run) must not break the unlink."""
        import os
        import signal

        jobs = _jobs(rng, n_jobs=4)
        serial = [scan_shard_group(*j) for j in jobs]
        pool, keys = self._hosted_pool(rng, jobs)
        with pool:
            assert pool.wait_warm()
            assert leaked_segment_names()  # arena is live and tracked
            for proc in pool._procs:
                os.kill(proc.pid, signal.SIGKILL)
                proc.join(timeout=2.0)
            got = pool.scan_groups(jobs, keys=keys)  # degrades, no raise
            assert pool._broken and not pool.parallel
            for g, s in zip(got, serial):
                _assert_rows_equal(g, s)
        assert_no_leaked_segments()

    def test_double_close_after_worker_crash(self, rng):
        import os
        import signal

        jobs = _jobs(rng, n_jobs=3)
        pool, keys = self._hosted_pool(rng, jobs)
        pool.ensure_started()
        assert pool.wait_warm()
        for proc in pool._procs:
            os.kill(proc.pid, signal.SIGKILL)
            proc.join(timeout=2.0)
        pool.close()
        pool.close()  # idempotent after a crash too
        assert_no_leaked_segments()

    def test_close_concurrent_with_inflight_search(self, rng):
        """close() from another thread waits a round out; results stay
        bit-exact (any post-close round falls back to the serial path)."""
        import threading

        jobs = _jobs(rng, n_jobs=6, n=200)
        serial = [scan_shard_group(*j) for j in jobs]
        pool, keys = self._hosted_pool(rng, jobs)
        pool.ensure_started()
        assert pool.wait_warm()

        results = []
        errors = []

        def hammer():
            try:
                for _ in range(10):
                    results.append(pool.scan_groups(jobs, keys=keys))
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        t = threading.Thread(target=hammer)
        t.start()
        pool.close()
        t.join(timeout=30.0)
        assert not t.is_alive() and not errors
        assert len(results) == 10
        for got in results:
            for g, s in zip(got, serial):
                _assert_rows_equal(g, s)
        assert_no_leaked_segments()

    def test_engine_close_after_worker_sigkill(self):
        """Engine-level teardown unlinks even after workers were killed."""
        import os
        import signal

        engine = build_canonical_engine(
            "split-replicated", plan="pool", shard_workers=2
        )
        queries = canonical_dataset().queries[:8]
        try:
            res_first, _ = engine.search(queries)
            executor = engine.system.executor
            if executor is not None and executor.started:
                for proc in executor._procs:
                    os.kill(proc.pid, signal.SIGKILL)
                    proc.join(timeout=2.0)
            res_again, _ = engine.search(queries)  # degrades serially
            np.testing.assert_array_equal(res_first.ids, res_again.ids)
        finally:
            engine.close()
            engine.close()  # engine close is idempotent
        assert_no_leaked_segments()
