"""ShardExecutor: bit-exact parallel scans, graceful degradation.

The process-pool executor must be a pure throughput knob: enabling it
cannot change a single output bit, and no pool failure (creation,
mid-flight crash) may surface past :meth:`ShardExecutor.scan_groups`.
"""

import numpy as np
import pytest

from repro.pim.kernels import scan_distances, topk_rows
from repro.pim.parallel import (
    ROW_CHUNK,
    ShardExecutor,
    make_executor,
    scan_shard_group,
)
from repro.testing import CANONICAL_CONFIGS, build_canonical_engine, canonical_dataset


def _jobs(rng, n_jobs=3, g=7, m=8, cb=16, n=50, k=5):
    jobs = []
    for _ in range(n_jobs):
        luts = rng.integers(0, 255, size=(g, m, cb), dtype=np.uint32)
        codes = rng.integers(0, cb, size=(n, m), dtype=np.uint8)
        ids = rng.permutation(10_000)[:n].astype(np.int64)
        jobs.append((luts, codes, ids, k))
    return jobs


def _assert_rows_equal(got, want):
    assert len(got) == len(want)
    for (gi, gd), (wi, wd) in zip(got, want):
        np.testing.assert_array_equal(gi, wi)
        np.testing.assert_array_equal(gd, wd)


class TestScanShardGroup:
    def test_matches_unchunked_kernels(self, rng):
        (luts, codes, ids, k), = _jobs(rng, n_jobs=1)
        rows = scan_shard_group(luts, codes, ids, k)
        want = topk_rows(scan_distances(luts, codes), ids, k)
        _assert_rows_equal(rows, want)

    def test_row_chunking_is_invisible(self, rng):
        (luts, codes, ids, k), = _jobs(rng, n_jobs=1, g=11)
        base = scan_shard_group(luts, codes, ids, k, row_chunk=ROW_CHUNK)
        for chunk in (1, 2, 3, 5, 11, 64):
            _assert_rows_equal(
                scan_shard_group(luts, codes, ids, k, row_chunk=chunk), base
            )


class TestShardExecutor:
    def test_parallel_matches_serial(self, rng):
        jobs = _jobs(rng, n_jobs=4)
        serial = [scan_shard_group(*j) for j in jobs]
        ex = ShardExecutor(2)
        try:
            got = ex.scan_groups(jobs)
        finally:
            ex.close()
        assert len(got) == len(serial)
        for g, s in zip(got, serial):
            _assert_rows_equal(g, s)

    def test_single_job_stays_in_process(self, rng):
        ex = ShardExecutor(2)
        try:
            got = ex.scan_groups(_jobs(rng, n_jobs=1))
        finally:
            ex.close()
        assert ex._pool is None  # never spun up for < 2 jobs
        assert len(got) == 1

    def test_pool_creation_failure_degrades_to_serial(self, rng, monkeypatch):
        ex = ShardExecutor(2)
        monkeypatch.setattr(
            "concurrent.futures.ProcessPoolExecutor",
            lambda *a, **kw: (_ for _ in ()).throw(OSError("no fork")),
        )
        jobs = _jobs(rng, n_jobs=3)
        got = ex.scan_groups(jobs)
        assert ex._broken and not ex.parallel
        serial = [scan_shard_group(*j) for j in jobs]
        for g, s in zip(got, serial):
            _assert_rows_equal(g, s)

    def test_broken_pool_mid_flight_degrades_permanently(self, rng):
        class _DeadPool:
            def map(self, fn, jobs):
                raise BrokenPipeError("worker died")

            def shutdown(self, **kw):
                pass

        ex = ShardExecutor(2)
        ex._pool = _DeadPool()
        jobs = _jobs(rng, n_jobs=3)
        got = ex.scan_groups(jobs)
        assert ex._broken and not ex.parallel
        assert ex._pool is None  # close() ran
        serial = [scan_shard_group(*j) for j in jobs]
        for g, s in zip(got, serial):
            _assert_rows_equal(g, s)
        # subsequent calls stay serial and keep working
        again = ex.scan_groups(jobs)
        for g, s in zip(again, serial):
            _assert_rows_equal(g, s)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="num_workers"):
            ShardExecutor(-1)

    @pytest.mark.parametrize("n", [0, 1])
    def test_make_executor_disabled(self, n):
        assert make_executor(n) is None

    def test_make_executor_enabled(self):
        ex = make_executor(2)
        assert isinstance(ex, ShardExecutor) and ex.num_workers == 2


class TestEndToEndParity:
    def test_shard_workers_do_not_change_results(self):
        """Engine output with a 2-worker pool is bit-identical to serial."""
        name = "split-replicated"
        queries = canonical_dataset().queries[
            : CANONICAL_CONFIGS[name]["num_queries"]
        ]
        serial_engine = build_canonical_engine(name, shard_workers=0)
        res_s, _ = serial_engine.search(queries)
        par_engine = build_canonical_engine(name, shard_workers=2)
        try:
            res_p, _ = par_engine.search(queries)
        finally:
            par_engine.system.close()
        np.testing.assert_array_equal(res_s.ids, res_p.ids)
        np.testing.assert_array_equal(res_s.distances, res_p.distances)
