"""Property-based tests on the serving simulator's queueing invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.serving import BatchingPolicy, PoissonArrivals, simulate_serving


@pytest.fixture(scope="module")
def engine_and_queries(small_engine, small_ds):
    return small_engine, small_ds.queries


arrival_strategy = st.fixed_dictionaries(
    {
        "rate": st.floats(100.0, 1e6),
        "n": st.integers(1, 60),
        "batch_size": st.integers(1, 64),
        "max_wait_ms": st.floats(0.0, 10.0),
        "seed": st.integers(0, 1000),
    }
)


class TestServingInvariants:
    @given(cfg=arrival_strategy)
    @settings(max_examples=20, deadline=None)
    def test_queueing_invariants(self, engine_and_queries, cfg):
        engine, queries = engine_and_queries
        n = cfg["n"]
        arrivals = PoissonArrivals(cfg["rate"]).sample(n, seed=cfg["seed"])
        report = simulate_serving(
            engine,
            queries[:n],
            arrivals,
            BatchingPolicy(
                batch_size=cfg["batch_size"],
                max_wait_s=cfg["max_wait_ms"] * 1e-3,
            ),
        )
        # Conservation: every query served exactly once.
        assert report.num_queries == n
        assert sum(report.batch_sizes) == n
        # Causality: completion after arrival.
        assert (report.latencies_s > 0).all()
        # Batch-size cap respected.
        assert max(report.batch_sizes) <= cfg["batch_size"]
        # Utilization is a fraction.
        assert 0.0 <= report.utilization <= 1.0

    @given(
        rate=st.floats(1000.0, 1e5),
        n=st.integers(2, 40),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=15, deadline=None)
    def test_fifo_completion_order(self, engine_and_queries, rate, n, seed):
        """Batches execute in order: completion times are non-decreasing
        in arrival order (single-tenant host-synchronous PIM)."""
        engine, queries = engine_and_queries
        arrivals = PoissonArrivals(rate).sample(n, seed=seed)
        report = simulate_serving(
            engine,
            queries[:n],
            arrivals,
            BatchingPolicy(batch_size=8, max_wait_s=1e-3),
        )
        completions = arrivals + report.latencies_s
        assert (np.diff(completions) >= -1e-12).all()
