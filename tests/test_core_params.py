import pytest

from repro.core.params import DatasetShape, IndexParams, SearchParams


class TestDatasetShape:
    def test_defaults(self):
        s = DatasetShape(num_points=1000, dim=128, num_queries=10)
        assert s.bits_query == 8 and s.bits_lut == 32

    @pytest.mark.parametrize(
        "kw",
        [
            dict(num_points=0, dim=8, num_queries=1),
            dict(num_points=10, dim=0, num_queries=1),
            dict(num_points=10, dim=8, num_queries=0),
            dict(num_points=10, dim=8, num_queries=1, bits_lut=0),
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            DatasetShape(**kw)


class TestIndexParams:
    def test_valid(self):
        p = IndexParams(nlist=64, nprobe=8, k=10, num_subspaces=16)
        assert p.codebook_size == 256

    @pytest.mark.parametrize(
        "kw",
        [
            dict(nlist=0, nprobe=1, k=1, num_subspaces=1),
            dict(nlist=4, nprobe=5, k=1, num_subspaces=1),
            dict(nlist=4, nprobe=0, k=1, num_subspaces=1),
            dict(nlist=4, nprobe=1, k=0, num_subspaces=1),
            dict(nlist=4, nprobe=1, k=1, num_subspaces=0),
            dict(nlist=4, nprobe=1, k=1, num_subspaces=1, codebook_size=1),
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            IndexParams(**kw)

    def test_avg_cluster_size(self):
        p = IndexParams(nlist=100, nprobe=1, k=1, num_subspaces=1)
        assert p.avg_cluster_size(10_000) == 100.0

    def test_validate_for_dim(self):
        p = IndexParams(nlist=4, nprobe=1, k=1, num_subspaces=3)
        with pytest.raises(ValueError, match="divisible"):
            p.validate_for(16)
        p.validate_for(12)

    def test_replace(self):
        p = IndexParams(nlist=64, nprobe=8, k=10, num_subspaces=16)
        q = p.replace(nprobe=16)
        assert q.nprobe == 16 and q.nlist == 64 and p.nprobe == 8


class TestSearchParams:
    def test_defaults(self):
        s = SearchParams()
        assert s.multiplier_less and s.cluster_locate_on == "host"

    def test_invalid_batch(self):
        with pytest.raises(ValueError):
            SearchParams(batch_size=0)

    def test_invalid_placement(self):
        with pytest.raises(ValueError):
            SearchParams(cluster_locate_on="gpu")

    def test_adc_lut_bytes(self):
        s = SearchParams()
        p = IndexParams(nlist=4, nprobe=1, k=1, num_subspaces=16, codebook_size=256)
        assert s.adc_lut_bytes(p) == 16 * 256 * 4
