import numpy as np
import pytest

from repro.ann import OPQ, ProductQuantizer


@pytest.fixture(scope="module")
def skewed_data():
    """Data whose variance is concentrated in a few dims — the case
    where plain PQ wastes sub-quantizers and OPQ's rotation helps."""
    rng = np.random.default_rng(0)
    z = rng.normal(size=(4000, 16))
    scales = np.array([30, 25, 20, 15, 1, 1, 1, 1, 30, 25, 1, 1, 1, 1, 1, 1.0])
    return z * scales


class TestTrain:
    def test_rotation_is_orthogonal(self, skewed_data):
        opq = OPQ.train(skewed_data, num_subspaces=4, codebook_size=16, seed=0)
        r = opq.rotation
        np.testing.assert_allclose(r @ r.T, np.eye(16), atol=1e-8)

    def test_opq_beats_plain_pq(self, skewed_data):
        pq = ProductQuantizer.train(skewed_data, 4, codebook_size=16, seed=0)
        opq = OPQ.train(skewed_data, 4, codebook_size=16, num_rounds=6, seed=0)
        assert opq.quantization_error(skewed_data) < pq.quantization_error(
            skewed_data
        )

    def test_dim_property(self, skewed_data):
        opq = OPQ.train(skewed_data, 4, codebook_size=8, num_rounds=2, seed=0)
        assert opq.dim == 16


class TestEncodeDecode:
    def test_roundtrip_shapes(self, skewed_data):
        opq = OPQ.train(skewed_data, 4, codebook_size=8, num_rounds=2, seed=0)
        codes = opq.encode(skewed_data[:10])
        assert codes.shape == (10, 4)
        rec = opq.decode(codes)
        assert rec.shape == (10, 16)

    def test_decode_in_original_space(self, skewed_data):
        """decode must invert the rotation: error measured in the
        original space is the same as in rotated space."""
        opq = OPQ.train(skewed_data, 4, codebook_size=16, num_rounds=3, seed=0)
        x = skewed_data[:50]
        rec = opq.decode(opq.encode(x))
        err_orig = np.mean(((x - rec) ** 2).sum(axis=1))
        xr = opq.rotate(x)
        rec_r = opq.decode_rotated(opq.encode(x)).astype(np.float64)
        err_rot = np.mean(((xr - rec_r) ** 2).sum(axis=1))
        np.testing.assert_allclose(err_orig, err_rot, rtol=1e-8)


class TestValidation:
    def test_rotation_must_be_square(self):
        pq = ProductQuantizer(codebooks=np.zeros((2, 4, 3), dtype=np.float32))
        with pytest.raises(ValueError, match="square"):
            OPQ(rotation=np.zeros((6, 5)), pq=pq)

    def test_rotation_dim_must_match(self):
        pq = ProductQuantizer(codebooks=np.zeros((2, 4, 3), dtype=np.float32))
        with pytest.raises(ValueError, match="dim"):
            OPQ(rotation=np.eye(5), pq=pq)
