import numpy as np
import pytest

from repro.ann.heap import BoundedMaxHeap, topk_smallest


class TestTopkSmallest:
    def test_matches_argsort(self, rng):
        v = rng.normal(size=(6, 40))
        idx, vals = topk_smallest(v, 7, axis=1)
        want = np.sort(v, axis=1)[:, :7]
        np.testing.assert_allclose(vals, want)

    def test_indices_point_to_values(self, rng):
        v = rng.normal(size=(3, 20))
        idx, vals = topk_smallest(v, 5, axis=1)
        np.testing.assert_allclose(np.take_along_axis(v, idx, axis=1), vals)

    def test_k_larger_than_size_clamped(self, rng):
        v = rng.normal(size=(2, 4))
        idx, vals = topk_smallest(v, 10, axis=1)
        assert idx.shape == (2, 4)

    def test_sorted_ascending(self, rng):
        _, vals = topk_smallest(rng.normal(size=(5, 30)), 6, axis=1)
        assert (np.diff(vals, axis=1) >= 0).all()

    def test_1d(self, rng):
        v = rng.normal(size=50)
        idx, vals = topk_smallest(v, 3)
        np.testing.assert_allclose(vals, np.sort(v)[:3])

    def test_k_zero_rejected(self, rng):
        with pytest.raises(ValueError):
            topk_smallest(rng.normal(size=10), 0)


class TestBoundedMaxHeap:
    def test_keeps_k_smallest(self, rng):
        vals = rng.normal(size=100)
        h = BoundedMaxHeap(8)
        for i, v in enumerate(vals):
            h.push(float(v), i)
        ids, dists = h.result()
        np.testing.assert_allclose(dists, np.sort(vals)[:8])

    def test_ids_track_distances(self, rng):
        vals = rng.permutation(50).astype(float)
        h = BoundedMaxHeap(5)
        for i, v in enumerate(vals):
            h.push(float(v), i)
        ids, dists = h.result()
        np.testing.assert_allclose(vals[ids], dists)

    def test_worst_property(self):
        h = BoundedMaxHeap(3)
        assert h.worst == np.inf
        for v in (5.0, 1.0, 3.0):
            h.push(v, 0)
        assert h.worst == 5.0
        h.push(2.0, 0)
        assert h.worst == 3.0

    def test_push_returns_op_counts(self):
        h = BoundedMaxHeap(4)
        ops = h.push(1.0, 0)
        assert ops >= 1

    def test_rejecting_push_is_cheap(self):
        h = BoundedMaxHeap(2)
        h.push(1.0, 0)
        h.push(2.0, 1)
        assert h.push(10.0, 2) == 1  # only the root comparison

    def test_fewer_than_capacity(self):
        h = BoundedMaxHeap(10)
        h.push(3.0, 7)
        ids, dists = h.result()
        assert ids.tolist() == [7] and dists.tolist() == [3.0]

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BoundedMaxHeap(0)

    def test_len(self):
        h = BoundedMaxHeap(3)
        assert len(h) == 0
        h.push(1.0, 0)
        assert len(h) == 1
