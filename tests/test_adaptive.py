"""Conformance suite for query-adaptive probing (``repro.core.adaptive``).

The adaptive search path makes two promises this suite pins:

* **Exactness of the bound.** ``adaptive="bound"`` returns results
  bit-identical to the exhaustive scan — the triangle-inequality lower
  bound only elides work it can prove irrelevant. Checked differentially
  against the default path across every canonical config, execution
  mode, and randomized chunking/permutation (hypothesis).
* **Ledger honesty.** The cycle ledger charges exactly the clusters the
  adaptive run reports as executed: replaying ``AdaptiveReport.executed``
  through the fixed ``probes=`` path reproduces the RC/LC/DC kernel
  cycle totals *exactly* (they are integer-valued) and TS to within
  float accumulation order (``rel=1e-9`` — the adaptive path charges
  the log-term heap cost round by round instead of ``g * x``).

Plus unit coverage of the bound math, the gap-budget heuristic, the
radii persistence lifecycle, and the pin that engine and frontend both
merge through the one canonical ``merge_topk_pools`` helper.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    DrimAnnEngine,
    EngineConfig,
    IndexParams,
    LayoutConfig,
    SearchParams,
)
from repro.core import adaptive as adaptive_mod
from repro.core.adaptive import (
    ADAPTIVE_MODES,
    BOUND_SLACK,
    STOP_REASONS,
    AdaptiveReport,
    cluster_radii_sq,
    codebook_norms_sq,
    kth_pool_distance,
    lower_bounds,
    probe_budgets,
    reconstruction_norms_sq,
)
from repro.core.persist import index_info, save_index
from repro.core.scheduler import SchedulerConfig
from repro.obs.observer import ObsConfig
from repro.pim.config import PimSystemConfig
from repro.testing import CANONICAL_CONFIGS, build_canonical_engine
from repro.testing import canonical_dataset
from repro.testing.goldens import _quantized
from repro.utils import merge_topk_pools

NQ = 48
NLIST, NPROBE, M, CB = 32, 4, 8, 32

_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def _config(k: int = 10, obs: bool = False) -> EngineConfig:
    return EngineConfig(
        index=IndexParams(
            nlist=NLIST, nprobe=NPROBE, k=k, num_subspaces=M, codebook_size=CB
        ),
        search=SearchParams(batch_size=16),
        scheduler=SchedulerConfig(filter_threshold=None),
        system=PimSystemConfig(num_dpus=8),
        layout=LayoutConfig(min_split_size=200, max_copies=2),
        obs=ObsConfig(enabled=obs),
    )


def _build(k: int = 10, obs: bool = False) -> DrimAnnEngine:
    ds = canonical_dataset()
    return DrimAnnEngine.from_config(
        ds.base,
        _config(k=k, obs=obs),
        heat_queries=ds.queries[:50],
        prebuilt_quantized=_quantized(NLIST, M, CB),
        seed=0,
    )


@pytest.fixture(scope="module")
def engine():
    return _build()


@pytest.fixture(scope="module")
def queries():
    return canonical_dataset().queries[:NQ]


@pytest.fixture(scope="module")
def exhaustive(engine, queries):
    res, _ = engine.search(queries)
    return res


# ---------------------------------------------------------------------------
# Unit: bound math
# ---------------------------------------------------------------------------


class TestBoundMath:
    def test_codebook_norms_match_naive(self, engine):
        cb = engine.quantized.codebooks
        norms = codebook_norms_sq(cb)
        m, size, dsub = cb.shape
        for mi in (0, m - 1):
            for ci in (0, size // 2, size - 1):
                want = int(np.sum(cb[mi, ci].astype(np.int64) ** 2))
                assert int(norms[mi, ci]) == want

    def test_reconstruction_norms_match_decode(self, engine):
        q = engine.quantized
        norms = codebook_norms_sq(q.codebooks)
        cid = int(np.argmax(q.cluster_sizes()))
        codes = q.cluster_codes[cid][:16]
        got = reconstruction_norms_sq(norms, codes)
        dsub = q.codebooks.shape[2]
        for row, code in enumerate(codes):
            recon = np.concatenate(
                [
                    q.codebooks[mi, int(c)].astype(np.int64)
                    for mi, c in enumerate(code)
                ]
            )
            assert int(got[row]) == int(np.sum(recon**2))

    def test_cluster_radii_bound_every_row(self, engine):
        q = engine.quantized
        radii = cluster_radii_sq(q)
        norms = codebook_norms_sq(q.codebooks)
        assert radii.shape == (q.nlist,)
        assert radii.dtype == np.int64
        for cid in range(q.nlist):
            codes = q.cluster_codes[cid]
            if len(codes) == 0:
                assert radii[cid] == 0
            else:
                assert radii[cid] == reconstruction_norms_sq(norms, codes).max()

    def test_lower_bound_never_exceeds_any_adc_distance(self, engine):
        """The heart of exactness: for real query/cluster pairs the
        bound sits at or below the *minimum* exact ADC distance."""
        q = engine.quantized
        ds = canonical_dataset()
        radii = cluster_radii_sq(q)
        norms = codebook_norms_sq(q.codebooks)
        rng = np.random.default_rng(0)
        for qi in rng.choice(NQ, size=8, replace=False):
            query = ds.queries[qi].astype(np.int64)
            for cid in rng.choice(q.nlist, size=6, replace=False):
                codes = q.cluster_codes[cid]
                if len(codes) == 0:
                    continue
                resid = query - q.centroids[cid].astype(np.int64)
                rr = int(np.sum(resid**2))
                lb = lower_bounds(
                    np.array([rr]), np.array([radii[cid]])
                )[0]
                # exact ADC distances of every row in the cluster
                recon = np.stack(
                    [
                        np.concatenate(
                            [
                                q.codebooks[mi, int(c)].astype(np.int64)
                                for mi, c in enumerate(code)
                            ]
                        )
                        for code in codes
                    ]
                )
                dists = np.sum((resid[None, :] - recon) ** 2, axis=1)
                assert lb <= dists.min()

    def test_lower_bounds_values(self):
        # rr == radius: expansion gives 0, slack shifts below zero.
        assert lower_bounds(np.array([100]), np.array([100]))[0] == pytest.approx(
            -BOUND_SLACK
        )
        # far outside the radius: (sqrt(rr) - sqrt(R^2))^2 - slack.
        got = lower_bounds(np.array([400.0]), np.array([100.0]))[0]
        assert got == pytest.approx((20.0 - 10.0) ** 2 - BOUND_SLACK)
        # negative (padded) centroid distances never fire.
        assert lower_bounds(np.array([-1.0]), np.array([5.0]))[0] == -np.inf

    def test_kth_pool_distance(self):
        assert kth_pool_distance([], 3) == np.inf
        assert kth_pool_distance([np.array([1.0, 2.0])], 3) == np.inf
        pools = [np.array([5.0, 1.0]), np.array([3.0, 9.0])]
        assert kth_pool_distance(pools, 3) == 5.0
        assert kth_pool_distance(pools, 1) == 1.0


class TestProbeBudgets:
    def test_sharp_gap_cuts_early(self):
        d = np.array([[1.0, 2.0, 3.0, 100.0, 101.0]])
        assert probe_budgets(d, 1, 2.0)[0] == 3

    def test_flat_profile_keeps_full_budget(self):
        d = np.arange(5, dtype=np.float64)[None, :]
        assert probe_budgets(d, 1, 2.0)[0] == 5

    def test_constant_profile_keeps_full_budget(self):
        d = np.full((1, 4), 7.0)
        assert probe_budgets(d, 1, 2.0)[0] == 4

    def test_nprobe_min_clamps(self):
        d = np.array([[1.0, 100.0, 101.0, 102.0]])
        assert probe_budgets(d, 1, 2.0)[0] == 1
        # A gap inside the mandatory prefix cannot cut: with the only
        # qualifying gap at position 0 < nprobe_min, the budget falls
        # back to the full probe list rather than cutting below the floor.
        assert probe_budgets(d, 3, 2.0)[0] == 4
        # A qualifying gap at/after the floor still cuts there.
        d2 = np.array([[1.0, 2.0, 3.0, 300.0, 301.0]])
        assert probe_budgets(d2, 3, 2.0)[0] == 3

    def test_single_probe_column(self):
        assert probe_budgets(np.array([[4.0]]), 1, 2.0)[0] == 1

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        p=st.integers(min_value=1, max_value=16),
        lo=st.integers(min_value=1, max_value=16),
        gap=st.floats(min_value=0.5, max_value=8.0),
    )
    @_SETTINGS
    def test_budgets_always_in_range(self, seed, p, lo, gap):
        rng = np.random.default_rng(seed)
        d = np.sort(rng.integers(0, 10_000, size=(5, p)), axis=1)
        b = probe_budgets(d, lo, gap)
        assert b.shape == (5,)
        assert (b >= min(lo, p)).all() and (b <= p).all()


# ---------------------------------------------------------------------------
# Params / search-argument validation
# ---------------------------------------------------------------------------


class TestAdaptiveParams:
    def test_modes_tuple(self):
        assert ADAPTIVE_MODES == ("off", "bound", "budget", "full")

    @pytest.mark.parametrize("mode", ADAPTIVE_MODES)
    def test_valid_modes_accepted(self, mode):
        assert SearchParams(adaptive=mode).adaptive == mode

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="adaptive"):
            SearchParams(adaptive="sometimes")

    def test_bad_nprobe_min_rejected(self):
        with pytest.raises(ValueError, match="nprobe_min"):
            SearchParams(nprobe_min=0)

    def test_bad_gap_rejected(self):
        with pytest.raises(ValueError, match="adaptive_gap"):
            SearchParams(adaptive_gap=0.0)

    def test_search_rejects_bad_mode(self, engine, queries):
        with pytest.raises(ValueError, match="adaptive"):
            engine.search(queries[:2], adaptive="sometimes")

    def test_report_to_dict(self):
        rep = AdaptiveReport(
            mode="bound",
            nprobe_max=8,
            budgets=np.array([8, 8]),
            probes_executed=np.array([3, 8]),
            stop_reasons=["bound", "exhausted"],
            executed=[[1, 2, 3], [0, 1, 2, 3, 4, 5, 6, 7]],
        )
        d = rep.to_dict()
        assert d["mode"] == "bound"
        assert d["nprobe_max"] == 8
        assert d["mean_probes_executed"] == 5.5
        assert d["total_probes_executed"] == 11
        assert d["stop_reasons"] == {"bound": 1, "budget": 0, "exhausted": 1}


# ---------------------------------------------------------------------------
# Tentpole: bound ≡ exhaustive, bit for bit
# ---------------------------------------------------------------------------


class TestBoundBitIdentity:
    def test_bound_matches_exhaustive(self, engine, queries, exhaustive):
        out = engine.search(queries, adaptive="bound")
        np.testing.assert_array_equal(out.results.ids, exhaustive.ids)
        np.testing.assert_array_equal(
            out.results.distances, exhaustive.distances
        )
        rep = out.adaptive
        assert rep is not None and rep.mode == "bound"
        assert (rep.budgets == NPROBE).all()
        assert (rep.probes_executed <= NPROBE).all()
        assert (rep.probes_executed >= 1).all()
        assert len(rep.stop_reasons) == NQ
        assert set(rep.stop_reasons) <= set(STOP_REASONS)
        assert "budget" not in rep.stop_reasons
        assert [len(e) for e in rep.executed] == list(rep.probes_executed)

    def test_bound_actually_elides_work(self, engine, queries):
        out = engine.search(queries, adaptive="bound")
        assert int(out.adaptive.probes_executed.sum()) < NQ * NPROBE

    @pytest.mark.parametrize("execution", ["batched", "chunked", "per_query"])
    def test_bound_identity_across_execution_modes(
        self, engine, queries, exhaustive, execution
    ):
        out = engine.search(queries, execution=execution, adaptive="bound")
        np.testing.assert_array_equal(out.results.ids, exhaustive.ids)
        np.testing.assert_array_equal(
            out.results.distances, exhaustive.distances
        )

    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_bound_identity_on_canonical_configs(self, name):
        c = CANONICAL_CONFIGS[name]
        ds = canonical_dataset()
        q = ds.queries[: c["num_queries"]]
        eng = build_canonical_engine(name)
        try:
            base, _ = eng.search(q)
            out = eng.search(q, adaptive="bound")
        finally:
            eng.close()
        np.testing.assert_array_equal(out.results.ids, base.ids)
        np.testing.assert_array_equal(out.results.distances, base.distances)

    def test_full_mode_respects_budgets(self, engine, queries):
        out = engine.search(queries, adaptive="full")
        rep = out.adaptive
        assert rep.mode == "full"
        assert (rep.budgets <= NPROBE).all()
        assert (rep.probes_executed <= rep.budgets).all()

    def test_budget_mode_reports_reasons(self, engine, queries):
        rep = engine.search(queries, adaptive="budget").adaptive
        assert rep.mode == "budget"
        # No bound checks in pure budget mode.
        assert "bound" not in rep.stop_reasons
        assert (rep.probes_executed == rep.budgets).all()

    def test_off_returns_no_report(self, engine, queries):
        assert engine.search(queries, adaptive="off").adaptive is None

    def test_explicit_probes_skip_budget_keep_bound(self, engine, queries):
        probes = engine.quantized.locate(queries, NPROBE)
        out = engine.search(queries, probes=probes, adaptive="full")
        rep = out.adaptive
        # The budget heuristic is the caller's job on this path.
        assert (rep.budgets == probes.shape[1]).all()
        res, _ = engine.search(queries, probes=probes)
        np.testing.assert_array_equal(out.results.ids, res.ids)


class TestAdaptiveProperties:
    @given(batch_size=st.integers(min_value=1, max_value=NQ))
    @_SETTINGS
    def test_chunking_invariance(
        self, engine, queries, exhaustive, batch_size
    ):
        original = engine.search_params
        engine.search_params = replace(original, batch_size=batch_size)
        try:
            out = engine.search(queries, execution="chunked", adaptive="bound")
        finally:
            engine.search_params = original
        np.testing.assert_array_equal(out.results.ids, exhaustive.ids)
        np.testing.assert_array_equal(
            out.results.distances, exhaustive.distances
        )

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @_SETTINGS
    def test_permutation_invariance(self, engine, queries, seed):
        perm = np.random.default_rng(seed).permutation(NQ)
        base = engine.search(queries, adaptive="bound")
        out = engine.search(queries[perm], adaptive="bound")
        np.testing.assert_array_equal(out.results.ids, base.results.ids[perm])
        np.testing.assert_array_equal(
            out.adaptive.probes_executed, base.adaptive.probes_executed[perm]
        )

    def test_probes_monotone_in_k(self, queries):
        """A larger k keeps the k-th distance higher for longer, so the
        bound can only stop later: probes(k=5) <= probes(k=10) per query."""
        e5, e10 = _build(k=5), _build(k=10)
        try:
            p5 = e5.search(queries, adaptive="bound").adaptive.probes_executed
            p10 = e10.search(queries, adaptive="bound").adaptive.probes_executed
        finally:
            e5.close()
            e10.close()
        assert (p5 <= p10).all()


# ---------------------------------------------------------------------------
# Ledger honesty
# ---------------------------------------------------------------------------


class TestLedgerHonesty:
    """The ledger charges exactly the probes the report admits to.

    Replay ``AdaptiveReport.executed`` through a fresh engine's fixed
    ``probes=`` path: identical work must produce identical kernel
    cycles. RC/LC/DC charges are integer-valued per task, so equality
    is exact; TS accumulates the per-round heap log-term in a different
    association order than the batched ``g * x`` product, so it is
    compared at ``rel=1e-9`` (last-ulp float noise, not missing work).
    """

    @pytest.fixture(scope="class")
    def replayed(self, queries):
        a, b = _build(), _build()
        try:
            adaptive_out = a.search(queries, adaptive="bound")
            executed = adaptive_out.adaptive.executed
            width = max(len(e) for e in executed)
            probes = np.full((NQ, width), -1, dtype=np.int64)
            for i, e in enumerate(executed):
                probes[i, : len(e)] = e
            fixed_out = b.search(queries, probes=probes)
        finally:
            a.close()
            b.close()
        return adaptive_out, fixed_out

    def test_results_identical(self, replayed):
        adaptive_out, fixed_out = replayed
        np.testing.assert_array_equal(
            adaptive_out.results.ids, fixed_out.results.ids
        )
        np.testing.assert_array_equal(
            adaptive_out.results.distances, fixed_out.results.distances
        )

    def test_scan_kernels_charge_exactly(self, replayed):
        adaptive_out, fixed_out = replayed
        got = adaptive_out.breakdown.kernel_cycles
        want = fixed_out.breakdown.kernel_cycles
        assert set(got) == set(want) == {"RC", "LC", "DC", "TS"}
        for kernel in ("RC", "LC", "DC"):
            assert got[kernel] == want[kernel], (
                f"{kernel} cycles dishonest: adaptive charged "
                f"{got[kernel]}, replaying its probes charged {want[kernel]}"
            )
        assert got["TS"] == pytest.approx(want["TS"], rel=1e-9)

    def test_replay_was_a_real_reduction(self, replayed):
        adaptive_out, _ = replayed
        assert int(adaptive_out.adaptive.probes_executed.sum()) < NQ * NPROBE


# ---------------------------------------------------------------------------
# Radii lifecycle: persistence, upgrade, mutation
# ---------------------------------------------------------------------------


class TestRadiiLifecycle:
    def test_save_persists_radii(self, tmp_path):
        eng = _build()
        path = str(tmp_path / "with_radii.drimidx")
        want = eng.cluster_radii_sq().copy()
        try:
            eng.save(path)
        finally:
            eng.close()
        info = index_info(path)
        assert info["has_cluster_radii"] is True
        assert info["optional_segments"]["cluster_radii"] is True
        loaded = DrimAnnEngine.load(path, config=_config())
        try:
            np.testing.assert_array_equal(loaded.cluster_radii_sq(), want)
        finally:
            loaded.close()

    def test_loaded_engine_bound_identity(self, tmp_path, queries):
        eng = _build()
        path = str(tmp_path / "roundtrip.drimidx")
        try:
            eng.save(path)
        finally:
            eng.close()
        loaded = DrimAnnEngine.load(path, config=_config())
        try:
            base, _ = loaded.search(queries)
            out = loaded.search(queries, adaptive="bound")
        finally:
            loaded.close()
        assert out.adaptive is not None
        np.testing.assert_array_equal(out.results.ids, base.ids)
        np.testing.assert_array_equal(out.results.distances, base.distances)

    def test_radii_less_file_gracefully_disables_bound(
        self, tmp_path, queries
    ):
        """Old index files predate the segment: adaptive='bound' must
        fall back to the exhaustive path, not recompute or crash."""
        eng = _build()
        path = str(tmp_path / "no_radii.drimidx")
        try:
            save_index(eng.quantized, path)  # no cluster_radii
            base, _ = eng.search(queries)
        finally:
            eng.close()
        info = index_info(path)
        assert info["has_cluster_radii"] is False
        assert info["optional_segments"]["cluster_radii"] is False
        loaded = DrimAnnEngine.load(path, config=_config())
        try:
            assert loaded.cluster_radii_sq() is None
            out = loaded.search(queries, adaptive="bound")
        finally:
            loaded.close()
        # Degenerate fallback: exhaustive results, no adaptive report.
        assert out.adaptive is None
        np.testing.assert_array_equal(out.results.ids, base.ids)

    def test_save_upgrades_radii_less_file(self, tmp_path):
        eng = _build()
        path = str(tmp_path / "upgrade.drimidx")
        try:
            save_index(eng.quantized, path)
        finally:
            eng.close()
        loaded = DrimAnnEngine.load(path, config=_config())
        path2 = str(tmp_path / "upgraded.drimidx")
        try:
            assert loaded.cluster_radii_sq() is None
            loaded.save(path2)
            # Saving computed fresh radii and re-enabled the bound path.
            assert loaded.cluster_radii_sq() is not None
        finally:
            loaded.close()
        assert index_info(path2)["has_cluster_radii"] is True

    def test_add_keeps_radii_an_upper_bound(self, queries):
        # add() mutates the quantized index in place; the module-cached
        # _quantized object is shared with the golden-run configs, so
        # this test builds its engine on a private compacted copy.
        ds = canonical_dataset()
        eng = DrimAnnEngine.from_config(
            ds.base,
            _config(),
            heat_queries=ds.queries[:50],
            prebuilt_quantized=_quantized(NLIST, M, CB).compact(),
            seed=0,
        )
        try:
            eng.cluster_radii_sq()  # populate the cache pre-add
            rng = np.random.default_rng(7)
            eng.add(rng.integers(0, 256, size=(64, eng.quantized.dim)).astype(
                np.uint8
            ))
            cached = eng.cluster_radii_sq()
            fresh = cluster_radii_sq(eng.quantized)
            assert (cached >= fresh).all()
            # And the bound stays exact on the mutated engine.
            base, _ = eng.search(queries)
            out = eng.search(queries, adaptive="bound")
        finally:
            eng.close()
        np.testing.assert_array_equal(out.results.ids, base.ids)
        np.testing.assert_array_equal(
            out.results.distances, base.distances
        )


# ---------------------------------------------------------------------------
# Canonical merge helper is the single merge implementation
# ---------------------------------------------------------------------------


class TestCanonicalMergePinned:
    def test_heap_reexport_is_same_object(self):
        from repro.ann import heap
        from repro.utils import topk_merge

        assert heap.topk_canonical is topk_merge.topk_canonical

    def test_merge_topk_pools_canonical_tiebreak(self):
        pools_i = [[np.array([7, 3]), np.array([5])]]
        pools_d = [[np.array([2.0, 1.0]), np.array([1.0])]]
        ids, dists = merge_topk_pools(pools_i, pools_d, 1, 3)
        # Tie at distance 1.0 broken by smaller id.
        np.testing.assert_array_equal(ids[0], [3, 5, 7])
        np.testing.assert_array_equal(dists[0], [1.0, 1.0, 2.0])

    def test_merge_topk_pools_fill_values(self):
        ids, dists = merge_topk_pools([[]], [[]], 1, 4)
        assert (ids == -1).all() and np.isinf(dists).all()

    def test_engine_routes_through_helper(self, queries, monkeypatch):
        import repro.core.engine as engine_mod

        calls = {"n": 0}
        real = engine_mod.merge_topk_pools

        def spy(*a, **kw):
            calls["n"] += 1
            return real(*a, **kw)

        monkeypatch.setattr(engine_mod, "merge_topk_pools", spy)
        eng = _build()
        try:
            eng.search(queries[:4])
            assert calls["n"] == 1
            eng.search(queries[:4], adaptive="bound")
            assert calls["n"] == 2
        finally:
            eng.close()

    def test_frontend_routes_through_helper(self, monkeypatch):
        import repro.cluster.frontend as frontend_mod

        calls = {"n": 0}
        real = frontend_mod.merge_topk_pools

        def spy(*a, **kw):
            calls["n"] += 1
            return real(*a, **kw)

        monkeypatch.setattr(frontend_mod, "merge_topk_pools", spy)
        res = frontend_mod.merge_shard_results([], 2, 3)
        assert calls["n"] == 1
        assert (res.ids == -1).all()


# ---------------------------------------------------------------------------
# Observability
# ---------------------------------------------------------------------------


class TestAdaptiveObservability:
    def test_adaptive_metrics_recorded(self, queries):
        eng = _build(obs=True)
        try:
            out = eng.search(queries, adaptive="bound")
        finally:
            eng.close()
        snap = out.metrics
        hist = snap.find("drimann_probes_executed")
        assert hist is not None and hist["count"] == NQ
        assert hist["sum"] == int(out.adaptive.probes_executed.sum())
        stops = sum(
            snap.value("drimann_adaptive_stops_total", reason=r)
            for r in STOP_REASONS
        )
        assert stops == NQ

    def test_off_records_no_adaptive_metrics(self, queries):
        eng = _build(obs=True)
        try:
            out = eng.search(queries)
        finally:
            eng.close()
        assert out.metrics.find("drimann_probes_executed") is None
