import numpy as np
import pytest

from repro.data import make_query_workload
from repro.data.synthetic import SyntheticSpec, make_clustered_dataset


@pytest.fixture(scope="module")
def ds():
    spec = SyntheticSpec(num_vectors=2000, dim=16, num_components=16)
    return make_clustered_dataset(spec, seed=0)


class TestWorkloadStructure:
    def test_batching(self, ds):
        wl = make_query_workload(ds, num_queries=100, batch_size=32, seed=0)
        assert sum(wl.batch_sizes) == 100
        assert wl.batch_sizes == [32, 32, 32, 4]
        assert wl.num_batches == 4

    def test_batches_iterator(self, ds):
        wl = make_query_workload(ds, num_queries=10, batch_size=4, seed=0)
        seen = 0
        for i, batch in wl.batches():
            seen += len(batch)
        assert seen == 10

    def test_query_dtype_matches_base(self, ds):
        wl = make_query_workload(ds, num_queries=10, batch_size=5, seed=0)
        assert wl.queries.dtype == ds.base.dtype

    def test_deterministic(self, ds):
        a = make_query_workload(ds, num_queries=20, batch_size=10, seed=3).queries
        b = make_query_workload(ds, num_queries=20, batch_size=10, seed=3).queries
        np.testing.assert_array_equal(a, b)

    def test_hot_components_logged(self, ds):
        wl = make_query_workload(ds, num_queries=20, batch_size=10, seed=0)
        assert len(wl.hot_components) == wl.num_batches

    @pytest.mark.parametrize(
        "kw",
        [
            dict(num_queries=0, batch_size=4),
            dict(num_queries=4, batch_size=0),
            dict(num_queries=4, batch_size=2, drift=1.5),
            dict(num_queries=4, batch_size=2, mode="bogus"),
            dict(num_queries=4, batch_size=2, interpolate_range=(0.8, 0.2)),
        ],
    )
    def test_invalid_args(self, ds, kw):
        with pytest.raises(ValueError):
            make_query_workload(ds, seed=0, **kw)

    def test_batch_size_mismatch_rejected(self):
        from repro.data.queries import QueryWorkload

        with pytest.raises(ValueError, match="batch_sizes"):
            QueryWorkload(queries=np.zeros((5, 4)), batch_sizes=[2, 2])


class TestSkewAndDrift:
    def test_drift_changes_hot_set(self, ds):
        wl = make_query_workload(
            ds, num_queries=400, batch_size=40, drift=1.0, seed=0
        )
        hots = [tuple(sorted(h)) for h in wl.hot_components]
        assert len(set(hots)) > 1

    def test_no_drift_keeps_hot_set(self, ds):
        wl = make_query_workload(
            ds, num_queries=400, batch_size=40, drift=0.0, seed=0
        )
        hots = [tuple(sorted(h)) for h in wl.hot_components]
        assert len(set(hots)) == 1

    def test_jitter_mode_stays_near_seed(self, ds):
        wl = make_query_workload(
            ds,
            num_queries=50,
            batch_size=25,
            mode="jitter",
            noise_scale=0.5,
            seed=0,
        )
        # Every jittered query must have a very close base neighbor.
        from repro.ann.distance import l2_sq

        d = l2_sq(wl.queries, ds.base).min(axis=1)
        assert np.median(d) < 100.0

    def test_interpolate_mode_sits_between_points(self, ds):
        wl = make_query_workload(
            ds,
            num_queries=50,
            batch_size=25,
            mode="interpolate",
            noise_scale=0.5,
            seed=0,
        )
        from repro.ann.distance import l2_sq

        d_interp = np.median(l2_sq(wl.queries, ds.base).min(axis=1))
        wl2 = make_query_workload(
            ds, num_queries=50, batch_size=25, mode="jitter",
            noise_scale=0.5, seed=0,
        )
        d_jit = np.median(l2_sq(wl2.queries, ds.base).min(axis=1))
        assert d_interp > d_jit  # interpolation moves off base points
