import warnings

import numpy as np
import pytest

from repro.core import (
    BatchingPolicy,
    DrimAnnEngine,
    LayoutConfig,
    SearchParams,
    simulate_serving,
)
from repro.core.serving import ServingReport
from repro.faults import FaultConfig, FaultPlan
from repro.pim.config import PimSystemConfig


class TestPolicyValidation:
    def test_bad_overload_policy_rejected(self):
        with pytest.raises(ValueError, match="overload_policy"):
            BatchingPolicy(overload_policy="panic")

    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_s"):
            BatchingPolicy(deadline_s=0.0)

    def test_deadline_none_is_default(self):
        policy = BatchingPolicy()
        assert policy.deadline_s is None
        assert policy.overload_policy == "degrade"


class TestEmptyStream:
    def test_zero_queries_report_no_nan(self, small_engine, small_ds):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            report = simulate_serving(
                small_engine,
                small_ds.queries[:0],
                np.empty(0),
            )
            assert report.num_queries == 0
            assert report.num_offered == 0
            assert report.mean_ms == 0.0
            assert report.percentile_ms(50) == 0.0
            assert report.percentile_ms(99) == 0.0
            assert report.makespan_s == 0.0

    def test_zero_queries_summary(self, small_engine, small_ds):
        report = simulate_serving(
            small_engine, small_ds.queries[:0], np.empty(0)
        )
        assert report.summary() == "0 queries"

    def test_empty_report_dataclass_direct(self):
        report = ServingReport(
            latencies_s=np.empty(0),
            batch_sizes=[],
            busy_seconds=0.0,
            makespan_s=0.0,
        )
        assert report.mean_ms == 0.0
        assert report.availability == 1.0
        assert report.degraded_fraction == 0.0


class TestDeadlines:
    def test_shed_drops_queries_already_late(self, small_engine, small_ds):
        n = 40
        arrivals = np.zeros(n)  # everything queued at t=0
        report = simulate_serving(
            small_engine,
            small_ds.queries[:n],
            arrivals,
            BatchingPolicy(
                batch_size=8,
                max_wait_s=0.0,
                deadline_s=1e-7,
                overload_policy="shed",
            ),
        )
        assert report.shed_queries > 0
        assert report.num_queries < n
        assert report.num_offered == n

    def test_degrade_serves_everyone_and_counts_misses(
        self, small_engine, small_ds
    ):
        n = 40
        arrivals = np.zeros(n)
        report = simulate_serving(
            small_engine,
            small_ds.queries[:n],
            arrivals,
            BatchingPolicy(
                batch_size=8,
                max_wait_s=0.0,
                deadline_s=1e-7,
                overload_policy="degrade",
            ),
        )
        assert report.shed_queries == 0
        assert report.num_queries == n
        assert report.deadline_misses > 0

    def test_generous_deadline_has_no_misses(self, small_engine, small_ds):
        n = 16
        arrivals = np.linspace(0, 1.0, n)
        report = simulate_serving(
            small_engine,
            small_ds.queries[:n],
            arrivals,
            BatchingPolicy(batch_size=8, deadline_s=10.0, overload_policy="shed"),
        )
        assert report.shed_queries == 0
        assert report.deadline_misses == 0
        assert report.num_queries == n


class TestFaultAggregation:
    @pytest.fixture(scope="class")
    def faulty_engine(self, small_ds, small_quantized, small_params):
        plan = FaultPlan(
            num_dpus=16,
            config=FaultConfig(fail_stop_fraction=0.1),
            fail_at_batch={3: 0},
        )
        return DrimAnnEngine.build(
            small_ds.base,
            small_params,
            search_params=SearchParams(batch_size=32),
            system_config=PimSystemConfig(num_dpus=16),
            layout_config=LayoutConfig(min_split_size=400, max_copies=2),
            heat_queries=small_ds.queries[:50],
            prebuilt_quantized=small_quantized,
            fault_plan=plan,
            seed=0,
        )

    def test_report_carries_fault_counters(self, faulty_engine, small_ds):
        n = 60
        arrivals = np.linspace(0, 0.01, n)
        report = simulate_serving(
            faulty_engine,
            small_ds.queries[:n],
            arrivals,
            BatchingPolicy(batch_size=16, max_wait_s=1e-4),
        )
        assert report.dead_dpus == 1
        assert report.task_retries > 0
        assert report.backoff_seconds > 0
        # Replicas cover the dead DPU: no degradation, full availability.
        assert report.degraded_queries == 0
        assert report.availability == 1.0
        assert "dead DPUs" in report.summary()

    def test_healthy_engine_reports_no_faults(self, small_engine, small_ds):
        n = 20
        arrivals = np.linspace(0, 0.01, n)
        report = simulate_serving(
            small_engine, small_ds.queries[:n], arrivals
        )
        assert report.dead_dpus == 0
        assert report.task_retries == 0
        assert report.availability == 1.0
        assert "dead DPUs" not in report.summary()
