import numpy as np
import pytest

from repro.core.layout import LayoutConfig, generate_layout
from repro.core.scheduler import RuntimeScheduler, SchedulerConfig


@pytest.fixture(scope="module")
def plan(small_quantized):
    heat = small_quantized.cluster_sizes().astype(float)
    return generate_layout(
        small_quantized,
        8,
        heat,
        LayoutConfig(min_split_size=400, max_copies=2),
        seed=0,
    )


def _cfg(**kw):
    base = dict(lut_latency=5000.0, per_point_calc=50.0, per_point_sort=2.0)
    base.update(kw)
    return SchedulerConfig(**base)


def _all_tasks(nq=12, nc=10):
    return [(q, c) for q in range(nq) for c in range(nc)]


class TestBlacklist:
    def test_dead_dpu_never_assigned(self, plan):
        s = RuntimeScheduler(plan, _cfg(filter_threshold=None))
        s.mark_dead([3])
        for _ in range(5):
            out = s.schedule_batch(_all_tasks())
            assert 3 not in out.assignments
            assert all(
                d != 3 for d, tasks in out.assignments.items() if tasks
            )

    def test_dead_dpu_never_assigned_static_policy(self, plan):
        s = RuntimeScheduler(plan, _cfg(filter_threshold=None, policy="static"))
        s.mark_dead([0])
        out = s.schedule_batch(_all_tasks())
        assert 0 not in out.assignments

    def test_blacklist_is_permanent_and_cumulative(self, plan):
        s = RuntimeScheduler(plan, _cfg())
        s.mark_dead([1])
        s.mark_dead([5])
        assert s.dead_dpus == {1, 5}
        # The property returns a copy, not a live reference.
        s.dead_dpus.add(7)
        assert s.dead_dpus == {1, 5}

    def test_mark_dead_rejects_out_of_range(self, plan):
        s = RuntimeScheduler(plan, _cfg())
        with pytest.raises(ValueError):
            s.mark_dead([8])
        with pytest.raises(ValueError):
            s.mark_dead([-1])

    def test_all_replicas_dead_reports_uncovered(self, plan):
        s = RuntimeScheduler(plan, _cfg(filter_threshold=None))
        # Kill every DPU holding any replica of cluster 0's parts.
        owners = {
            dpu for g in s._group_info[0] for dpu, _, _ in g
        }
        assert owners != set(range(plan.num_dpus)), "fixture too small"
        s.mark_dead(owners)
        out = s.schedule_batch([(0, 0)])
        assert (0, 0) in out.uncovered
        for d, tasks in out.assignments.items():
            assert d not in owners or not tasks

    def test_partial_salvage_assigns_surviving_parts(self, plan):
        # Find a cluster with >1 replica group, kill one member of each
        # group (so no group is intact) but leave each part one live
        # replica: the scheduler must salvage per-part.
        cid = next(
            c for c, gs in plan.replica_groups.items() if len(gs) > 1
        )
        s = RuntimeScheduler(plan, _cfg(filter_threshold=None))
        groups = s._group_info[cid]
        num_parts = len(groups[0])
        kill = {groups[0][0][0]}  # first part of replica 0
        # Replica 1 must still cover that part for the salvage to work.
        if groups[1][0][0] in kill:
            pytest.skip("replicas co-resident; layout fixture unsuitable")
        s.mark_dead(kill)
        out = s.schedule_batch([(0, cid)])
        assigned = [
            (d, key) for d, tasks in out.assignments.items()
            for _, key in tasks
        ]
        assert len(assigned) == num_parts
        assert out.uncovered == []
        assert all(d not in kill for d, _ in assigned)


class TestSpeedFactors:
    def test_validation(self, plan):
        s = RuntimeScheduler(plan, _cfg())
        with pytest.raises(ValueError):
            s.set_speed_factors(np.ones(4))
        with pytest.raises(ValueError):
            s.set_speed_factors(np.zeros(8))
        with pytest.raises(ValueError):
            s.set_speed_factors(np.full(8, 1.5))

    def test_derated_dpu_attracts_less_load(self, plan):
        fair = RuntimeScheduler(plan, _cfg(filter_threshold=None))
        skew = RuntimeScheduler(plan, _cfg(filter_threshold=None))
        factors = np.ones(8)
        factors[2] = 0.3
        skew.set_speed_factors(factors)
        tasks = _all_tasks(nq=20, nc=12)
        load_fair = fair.schedule_batch(tasks).predicted_load
        load_skew = skew.schedule_batch(tasks).predicted_load
        # Predicted load is speed-weighted; the derated DPU should get
        # fewer raw cycles of work than it did at full speed.
        raw_fair = load_fair[2]
        raw_skew = load_skew[2] * factors[2]
        assert raw_skew < raw_fair

    def test_adopt_fault_state_copies(self, plan):
        a = RuntimeScheduler(plan, _cfg())
        a.mark_dead([4])
        factors = np.ones(8)
        factors[1] = 0.5
        a.set_speed_factors(factors)
        b = RuntimeScheduler(plan, _cfg(policy="static"))
        b.adopt_fault_state(a)
        assert b.dead_dpus == {4}
        np.testing.assert_array_equal(b.speed_factors, factors)
        # Copies, not shared references.
        a.mark_dead([5])
        assert b.dead_dpus == {4}


class TestFailover:
    def test_failover_is_part_exact(self, plan):
        cid = next(
            c for c, gs in plan.replica_groups.items() if len(gs) > 1
        )
        s = RuntimeScheduler(plan, _cfg())
        dead_dpu, dead_key, _ = s._group_info[cid][0][0]
        s.mark_dead([dead_dpu])
        assignments, uncovered = s.failover_assignments([(7, dead_key)])
        assert uncovered == []
        (new_dpu, tasks), = assignments.items()
        (qidx, new_key), = tasks
        assert qidx == 7
        assert new_dpu != dead_dpu
        old = plan.shards[dead_key]
        new = plan.shards[new_key]
        assert new.cluster_id == old.cluster_id
        assert new.part_id == old.part_id
        np.testing.assert_array_equal(new.point_rows, old.point_rows)

    def test_failover_reports_unrecoverable_tasks(self, plan):
        s = RuntimeScheduler(plan, _cfg())
        cid = 0
        owners = {dpu for g in s._group_info[cid] for dpu, _, _ in g}
        s.mark_dead(owners)
        key = s._group_info[cid][0][0][1]
        assignments, uncovered = s.failover_assignments([(3, key)])
        assert assignments == {}
        assert uncovered == [(3, cid)]
