import pytest

from repro.pim.config import PimSystemConfig, paper_system_config
from repro.pim.energy import EnergyModel, EnergyReport


class TestEnergyModel:
    def test_cpu_power(self):
        m = EnergyModel()
        assert m.cpu_power() == pytest.approx(2 * 125 + 35)

    def test_pim_power_scales_with_dimms(self):
        m = EnergyModel()
        small = m.pim_power(PimSystemConfig(num_dpus=128))
        big = m.pim_power(PimSystemConfig(num_dpus=2560))
        assert big > small

    def test_paper_server_power(self):
        """Paper: per-DIMM 13.92 W, 20 DIMMs -> ~278 W of DIMM power."""
        m = EnergyModel()
        cfg = paper_system_config()
        dimm_power = cfg.total_power_watts
        assert dimm_power == pytest.approx(20 * 13.92)
        assert m.pim_power(cfg) > dimm_power

    def test_energy_reports(self):
        m = EnergyModel()
        r = m.cpu_run(2.0)
        assert r.joules == pytest.approx(2.0 * m.cpu_power())
        assert r.label == "cpu"

    def test_queries_per_joule(self):
        r = EnergyReport(seconds=1.0, watts=100.0, label="x")
        assert r.queries_per_joule(1000) == pytest.approx(10.0)

    def test_queries_per_joule_zero_energy(self):
        with pytest.raises(ValueError):
            EnergyReport(seconds=0.0, watts=10.0, label="x").queries_per_joule(1)

    def test_pim_run_label(self):
        m = EnergyModel()
        r = m.pim_run(1.0, PimSystemConfig(num_dpus=64))
        assert r.label == "pim"


class TestMramGating:
    """Paper §V-B future work: gate unused MRAM arrays."""

    def test_gating_reduces_power_at_low_utilization(self):
        cfg = PimSystemConfig(num_dpus=256)
        base = EnergyModel().pim_power(cfg)
        gated = EnergyModel(mram_gating=True).pim_power(cfg, mram_utilization=0.1)
        assert gated < base

    def test_full_utilization_matches_ungated(self):
        cfg = PimSystemConfig(num_dpus=256)
        base = EnergyModel().pim_power(cfg)
        gated = EnergyModel(mram_gating=True).pim_power(cfg, mram_utilization=1.0)
        assert gated == pytest.approx(base)

    def test_gating_monotone_in_utilization(self):
        cfg = PimSystemConfig(num_dpus=64)
        m = EnergyModel(mram_gating=True)
        powers = [m.pim_power(cfg, u) for u in (0.0, 0.3, 0.7, 1.0)]
        assert powers == sorted(powers)

    def test_gating_requires_utilization(self):
        m = EnergyModel(mram_gating=True)
        with pytest.raises(ValueError, match="utilization"):
            m.pim_power(PimSystemConfig(num_dpus=8))

    def test_utilization_bounds(self):
        m = EnergyModel(mram_gating=True)
        with pytest.raises(ValueError):
            m.pim_power(PimSystemConfig(num_dpus=8), mram_utilization=1.5)

    def test_ungated_ignores_utilization(self):
        cfg = PimSystemConfig(num_dpus=8)
        m = EnergyModel()
        assert m.pim_power(cfg, 0.1) == m.pim_power(cfg, None)
