import pytest

from repro.core.accuracy import AccuracyTable
from repro.core.dse import DesignSpaceExplorer
from repro.core.params import DatasetShape, IndexParams
from repro.core.perf_model import HardwareProfile
from repro.pim.config import DpuConfig, PimSystemConfig


@pytest.fixture(scope="module")
def dse():
    shape = DatasetShape(num_points=1_000_000, dim=128, num_queries=1000)
    return DesignSpaceExplorer(
        shape,
        HardwareProfile.for_pim(PimSystemConfig(num_dpus=256)),
        nlist_values=[512, 1024, 2048],
        nprobe_values=[4, 8, 16, 32],
        m_values=[16, 32],
        cb_values=[256],
        k=10,
    )


def _fake_accuracy(params: IndexParams) -> float:
    """Synthetic but realistically-shaped accuracy surface."""
    base = 0.45 + 0.1 * (params.num_subspaces / 32)
    probe_gain = 0.35 * min(params.nprobe / 16, 1.0)
    nlist_penalty = 0.05 * (params.nlist / 2048)
    return min(base + probe_gain - nlist_penalty, 0.99)


class TestObjective:
    def test_invalid_m_pruned(self):
        shape = DatasetShape(num_points=1000, dim=100, num_queries=10)
        d = DesignSpaceExplorer(
            shape,
            HardwareProfile.for_cpu(),
            nlist_values=[16],
            nprobe_values=[2],
            m_values=[3, 10, 20],  # only 10 and 20 divide 100
        )
        assert d.space.size == 2

    def test_all_m_invalid_raises(self):
        shape = DatasetShape(num_points=1000, dim=100, num_queries=10)
        with pytest.raises(ValueError, match="divide"):
            DesignSpaceExplorer(
                shape,
                HardwareProfile.for_cpu(),
                nlist_values=[16],
                nprobe_values=[2],
                m_values=[3],
            )

    def test_wram_infeasible_scored_inf(self, dse):
        assert dse.objective({"nlist": 512, "nprobe": 4, "m": 32, "cb": 99999}) == float("inf")

    def test_nprobe_gt_nlist_infeasible(self, dse):
        assert dse.objective({"nlist": 512, "nprobe": 1024, "m": 16, "cb": 256}) == float("inf")

    def test_objective_positive(self, dse):
        assert 0 < dse.objective({"nlist": 1024, "nprobe": 8, "m": 16, "cb": 256}) < 10


class TestStaticPrevalidation:
    """Contract-based WRAM pruning ahead of the sweep (repro lint's
    resource model applied to the explorer's own grid)."""

    def _explorer(self, **kw):
        shape = DatasetShape(num_points=100_000, dim=128, num_queries=64)
        return DesignSpaceExplorer(
            shape,
            HardwareProfile.for_pim(PimSystemConfig(num_dpus=64)),
            nlist_values=[128],
            nprobe_values=[8],
            m_values=[16, 32],
            cb_values=[256],
            **kw,
        )

    def test_default_dpu_grid_unchanged(self):
        d = self._explorer()
        assert d.validate_space() == []
        p = {"nlist": 128, "nprobe": 8, "m": 32, "cb": 256}
        assert d.objective(p) < float("inf")

    def test_24_tasklets_rejects_wram_infeasible_point(self):
        """(M=32, CB=256) passes the LUT-only check (32 KB <= 56 KB) but
        overflows the full residency model at 24 tasklets — the sweep
        must never simulate it."""
        d = self._explorer(dpu=DpuConfig(num_tasklets=24))
        p = {"nlist": 128, "nprobe": 8, "m": 32, "cb": 256}
        assert 32 * 256 * 4 <= d._wram_limit  # old check would simulate it
        assert d.objective(p) == float("inf")

    def test_validate_space_explains_the_rejection(self):
        d = self._explorer(dpu=DpuConfig(num_tasklets=24))
        errors = [
            f for f in d.validate_space() if f.rule == "wram-overflow"
        ]
        assert [(f.data["m"], f.data["cb"]) for f in errors] == [(32, 256)]

    def test_feasible_points_survive(self):
        d = self._explorer(dpu=DpuConfig(num_tasklets=24))
        p = {"nlist": 128, "nprobe": 8, "m": 16, "cb": 256}
        assert d.objective(p) < float("inf")


class TestExplore:
    def test_finds_feasible_configuration(self, dse):
        res = dse.explore(_fake_accuracy, 0.8, num_iterations=16)
        assert res.found_feasible
        assert res.best_accuracy >= 0.8
        assert res.oracle_calls <= 16

    def test_best_is_cheapest_among_observed_feasible(self, dse):
        res = dse.explore(_fake_accuracy, 0.8, num_iterations=16)
        feas = [o for o in res.observations if o.feasible]
        assert res.best_modeled_seconds == min(o.objective for o in feas)

    def test_impossible_constraint(self, dse):
        res = dse.explore(lambda p: 0.1, 0.95, num_iterations=6)
        assert not res.found_feasible
        assert res.best_params is None

    def test_explore_with_table(self, dse):
        table = AccuracyTable()
        for point in dse.space.points():
            p = dse.params_of(point)
            table.record(p, _fake_accuracy(p))
        res = dse.explore_with_table(table, 0.8, num_iterations=16)
        assert res.found_feasible

    def test_prefers_cheap_configs(self, dse):
        """The chosen config should avoid needlessly large nprobe."""
        res = dse.explore(_fake_accuracy, 0.8, num_iterations=24)
        # accuracy saturates at nprobe=16; 32 is never needed
        assert res.best_params.nprobe <= 16
