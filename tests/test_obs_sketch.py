"""PercentileSketch: relative-accuracy guarantee vs numpy, merging."""

import math

import numpy as np
import pytest

from repro.obs import PercentileSketch


def _assert_within_relative(estimate, exact, accuracy):
    if exact == 0.0:
        assert estimate == pytest.approx(0.0, abs=1e-12)
    else:
        assert abs(estimate - exact) <= accuracy * exact * (1.0 + 1e-9)


class TestAccuracy:
    @pytest.mark.parametrize("accuracy", [0.01, 0.05])
    @pytest.mark.parametrize("dist", ["uniform", "lognormal", "exponential"])
    def test_matches_numpy_within_guarantee(self, accuracy, dist):
        rng = np.random.default_rng(7)
        vals = {
            "uniform": rng.uniform(1e-4, 1.0, size=5000),
            "lognormal": rng.lognormal(-5.0, 1.5, size=5000),
            "exponential": rng.exponential(0.01, size=5000),
        }[dist]
        sk = PercentileSketch(relative_accuracy=accuracy)
        for v in vals:
            sk.add(float(v))
        ordered = np.sort(vals)
        for q in (1, 25, 50, 75, 90, 95, 99, 99.9):
            # DDSketch guarantees relative accuracy against the order
            # statistics at the target rank; numpy interpolates between
            # them, so bound by the two neighbours.
            rank = q / 100.0 * (len(ordered) - 1)
            lo = float(ordered[math.floor(rank)])
            hi = float(ordered[math.ceil(rank)])
            est = sk.percentile(q)
            assert lo * (1.0 - accuracy) * (1.0 - 1e-9) <= est
            assert est <= hi * (1.0 + accuracy) * (1.0 + 1e-9)

    def test_single_value(self):
        sk = PercentileSketch()
        sk.add(0.042)
        for q in (0, 50, 100):
            _assert_within_relative(sk.percentile(q), 0.042, 0.01)

    def test_extremes_clamped_to_observed_range(self):
        sk = PercentileSketch()
        for v in (0.1, 0.2, 0.3):
            sk.add(v)
        assert sk.percentile(0) >= sk.min
        assert sk.percentile(100) <= sk.max


class TestValidation:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PercentileSketch().add(-1.0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            PercentileSketch().add(float("nan"))

    def test_bad_accuracy_rejected(self):
        for a in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                PercentileSketch(relative_accuracy=a)

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            PercentileSketch().percentile(101)


class TestZeroAndEmpty:
    def test_empty_reads_zero(self):
        sk = PercentileSketch()
        assert sk.percentile(99) == 0.0
        assert sk.mean == 0.0
        assert sk.min == 0.0 and sk.max == 0.0

    def test_zero_values_counted(self):
        sk = PercentileSketch()
        for _ in range(10):
            sk.add(0.0)
        sk.add(1.0)
        assert sk.count == 11
        assert sk.percentile(50) == 0.0
        assert sk.percentile(100) == pytest.approx(1.0, rel=0.011)


class TestMerge:
    def test_merge_equals_single_stream(self):
        rng = np.random.default_rng(3)
        vals = rng.exponential(0.005, size=2000)
        whole = PercentileSketch()
        left = PercentileSketch()
        right = PercentileSketch()
        for i, v in enumerate(vals):
            whole.add(float(v))
            (left if i % 2 else right).add(float(v))
        left.merge(right)
        assert left.count == whole.count
        assert left.total == pytest.approx(whole.total)
        for q in (50, 95, 99):
            assert left.percentile(q) == pytest.approx(whole.percentile(q))

    def test_mismatched_accuracy_rejected(self):
        with pytest.raises(ValueError, match="different relative accuracies"):
            PercentileSketch(0.01).merge(PercentileSketch(0.02))


class TestExport:
    def test_to_dict_summary(self):
        sk = PercentileSketch()
        for v in (0.001, 0.002, 0.004):
            sk.add(v)
        d = sk.to_dict()
        assert d["count"] == 3
        assert d["sum"] == pytest.approx(0.007)
        assert set(d) >= {"p50", "p95", "p99", "min", "max", "mean"}

    def test_bucket_items_bounded_by_log_range(self):
        sk = PercentileSketch(relative_accuracy=0.01)
        rng = np.random.default_rng(0)
        for v in rng.uniform(1e-6, 10.0, size=20000):
            sk.add(float(v))
        # O(log range) buckets, not O(n) samples.
        n_buckets = len(sk.bucket_items())
        bound = math.log(10.0 / 1e-6) / math.log(sk._gamma) + 2
        assert n_buckets <= bound
