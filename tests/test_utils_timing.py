import time

from repro.utils import Stopwatch


class TestStopwatch:
    def test_section_accumulates(self):
        sw = Stopwatch()
        with sw.section("a"):
            time.sleep(0.01)
        assert sw.get("a") >= 0.005

    def test_multiple_sections_sum_to_total(self):
        sw = Stopwatch()
        sw.add("x", 1.0)
        sw.add("y", 2.0)
        assert sw.total() == 3.0

    def test_repeat_section_accumulates(self):
        sw = Stopwatch()
        sw.add("x", 1.0)
        sw.add("x", 0.5)
        assert sw.get("x") == 1.5

    def test_unknown_section_zero(self):
        assert Stopwatch().get("nope") == 0.0

    def test_reset(self):
        sw = Stopwatch()
        sw.add("x", 1.0)
        sw.reset()
        assert sw.total() == 0.0

    def test_as_dict_copy(self):
        sw = Stopwatch()
        sw.add("x", 1.0)
        d = sw.as_dict()
        d["x"] = 99.0
        assert sw.get("x") == 1.0
