"""Observability threaded through the engine, scheduler, and serving.

Covers the acceptance criteria of the obs layer: disabled runs are
bit-exact with the uninstrumented engine and stay inside the <2%
overhead budget; enabled runs surface per-phase, per-DPU, fault, and
serving metrics in the outcome snapshots.
"""

import json
import timeit
import warnings

import numpy as np
import pytest

from repro.core import DrimAnnEngine, LayoutConfig, SearchParams
from repro.core.config import EngineConfig
from repro.core.results import SearchOutcome, ServingOutcome
from repro.core.serving import BatchingPolicy, PoissonArrivals, simulate_serving
from repro.faults import FaultConfig, FaultPlan
from repro.obs import EngineObserver, ObsConfig
from repro.pim.config import PimSystemConfig

NUM_DPUS = 8


def _config(small_params, *, obs=False, faults=None):
    return EngineConfig(
        index=small_params,
        search=SearchParams(batch_size=64),
        system=PimSystemConfig(num_dpus=NUM_DPUS),
        layout=LayoutConfig(min_split_size=400, max_copies=2),
        faults=faults,
        obs=ObsConfig(enabled=obs),
    )


def _build(small_ds, small_quantized, small_params, **kw):
    return DrimAnnEngine.from_config(
        small_ds.base,
        _config(small_params, **kw),
        heat_queries=small_ds.queries[:50],
        prebuilt_quantized=small_quantized,
        seed=0,
    )


@pytest.fixture(scope="module")
def obs_engine(small_ds, small_quantized, small_params):
    return _build(small_ds, small_quantized, small_params, obs=True)


@pytest.fixture(scope="module")
def plain_engine(small_ds, small_quantized, small_params):
    return _build(small_ds, small_quantized, small_params, obs=False)


class TestObsConfig:
    def test_disabled_creates_nothing(self):
        assert ObsConfig().create() is None
        assert ObsConfig(enabled=False).create() is None

    def test_enabled_creates_observer(self):
        assert isinstance(ObsConfig(enabled=True).create(), EngineObserver)

    def test_bad_accuracy_rejected(self):
        with pytest.raises(ValueError, match="latency_accuracy"):
            ObsConfig(latency_accuracy=1.5)

    def test_round_trips(self):
        cfg = ObsConfig(enabled=True, latency_accuracy=0.02)
        assert ObsConfig.from_dict(cfg.to_dict()) == cfg


class TestDeprecationShim:
    def test_build_warns(self, small_ds, small_quantized, small_params):
        with pytest.warns(DeprecationWarning, match="from_config"):
            DrimAnnEngine.build(
                small_ds.base,
                small_params,
                system_config=PimSystemConfig(num_dpus=NUM_DPUS),
                prebuilt_quantized=small_quantized,
                seed=0,
            )

    def test_from_config_is_quiet(self, small_ds, small_quantized, small_params):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            _build(small_ds, small_quantized, small_params)

    def test_shim_and_from_config_agree(
        self, small_ds, small_quantized, small_params, plain_engine
    ):
        with pytest.warns(DeprecationWarning):
            old = DrimAnnEngine.build(
                small_ds.base,
                small_params,
                search_params=SearchParams(batch_size=64),
                system_config=PimSystemConfig(num_dpus=NUM_DPUS),
                layout_config=LayoutConfig(min_split_size=400, max_copies=2),
                heat_queries=small_ds.queries[:50],
                prebuilt_quantized=small_quantized,
                seed=0,
            )
        q = small_ds.queries[:40]
        a, _ = old.search(q)
        b, _ = plain_engine.search(q)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.distances, b.distances)


class TestDisabledPath:
    def test_no_observer_no_metrics(self, plain_engine, small_ds):
        assert plain_engine.observer is None
        outcome = plain_engine.search(small_ds.queries[:40])
        assert outcome.metrics is None

    def test_bit_exact_with_obs_on(self, obs_engine, plain_engine, small_ds):
        q = small_ds.queries
        on = obs_engine.search(q)
        off = plain_engine.search(q)
        np.testing.assert_array_equal(on.results.ids, off.results.ids)
        np.testing.assert_array_equal(
            on.results.distances, off.results.distances
        )
        assert on.breakdown.pim_seconds == off.breakdown.pim_seconds
        assert on.breakdown.e2e_seconds == off.breakdown.e2e_seconds

    def test_disabled_overhead_within_budget(self, plain_engine, small_ds):
        """The disabled cost is one ``is not None`` check per hook site.

        Counting how many times hooks would fire and pricing each at a
        measured no-op-check cost is deterministic, unlike comparing
        two noisy wall-clock runs.
        """
        q = small_ds.queries

        class Probe:
            calls = 0

            def __getattr__(self, name):
                def hook(*a, **k):
                    Probe.calls += 1

                return hook

        base_wall = min(
            timeit.timeit(lambda: plain_engine.search(q), number=1)
            for _ in range(3)
        )
        probe = Probe()
        plain_engine.observer = probe
        plain_engine.scheduler.observer = probe
        plain_engine.system.observer = probe
        try:
            plain_engine.search(q)
        finally:
            plain_engine.observer = None
            plain_engine.scheduler.observer = None
            plain_engine.system.observer = None
        n_sites = Probe.calls
        assert n_sites > 0
        reps = 100_000
        per_check = (
            timeit.timeit("x is not None", setup="x = None", number=reps)
            / reps
        )
        assert n_sites * per_check < 0.02 * base_wall, (
            f"{n_sites} hook sites x {per_check:.2e}s noop check "
            f"exceeds 2% of {base_wall:.4f}s search"
        )


class TestSearchMetrics:
    def test_outcome_unpacks_like_old_tuple(self, obs_engine, small_ds):
        outcome = obs_engine.search(small_ds.queries[:20])
        assert isinstance(outcome, SearchOutcome)
        res, bd = outcome
        assert res is outcome.results and bd is outcome.breakdown
        assert len(outcome) == 2 and outcome[0] is res

    def test_per_phase_and_per_dpu_series(self, obs_engine, small_ds):
        q = small_ds.queries[:60]
        snap = obs_engine.search(q).metrics
        assert snap is not None
        assert snap.value("drimann_engine_queries_total") >= len(q)
        phases = {
            s["labels"]["phase"] for s in snap.series("drimann_phase_seconds")
        }
        assert {"CL", "RC", "LC", "DC", "TS"} <= phases
        tasks = snap.series("drimann_scheduler_tasks_total")
        assert tasks, "per-DPU scheduler series missing"
        dpus = {int(s["labels"]["dpu"]) for s in tasks}
        assert dpus <= set(range(NUM_DPUS)) and len(dpus) > 1
        assert snap.value("drimann_pim_wram_peak_bytes") > 0
        assert (
            snap.value("drimann_pim_transfer_seconds_total", op="broadcast")
            > 0
        )
        assert (
            snap.value("drimann_pim_transfer_seconds_total", op="gather") > 0
        )

    def test_kernel_cycles_match_breakdown(self, obs_engine, small_ds):
        eng = obs_engine
        before = {
            k: eng.observer.registry.counter(
                "drimann_pim_kernel_cycles_total", kernel=k
            ).value
            for k in ("LC", "DC")
        }
        _, bd = eng.search(small_ds.queries[:30])
        snap = eng.observer.snapshot()
        for k in ("LC", "DC"):
            got = (
                snap.value("drimann_pim_kernel_cycles_total", kernel=k)
                - before[k]
            )
            assert got == pytest.approx(bd.kernel_cycles[k])


class TestFaultMetrics:
    def test_fault_counters_surface(
        self, small_ds, small_quantized, small_params
    ):
        plan = FaultPlan(
            num_dpus=NUM_DPUS,
            config=FaultConfig(fail_stop_fraction=0.1),
            fail_at_batch={2: 0},
        )
        eng = _build(
            small_ds, small_quantized, small_params, obs=True, faults=plan
        )
        outcome = eng.search(small_ds.queries)
        snap = outcome.metrics
        assert snap.value("drimann_faults_dead_dpus") == len(
            outcome.faults.dead_dpus
        )
        assert snap.value("drimann_faults_dead_dpus") >= 1
        assert snap.value("drimann_faults_backoff_seconds_total") > 0
        assert snap.value("drimann_pim_failed_tasks_total") > 0
        assert (
            snap.value("drimann_faults_degraded_queries_total")
            == len(outcome.faults.degraded_queries)
        )


class TestServingMetrics:
    @pytest.fixture(scope="class")
    def served(self, obs_engine, small_ds):
        q = small_ds.queries[:100]
        arrivals = PoissonArrivals(rate_qps=20_000).sample(100, seed=0)
        return simulate_serving(
            obs_engine,
            q,
            arrivals,
            BatchingPolicy(batch_size=32, max_wait_s=1e-3),
        )

    def test_outcome_forwards_to_report(self, served):
        assert isinstance(served, ServingOutcome)
        assert served.num_queries == 100
        assert served.percentile_ms(99) >= served.percentile_ms(50)

    def test_sketch_percentiles_track_report(self, served):
        sk = served.metrics.find("drimann_serving_latency_seconds")
        assert sk is not None and sk["count"] == 100
        for q in (50, 95, 99):
            exact_s = served.report.percentile_ms(q) / 1e3
            assert sk[f"p{q}"] == pytest.approx(exact_s, rel=0.05)

    def test_batch_occupancy_histogram(self, served):
        occ = served.metrics.find("drimann_serving_batch_occupancy")
        assert occ is not None
        assert occ["count"] == len(served.report.batch_sizes)
        assert occ["sum"] == pytest.approx(sum(served.report.batch_sizes))

    def test_obs_off_serving_has_no_metrics(self, plain_engine, small_ds):
        q = small_ds.queries[:20]
        out = simulate_serving(
            plain_engine, q, np.arange(20) * 1e-3, BatchingPolicy()
        )
        assert out.metrics is None
        assert out.num_queries == 20


class TestDataPlaneMetrics:
    def test_plan_decision_counter_tracks_path(self, obs_engine, small_ds):
        snap0 = obs_engine.observer.snapshot()
        before = snap0.value(
            "drimann_pim_plan_decisions_total", path="vectorized"
        )
        obs_engine.search(small_ds.queries[:40], plan="vectorized")
        snap1 = obs_engine.observer.snapshot()
        after = snap1.value(
            "drimann_pim_plan_decisions_total", path="vectorized"
        )
        assert after > before

    def test_pool_fallbacks_counted_not_silent(
        self, small_ds, small_quantized, small_params
    ):
        """Killing the workers mid-run must surface in the fallback
        counter (and still return correct results)."""
        cfg = EngineConfig(
            index=small_params,
            search=SearchParams(batch_size=64, plan="pool"),
            system=PimSystemConfig(num_dpus=NUM_DPUS, shard_workers=2),
            layout=LayoutConfig(min_split_size=400, max_copies=2),
            obs=ObsConfig(enabled=True),
        )
        eng = DrimAnnEngine.from_config(
            small_ds.base,
            cfg,
            heat_queries=small_ds.queries[:50],
            prebuilt_quantized=small_quantized,
            seed=0,
        )
        try:
            q = small_ds.queries[:40]
            healthy = eng.search(q)
            pool = eng.system.executor
            if pool.started:  # kill the warm workers under the engine
                for proc in pool._procs:
                    proc.terminate()
                    proc.join(timeout=2.0)
            broken = eng.search(q)
            np.testing.assert_array_equal(
                healthy.results.ids, broken.results.ids
            )
            snap = broken.metrics
            fallbacks = sum(
                s["value"]
                for s in snap.series("drimann_pim_pool_fallbacks_total")
            )
            assert fallbacks >= 1
        finally:
            eng.close()


class TestEngineConfigRoundTrip:
    def test_round_trip_with_faults(self, small_params):
        plan = FaultPlan.generate(
            NUM_DPUS,
            FaultConfig(fail_stop_fraction=0.1, straggler_fraction=0.1),
            seed=5,
        )
        cfg = _config(small_params, obs=True, faults=plan)
        d = cfg.to_dict()
        again = EngineConfig.from_dict(json.loads(json.dumps(d)))
        assert again.to_dict() == d

    def test_mismatched_fault_plan_rejected(self, small_params):
        plan = FaultPlan.none(NUM_DPUS + 1)
        with pytest.raises(ValueError, match="fault plan"):
            _config(small_params, faults=plan)
