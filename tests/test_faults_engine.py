import numpy as np
import pytest

from repro.core import DrimAnnEngine, LayoutConfig, SearchParams
from repro.faults import FaultConfig, FaultPlan
from repro.pim.config import PimSystemConfig

NUM_DPUS = 16


@pytest.fixture(scope="module")
def build_engine(small_ds, small_quantized, small_params):
    def build(fault_plan=None, max_copies=2, **kw):
        return DrimAnnEngine.build(
            small_ds.base,
            small_params,
            search_params=kw.pop("search_params", SearchParams(batch_size=64)),
            system_config=PimSystemConfig(num_dpus=NUM_DPUS),
            layout_config=LayoutConfig(min_split_size=400, max_copies=max_copies),
            heat_queries=small_ds.queries[:50],
            prebuilt_quantized=small_quantized,
            fault_plan=fault_plan,
            seed=0,
            **kw,
        )

    return build


def _every_part_has_live_replica(layout, fault_plan) -> bool:
    """The failover-soundness premise: no part lost with all replicas."""
    dead = set(fault_plan.failstop_dpus)
    for groups in layout.replica_groups.values():
        for p in range(len(groups[0])):
            if all(layout.placement[g[p]] in dead for g in groups):
                return False
    return True


def _assert_identical(res, ref):
    """Exact distance equality; ids may only differ where distances tie.

    Tie order among equal distances depends on merge-pool order (true
    of the fault-free engine across layouts too), so id equality is
    asserted up to ties rather than positionally.
    """
    np.testing.assert_array_equal(
        np.sort(res.distances, axis=1), np.sort(ref.distances, axis=1)
    )
    for rids, rd, fids, fd in zip(
        res.ids, res.distances, ref.ids, ref.distances
    ):
        diff = set(rids) ^ set(fids)
        if not diff:
            continue
        # A set difference is only legal at a tied k-th distance.
        boundary = rd.max()
        assert boundary == fd.max()
        for i in diff:
            d = (
                rd[list(rids).index(i)]
                if i in rids
                else fd[list(fids).index(i)]
            )
            assert d == boundary, f"id {i} differs without a boundary tie"


class TestFaultFreeEquivalence:
    def test_benign_plan_is_a_noop(self, build_engine, small_ds):
        engine = build_engine(fault_plan=FaultPlan.none(NUM_DPUS))
        res, bd = engine.search(small_ds.queries)
        _assert_identical(res, engine.reference_search(small_ds.queries))
        assert bd.faults is not None
        assert not bd.faults.degraded
        assert bd.faults.task_retries == 0

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_survivable_faults_preserve_exact_results(
        self, build_engine, small_ds, seed
    ):
        """Property: any seeded plan that leaves every part a live
        replica must produce results identical to the fault-free run."""
        plan = FaultPlan.generate(
            NUM_DPUS,
            FaultConfig(
                fail_stop_fraction=0.15,
                straggler_fraction=0.1,
                transient_rate=0.05,
                transfer_timeout_rate=0.1,
            ),
            seed=seed,
        )
        engine = build_engine(fault_plan=plan)
        assert _every_part_has_live_replica(engine.plan, plan), (
            "duplication budget should fully replicate this corpus; "
            "premise of the property does not hold"
        )
        res, bd = engine.search(small_ds.queries)
        _assert_identical(res, engine.reference_search(small_ds.queries))
        assert not bd.faults.degraded
        assert bd.faults.availability == 1.0
        if plan.failstop_dpus:
            assert bd.faults.task_retries > 0

    def test_mid_stream_crash_with_deferral_still_merges(
        self, build_engine, small_ds
    ):
        """A crash after batch 0 (deferred-task carryover in flight)
        must not lose or double-count any deferred task's results."""
        plan = FaultPlan(
            num_dpus=NUM_DPUS,
            config=FaultConfig(fail_stop_fraction=0.1),
            fail_at_batch={2: 1, 9: 1},
        )
        engine = build_engine(
            fault_plan=plan, search_params=SearchParams(batch_size=32)
        )
        assert _every_part_has_live_replica(engine.plan, plan)
        res, bd = engine.search(small_ds.queries)
        _assert_identical(res, engine.reference_search(small_ds.queries))
        assert bd.faults.dead_dpus == {2, 9}

    def test_deterministic_under_fixed_seed(self, build_engine, small_ds):
        plan = FaultPlan.generate(
            NUM_DPUS,
            FaultConfig(fail_stop_fraction=0.2, transient_rate=0.1),
            seed=11,
        )
        runs = []
        for _ in range(2):
            engine = build_engine(fault_plan=plan)
            res, bd = engine.search(small_ds.queries)
            runs.append((res, bd.faults))
        _assert_identical(runs[0][0], runs[1][0])
        assert runs[0][1].task_retries == runs[1][1].task_retries
        assert runs[0][1].uncovered == runs[1][1].uncovered
        assert runs[0][1].backoff_seconds == runs[1][1].backoff_seconds


class TestGracefulDegradation:
    def test_no_replicas_degrades_instead_of_raising(
        self, build_engine, small_ds
    ):
        plan = FaultPlan(
            num_dpus=NUM_DPUS,
            config=FaultConfig(fail_stop_fraction=0.1),
            fail_at_batch={0: 0, 7: 0},
        )
        engine = build_engine(fault_plan=plan, max_copies=0)
        res, bd = engine.search(small_ds.queries)
        stats = bd.faults
        assert stats.degraded
        assert 0.0 < stats.degraded_fraction <= 1.0
        assert stats.availability == 1.0 - stats.degraded_fraction
        for q in stats.degraded_queries:
            assert stats.coverage(q) < 1.0
        # Served queries still return valid (possibly partial) top-k.
        assert res.ids.shape == (len(small_ds.queries), 10)
        covered = [
            q for q in range(len(small_ds.queries))
            if q not in stats.degraded_queries
        ]
        ref = engine.reference_search(small_ds.queries)
        np.testing.assert_array_equal(
            np.sort(res.distances[covered], axis=1),
            np.sort(ref.distances[covered], axis=1),
        )

    def test_blacklist_persists_across_searches(self, build_engine, small_ds):
        plan = FaultPlan(
            num_dpus=NUM_DPUS,
            config=FaultConfig(fail_stop_fraction=0.1),
            fail_at_batch={4: 0},
        )
        engine = build_engine(fault_plan=plan)
        _, bd1 = engine.search(small_ds.queries)
        assert bd1.faults.task_retries > 0
        # Second search: the scheduler already knows DPU 4 is dead, so
        # nothing is assigned there and nothing needs re-dispatching.
        res2, bd2 = engine.search(small_ds.queries)
        assert bd2.faults.task_retries == 0
        _assert_identical(res2, engine.reference_search(small_ds.queries))


class TestTimingAndValidation:
    def test_stragglers_slow_the_run_not_the_answers(
        self, build_engine, small_ds
    ):
        derates = np.ones(NUM_DPUS)
        derates[[1, 6]] = 0.4
        plan = FaultPlan(
            num_dpus=NUM_DPUS, config=FaultConfig(), derates=derates
        )
        slow = build_engine(fault_plan=plan)
        fast = build_engine()
        res_s, bd_s = slow.search(small_ds.queries)
        _, bd_f = fast.search(small_ds.queries)
        _assert_identical(res_s, slow.reference_search(small_ds.queries))
        assert bd_s.pim_seconds > bd_f.pim_seconds

    def test_cl_on_pim_rejects_capacity_faults(self, build_engine):
        plan = FaultPlan(
            num_dpus=NUM_DPUS,
            config=FaultConfig(),
            fail_at_batch={0: 0},
        )
        with pytest.raises(ValueError, match="cluster_locate_on"):
            build_engine(
                fault_plan=plan,
                search_params=SearchParams(cluster_locate_on="pim"),
            )

    def test_num_dpus_mismatch_rejected(self, build_engine):
        with pytest.raises(ValueError, match="DPUs"):
            build_engine(fault_plan=FaultPlan.none(NUM_DPUS + 1))
