"""Smoke tests: every example script imports and exposes main().

Full example executions take minutes; importability catches API drift
(the errors that actually break examples) at test-suite cost of
milliseconds. The benchmark suite and docs cover behavior.
"""

import importlib.util
import os

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_imports_and_has_main(script):
    path = os.path.join(EXAMPLES_DIR, script)
    spec = importlib.util.spec_from_file_location(f"example_{script[:-3]}", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    assert callable(getattr(mod, "main", None)), f"{script} lacks main()"


def test_examples_exist():
    assert len(EXAMPLES) >= 6
