import numpy as np
import pytest

from repro.data import list_presets, load_dataset
from repro.data.registry import register_preset


class TestRegistry:
    def test_presets_listed(self):
        names = list_presets()
        assert "sift-like-20k" in names
        assert "deep-like-20k" in names
        assert "sift-like-200k" in names

    def test_unknown_preset(self):
        with pytest.raises(KeyError, match="unknown preset"):
            load_dataset("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_preset("sift-like-20k")
            def dup(seed=0, num_queries=None):
                raise AssertionError

    def test_load_small(self, small_ds):
        assert small_ds.base.shape == (20_000, 128)
        assert small_ds.base.dtype == np.uint8
        assert small_ds.num_queries == 150
        assert small_ds.ground_truth.shape == (150, 10)

    def test_num_queries_override(self):
        ds = load_dataset("deep-like-20k", seed=0, num_queries=17)
        assert ds.num_queries == 17
        assert ds.dim == 96

    def test_deterministic(self):
        a = load_dataset("deep-like-20k", seed=1, num_queries=5)
        b = load_dataset("deep-like-20k", seed=1, num_queries=5)
        np.testing.assert_array_equal(a.base, b.base)
        np.testing.assert_array_equal(a.queries, b.queries)

    def test_workload_metadata(self):
        ds = load_dataset("deep-like-20k", seed=0, num_queries=16)
        assert sum(ds.metadata["workload_batches"]) == 16
