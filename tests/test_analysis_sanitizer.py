"""drimsan dynamic prong: event model, happens-before checker, driver.

Synthetic event streams pin each checker rule (broken flagged, clean
silent); real-arena integration tests prove an injected use-after-unlink
is observed through the instrumented data plane; and the regression
gate asserts ``repro sanitize`` reports zero findings on the shipped
engine.
"""

import numpy as np
import pytest

from repro.analysis import sanitizer, tracecheck
from repro.analysis.sanitizer import (
    ArenaEvent,
    check_arena_events,
    emit_to_tracer,
    happens_before,
    run_sanitize,
)
from repro.pim.parallel import SharedShardArena


def _ev(seq, pid, kind, segment="seg", key=None, clock=None):
    clock = tuple(clock) if clock is not None else ((pid, seq),)
    return ArenaEvent(
        seq=seq, pid=pid, kind=kind, segment=segment, key=key, clock=clock
    )


def _clean_lifecycle(segment="seg"):
    """Owner creates/publishes/unlinks; a worker attaches and views."""
    return [
        _ev(1, 1, "create", segment, clock=[(1, 1)]),
        _ev(2, 1, "write", segment, key="codes:a", clock=[(1, 2)]),
        _ev(3, 1, "publish", segment, clock=[(1, 3)]),
        # Worker seeded from the owner's publish-time clock.
        _ev(1, 2, "attach", segment, clock=[(1, 3), (2, 1)]),
        _ev(2, 2, "view", segment, key="codes:a", clock=[(1, 3), (2, 2)]),
        _ev(3, 2, "close", segment, clock=[(1, 3), (2, 3)]),
        # Owner tears down without having merged the worker's last clock
        # (concurrent, not ordered) — still clean.
        _ev(4, 1, "close", segment, clock=[(1, 4)]),
        _ev(5, 1, "unlink", segment, clock=[(1, 5)]),
    ]


class TestEventModel:
    def test_dict_roundtrip(self):
        ev = _ev(7, 123, "view", "psm_x", key="ids:a", clock=[(1, 3), (123, 7)])
        assert ArenaEvent.from_dict(ev.to_dict()) == ev

    def test_happens_before_same_pid_is_seq_order(self):
        a, b = _ev(1, 1, "create"), _ev(2, 1, "close")
        assert happens_before(a, b) and not happens_before(b, a)

    def test_happens_before_cross_pid_via_clock(self):
        pub = _ev(3, 1, "publish", clock=[(1, 3)])
        att = _ev(1, 2, "attach", clock=[(1, 3), (2, 1)])
        assert happens_before(pub, att)
        assert not happens_before(att, pub)

    def test_concurrent_events_unordered(self):
        a = _ev(5, 1, "unlink", clock=[(1, 5)])
        b = _ev(3, 2, "view", clock=[(1, 2), (2, 3)])
        assert not happens_before(a, b) and not happens_before(b, a)


class TestHappensBeforeChecker:
    def test_clean_lifecycle_no_findings(self):
        assert check_arena_events(_clean_lifecycle()) == []

    def test_use_after_unlink_same_process(self):
        events = _clean_lifecycle() + [
            _ev(6, 1, "view", key="codes:a", clock=[(1, 6)])
        ]
        rules = [f.rule for f in check_arena_events(events)]
        assert rules == ["use-after-unlink"]

    def test_use_after_unlink_cross_process(self):
        events = _clean_lifecycle() + [
            # A worker view whose clock has seen the owner's unlink.
            _ev(4, 3, "view", key="codes:a", clock=[(1, 5), (3, 4)])
        ]
        rules = [f.rule for f in check_arena_events(events)]
        assert rules == ["use-after-unlink"]

    def test_concurrent_worker_access_not_flagged(self):
        # The worker's view is concurrent with (not after) the unlink:
        # exactly the shape of a normal pool teardown.
        assert check_arena_events(_clean_lifecycle()) == []

    def test_double_unlink(self):
        events = _clean_lifecycle() + [_ev(6, 1, "unlink", clock=[(1, 6)])]
        rules = [f.rule for f in check_arena_events(events)]
        assert "double-unlink" in rules

    def test_write_after_publish(self):
        events = _clean_lifecycle() + [
            _ev(6, 1, "write", key="codes:a", clock=[(1, 6)])
        ]
        rules = sorted(f.rule for f in check_arena_events(events))
        # The late write is also ordered after the unlink.
        assert "write-after-publish" in rules

    def test_orphaned_segment(self):
        events = [
            _ev(1, 1, "create", clock=[(1, 1)]),
            _ev(2, 1, "close", clock=[(1, 2)]),
        ]
        rules = [f.rule for f in check_arena_events(events)]
        assert rules == ["orphaned-segment"]

    def test_findings_carry_checker_and_segment(self):
        events = _clean_lifecycle() + [
            _ev(6, 1, "view", key="codes:a", clock=[(1, 6)])
        ]
        (f,) = check_arena_events(events)
        assert f.checker == "sanitizer" and f.data["segment"] == "seg"


class TestArenaOrderInvariants:
    def test_clean_lifecycle_no_findings(self):
        assert tracecheck.check_arena_order(_clean_lifecycle()) == []

    def test_view_before_map(self):
        events = [_ev(1, 2, "view", key="codes:a")]
        rules = [f.rule for f in tracecheck.check_arena_order(events)]
        assert rules == ["arena-use-before-map"]

    def test_event_after_close(self):
        events = [
            _ev(1, 2, "attach"),
            _ev(2, 2, "close"),
            _ev(3, 2, "view", key="codes:a"),
        ]
        rules = [f.rule for f in tracecheck.check_arena_order(events)]
        assert rules == ["arena-event-after-close"]

    def test_owner_unlink_after_close_allowed(self):
        events = [
            _ev(1, 1, "create"),
            _ev(2, 1, "close"),
            _ev(3, 1, "unlink"),
        ]
        assert tracecheck.check_arena_order(events) == []

    def test_double_attach(self):
        events = [_ev(1, 2, "attach"), _ev(2, 2, "attach")]
        rules = [f.rule for f in tracecheck.check_arena_order(events)]
        assert rules == ["arena-double-attach"]


class TestRecorder:
    def _arrays(self, rng):
        return {
            "codes:a": rng.integers(0, 16, size=(8, 4), dtype=np.uint8),
            "ids:a": rng.permutation(100)[:8].astype(np.int64),
        }

    def test_disarmed_recorder_records_nothing(self, rng):
        arena = SharedShardArena.create(self._arrays(rng))
        arena.close()
        assert sanitizer.collect_events() == []

    def test_clean_arena_lifecycle_sanitizes_clean(self, rng, tmp_path):
        sanitizer.enable(str(tmp_path))
        try:
            with SharedShardArena.create(self._arrays(rng)) as arena:
                arena.view("ids:a")
            events = sanitizer.collect_events()
        finally:
            sanitizer.disable()
        assert check_arena_events(events) == []
        assert tracecheck.check_arena_order(events) == []
        kinds = [e.kind for e in events]
        assert kinds.count("create") == 1 and kinds.count("unlink") == 1

    def test_injected_use_after_unlink_detected(self, rng, tmp_path):
        """The acceptance fixture: a deliberate bug must be observed."""
        sanitizer.enable(str(tmp_path))
        try:
            arena = SharedShardArena.create(self._arrays(rng))
            arena.close()
            arena.view("codes:a")  # injected use of a dead mapping
            events = sanitizer.collect_events()
        finally:
            sanitizer.disable()
        hb = [f.rule for f in check_arena_events(events)]
        order = [f.rule for f in tracecheck.check_arena_order(events)]
        assert hb == ["use-after-unlink"]
        assert order == ["arena-event-after-close"]

    def test_worker_spool_roundtrip(self, tmp_path):
        sanitizer.enable(str(tmp_path))
        try:
            parent = sanitizer.clock_snapshot()
            sanitizer.worker_init(str(tmp_path), parent)
            sanitizer.record_event("attach", "seg")
            sanitizer.record_event("view", "seg", "codes:a")
            sanitizer.flush_worker_events()
            loaded = sanitizer.load_spool(str(tmp_path))
        finally:
            sanitizer.disable()
        assert [e.kind for e in loaded] == ["attach", "view"]
        assert loaded[1].key == "codes:a"

    def test_merge_clock_takes_componentwise_max(self, tmp_path):
        sanitizer.enable(str(tmp_path))
        try:
            sanitizer.record_event("create", "seg")
            sanitizer.merge_clock(((999999, 7),))
            snap = dict(sanitizer.clock_snapshot())
        finally:
            sanitizer.disable()
        assert snap[999999] == 7


class TestTraceIntegration:
    def test_emit_to_tracer_uses_per_pid_host_tracks(self):
        from repro.pim.trace import Tracer

        tracer = Tracer()
        emit_to_tracer(_clean_lifecycle(), tracer)
        names = tracer.host_track_names()
        assert "arena pid 1" in names and "arena pid 2" in names
        assert len(tracer.events) == len(_clean_lifecycle())
        # Zero-duration markers keep the tracer's own invariants intact.
        assert tracecheck.check_tracer(tracer) == []


class TestRunSanitize:
    def test_clean_repo_reports_zero_findings(self):
        """The regression gate: the shipped data plane sanitizes clean."""
        findings, stats = run_sanitize()
        assert findings == []
        assert stats["num_processes"] >= 3  # owner + 2 workers attached
        assert stats["kinds"]["attach"] >= 2
        assert stats["kinds"]["unlink"] == 1
        assert stats["kinds"]["create"] == 1

    def test_trace_export(self, tmp_path):
        path = str(tmp_path / "arena_trace.json")
        findings, _stats = run_sanitize(trace_path=path)
        assert findings == []
        assert tracecheck.check_chrome_trace(path) == []

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError, match="config"):
            run_sanitize(config="nope")
