import numpy as np
import pytest

from repro.pim.config import DpuConfig
from repro.pim.dpu import Dpu, KernelCost
from repro.pim.isa import InstructionMix
from repro.pim.memory import MemoryTraffic


@pytest.fixture()
def dpu():
    return Dpu(0, DpuConfig())


class TestComputeCycles:
    def test_add_costs_one_cycle(self, dpu):
        assert dpu.compute_cycles(InstructionMix(add=100)) == 100

    def test_mul_costs_32(self, dpu):
        assert dpu.compute_cycles(InstructionMix(mul=1)) == 32

    def test_underfilled_pipeline_slower(self):
        full = Dpu(0, DpuConfig(num_tasklets=16))
        under = Dpu(1, DpuConfig(num_tasklets=4))
        mix = InstructionMix(add=1000)
        assert under.compute_cycles(mix) > full.compute_cycles(mix)

    def test_compute_scale_speeds_up(self):
        base = Dpu(0, DpuConfig())
        fast = Dpu(1, DpuConfig(compute_scale=2.0))
        mix = InstructionMix(add=1000, mul=10)
        assert fast.compute_cycles(mix) == base.compute_cycles(mix) / 2


class TestMramCycles:
    def test_sequential_bandwidth(self, dpu):
        cfg = dpu.config
        t = MemoryTraffic(sequential_read=cfg.mram_bandwidth_bytes_per_s / cfg.frequency_hz * 100)
        assert dpu.mram_cycles(t) == pytest.approx(100)

    def test_random_is_derated(self, dpu):
        seq = MemoryTraffic(sequential_read=1e6)
        rand = MemoryTraffic(random_read=1e6)
        assert dpu.mram_cycles(rand) > dpu.mram_cycles(seq)

    def test_transaction_setup_charged(self, dpu):
        t = MemoryTraffic(transactions=10)
        assert dpu.mram_cycles(t) == 10 * dpu.config.mram_dma_setup_cycles


class TestCharge:
    def test_max_of_compute_and_memory(self, dpu):
        compute_heavy = KernelCost(
            kernel="DC", instructions=InstructionMix(add=1_000_000)
        )
        cycles = dpu.charge(compute_heavy)
        assert cycles == pytest.approx(1_000_000)

    def test_memory_bound_kernel(self, dpu):
        mem_heavy = KernelCost(
            kernel="DC",
            instructions=InstructionMix(add=10),
            traffic=MemoryTraffic(sequential_read=1e9),
        )
        cycles = dpu.charge(mem_heavy)
        assert cycles == pytest.approx(dpu.mram_cycles(mem_heavy.traffic))

    def test_ledger_accumulates_per_kernel(self, dpu):
        dpu.charge(KernelCost(kernel="LC", instructions=InstructionMix(add=100)))
        dpu.charge(KernelCost(kernel="LC", instructions=InstructionMix(add=50)))
        dpu.charge(KernelCost(kernel="DC", instructions=InstructionMix(add=25)))
        assert dpu.cycles_by_kernel["LC"] == 150
        assert dpu.cycles_by_kernel["DC"] == 25
        assert dpu.total_cycles == 175

    def test_total_seconds(self, dpu):
        dpu.charge(KernelCost(kernel="X", instructions=InstructionMix(add=450)))
        assert dpu.total_seconds == pytest.approx(1e-6)

    def test_reset_keeps_memory(self, dpu):
        dpu.mram.store("a", np.zeros(10, dtype=np.uint8))
        dpu.charge(KernelCost(kernel="X", instructions=InstructionMix(add=1)))
        dpu.reset_ledger()
        assert dpu.total_cycles == 0
        assert "a" in dpu.mram


class TestKernelCost:
    def test_merge(self):
        a = KernelCost(kernel="LC", instructions=InstructionMix(add=1))
        b = KernelCost(kernel="LC", instructions=InstructionMix(add=2))
        assert a.merged_with(b).instructions.add == 3

    def test_merge_different_kernels_rejected(self):
        a = KernelCost(kernel="LC")
        b = KernelCost(kernel="DC")
        with pytest.raises(ValueError):
            a.merged_with(b)
