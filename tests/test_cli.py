"""CLI tests — invoke cli.main() directly and inspect stdout."""

import json

import pytest

from repro.cli import main


class TestInfo:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "sift-like-20k" in out
        assert "MRAM" in out


class TestModel:
    def test_model_paper_scale(self, capsys):
        rc = main(
            [
                "model",
                "--points", "100000000",
                "--queries", "10000",
                "--nlist", "16384",
                "--nprobe", "96",
                "--m", "16",
                "--cb", "256",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "modeled speedup" in out
        assert "QPS" in out

    def test_model_with_mul_slower(self, capsys):
        common = [
            "model", "--points", "1000000", "--queries", "100",
            "--nlist", "1024", "--nprobe", "8", "--m", "16",
        ]
        main(common)
        fast = capsys.readouterr().out
        main(common + ["--with-mul"])
        slow = capsys.readouterr().out

        def pim_ms(s):
            line = [l for l in s.splitlines() if l.startswith("pim ")][0]
            return float(line.split(":")[1].strip().split()[0])

        assert pim_ms(slow) >= pim_ms(fast)


class TestBuildSearch:
    def test_build_then_search(self, tmp_path, capsys):
        out_path = str(tmp_path / "idx.npz")
        rc = main(
            [
                "build", "--preset", "sift-like-20k", "--out", out_path,
                "--nlist", "64", "--m", "16", "--cb", "32",
            ]
        )
        assert rc == 0
        assert "wrote" in capsys.readouterr().out

        rc = main(
            [
                "search", "--preset", "sift-like-20k", "--index", out_path,
                "--nlist", "64", "--nprobe", "4", "--m", "16", "--cb", "32",
                "--dpus", "4", "--queries", "30",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "recall@10" in out
        assert "qps=" in out

    def test_search_no_balance(self, capsys):
        rc = main(
            [
                "search", "--preset", "sift-like-20k", "--nlist", "32",
                "--nprobe", "4", "--m", "16", "--cb", "32",
                "--dpus", "4", "--queries", "20", "--no-balance",
            ]
        )
        assert rc == 0


class TestTune:
    def test_tune_finds_config(self, capsys):
        rc = main(
            [
                "tune", "--preset", "sift-like-20k", "--constraint", "0.5",
                "--iterations", "4", "--dpus", "8",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "best:" in out

    def test_tune_infeasible(self, capsys):
        rc = main(
            [
                "tune", "--preset", "sift-like-20k", "--constraint", "0.999",
                "--iterations", "2", "--dpus", "8",
            ]
        )
        assert rc == 1


class TestServe:
    def test_serve_reports_latency(self, capsys):
        rc = main(
            [
                "serve", "--preset", "sift-like-20k", "--rate", "5000",
                "--queries", "60", "--dpus", "4", "--nlist", "32",
                "--nprobe", "4", "--m", "16", "--cb", "32",
                "--batch-size", "16",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "p99" in out and "utilization" in out


class TestCharacterize:
    def test_characterize(self, capsys):
        rc = main(
            ["characterize", "--preset", "sift-like-20k", "--nlist", "32"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "intrinsic dimension" in out
        assert "imbalance" in out
        assert "zipf" in out


class TestFrontier:
    def test_frontier_prints_knee(self, capsys):
        rc = main(["frontier", "--preset", "sift-like-20k", "--dpus", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "knee" in out
        assert "recall@10" in out


class TestParser:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_required(self):
        with pytest.raises(SystemExit):
            main(["build", "--preset", "x"])  # --out missing

    def test_alias_flags_parse(self, capsys):
        """Hidden long-form aliases map onto the canonical flags."""
        rc = main(
            [
                "model", "--num-points", "1000000", "--queries", "100",
                "--nlist", "1024", "--nprobe", "8", "--num-subspaces", "16",
                "--codebook-size", "256", "--topk", "10",
            ]
        )
        assert rc == 0
        assert "modeled speedup" in capsys.readouterr().out


ENVELOPE_KEYS = {"command", "config", "results", "metrics"}


class TestJsonEnvelope:
    """Every subcommand's --json output is one machine-readable object."""

    def _payload(self, capsys, argv):
        rc = main(argv)
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # stdout is pure JSON
        assert set(payload) == ENVELOPE_KEYS
        return rc, payload, captured.err

    def test_info(self, capsys):
        rc, payload, err = self._payload(capsys, ["info", "--json"])
        assert rc == 0
        assert payload["command"] == "info"
        assert "sift-like-20k" in payload["results"]["presets"]

    def test_model(self, capsys):
        rc, payload, _ = self._payload(
            capsys,
            [
                "model", "--json", "--points", "1000000", "--queries", "100",
                "--nlist", "1024", "--nprobe", "8", "--m", "16",
            ],
        )
        assert rc == 0
        assert payload["results"]["speedup"] > 0
        assert payload["config"]["index"]["nlist"] == 1024

    def test_search_carries_metrics_and_config(self, capsys):
        rc, payload, err = self._payload(
            capsys,
            [
                "search", "--json", "--preset", "sift-like-20k",
                "--nlist", "32", "--nprobe", "4", "--m", "16", "--cb", "32",
                "--dpus", "4", "--queries", "20",
            ],
        )
        assert rc == 0
        assert payload["command"] == "search"
        assert 0.0 < payload["results"]["recall_at_k"] <= 1.0
        # --json switches observability on: the envelope carries metrics.
        metrics = payload["metrics"]
        assert metrics is not None
        hist_names = {h["name"] for h in metrics["histograms"]}
        assert "drimann_phase_seconds" in hist_names
        # The engine config echoed in the envelope round-trips.
        from repro.core.config import EngineConfig

        engine_d = payload["config"]["engine"]
        assert EngineConfig.from_dict(engine_d).to_dict() == engine_d
        # Human chatter stays on stderr.
        assert "recall@10" in err

    def test_serve_metrics_out(self, capsys, tmp_path):
        out = tmp_path / "m.json"
        rc, payload, _ = self._payload(
            capsys,
            [
                "serve", "--json", "--metrics-out", str(out),
                "--preset", "sift-like-20k", "--rate", "5000",
                "--queries", "40", "--dpus", "4", "--nlist", "32",
                "--nprobe", "4", "--m", "16", "--cb", "32",
                "--batch-size", "16",
            ],
        )
        assert rc == 0
        assert payload["results"]["num_queries"] == 40
        written = json.loads(out.read_text())
        names = {s["name"] for group in written.values() for s in group}
        assert "drimann_serving_latency_seconds" in names
        assert "drimann_scheduler_tasks_total" in names
        assert "drimann_faults_dead_dpus" in names

    def test_text_mode_has_no_metrics_overhead(self, capsys):
        """Without --json/--profile/--metrics-out, search runs obs-off."""
        rc = main(
            [
                "search", "--preset", "sift-like-20k", "--nlist", "32",
                "--nprobe", "4", "--m", "16", "--cb", "32",
                "--dpus", "4", "--queries", "10",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "recall@10" in out

    def test_search_profile_prints_phase_table(self, capsys):
        rc = main(
            [
                "search", "--profile", "--preset", "sift-like-20k",
                "--nlist", "32", "--nprobe", "4", "--m", "16", "--cb", "32",
                "--dpus", "4", "--queries", "20",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "phase" in out and "DC" in out
