"""CLI tests — invoke cli.main() directly and inspect stdout."""

import pytest

from repro.cli import main


class TestInfo:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "sift-like-20k" in out
        assert "MRAM" in out


class TestModel:
    def test_model_paper_scale(self, capsys):
        rc = main(
            [
                "model",
                "--points", "100000000",
                "--queries", "10000",
                "--nlist", "16384",
                "--nprobe", "96",
                "--m", "16",
                "--cb", "256",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "modeled speedup" in out
        assert "QPS" in out

    def test_model_with_mul_slower(self, capsys):
        common = [
            "model", "--points", "1000000", "--queries", "100",
            "--nlist", "1024", "--nprobe", "8", "--m", "16",
        ]
        main(common)
        fast = capsys.readouterr().out
        main(common + ["--with-mul"])
        slow = capsys.readouterr().out

        def pim_ms(s):
            line = [l for l in s.splitlines() if l.startswith("pim ")][0]
            return float(line.split(":")[1].strip().split()[0])

        assert pim_ms(slow) >= pim_ms(fast)


class TestBuildSearch:
    def test_build_then_search(self, tmp_path, capsys):
        out_path = str(tmp_path / "idx.npz")
        rc = main(
            [
                "build", "--preset", "sift-like-20k", "--out", out_path,
                "--nlist", "64", "--m", "16", "--cb", "32",
            ]
        )
        assert rc == 0
        assert "wrote" in capsys.readouterr().out

        rc = main(
            [
                "search", "--preset", "sift-like-20k", "--index", out_path,
                "--nlist", "64", "--nprobe", "4", "--m", "16", "--cb", "32",
                "--dpus", "4", "--queries", "30",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "recall@10" in out
        assert "qps=" in out

    def test_search_no_balance(self, capsys):
        rc = main(
            [
                "search", "--preset", "sift-like-20k", "--nlist", "32",
                "--nprobe", "4", "--m", "16", "--cb", "32",
                "--dpus", "4", "--queries", "20", "--no-balance",
            ]
        )
        assert rc == 0


class TestTune:
    def test_tune_finds_config(self, capsys):
        rc = main(
            [
                "tune", "--preset", "sift-like-20k", "--constraint", "0.5",
                "--iterations", "4", "--dpus", "8",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "best:" in out

    def test_tune_infeasible(self, capsys):
        rc = main(
            [
                "tune", "--preset", "sift-like-20k", "--constraint", "0.999",
                "--iterations", "2", "--dpus", "8",
            ]
        )
        assert rc == 1


class TestServe:
    def test_serve_reports_latency(self, capsys):
        rc = main(
            [
                "serve", "--preset", "sift-like-20k", "--rate", "5000",
                "--queries", "60", "--dpus", "4", "--nlist", "32",
                "--nprobe", "4", "--m", "16", "--cb", "32",
                "--batch-size", "16",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "p99" in out and "utilization" in out


class TestCharacterize:
    def test_characterize(self, capsys):
        rc = main(
            ["characterize", "--preset", "sift-like-20k", "--nlist", "32"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "intrinsic dimension" in out
        assert "imbalance" in out
        assert "zipf" in out


class TestFrontier:
    def test_frontier_prints_knee(self, capsys):
        rc = main(["frontier", "--preset", "sift-like-20k", "--dpus", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "knee" in out
        assert "recall@10" in out


class TestParser:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_required(self):
        with pytest.raises(SystemExit):
            main(["build", "--preset", "x"])  # --out missing
