import numpy as np
import pytest

from repro.pim.memory import CapacityError, MemoryTraffic, Mram, Wram


class TestBudgetedStore:
    def test_store_and_load(self):
        m = Mram(1024)
        arr = np.arange(10, dtype=np.int64)
        m.store("a", arr)
        np.testing.assert_array_equal(m.load("a"), arr)
        assert m.used_bytes == 80

    def test_capacity_enforced(self):
        m = Wram(64)
        with pytest.raises(CapacityError, match="WRAM"):
            m.store("big", np.zeros(100, dtype=np.uint8))

    def test_replace_adjusts_usage(self):
        m = Mram(1024)
        m.store("a", np.zeros(64, dtype=np.uint8))
        m.store("a", np.zeros(32, dtype=np.uint8))
        assert m.used_bytes == 32

    def test_replace_respects_budget(self):
        m = Wram(64)
        m.store("a", np.zeros(60, dtype=np.uint8))
        with pytest.raises(CapacityError):
            m.store("a", np.zeros(65, dtype=np.uint8))

    def test_delete_frees(self):
        m = Mram(1024)
        m.store("a", np.zeros(100, dtype=np.uint8))
        m.delete("a")
        assert m.used_bytes == 0
        assert "a" not in m

    def test_missing_key(self):
        m = Mram(64)
        with pytest.raises(KeyError):
            m.load("nope")
        with pytest.raises(KeyError):
            m.delete("nope")

    def test_clear(self):
        m = Mram(1024)
        m.store("a", np.zeros(10, dtype=np.uint8))
        m.clear()
        assert m.used_bytes == 0

    def test_default_capacities(self):
        assert Mram().capacity_bytes == 64 * 1024 * 1024
        assert Wram().capacity_bytes == 64 * 1024

    def test_free_bytes(self):
        m = Wram(100)
        m.store("a", np.zeros(30, dtype=np.uint8))
        assert m.free_bytes == 70


class TestMemoryTraffic:
    def test_add(self):
        a = MemoryTraffic(sequential_read=10, random_read=5, transactions=1)
        b = MemoryTraffic(sequential_read=2, sequential_write=3, transactions=2)
        c = a + b
        assert c.sequential_read == 12
        assert c.sequential_write == 3
        assert c.random_read == 5
        assert c.transactions == 3

    def test_total_bytes(self):
        t = MemoryTraffic(
            sequential_read=1, sequential_write=2, random_read=3, random_write=4
        )
        assert t.total_bytes() == 10
