"""The mutable index lifecycle: add/delete/compact on the quantized
index and the engine, the save/load round trip against the frozen
goldens, crash-mid-compaction recovery, and the observability hooks.

The load-bearing invariant throughout: every mutation path must leave
the engine bit-identical to ``reference_search`` on the same quantized
state — ids, distances, *and* (for save/load and compaction, which
claim to reproduce the layout) the per-kernel cycle ledger.
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DrimAnnEngine, EngineConfig, LayoutConfig, SearchParams
from repro.core.persist import load_index, save_index
from repro.core.quantized import QuantizedIndexData
from repro.faults.disk import CrashPoint, SimulatedCrash
from repro.pim.config import PimSystemConfig
from repro.testing.goldens import (
    CANONICAL_CONFIGS,
    build_canonical_engine,
    canonical_dataset,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "fixtures", "golden_cycles.json"
)


def _fresh_quantized(small_quantized):
    """A private deep copy — the session fixture must never be mutated."""
    return small_quantized.compact()


def _engine(quantized, params, *, execution="batched", plan="auto",
            num_dpus=8, obs=None):
    ds = canonical_dataset()
    kwargs = {}
    if obs is not None:
        kwargs["obs"] = obs
    config = EngineConfig(
        index=params,
        search=SearchParams(batch_size=32, execution=execution, plan=plan),
        system=PimSystemConfig(num_dpus=num_dpus),
        layout=LayoutConfig(min_split_size=400, max_copies=2),
        **kwargs,
    )
    return DrimAnnEngine.from_quantized(
        quantized, config, heat_queries=ds.queries[:50], seed=0
    )


def _assert_matches_reference(engine, queries):
    res, _ = engine.search(queries)
    ref = engine.reference_search(queries)
    np.testing.assert_array_equal(res.ids, ref.ids)
    np.testing.assert_array_equal(res.distances, ref.distances)
    return res


# ---------------------------------------------------------------- quantized
class TestQuantizedLifecycle:
    def test_encode_assigns_and_codes(self, small_quantized, small_ds):
        vecs = small_ds.base[:16]
        assign, codes = small_quantized.encode(vecs)
        assert assign.shape == (16,)
        assert codes.shape == (16, small_quantized.num_subspaces)
        assert assign.min() >= 0 and assign.max() < small_quantized.nlist

    def test_add_then_search_finds_new_points(
        self, small_quantized, small_ds
    ):
        quant = _fresh_quantized(small_quantized)
        rng = np.random.default_rng(3)
        vecs = rng.integers(0, 256, size=(8, quant.dim), dtype=np.int64).astype(
            np.uint8
        )
        n_before = quant.num_points
        new_ids, assign = quant.add(vecs)
        assert quant.num_points == n_before + 8
        np.testing.assert_array_equal(
            new_ids, np.arange(n_before, n_before + 8)
        )
        # An exact-match query must surface the added point.
        res = quant.reference_search(vecs[:1], 1, quant.nlist)
        assert res.ids[0, 0] == new_ids[0]

    def test_add_rejects_duplicate_ids(self, small_quantized):
        quant = _fresh_quantized(small_quantized)
        vecs = np.zeros((1, quant.dim), dtype=np.uint8)
        with pytest.raises(ValueError, match="id"):
            quant.add(vecs, ids=np.array([0]))  # id 0 already exists

    def test_delete_hides_points_from_search(self, small_quantized, small_ds):
        quant = _fresh_quantized(small_quantized)
        q = small_ds.queries[:10]
        before = quant.reference_search(q, 10, 8)
        victims = np.unique(before.ids[before.ids >= 0])[:20]
        assert quant.delete(victims) == len(victims)
        after = quant.reference_search(q, 10, 8)
        assert not np.intersect1d(after.ids, victims).size

    def test_delete_is_idempotent(self, small_quantized):
        quant = _fresh_quantized(small_quantized)
        victim = quant.cluster_ids[0][:1]
        assert quant.delete(victim) == 1
        assert quant.delete(victim) == 0
        assert quant.num_tombstones == 1

    def test_compact_drops_tombstones(self, small_quantized):
        quant = _fresh_quantized(small_quantized)
        victims = quant.cluster_ids[0][:5]
        quant.delete(victims)
        n_live = quant.num_live_points
        compacted = quant.compact()
        assert compacted.num_points == n_live
        assert compacted.num_tombstones == 0
        assert not np.intersect1d(
            np.concatenate(compacted.cluster_ids), victims
        ).size

    def test_compact_preserves_search(self, small_quantized, small_ds):
        quant = _fresh_quantized(small_quantized)
        q = small_ds.queries[:20]
        quant.delete(np.unique(quant.reference_search(q, 5, 4).ids)[:10])
        before = quant.reference_search(q, 10, 8)
        compacted = quant.compact()
        after = compacted.reference_search(q, 10, 8)
        np.testing.assert_array_equal(before.ids, after.ids)
        np.testing.assert_array_equal(before.distances, after.distances)


class TestLifecycleProperty:
    @settings(deadline=None, max_examples=20)
    @given(data=st.data())
    def test_add_delete_compact_equals_build_from_survivors(self, data):
        """add -> delete -> compact == from_vectors(survivors)."""
        rng = np.random.default_rng(
            data.draw(st.integers(0, 2**31 - 1), label="seed")
        )
        nlist, m, cb, dsub = 4, 2, 16, 3
        centroids = rng.integers(
            0, 256, size=(nlist, m * dsub), dtype=np.int64
        ).astype(np.uint8)
        codebooks = rng.integers(
            -200, 200, size=(m, cb, dsub), dtype=np.int64
        ).astype(np.int16)
        n = data.draw(st.integers(1, 40), label="n")
        vectors = rng.integers(
            0, 256, size=(n, m * dsub), dtype=np.int64
        ).astype(np.uint8)

        quant = QuantizedIndexData.from_vectors(centroids, codebooks, vectors)
        num_dead = data.draw(st.integers(0, n - 1), label="num_dead")
        dead = np.asarray(
            sorted(rng.choice(n, size=num_dead, replace=False)), dtype=np.int64
        )
        assert quant.delete(dead) == num_dead
        compacted = quant.compact()

        survivors = np.setdiff1d(np.arange(n), dead)
        rebuilt = QuantizedIndexData.from_vectors(
            centroids, codebooks, vectors[survivors], ids=survivors
        )
        assert compacted.num_points == rebuilt.num_points
        for a, b in zip(compacted.cluster_ids, rebuilt.cluster_ids):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(compacted.cluster_codes, rebuilt.cluster_codes):
            np.testing.assert_array_equal(a, b)


# ---------------------------------------------------------------- engine
class TestEngineMutation:
    @pytest.mark.parametrize("execution", ["batched", "chunked", "per_query"])
    def test_delete_stays_bitexact(
        self, small_quantized, small_ds, small_params, execution
    ):
        quant = _fresh_quantized(small_quantized)
        engine = _engine(quant, small_params, execution=execution)
        q = small_ds.queries[:40]
        try:
            first = engine.search(q)[0]
            victims = np.unique(first.ids[first.ids >= 0])[:30]
            assert engine.delete(victims) == len(victims)
            res = _assert_matches_reference(engine, q)
            assert not np.intersect1d(res.ids, victims).size
        finally:
            engine.close()

    @pytest.mark.parametrize("plan", ["serial", "vectorized"])
    def test_delete_stays_bitexact_across_plans(
        self, small_quantized, small_ds, small_params, plan
    ):
        quant = _fresh_quantized(small_quantized)
        engine = _engine(quant, small_params, plan=plan)
        q = small_ds.queries[:30]
        try:
            engine.delete(np.arange(0, 3000, 7))
            _assert_matches_reference(engine, q)
        finally:
            engine.close()

    def test_delete_reduces_ts_but_not_dc_cycles(
        self, small_quantized, small_ds, small_params
    ):
        """Tombstones shrink the top-k (TS) work but the scan (DC) still
        reads every stored row — the ledger must charge honestly."""
        q = small_ds.queries[:30]
        quant_a = _fresh_quantized(small_quantized)
        engine_a = _engine(quant_a, small_params)
        try:
            bd_clean = engine_a.search(q)[1]
        finally:
            engine_a.close()
        quant_b = _fresh_quantized(small_quantized)
        engine_b = _engine(quant_b, small_params)
        try:
            engine_b.delete(np.arange(0, 8000, 2))
            bd_tomb = engine_b.search(q)[1]
        finally:
            engine_b.close()
        assert bd_tomb.kernel_cycles["DC"] == bd_clean.kernel_cycles["DC"]
        assert bd_tomb.kernel_cycles["TS"] < bd_clean.kernel_cycles["TS"]

    def test_add_stays_bitexact(self, small_quantized, small_ds, small_params):
        quant = _fresh_quantized(small_quantized)
        engine = _engine(quant, small_params)
        rng = np.random.default_rng(11)
        vecs = rng.integers(
            0, 256, size=(32, quant.dim), dtype=np.int64
        ).astype(np.uint8)
        try:
            new_ids = engine.add(vecs)
            assert len(new_ids) == 32
            _assert_matches_reference(engine, small_ds.queries[:40])
            # The added vectors are reachable through the engine.
            res = engine.search(vecs[:4])[0]
            assert np.intersect1d(res.ids, new_ids).size
        finally:
            engine.close()

    def test_add_then_delete_then_compact(
        self, small_quantized, small_ds, small_params
    ):
        quant = _fresh_quantized(small_quantized)
        engine = _engine(quant, small_params)
        rng = np.random.default_rng(13)
        q = small_ds.queries[:30]
        try:
            new_ids = engine.add(
                rng.integers(0, 256, size=(16, quant.dim), dtype=np.int64)
                .astype(np.uint8)
            )
            engine.delete(new_ids[:8])
            engine.delete(np.arange(0, 2000, 3))
            before = engine.search(q)[0]
            stats = engine.compact()
            assert stats["removed_tombstones"] == 8 + len(np.arange(0, 2000, 3))
            assert engine.quantized.num_tombstones == 0
            after = _assert_matches_reference(engine, q)
            np.testing.assert_array_equal(before.ids, after.ids)
            np.testing.assert_array_equal(before.distances, after.distances)
        finally:
            engine.close()

    def test_unload_guards_search(self, small_quantized, small_params):
        quant = _fresh_quantized(small_quantized)
        engine = _engine(quant, small_params)
        engine.unload()
        engine.unload()  # idempotent
        with pytest.raises(RuntimeError, match="unloaded"):
            engine.search(np.zeros((1, 128), dtype=np.uint8))


# ---------------------------------------------------------------- durability
class TestSaveLoadGoldenMatrix:
    """``save -> load`` must reproduce the frozen goldens: the loaded
    engine is the *same* engine, down to the cycle ledger."""

    @pytest.fixture(scope="class")
    def goldens(self):
        with open(GOLDEN_PATH) as f:
            return json.load(f)

    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_loaded_engine_matches_golden_cycles(
        self, name, goldens, tmp_path
    ):
        c = CANONICAL_CONFIGS[name]
        ds = canonical_dataset()
        engine = build_canonical_engine(
            name, index_path=str(tmp_path / f"{name}.drim")
        )
        try:
            res, bd = engine.search(ds.queries[: c["num_queries"]])
        finally:
            engine.close()
        want = goldens[name]["kernel_cycles"]
        got = {k: v for k, v in sorted(bd.kernel_cycles.items())}
        assert got == pytest.approx(want), (
            f"save/load round trip drifted from the golden ledger for "
            f"{name!r}"
        )

    @pytest.mark.parametrize("execution", ["batched", "chunked", "per_query"])
    @pytest.mark.parametrize("plan", ["serial", "vectorized"])
    def test_loaded_engine_bitexact_per_mode(
        self, execution, plan, tmp_path
    ):
        name = "split-replicated"
        ds = canonical_dataset()
        q = ds.queries[:40]
        direct = build_canonical_engine(name, execution=execution, plan=plan)
        try:
            res_a, bd_a = direct.search(q)
        finally:
            direct.close()
        loaded = build_canonical_engine(
            name,
            execution=execution,
            plan=plan,
            index_path=str(tmp_path / "rt.drim"),
        )
        try:
            res_b, bd_b = loaded.search(q)
        finally:
            loaded.close()
        np.testing.assert_array_equal(res_a.ids, res_b.ids)
        np.testing.assert_array_equal(res_a.distances, res_b.distances)
        assert bd_a.kernel_cycles == bd_b.kernel_cycles

    def test_tombstoned_roundtrip_bitexact(
        self, small_quantized, small_ds, small_params, tmp_path
    ):
        quant = _fresh_quantized(small_quantized)
        engine = _engine(quant, small_params)
        q = small_ds.queries[:30]
        path = str(tmp_path / "t.drim")
        try:
            engine.delete(np.arange(0, 5000, 4))
            res_a, bd_a = engine.search(q)
            engine.save(path)
        finally:
            engine.close()
        loaded = DrimAnnEngine.load(path, config=engine._config)
        try:
            assert loaded.quantized.num_tombstones == quant.num_tombstones
            res_b, bd_b = loaded.search(q)
        finally:
            loaded.close()
        np.testing.assert_array_equal(res_a.ids, res_b.ids)
        np.testing.assert_array_equal(res_a.distances, res_b.distances)
        assert bd_a.kernel_cycles == bd_b.kernel_cycles

    def test_load_rejects_mismatched_config(
        self, small_quantized, small_params, tmp_path
    ):
        from dataclasses import replace

        path = str(tmp_path / "c.drim")
        save_index(small_quantized, path)
        bad = EngineConfig(index=replace(small_params, nlist=32))
        with pytest.raises(ValueError, match="nlist"):
            DrimAnnEngine.load(path, config=bad)

    def test_load_without_config_derives_one(
        self, small_quantized, tmp_path
    ):
        path = str(tmp_path / "d.drim")
        save_index(small_quantized, path)
        engine = DrimAnnEngine.load(path)
        try:
            assert engine.params.nlist == small_quantized.nlist
            res, _ = engine.search(
                np.zeros((2, small_quantized.dim), dtype=np.uint8)
            )
            assert res.ids.shape == (2, engine.params.k)
        finally:
            engine.close()


class TestCrashMidCompaction:
    def test_crashed_compaction_recovers(
        self, small_quantized, small_ds, small_params, tmp_path
    ):
        quant = _fresh_quantized(small_quantized)
        engine = _engine(quant, small_params)
        q = small_ds.queries[:20]
        path = str(tmp_path / "idx.drim")
        try:
            engine.save(path)
            before_bytes = open(path, "rb").read()
            engine.delete(np.arange(0, 3000, 5))
            res_before = engine.search(q)[0]
            with CrashPoint("staged"):
                with pytest.raises(SimulatedCrash):
                    engine.compact()
            # The on-disk index is the pre-compaction file, intact.
            assert open(path, "rb").read() == before_bytes
            load_index(path)
            # The in-memory engine is still the tombstoned one and still
            # answers bit-identically.
            assert engine.quantized.num_tombstones > 0
            res_after = _assert_matches_reference(engine, q)
            np.testing.assert_array_equal(res_before.ids, res_after.ids)
            # A retry (post-"restart") succeeds and drops the tombstones.
            stats = engine.compact()
            assert stats["removed_tombstones"] == len(np.arange(0, 3000, 5))
            assert load_index(path).num_tombstones == 0
        finally:
            engine.close()


class TestObservability:
    def test_load_and_tombstone_metrics(
        self, small_quantized, small_params, small_ds, tmp_path
    ):
        from repro.obs import ObsConfig

        path = str(tmp_path / "o.drim")
        save_index(_fresh_quantized(small_quantized), path)
        config = EngineConfig(
            index=small_params,
            search=SearchParams(batch_size=32),
            system=PimSystemConfig(num_dpus=8),
            layout=LayoutConfig(min_split_size=400, max_copies=2),
            obs=ObsConfig(enabled=True),
        )
        engine = DrimAnnEngine.load(path, config=config)
        try:
            engine.delete(np.arange(0, 1000, 2))
            snap = engine.observer.snapshot()
            series = {
                s["labels"].get("phase")
                for s in snap.series("drimann_index_load_seconds")
            }
            assert {"open", "assemble"} <= series
            gauges = snap.series("drimann_index_tombstone_ratio")
            assert gauges and gauges[0]["value"] == pytest.approx(
                engine.quantized.tombstone_ratio
            )
        finally:
            engine.close()
