"""CLI tests for the ``repro index`` lifecycle group."""

import json

import pytest

from repro.cli import main

BUILD_ARGS = ["--nlist", "64", "--m", "16", "--cb", "32"]


def _payload(capsys):
    captured = capsys.readouterr()
    return json.loads(captured.out), captured.err


@pytest.fixture(scope="module")
def v2_index(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("idx") / "idx.drim")
    assert main(["index", "build", "--out", path] + BUILD_ARGS) == 0
    return path


class TestIndexBuild:
    def test_build_json_envelope(self, tmp_path, capsys):
        out = str(tmp_path / "idx.drim")
        rc = main(["index", "build", "--json", "--out", out] + BUILD_ARGS)
        assert rc == 0
        payload, _ = _payload(capsys)
        assert payload["command"] == "index build"
        assert payload["config"]["format"] == "v2"
        assert payload["results"]["num_points"] == 20000
        assert payload["results"]["nlist"] == 64

    def test_build_v1_format(self, tmp_path, capsys):
        out = str(tmp_path / "idx.npz")
        rc = main(
            ["index", "build", "--json", "--format", "v1", "--out", out]
            + BUILD_ARGS
        )
        assert rc == 0
        payload, _ = _payload(capsys)
        assert payload["results"]["format"] == "v1"
        # legacy container really is a NumPy archive
        assert open(out, "rb").read(2) == b"PK"

    def test_deprecated_build_alias_still_works(self, tmp_path, capsys):
        out = str(tmp_path / "idx.npz")
        rc = main(["build", "--preset", "sift-like-20k", "--out", out]
                  + BUILD_ARGS)
        assert rc == 0
        assert "wrote" in capsys.readouterr().out


class TestIndexInfo:
    def test_info_text(self, v2_index, capsys):
        assert main(["index", "info", v2_index]) == 0
        out = capsys.readouterr().out
        assert "20000 points" in out
        assert "tombstones: 0" in out

    def test_info_json(self, v2_index, capsys):
        assert main(["index", "info", "--json", v2_index]) == 0
        payload, _ = _payload(capsys)
        assert payload["command"] == "index info"
        info = payload["results"]
        assert info["container"] == "drimidx2"
        assert info["num_points"] == 20000
        assert info["num_tombstones"] == 0
        assert "segments" in info

    def test_info_json_reports_optional_segments(self, v2_index, capsys):
        assert main(["index", "info", "--json", v2_index]) == 0
        payload, _ = _payload(capsys)
        info = payload["results"]
        assert set(info["optional_segments"]) == {
            "cluster_heat", "opq_rotation", "cluster_radii",
        }
        # CLI builds persist the adaptive radii segment.
        assert info["has_cluster_radii"] is True
        assert info["optional_segments"]["cluster_radii"] is True
        for name, present in info["optional_segments"].items():
            assert present == (name in info["segments"])

    def test_info_json_radii_less_file(self, v2_index, tmp_path, capsys):
        from repro.core.persist import load_index, save_index

        quant = load_index(v2_index, mmap=False)
        bare = str(tmp_path / "bare.drim")
        save_index(quant, bare)  # no optional payloads
        assert main(["index", "info", "--json", bare]) == 0
        payload, _ = _payload(capsys)
        info = payload["results"]
        assert info["has_cluster_radii"] is False
        assert info["optional_segments"]["cluster_radii"] is False

    def test_info_text_mentions_radii(self, v2_index, capsys):
        assert main(["index", "info", v2_index]) == 0
        assert "radii: yes" in capsys.readouterr().out


class TestIndexVerify:
    def test_verify_clean(self, v2_index, capsys):
        assert main(["index", "verify", v2_index]) == 0
        assert "OK" in capsys.readouterr().out

    def test_verify_corrupted_exits_nonzero(self, v2_index, tmp_path,
                                            capsys):
        from repro.core.persist import index_info

        bad = tmp_path / "bad.drim"
        raw = bytearray(open(v2_index, "rb").read())
        seg = index_info(v2_index)["segments"]["codes_flat"]
        raw[seg["offset"]] ^= 0xFF
        bad.write_bytes(bytes(raw))
        rc = main(["index", "verify", "--json", str(bad)])
        assert rc == 1
        payload, _ = _payload(capsys)
        assert payload["results"]["ok"] is False
        assert any("codes_flat" in e for e in payload["results"]["errors"])


class TestIndexCompact:
    def test_compact_out_of_place(self, v2_index, tmp_path, capsys):
        from repro.core.persist import load_index, save_index

        # stage a tombstoned copy so compaction has work to do
        quant = load_index(v2_index, mmap=False)
        quant = quant.compact()  # private writable copy
        quant.delete([0, 1, 2])
        src = str(tmp_path / "tomb.drim")
        save_index(quant, src)

        out = str(tmp_path / "compacted.drim")
        rc = main(["index", "compact", "--json", src, "--out", out])
        assert rc == 0
        payload, _ = _payload(capsys)
        assert payload["results"]["removed_tombstones"] == 3
        assert payload["results"]["num_points"] == 19997

        from repro.core.persist import index_info
        assert index_info(out)["num_tombstones"] == 0
        # the source was left untouched
        assert index_info(src)["num_tombstones"] == 3

    def test_compact_in_place(self, v2_index, tmp_path, capsys):
        import shutil

        from repro.core.persist import index_info

        path = str(tmp_path / "idx.drim")
        shutil.copyfile(v2_index, path)
        rc = main(["index", "compact", path])
        assert rc == 0
        assert "dropped 0 tombstones" in capsys.readouterr().out
        assert index_info(path)["num_tombstones"] == 0


class TestSearchWithV2Index:
    def test_search_loads_v2_file(self, v2_index, capsys):
        rc = main(
            [
                "search", "--preset", "sift-like-20k", "--index", v2_index,
                "--nlist", "64", "--nprobe", "4", "--m", "16", "--cb", "32",
                "--dpus", "4", "--queries", "20",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "recall@10" in out

    @pytest.mark.parametrize("mode", ["bound", "budget"])
    def test_search_adaptive_json_envelope(self, v2_index, capsys, mode):
        rc = main(
            [
                "search", "--json", "--preset", "sift-like-20k",
                "--index", v2_index, "--adaptive", mode,
                "--nlist", "64", "--nprobe", "8", "--m", "16", "--cb", "32",
                "--dpus", "4", "--queries", "20",
            ]
        )
        assert rc == 0
        payload, _ = _payload(capsys)
        rep = payload["results"]["adaptive"]
        assert rep["mode"] == mode
        assert rep["nprobe_max"] == 8
        assert 0 < rep["total_probes_executed"] <= 20 * 8
        assert sum(rep["stop_reasons"].values()) == 20

    def test_search_adaptive_off_reports_null(self, v2_index, capsys):
        rc = main(
            [
                "search", "--json", "--preset", "sift-like-20k",
                "--index", v2_index, "--adaptive", "off",
                "--nlist", "64", "--nprobe", "4", "--m", "16", "--cb", "32",
                "--dpus", "4", "--queries", "10",
            ]
        )
        assert rc == 0
        payload, _ = _payload(capsys)
        assert payload["results"]["adaptive"] is None
        assert payload["config"]["engine"]["search"]["adaptive"] == "off"
