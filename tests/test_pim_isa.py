
from repro.pim.isa import InstructionMix, IsaCostModel


class TestInstructionMix:
    def test_add(self):
        a = InstructionMix(add=3, mul=1)
        b = InstructionMix(add=2, load=4)
        c = a + b
        assert c.add == 5 and c.mul == 1 and c.load == 4

    def test_scaled(self):
        m = InstructionMix(add=2, compare=3).scaled(2.5)
        assert m.add == 5.0 and m.compare == 7.5

    def test_total(self):
        assert InstructionMix(add=1, mul=2, load=3).total() == 6


class TestIsaCostModel:
    def test_mul_is_32x_add(self):
        """The paper's headline ISA fact."""
        isa = IsaCostModel()
        only_add = IsaCostModel().issue_slots(InstructionMix(add=1))
        only_mul = isa.issue_slots(InstructionMix(mul=1))
        assert only_mul == 32 * only_add

    def test_issue_slots_linear(self):
        isa = IsaCostModel()
        m = InstructionMix(add=10, mul=2, load=5, store=3, compare=4, control=1)
        expect = 10 + 2 * 32 + 5 + 3 + 4 + 1
        assert isa.issue_slots(m) == expect

    def test_uniform_isa_for_cpu(self):
        isa = IsaCostModel(mul_cost=1.0)
        assert isa.issue_slots(InstructionMix(mul=7)) == 7

    def test_div_cost(self):
        assert IsaCostModel().issue_slots(InstructionMix(div=1)) == 64
