import numpy as np
import pytest

from repro.ann import IVFPQIndex, recall_at_k
from repro.ann.ivfpq import SearchResult


class TestBuild:
    def test_codes_aligned_with_lists(self, small_index):
        for ids, codes in zip(small_index.ivf.lists, small_index.codes):
            assert len(ids) == len(codes)

    def test_all_points_encoded(self, small_index, small_ds):
        assert small_index.num_points == small_ds.num_base

    def test_properties(self, small_index, small_ds):
        assert small_index.nlist == 64
        assert small_index.dim == small_ds.dim

    def test_misaligned_codes_rejected(self, small_index):
        bad_codes = list(small_index.codes)
        bad_codes[0] = bad_codes[0][:-1]
        with pytest.raises(ValueError, match="ids but"):
            IVFPQIndex(
                ivf=small_index.ivf, pq=small_index.pq, codes=bad_codes
            )


class TestSearch:
    def test_result_shapes(self, small_index, small_ds):
        res = small_index.search(small_ds.queries[:20], k=10, nprobe=4)
        assert res.ids.shape == (20, 10)
        assert res.distances.shape == (20, 10)

    def test_distances_ascending(self, small_index, small_ds):
        res = small_index.search(small_ds.queries[:20], k=10, nprobe=4)
        d = res.distances
        assert (np.diff(d, axis=1) >= 0).all()

    def test_reasonable_recall(self, small_index, small_ds):
        res = small_index.search(small_ds.queries, k=10, nprobe=16)
        rec = recall_at_k(res.ids, small_ds.ground_truth, 10)
        assert rec > 0.5

    def test_recall_grows_with_nprobe(self, small_index, small_ds):
        r1 = recall_at_k(
            small_index.search(small_ds.queries, k=10, nprobe=1).ids,
            small_ds.ground_truth,
            10,
        )
        r16 = recall_at_k(
            small_index.search(small_ds.queries, k=10, nprobe=16).ids,
            small_ds.ground_truth,
            10,
        )
        assert r16 >= r1

    def test_candidates_come_from_probed_clusters(self, small_index, small_ds):
        q = small_ds.queries[:5]
        nprobe = 3
        res = small_index.search(q, k=10, nprobe=nprobe)
        probes = small_index.ivf.locate(q.astype(np.float64), nprobe)
        for qi in range(5):
            allowed = np.concatenate(
                [small_index.ivf.lists[c] for c in probes[qi]]
            )
            got = res.ids[qi][res.ids[qi] >= 0]
            assert np.isin(got, allowed).all()

    def test_k_larger_than_candidates_pads(self, small_ds):
        idx = IVFPQIndex.build(
            small_ds.base[:500], nlist=8, num_subspaces=8, codebook_size=16, seed=0
        )
        res = idx.search(small_ds.queries[:3], k=200, nprobe=1)
        assert (res.ids == -1).any() or np.isfinite(res.distances).all()

    def test_query_dim_mismatch(self, small_index):
        with pytest.raises(ValueError, match="dim"):
            small_index.search(np.zeros((2, 7)), k=5, nprobe=2)

    def test_invalid_k(self, small_index, small_ds):
        with pytest.raises(ValueError):
            small_index.search(small_ds.queries[:1], k=0, nprobe=2)


class TestOpqVariant:
    def test_opq_build_and_search(self, small_ds):
        idx = IVFPQIndex.build(
            small_ds.base[:2000],
            nlist=16,
            num_subspaces=16,
            codebook_size=32,
            use_opq=True,
            seed=0,
        )
        assert idx.rotation is not None
        res = idx.search(small_ds.queries[:10], k=5, nprobe=4)
        assert res.ids.shape == (10, 5)


class TestSearchResult:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            SearchResult(ids=np.zeros((2, 3), dtype=np.int64), distances=np.zeros((2, 4)))

    def test_k_property(self):
        r = SearchResult(
            ids=np.zeros((2, 7), dtype=np.int64), distances=np.zeros((2, 7))
        )
        assert r.k == 7
