"""Documentation consistency: paths named in the docs must exist.

Keeps DESIGN.md's system inventory and per-experiment index, and the
README's example table, from silently rotting as the code moves.
"""

import os
import re


ROOT = os.path.join(os.path.dirname(__file__), os.pardir)


def _read(name: str) -> str:
    with open(os.path.join(ROOT, name)) as f:
        return f.read()


class TestDesignMd:
    def test_module_paths_exist(self):
        text = _read("DESIGN.md")
        # Paths like `repro/core/layout.py` inside backticks.
        paths = set(re.findall(r"`(repro/[\w/]+\.py)`", text))
        assert paths, "DESIGN.md inventory should name module paths"
        for p in paths:
            full = os.path.join(ROOT, "src", p)
            assert os.path.exists(full), f"DESIGN.md names missing module {p}"

    def test_bench_targets_exist(self):
        text = _read("DESIGN.md")
        benches = set(re.findall(r"`(benchmarks/[\w]+\.py)`", text))
        assert benches
        for b in benches:
            assert os.path.exists(os.path.join(ROOT, b)), f"missing {b}"

    def test_every_paper_figure_has_a_bench(self):
        """Figures 2 and 6-13 each map to a bench file."""
        have = set(os.listdir(os.path.join(ROOT, "benchmarks")))
        for fig in ("02", "06", "07", "08", "09", "10a", "10b", "11", "12", "13"):
            assert any(
                f.startswith(f"bench_fig{fig}") for f in have
            ), f"no bench for figure {fig}"


class TestReadme:
    def test_example_scripts_exist(self):
        text = _read("README.md")
        scripts = set(re.findall(r"`(\w+\.py)`", text))
        for s in scripts:
            assert os.path.exists(
                os.path.join(ROOT, "examples", s)
            ), f"README names missing example {s}"

    def test_docs_files_exist(self):
        for doc in (
            "architecture.md",
            "performance_model.md",
            "simulator_fidelity.md",
            "usage.md",
            "data_model.md",
            "api.md",
            "static_analysis.md",
            "index_lifecycle.md",
            "testing.md",
        ):
            assert os.path.exists(os.path.join(ROOT, "docs", doc))

    def test_top_level_files(self):
        for f in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "LICENSE",
                  "CONTRIBUTING.md", "pyproject.toml"):
            assert os.path.exists(os.path.join(ROOT, f))


class TestAdaptiveDocs:
    """The adaptive-probing surface must stay documented end to end."""

    def test_cli_flag_matches_engine_modes(self):
        """docs/usage.md documents --adaptive with the real mode names."""
        from repro.core.params import ADAPTIVE_MODES

        text = _read(os.path.join("docs", "usage.md"))
        assert "--adaptive" in text
        for mode in ADAPTIVE_MODES:
            assert f'"{mode}"' in text or f"`{mode}`" in text, (
                f"usage.md does not document adaptive mode {mode!r}"
            )

    def test_search_params_fields_documented(self):
        text = _read(os.path.join("docs", "usage.md"))
        for field in ("adaptive", "nprobe_min", "adaptive_gap"):
            assert field in text

    def test_performance_model_covers_bound_and_ledger(self):
        text = _read(os.path.join("docs", "performance_model.md"))
        for token in (
            "cluster_radii",
            "BOUND_SLACK",
            "ledger honesty",
            "bench_adaptive",
        ):
            assert token in text, f"performance_model.md missing {token!r}"

    def test_testing_md_covers_conformance_suite(self):
        text = _read(os.path.join("docs", "testing.md"))
        for token in (
            "Ledger honesty",
            "golden_adaptive.json",
            "test_adaptive.py",
        ):
            assert token in text, f"testing.md missing {token!r}"
        # The fixture the doc names must exist.
        assert os.path.exists(
            os.path.join(ROOT, "tests", "fixtures", "golden_adaptive.json")
        )

    def test_cli_parser_exposes_adaptive_choices(self):
        """The actual argparse surface agrees with ADAPTIVE_MODES."""
        from repro.cli import _build_parser
        from repro.core.params import ADAPTIVE_MODES

        parser = _build_parser()
        args = parser.parse_args(
            ["search", "--preset", "sift-like-20k", "--adaptive", "bound"]
        )
        assert args.adaptive == "bound"
        for mode in ADAPTIVE_MODES:
            parser.parse_args(
                ["search", "--preset", "sift-like-20k", "--adaptive", mode]
            )


class TestExperimentsMd:
    def test_every_figure_row_present(self):
        text = _read("EXPERIMENTS.md")
        for token in (
            "Fig. 2", "Fig. 6(a)", "Fig. 6(b)", "Fig. 7", "Fig. 8(a)",
            "Fig. 8(b)", "Fig. 9", "Fig. 10(a)", "Fig. 10(b)",
            "Fig. 11(a)", "Fig. 11(b)", "Fig. 12(a)", "Fig. 12(b)",
            "Fig. 13", "GPU comparison",
        ):
            assert token in text, f"EXPERIMENTS.md missing {token}"

    def test_deviations_documented(self):
        text = _read("EXPERIMENTS.md")
        for d in ("D1", "D2", "D3", "D4", "D5", "D6"):
            assert f"**{d}" in text
