import pytest

from repro.pim.config import TransferConfig
from repro.pim.transfer import HostTransferModel


@pytest.fixture()
def xfer():
    return HostTransferModel(TransferConfig(host_bandwidth_bytes_per_s=1e9, launch_latency_s=1e-5))


class TestPricing:
    def test_scatter_time(self, xfer):
        t = xfer.scatter("x", 1e9)
        assert t == pytest.approx(1.0 + 1e-5)

    def test_broadcast_charged_once(self, xfer):
        t = xfer.broadcast("lut", 1000, num_dpus=64)
        assert t == pytest.approx(1000 / 1e9 + 1e-5)

    def test_gather(self, xfer):
        t = xfer.gather("results", 2e9)
        assert t == pytest.approx(2.0 + 1e-5)

    def test_launch_latency_floor(self, xfer):
        assert xfer.scatter("tiny", 0) == pytest.approx(1e-5)

    def test_negative_rejected(self, xfer):
        with pytest.raises(ValueError):
            xfer.scatter("bad", -1)


class TestChannels:
    def test_scatter_scales_with_channels(self):
        one = HostTransferModel(
            TransferConfig(host_bandwidth_bytes_per_s=1e9, num_channels=1, launch_latency_s=0.0)
        )
        four = HostTransferModel(
            TransferConfig(host_bandwidth_bytes_per_s=1e9, num_channels=4, launch_latency_s=0.0)
        )
        assert four.scatter("x", 4e9) == pytest.approx(one.scatter("x", 4e9) / 4)

    def test_broadcast_bounded_by_one_channel(self):
        four = HostTransferModel(
            TransferConfig(host_bandwidth_bytes_per_s=1e9, num_channels=4, launch_latency_s=0.0)
        )
        assert four.broadcast("lut", 1e9, num_dpus=8) == pytest.approx(1.0)

    def test_gather_channel_parallel(self):
        four = HostTransferModel(
            TransferConfig(host_bandwidth_bytes_per_s=1e9, num_channels=4, launch_latency_s=0.0)
        )
        assert four.gather("r", 4e9) == pytest.approx(1.0)

    def test_channel_validation(self):
        with pytest.raises(ValueError):
            TransferConfig(num_channels=0)

    def test_aggregate_bandwidth(self):
        cfg = TransferConfig(host_bandwidth_bytes_per_s=2e9, num_channels=3)
        assert cfg.aggregate_bandwidth == pytest.approx(6e9)


class TestLog:
    def test_events_logged(self, xfer):
        xfer.scatter("a", 100)
        xfer.gather("b", 200)
        assert len(xfer.events) == 2
        assert xfer.events[0].kind == "scatter"
        assert xfer.total_bytes == 300

    def test_total_seconds(self, xfer):
        xfer.scatter("a", 1e9)
        xfer.scatter("b", 1e9)
        assert xfer.total_seconds == pytest.approx(2.0 + 2e-5)

    def test_reset(self, xfer):
        xfer.scatter("a", 100)
        xfer.reset()
        assert xfer.events == [] and xfer.total_seconds == 0
