"""Property-based tests on layout generation and runtime scheduling.

The invariants here are the correctness backbone of the load balancer:
no matter how clusters are split, duplicated, or allocated, and no
matter what the scheduler decides, every task must execute exactly once
over exactly the right points.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.layout import LayoutConfig, generate_layout
from repro.core.quantized import QuantizedIndexData
from repro.core.scheduler import RuntimeScheduler, SchedulerConfig


def _make_index(cluster_sizes, dim=8, m=2, cb=4, seed=0):
    rng = np.random.default_rng(seed)
    ids = []
    codes = []
    next_id = 0
    for n in cluster_sizes:
        ids.append(np.arange(next_id, next_id + n, dtype=np.int64))
        codes.append(rng.integers(0, cb, size=(n, m)).astype(np.uint8))
        next_id += n
    return QuantizedIndexData(
        centroids=rng.integers(0, 255, size=(len(cluster_sizes), dim)).astype(np.uint8),
        codebooks=rng.integers(-100, 100, size=(m, cb, dim // m)).astype(np.int16),
        cluster_ids=ids,
        cluster_codes=codes,
    )


sizes_strategy = st.lists(st.integers(0, 300), min_size=1, max_size=20)
layout_strategy = st.builds(
    LayoutConfig,
    min_split_size=st.one_of(st.none(), st.integers(1, 200)),
    max_copies=st.integers(0, 3),
    dup_budget_per_dpu=st.integers(0, 1 << 20),
    allocation=st.sampled_from(["heat_greedy", "id_order"]),
)


class TestLayoutProperties:
    @given(sizes_strategy, layout_strategy, st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_every_replica_covers_every_point_once(self, sizes, cfg, num_dpus):
        index = _make_index(sizes)
        heat = index.cluster_sizes().astype(float) + 1.0
        plan = generate_layout(index, num_dpus, heat, cfg)
        for cid, n in enumerate(sizes):
            for group in plan.replica_groups[cid]:
                rows = (
                    np.concatenate([plan.shards[k].point_rows for k in group])
                    if group
                    else np.empty(0, dtype=int)
                )
                assert sorted(rows.tolist()) == list(range(n))

    @given(sizes_strategy, layout_strategy, st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_every_shard_is_placed_on_a_valid_dpu(self, sizes, cfg, num_dpus):
        index = _make_index(sizes)
        heat = index.cluster_sizes().astype(float) + 1.0
        plan = generate_layout(index, num_dpus, heat, cfg)
        assert set(plan.placement) == set(plan.shards)
        assert all(0 <= d < num_dpus for d in plan.placement.values())

    @given(sizes_strategy, st.integers(1, 200), st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_split_sizes_bounded(self, sizes, threshold, num_dpus):
        index = _make_index(sizes)
        heat = index.cluster_sizes().astype(float) + 1.0
        plan = generate_layout(
            index,
            num_dpus,
            heat,
            LayoutConfig(min_split_size=threshold, max_copies=0),
        )
        for shard in plan.shards.values():
            assert shard.num_points <= threshold or shard.part_id == 0


class TestSchedulerProperties:
    @given(
        sizes_strategy,
        st.integers(1, 16),
        st.lists(st.integers(0, 50), min_size=0, max_size=60),
        st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_task_conservation(self, sizes, num_dpus, query_ids, use_filter):
        """Every (query, cluster) task lands in assignments or deferred,
        with the full part set of exactly one replica."""
        index = _make_index(sizes)
        heat = index.cluster_sizes().astype(float) + 1.0
        plan = generate_layout(
            index,
            num_dpus,
            heat,
            LayoutConfig(min_split_size=100, max_copies=1),
        )
        sched = RuntimeScheduler(
            plan,
            SchedulerConfig(
                lut_latency=100.0,
                per_point_calc=3.0,
                per_point_sort=1.0,
                filter_threshold=1.2 if use_filter else None,
            ),
        )
        rng = np.random.default_rng(0)
        # The engine never issues duplicate (query, cluster) tasks (a
        # query's probes are distinct clusters); keep that precondition.
        tasks = list(
            {(q, int(rng.integers(0, len(sizes)))) for q in query_ids}
        )
        outcome = sched.schedule_batch(tasks)

        # Group assigned shards back into (query, cluster) part sets.
        from collections import defaultdict

        got = defaultdict(set)
        for dpu, items in outcome.assignments.items():
            for q, key in items:
                shard = plan.shards[key]
                got[(q, shard.cluster_id, shard.replica_id)].add(shard.part_id)

        executed = defaultdict(int)
        for (q, cid, rep), parts in got.items():
            expected = {
                plan.shards[k].part_id for k in plan.replica_groups[cid][rep]
            }
            assert parts == expected, "partial replica execution"
            executed[(q, cid)] += 1

        from collections import Counter

        want = Counter(tasks)
        deferred = Counter(outcome.deferred)
        for task, count in want.items():
            assert executed.get(task, 0) + deferred.get(task, 0) == count

    @given(sizes_strategy, st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_predicted_load_nonnegative(self, sizes, num_dpus):
        index = _make_index(sizes)
        heat = index.cluster_sizes().astype(float) + 1.0
        plan = generate_layout(index, num_dpus, heat, LayoutConfig())
        sched = RuntimeScheduler(
            plan,
            SchedulerConfig(lut_latency=10.0, per_point_calc=1.0, per_point_sort=1.0),
        )
        outcome = sched.schedule_batch([(0, 0), (1, 0)])
        assert (outcome.predicted_load >= 0).all()
