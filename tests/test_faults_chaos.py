import pytest

from repro.faults.chaos import ChaosConfig, run_chaos


@pytest.fixture(scope="module")
def smoke_dup():
    return run_chaos(ChaosConfig.smoke(duplicate=True, seed=0))


@pytest.fixture(scope="module")
def smoke_nodup():
    return run_chaos(ChaosConfig.smoke(duplicate=False, seed=0))


class TestConfig:
    def test_empty_rates_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(fail_stop_rates=())

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            ChaosConfig(fail_stop_rates=(0.0, 1.5))


class TestAcceptance:
    def test_control_arm_is_exact(self, smoke_dup):
        p0 = smoke_dup.point_at(0.0)
        assert p0.exact
        assert p0.recall == 1.0
        assert p0.dead_dpus == 0

    def test_failstop_with_duplication_keeps_recall(self, smoke_dup):
        """5% fail-stop + duplication: recall within 1% of fault-free."""
        p = smoke_dup.point_at(0.05)
        assert p.dead_dpus > 0
        assert p.recall >= smoke_dup.point_at(0.0).recall - 0.01
        assert p.availability == 1.0
        assert p.task_retries > 0

    def test_failstop_without_duplication_degrades_not_crashes(
        self, smoke_nodup
    ):
        """Same fault rate, no replicas: degraded fraction, no raise."""
        p = smoke_nodup.point_at(0.05)
        assert p.dead_dpus > 0
        assert p.degraded_fraction > 0.0
        assert p.availability < 1.0
        assert p.recall > 0.0  # partial results, not empty output

    def test_unknown_rate_raises_keyerror(self, smoke_dup):
        with pytest.raises(KeyError):
            smoke_dup.point_at(0.42)


class TestDeterminism:
    def test_same_config_same_report(self, smoke_dup):
        again = run_chaos(ChaosConfig.smoke(duplicate=True, seed=0))
        assert again.to_dict() == smoke_dup.to_dict()

    def test_seed_changes_plan(self):
        a = run_chaos(ChaosConfig.smoke(seed=0))
        b = run_chaos(ChaosConfig.smoke(seed=3))
        assert a.to_dict() != b.to_dict()


class TestReportSurface:
    def test_summary_has_header_and_rows(self, smoke_dup):
        text = smoke_dup.summary()
        assert "chaos sweep" in text
        assert "recall@k" in text
        assert len(text.splitlines()) == 2 + len(smoke_dup.points)

    def test_to_dict_round_trips_config(self, smoke_dup):
        d = smoke_dup.to_dict()
        assert d["config"]["num_dpus"] == 32
        assert len(d["points"]) == len(smoke_dup.points)
