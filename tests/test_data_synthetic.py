import numpy as np
import pytest

from repro.data.synthetic import (
    SyntheticSpec,
    deep_like_spec,
    make_clustered_dataset,
    sift_like_spec,
)


class TestSpecValidation:
    def test_defaults_ok(self):
        SyntheticSpec(num_vectors=100, dim=16)

    @pytest.mark.parametrize(
        "kw",
        [
            dict(num_vectors=0, dim=16),
            dict(num_vectors=10, dim=0),
            dict(num_vectors=10, dim=16, num_components=0),
            dict(num_vectors=10, dim=16, dtype="int32"),
            dict(num_vectors=10, dim=16, intrinsic_dim=0),
            dict(num_vectors=10, dim=16, micro_per_component=0),
            dict(num_vectors=10, dim=16, micro_spread_ratio=0.0),
            dict(num_vectors=10, dim=16, size_skew=-1),
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            SyntheticSpec(**kw)

    def test_presets(self):
        assert sift_like_spec(1000).dim == 128
        assert deep_like_spec(1000).dim == 96


class TestGeneration:
    def test_shapes_and_dtype(self):
        spec = SyntheticSpec(num_vectors=500, dim=32, num_components=8)
        ds = make_clustered_dataset(spec, num_queries=20, seed=0)
        assert ds.base.shape == (500, 32)
        assert ds.base.dtype == np.uint8
        assert ds.queries.shape == (20, 32)

    def test_deterministic(self):
        spec = SyntheticSpec(num_vectors=200, dim=16, num_components=4)
        a = make_clustered_dataset(spec, seed=5).base
        b = make_clustered_dataset(spec, seed=5).base
        np.testing.assert_array_equal(a, b)

    def test_seeds_differ(self):
        spec = SyntheticSpec(num_vectors=200, dim=16, num_components=4)
        a = make_clustered_dataset(spec, seed=5).base
        b = make_clustered_dataset(spec, seed=6).base
        assert not np.array_equal(a, b)

    def test_value_range_respected(self):
        spec = SyntheticSpec(
            num_vectors=300, dim=16, num_components=4, value_range=(10, 100)
        )
        ds = make_clustered_dataset(spec, seed=0)
        assert ds.base.min() >= 10 and ds.base.max() <= 100

    def test_float32_mode(self):
        spec = SyntheticSpec(num_vectors=100, dim=8, num_components=4, dtype="float32")
        assert make_clustered_dataset(spec, seed=0).base.dtype == np.float32

    def test_metadata_assignments(self):
        spec = SyntheticSpec(num_vectors=100, dim=8, num_components=4)
        ds = make_clustered_dataset(spec, seed=0)
        assign = ds.metadata["component_assignments"]
        assert assign.shape == (100,)
        assert assign.min() >= 0 and assign.max() < 4

    def test_size_skew_creates_imbalance(self):
        even = SyntheticSpec(num_vectors=5000, dim=8, num_components=16, size_skew=0.0)
        skew = SyntheticSpec(num_vectors=5000, dim=8, num_components=16, size_skew=1.5)
        ceven = np.bincount(
            make_clustered_dataset(even, seed=0).metadata["component_assignments"],
            minlength=16,
        )
        cskew = np.bincount(
            make_clustered_dataset(skew, seed=0).metadata["component_assignments"],
            minlength=16,
        )
        assert cskew.std() > 2 * ceven.std()

    def test_clusters_are_separable(self):
        """Points of one component should be nearer their own mates."""
        spec = SyntheticSpec(num_vectors=1000, dim=32, num_components=4, spread=0.5)
        ds = make_clustered_dataset(spec, seed=0)
        assign = ds.metadata["component_assignments"]
        x = ds.base.astype(np.float64)
        cents = np.stack([x[assign == c].mean(axis=0) for c in range(4)])
        d = ((x[:, None, :] - cents[None]) ** 2).sum(-1)
        nearest = d.argmin(axis=1)
        assert (nearest == assign).mean() > 0.9

    def test_full_rank_mode(self):
        spec = SyntheticSpec(
            num_vectors=100, dim=8, num_components=4, intrinsic_dim=None
        )
        ds = make_clustered_dataset(spec, seed=0)
        assert ds.base.shape == (100, 8)

    def test_query_skew_tilts_distribution(self):
        spec = SyntheticSpec(num_vectors=100, dim=8, num_components=8)
        ds = make_clustered_dataset(spec, num_queries=500, query_skew=2.0, seed=0)
        assert ds.queries is not None
