import pytest

from repro.core.accuracy import AccuracyTable, measure_accuracy_table
from repro.core.params import IndexParams


class TestAccuracyTable:
    def test_record_and_lookup(self):
        t = AccuracyTable()
        p = IndexParams(nlist=64, nprobe=8, k=10, num_subspaces=16)
        t.record(p, 0.85)
        assert t.lookup(p) == 0.85
        assert p in t

    def test_lookup_missing(self):
        t = AccuracyTable()
        p = IndexParams(nlist=64, nprobe=8, k=10, num_subspaces=16)
        with pytest.raises(KeyError):
            t.lookup(p)

    def test_invalid_recall(self):
        t = AccuracyTable()
        p = IndexParams(nlist=64, nprobe=8, k=10, num_subspaces=16)
        with pytest.raises(ValueError):
            t.record(p, 1.2)

    def test_satisfying(self):
        t = AccuracyTable()
        p1 = IndexParams(nlist=64, nprobe=8, k=10, num_subspaces=16)
        p2 = p1.replace(nprobe=16)
        t.record(p1, 0.7)
        t.record(p2, 0.9)
        assert len(t.satisfying(0.8)) == 1


class TestMeasure:
    @pytest.fixture(scope="class")
    def table(self, small_ds):
        return measure_accuracy_table(
            small_ds.base,
            small_ds.queries[:60],
            small_ds.ground_truth[:60],
            nlist_values=[32],
            nprobe_values=[2, 8],
            m_values=[16],
            cb_values=[64],
            k=10,
            seed=0,
        )

    def test_grid_covered(self, table):
        assert len(table.entries) == 2

    def test_recall_monotone_in_nprobe(self, table):
        p2 = IndexParams(nlist=32, nprobe=2, k=10, num_subspaces=16, codebook_size=64)
        p8 = p2.replace(nprobe=8)
        assert table.lookup(p8) >= table.lookup(p2) - 0.02

    def test_nprobe_beyond_nlist_skipped(self, small_ds):
        t = measure_accuracy_table(
            small_ds.base[:2000],
            small_ds.queries[:20],
            small_ds.ground_truth[:20],
            nlist_values=[4],
            nprobe_values=[2, 8],
            m_values=[16],
            cb_values=[16],
            seed=0,
        )
        assert len(t.entries) == 1  # nprobe=8 > nlist=4 skipped
