"""Golden cycle-count regression: any drift in the cost model fails.

The canonical configurations' per-kernel and end-to-end cycle counts
are frozen in ``tests/fixtures/golden_cycles.json``. These tests
re-run each config and require *exact* equality with the stored
values: an unintended change anywhere in the kernel cost closed
forms, charging order, scheduler, or layout shows up as a diff here.

If a change is *supposed* to move the numbers (cost-model fix, new
kernel term), regenerate with ``python tools/update_goldens.py`` and
review the new values in the diff — see docs/testing.md.
"""

import json
import os

import pytest

from repro.testing import CANONICAL_CONFIGS, run_canonical

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "fixtures", "golden_cycles.json"
)


@pytest.fixture(scope="module")
def goldens():
    with open(GOLDEN_PATH) as f:
        return json.load(f)


@pytest.fixture(scope="module")
def fresh_runs():
    return {name: run_canonical(name) for name in CANONICAL_CONFIGS}


class TestGoldenCycles:
    def test_all_canonical_configs_present(self, goldens):
        assert sorted(goldens) == sorted(CANONICAL_CONFIGS)

    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_per_kernel_cycles_frozen(self, name, goldens, fresh_runs):
        got = fresh_runs[name]["kernel_cycles"]
        want = goldens[name]["kernel_cycles"]
        assert got == want, (
            f"kernel cycle drift in {name!r}.\n"
            f"  stored: {want}\n  fresh:  {got}\n"
            "If intentional, regenerate via tools/update_goldens.py."
        )

    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_end_to_end_cycles_frozen(self, name, goldens, fresh_runs):
        fresh = fresh_runs[name]
        stored = goldens[name]
        assert fresh["total_kernel_cycles"] == stored["total_kernel_cycles"]
        assert fresh["e2e_cycles_max_dpu"] == stored["e2e_cycles_max_dpu"]
        assert fresh["e2e_cycles_sum"] == stored["e2e_cycles_sum"]

    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_kernel_set_is_complete(self, name, fresh_runs):
        assert set(fresh_runs[name]["kernel_cycles"]) == {
            "RC", "LC", "DC", "TS"
        }

    def test_updater_check_mode_agrees(self, goldens, fresh_runs):
        """tools/update_goldens.py --check and this suite must use the
        same data: a fresh run serialized like the tool writes it must
        equal the stored file."""
        assert goldens == json.loads(json.dumps(fresh_runs))


class TestGoldenCyclesAcrossPlans:
    """Cycle accounting is independent of the data-plane strategy.

    The execution planner only moves host wall-clock; the charged
    cycles (and recall) must equal the stored goldens for every plan,
    including the worker pool (run with 2 workers so it engages).
    """

    @pytest.mark.parametrize("plan", ["serial", "vectorized", "pool", "auto"])
    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_plans_reproduce_goldens(self, name, plan, goldens):
        workers = 2 if plan in ("pool", "auto") else 0
        fresh = run_canonical(name, plan=plan, shard_workers=workers)
        stored = goldens[name]
        assert fresh["recall_at_10"] == stored["recall_at_10"]
        assert fresh["kernel_cycles"] == stored["kernel_cycles"], (
            f"kernel cycle drift in {name!r} under plan={plan!r}"
        )
        assert fresh["total_kernel_cycles"] == stored["total_kernel_cycles"]
        assert fresh["e2e_cycles_max_dpu"] == stored["e2e_cycles_max_dpu"]
        assert fresh["e2e_cycles_sum"] == stored["e2e_cycles_sum"]
