"""Golden cycle-count regression: any drift in the cost model fails.

The canonical configurations' per-kernel and end-to-end cycle counts
are frozen in ``tests/fixtures/golden_cycles.json``. These tests
re-run each config and require *exact* equality with the stored
values: an unintended change anywhere in the kernel cost closed
forms, charging order, scheduler, or layout shows up as a diff here.

If a change is *supposed* to move the numbers (cost-model fix, new
kernel term), regenerate with ``python tools/update_goldens.py`` and
review the new values in the diff — see docs/testing.md.
"""

import json
import os

import pytest

from repro.testing import (
    CANONICAL_CONFIGS,
    GOLDEN_ADAPTIVE_MODES,
    run_canonical,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "fixtures", "golden_cycles.json"
)
GOLDEN_ADAPTIVE_PATH = os.path.join(
    os.path.dirname(__file__), "fixtures", "golden_adaptive.json"
)


@pytest.fixture(scope="module")
def goldens():
    with open(GOLDEN_PATH) as f:
        return json.load(f)


@pytest.fixture(scope="module")
def fresh_runs():
    return {name: run_canonical(name) for name in CANONICAL_CONFIGS}


class TestGoldenCycles:
    def test_all_canonical_configs_present(self, goldens):
        assert sorted(goldens) == sorted(CANONICAL_CONFIGS)

    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_per_kernel_cycles_frozen(self, name, goldens, fresh_runs):
        got = fresh_runs[name]["kernel_cycles"]
        want = goldens[name]["kernel_cycles"]
        assert got == want, (
            f"kernel cycle drift in {name!r}.\n"
            f"  stored: {want}\n  fresh:  {got}\n"
            "If intentional, regenerate via tools/update_goldens.py."
        )

    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_end_to_end_cycles_frozen(self, name, goldens, fresh_runs):
        fresh = fresh_runs[name]
        stored = goldens[name]
        assert fresh["total_kernel_cycles"] == stored["total_kernel_cycles"]
        assert fresh["e2e_cycles_max_dpu"] == stored["e2e_cycles_max_dpu"]
        assert fresh["e2e_cycles_sum"] == stored["e2e_cycles_sum"]

    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_kernel_set_is_complete(self, name, fresh_runs):
        assert set(fresh_runs[name]["kernel_cycles"]) == {
            "RC", "LC", "DC", "TS"
        }

    def test_updater_check_mode_agrees(self, goldens, fresh_runs):
        """tools/update_goldens.py --check and this suite must use the
        same data: a fresh run serialized like the tool writes it must
        equal the stored file."""
        assert goldens == json.loads(json.dumps(fresh_runs))


class TestGoldenCyclesAcrossPlans:
    """Cycle accounting is independent of the data-plane strategy.

    The execution planner only moves host wall-clock; the charged
    cycles (and recall) must equal the stored goldens for every plan,
    including the worker pool (run with 2 workers so it engages).
    """

    @pytest.mark.parametrize("plan", ["serial", "vectorized", "pool", "auto"])
    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_plans_reproduce_goldens(self, name, plan, goldens):
        workers = 2 if plan in ("pool", "auto") else 0
        fresh = run_canonical(name, plan=plan, shard_workers=workers)
        stored = goldens[name]
        assert fresh["recall_at_10"] == stored["recall_at_10"]
        assert fresh["kernel_cycles"] == stored["kernel_cycles"], (
            f"kernel cycle drift in {name!r} under plan={plan!r}"
        )
        assert fresh["total_kernel_cycles"] == stored["total_kernel_cycles"]
        assert fresh["e2e_cycles_max_dpu"] == stored["e2e_cycles_max_dpu"]
        assert fresh["e2e_cycles_sum"] == stored["e2e_cycles_sum"]


class TestGoldenCyclesAcrossBackends:
    """Results and ledgers are independent of the kernel backend.

    The ``repro.pim.backend`` registry only changes which host code
    computes the scans and LUTs — recall and every frozen cycle count
    must be byte-equal to the goldens for every available backend
    across plans and execution modes (numba joins the axis
    automatically on machines where it is importable).
    """

    @pytest.fixture(scope="class")
    def backends(self):
        from repro.pim.backend import available_backends

        return available_backends()

    def test_numpy_backend_always_available(self, backends):
        assert "numpy" in backends

    @pytest.mark.parametrize("plan", ["serial", "vectorized", "pool", "auto"])
    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_backends_reproduce_goldens(self, name, plan, goldens, backends):
        workers = 2 if plan in ("pool", "auto") else 0
        for backend in backends:
            fresh = run_canonical(
                name, plan=plan, shard_workers=workers,
                kernel_backend=backend,
            )
            stored = goldens[name]
            assert fresh["recall_at_10"] == stored["recall_at_10"]
            assert fresh["kernel_cycles"] == stored["kernel_cycles"], (
                f"kernel cycle drift in {name!r} under plan={plan!r} "
                f"kernel_backend={backend!r}"
            )
            assert (
                fresh["total_kernel_cycles"] == stored["total_kernel_cycles"]
            )
            assert fresh["e2e_cycles_max_dpu"] == stored["e2e_cycles_max_dpu"]
            assert fresh["e2e_cycles_sum"] == stored["e2e_cycles_sum"]

    @pytest.mark.parametrize("execution", ["chunked", "per_query"])
    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_backends_agree_across_executions(
        self, name, execution, backends
    ):
        """Non-batched execution cells aren't frozen, so pin them to a
        same-cell default-backend reference run instead."""
        reference = run_canonical(name, execution=execution)
        for backend in backends:
            fresh = run_canonical(
                name, execution=execution, kernel_backend=backend
            )
            assert json.loads(json.dumps(fresh)) == json.loads(
                json.dumps(reference)
            ), (
                f"backend-dependent drift in {name!r} under "
                f"execution={execution!r} kernel_backend={backend!r}"
            )


class TestGoldenAdaptiveOff:
    """``adaptive="off"`` is the exhaustive engine, bit for bit.

    Requesting the off mode explicitly must reproduce the default
    engine — recall and every cycle count — for every config,
    execution mode, and data-plane plan. Execution modes legitimately
    shift cycle counts (chunking changes batch shapes), so the
    reference for each cell is a default-parameter run of the same
    config × execution; the ``batched`` references are additionally
    tied to the frozen goldens. This pins the guarantee that the
    adaptive machinery cannot perturb the default path (no extra
    charging, no reordered accumulation) anywhere in the matrix.
    """

    @pytest.fixture(scope="class")
    def references(self):
        return {
            (name, execution): run_canonical(name, execution=execution)
            for name in CANONICAL_CONFIGS
            for execution in ("batched", "chunked", "per_query")
        }

    def test_batched_references_match_goldens(self, references, goldens):
        for name in CANONICAL_CONFIGS:
            assert (
                json.loads(json.dumps(references[(name, "batched")]))
                == goldens[name]
            )

    @pytest.mark.parametrize("plan", ["serial", "vectorized", "pool", "auto"])
    @pytest.mark.parametrize("execution", ["batched", "chunked", "per_query"])
    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_off_matches_default_engine(
        self, name, execution, plan, references
    ):
        workers = 2 if plan in ("pool", "auto") else 0
        fresh = run_canonical(
            name,
            execution=execution,
            plan=plan,
            shard_workers=workers,
            adaptive="off",
        )
        stored = references[(name, execution)]
        assert fresh["recall_at_10"] == stored["recall_at_10"]
        assert fresh["kernel_cycles"] == stored["kernel_cycles"], (
            f"kernel cycle drift in {name!r} with adaptive='off' under "
            f"execution={execution!r} plan={plan!r}"
        )
        assert fresh["total_kernel_cycles"] == stored["total_kernel_cycles"]
        assert fresh["e2e_cycles_max_dpu"] == stored["e2e_cycles_max_dpu"]
        assert fresh["e2e_cycles_sum"] == stored["e2e_cycles_sum"]
        # The off path reports no adaptive telemetry at all.
        assert "total_probes_executed" not in fresh


class TestGoldenAdaptive:
    """The ``bound``/``budget`` cells are frozen like everything else.

    Any drift in the bound math, the gap heuristic, or the per-probe
    charging shows up as a cycle or probe-count diff against
    ``tests/fixtures/golden_adaptive.json``.
    """

    @pytest.fixture(scope="class")
    def adaptive_goldens(self):
        with open(GOLDEN_ADAPTIVE_PATH) as f:
            return json.load(f)

    def test_all_cells_present(self, adaptive_goldens):
        assert sorted(adaptive_goldens) == sorted(CANONICAL_CONFIGS)
        for name, modes in adaptive_goldens.items():
            assert sorted(modes) == sorted(GOLDEN_ADAPTIVE_MODES)

    @pytest.mark.parametrize("mode", GOLDEN_ADAPTIVE_MODES)
    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_adaptive_cells_frozen(self, name, mode, adaptive_goldens):
        fresh = run_canonical(name, adaptive=mode)
        stored = adaptive_goldens[name][mode]
        assert json.loads(json.dumps(fresh)) == stored, (
            f"adaptive golden drift in {name!r} mode={mode!r}.\n"
            f"  stored: {stored}\n  fresh:  {fresh}\n"
            "If intentional, regenerate via tools/update_goldens.py."
        )

    @pytest.mark.parametrize("mode", GOLDEN_ADAPTIVE_MODES)
    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_adaptive_never_exceeds_exhaustive_work(
        self, name, mode, adaptive_goldens, goldens
    ):
        """Adaptive cells do at most the exhaustive cells' work and
        record the probe telemetry that justifies the difference."""
        stored = adaptive_goldens[name][mode]
        base = goldens[name]
        assert stored["total_kernel_cycles"] <= base["total_kernel_cycles"]
        max_probes = (
            CANONICAL_CONFIGS[name]["nprobe"] * stored["num_queries"]
        )
        assert 0 < stored["total_probes_executed"] <= max_probes
