"""Kernel-backend registry: dispatch, bit-exactness, fallback, planner.

The acceptance contract of ``repro.pim.backend``: every backend is
bit-identical to the staged reference kernels, selection follows the
per-call > SearchParams > PimSystemConfig > auto precedence, a missing
or mid-flight-failing compiled backend degrades to numpy with a
recorded (never silent) fallback, and none of it can move a cycle
ledger.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.pim.backend as kb
from repro.core import DrimAnnEngine, LayoutConfig, SearchParams
from repro.core.config import EngineConfig
from repro.obs import ObsConfig
from repro.pim.backend import (
    KERNEL_BACKEND_MODES,
    SCAN_TOPK_N_CHUNK,
    KernelBackend,
    available_backends,
    resolve_backend,
    take_fallback_events,
)
from repro.pim.backend import _GuardedBackend, _scan_topk_chunked
from repro.pim.backend.numpy_backend import FUSED_MIN_CELLS, NumpyBackend
from repro.pim.config import PimSystemConfig
from repro.pim.kernels import scan_distances, scan_distances_stacked, topk_rows
from repro.pim.parallel import (
    COMPILED_POOL_FACTOR,
    POOL_MIN_POINTS,
    ExecutionPlanner,
)


def _rng(seed=0):
    return np.random.default_rng(seed)


def _scan_case(rng, g, n, m, cb, code_dtype=np.uint8):
    luts = rng.integers(0, 1 << 20, size=(g, m, cb)).astype(np.int64)
    codes = rng.integers(0, cb, size=(n, m)).astype(code_dtype)
    return luts, codes


def _counter(metrics_dict, name):
    return [c for c in metrics_dict["counters"] if c["name"] == name]


@pytest.fixture(autouse=True)
def _drain_fallback_events():
    """Keep the module-global fallback queue from leaking across tests."""
    take_fallback_events()
    yield
    take_fallback_events()


class TestRegistry:
    def test_numpy_always_listed_first(self):
        names = available_backends()
        assert names and names[0] == "numpy"

    def test_modes_cover_registered_backends(self):
        assert KERNEL_BACKEND_MODES == ("auto", "numpy", "numba")
        for name in available_backends():
            assert name in KERNEL_BACKEND_MODES

    def test_mode_literals_agree_everywhere(self):
        """The literal mode tuples (kept separate to avoid an import
        cycle) must never drift from the registry's canonical one."""
        from repro.core import params as core_params

        assert core_params.KERNEL_BACKEND_MODES == KERNEL_BACKEND_MODES
        with pytest.raises(ValueError, match="kernel_backend"):
            SearchParams(kernel_backend="not-a-backend")
        with pytest.raises(ValueError, match="kernel_backend"):
            PimSystemConfig(kernel_backend="not-a-backend")
        for mode in KERNEL_BACKEND_MODES:
            SearchParams(kernel_backend=mode)
            PimSystemConfig(kernel_backend=mode)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="kernel_backend"):
            resolve_backend("cuda")

    def test_explicit_numpy_resolves_numpy(self):
        assert resolve_backend("numpy").name == "numpy"

    def test_auto_resolves_silently(self):
        backend = resolve_backend("auto")
        assert backend.name in ("numpy", "numba")
        assert take_fallback_events() == []

    def test_missing_numba_degrades_with_event(self, monkeypatch):
        from repro.pim.backend import numba_backend

        def _no_numba():
            raise ImportError("no module named numba (test)")

        monkeypatch.setattr(numba_backend, "_import_numba", _no_numba)
        kb._clear_instances()
        try:
            backend = resolve_backend("numba")
            assert backend.name == "numpy"
            assert take_fallback_events() == ["numba-unavailable"]
            # auto makes no promise, so no event.
            assert resolve_backend("auto").name == "numpy"
            assert take_fallback_events() == []
        finally:
            kb._clear_instances()


class TestBitExactness:
    @pytest.mark.parametrize("code_dtype", [np.uint8, np.uint16])
    @pytest.mark.parametrize("name", available_backends())
    def test_scan_matches_reference(self, name, code_dtype):
        backend = resolve_backend(name)
        rng = _rng(1)
        for g, n in [(1, 1), (3, 40), (32, 2000)]:
            luts, codes = _scan_case(rng, g, n, 8, 64, code_dtype)
            got = backend.scan(luts, codes)
            want = scan_distances(luts, codes)
            assert got.dtype == want.dtype == np.int64
            assert np.array_equal(got, want)

    @pytest.mark.parametrize("name", available_backends())
    def test_scan_stacked_matches_reference(self, name):
        backend = resolve_backend(name)
        rng = _rng(2)
        for j, g, n in [(1, 2, 10), (4, 16, 500), (8, 32, 2000)]:
            luts = rng.integers(0, 1 << 20, size=(j, g, 8, 64)).astype(
                np.int64
            )
            codes = rng.integers(0, 64, size=(j, n, 8)).astype(np.uint8)
            got = backend.scan_stacked(luts, codes)
            want = scan_distances_stacked(luts, codes)
            assert got.dtype == want.dtype == np.int64
            assert np.array_equal(got, want)

    @pytest.mark.parametrize("name", available_backends())
    def test_build_luts_matches_reference(self, name):
        backend = resolve_backend(name)
        rng = _rng(3)
        m, cb, dsub = 8, 32, 4
        residuals = rng.integers(-500, 500, size=(12, m * dsub)).astype(
            np.int32
        )
        codebooks = rng.integers(-255, 255, size=(m, cb, dsub)).astype(
            np.int16
        )
        got = backend.build_luts(residuals, codebooks)
        r = residuals.astype(np.int64).reshape(12, m, 1, dsub)
        want = ((r - codebooks.astype(np.int64)) ** 2).sum(axis=3)
        assert got.dtype == np.int64
        assert np.array_equal(got, want)

    @settings(max_examples=40, deadline=None)
    @given(
        g=st.integers(1, 6),
        n=st.integers(1, 300),
        m=st.integers(1, 8),
        cb=st.sampled_from([4, 32, 256, 300]),
        seed=st.integers(0, 2**16),
    )
    def test_fused_scan_property(self, g, n, m, cb, seed):
        """Fused == staged for arbitrary shapes, incl. uint16 codes
        (CB > 256) and LUT values spanning the int32 gather limit."""
        rng = _rng(seed)
        code_dtype = np.uint8 if cb <= 256 else np.uint16
        high = (1 << 31) if seed % 2 else (1 << 10)
        luts = rng.integers(0, high, size=(g, m, cb)).astype(np.int64)
        codes = rng.integers(0, cb, size=(n, m)).astype(code_dtype)
        backend = NumpyBackend()
        assert np.array_equal(
            backend.scan(luts, codes), scan_distances(luts, codes)
        )

    def test_small_cases_use_staged_kernels_bit_equal(self):
        """Below FUSED_MIN_CELLS the numpy backend delegates to the
        staged kernels; either way the contract is equality."""
        rng = _rng(4)
        g, n = 2, 3
        assert g * n < FUSED_MIN_CELLS
        luts, codes = _scan_case(rng, g, n, 4, 16)
        assert np.array_equal(
            NumpyBackend().scan(luts, codes), scan_distances(luts, codes)
        )


class TestScanTopk:
    def test_small_n_equals_topk_rows(self):
        rng = _rng(5)
        luts, codes = _scan_case(rng, 4, 100, 8, 64)
        ids = rng.permutation(100).astype(np.int64)
        backend = resolve_backend("numpy")
        got = backend.scan_topk(luts, codes, ids, 10)
        want = topk_rows(scan_distances(luts, codes), ids, 10)
        for (gi, gd), (wi, wd) in zip(got, want):
            assert np.array_equal(gi, wi)
            assert np.array_equal(gd, wd)

    def test_chunked_equals_unchunked_unique_distances(self):
        """With untied distances the chunked merge must equal the
        full-matrix path exactly, for any chunk size."""
        rng = _rng(6)
        g, n, k = 3, 700, 16
        # One subspace, codes a permutation of the codebook, distinct
        # LUT values: every row's distances are a permutation, so the
        # total order is untied by construction.
        luts = rng.permutation(g * n).reshape(g, 1, n).astype(np.int64)
        codes = rng.permutation(n).astype(np.uint16).reshape(n, 1)
        dists = scan_distances(luts, codes)
        assert all(len(np.unique(row)) == len(row) for row in dists)
        ids = rng.permutation(n).astype(np.int64)
        backend = resolve_backend("numpy")
        want = topk_rows(dists, ids, k)
        for n_chunk in (64, 128, 699, 700):
            got = _scan_topk_chunked(backend, luts, codes, ids, k, n_chunk)
            for (gi, gd), (wi, wd) in zip(got, want):
                assert np.array_equal(gi, wi)
                assert np.array_equal(gd, wd)

    def test_threshold_routes_to_chunked(self):
        assert SCAN_TOPK_N_CHUNK == 1 << 16
        rng = _rng(7)
        luts, codes = _scan_case(rng, 1, 50, 2, 8)
        ids = np.arange(50, dtype=np.int64)
        backend = resolve_backend("numpy")
        # Force the chunked path with a tiny threshold override; the
        # distances here are heavily tied, so compare sets by the
        # canonical rule instead of raw equality with topk_rows.
        got = backend.scan_topk(luts, codes, ids, 5, n_chunk=16)
        assert len(got) == 1
        ids_k, dists_k = got[0]
        full = scan_distances(luts, codes)[0]
        assert np.array_equal(np.sort(dists_k), dists_k)  # ascending
        assert dists_k[-1] <= np.partition(full, 4)[4]


class TestGuardedFallback:
    class _Exploding(KernelBackend):
        name = "exploding"
        compiled = True

        def scan(self, luts, codes):
            raise RuntimeError("jit blew up")

        def scan_stacked(self, luts, codes):
            raise RuntimeError("jit blew up")

        def build_luts(self, residuals, codebooks):
            raise RuntimeError("jit blew up")

    def test_degrades_once_and_records_reason(self):
        guarded = _GuardedBackend(self._Exploding(), NumpyBackend())
        rng = _rng(8)
        luts, codes = _scan_case(rng, 2, 20, 4, 16)
        got = guarded.scan(luts, codes)
        assert np.array_equal(got, scan_distances(luts, codes))
        assert take_fallback_events() == ["exploding-scan-failed"]
        # Permanently degraded: numpy from here on, no more events.
        assert guarded.name == "numpy"
        assert guarded.compiled is False
        guarded.scan(luts, codes)
        assert take_fallback_events() == []

    def test_warmup_failure_degrades(self):
        class _BadWarmup(self._Exploding):
            name = "badwarmup"

            def warmup(self):
                raise RuntimeError("compile failed")

        guarded = _GuardedBackend(_BadWarmup(), NumpyBackend())
        guarded.warmup()
        assert guarded.name == "numpy"
        assert take_fallback_events() == ["badwarmup-warmup-failed"]


class TestPlannerBackendAwareness:
    def _executor(self, ready=True):
        class _Pool:
            parallel = True

            def ready(self):
                return ready

            def ensure_started(self):
                pass

        return _Pool()

    def test_compiled_label_for_inprocess_path(self):
        planner = ExecutionPlanner()
        compiled = self._Compiled()
        path = planner.choose(
            "auto", num_jobs=8, scan_points=100, backend=compiled
        )
        assert path == "compiled"
        # Forced vectorized keeps its own label (same dispatch).
        assert (
            planner.choose(
                "vectorized", num_jobs=8, scan_points=100, backend=compiled
            )
            == "vectorized"
        )

    class _Compiled(KernelBackend):
        name = "fake-compiled"
        compiled = True

    def test_compiled_backend_raises_pool_floor(self):
        planner = ExecutionPlanner()
        executor = self._executor(ready=True)
        points = POOL_MIN_POINTS * 2
        assert points < POOL_MIN_POINTS * COMPILED_POOL_FACTOR
        assert (
            planner.choose(
                "auto", num_jobs=8, scan_points=points, executor=executor
            )
            == "pool"
        )
        assert (
            planner.choose(
                "auto",
                num_jobs=8,
                scan_points=points,
                executor=executor,
                backend=self._Compiled(),
            )
            == "compiled"
        )

    def test_measured_throughput_arbitrates(self):
        planner = ExecutionPlanner()
        executor = self._executor(ready=True)
        backend = self._Compiled()
        planner.note_round("compiled", 10_000_000, 1.0)
        planner.note_round("pool", 1_000_000, 1.0)
        assert (
            planner.choose(
                "auto",
                num_jobs=8,
                scan_points=POOL_MIN_POINTS * COMPILED_POOL_FACTOR * 2,
                executor=executor,
                backend=backend,
            )
            == "compiled"
        )
        # Flip the measured rates: the pool wins the same round.
        planner.throughput["pool"] = 100_000_000.0
        assert (
            planner.choose(
                "auto",
                num_jobs=8,
                scan_points=POOL_MIN_POINTS * COMPILED_POOL_FACTOR * 2,
                executor=executor,
                backend=backend,
            )
            == "pool"
        )

    def test_note_round_ignores_degenerate_samples(self):
        planner = ExecutionPlanner()
        planner.note_round("pool", 0, 1.0)
        planner.note_round("pool", 100, 0.0)
        assert planner.throughput == {}


def _obs_engine(small_ds, small_quantized, small_params, **search_kw):
    config = EngineConfig(
        index=small_params,
        search=SearchParams(batch_size=64, **search_kw),
        system=PimSystemConfig(num_dpus=8),
        layout=LayoutConfig(min_split_size=400, max_copies=2),
        obs=ObsConfig(enabled=True),
    )
    return DrimAnnEngine.from_config(
        small_ds.base,
        config,
        heat_queries=small_ds.queries[:50],
        prebuilt_quantized=small_quantized,
        seed=0,
    )


class TestEngineThreading:
    def test_search_rejects_bad_backend(
        self, small_ds, small_quantized, small_params
    ):
        engine = _obs_engine(small_ds, small_quantized, small_params)
        try:
            with pytest.raises(ValueError, match="kernel_backend"):
                engine.search(small_ds.queries[:8], kernel_backend="cuda")
        finally:
            engine.close()

    def test_backend_counter_in_metrics(
        self, small_ds, small_quantized, small_params
    ):
        engine = _obs_engine(small_ds, small_quantized, small_params)
        try:
            out = engine.search(
                small_ds.queries[:32], kernel_backend="numpy"
            )
        finally:
            engine.close()
        snap = out.metrics.to_dict()
        rows = _counter(snap, "drimann_kernel_backend_total")
        assert rows and all(
            row["labels"]["backend"] == "numpy" for row in rows
        )
        assert sum(row["value"] for row in rows) >= 1

    def test_explicit_numba_on_bare_install_falls_back_visibly(
        self, small_ds, small_quantized, small_params, monkeypatch
    ):
        """Requesting numba where it cannot import must produce numpy's
        exact results plus a numba-unavailable fallback counter."""
        from repro.pim.backend import numba_backend

        def _no_numba():
            raise ImportError("no module named numba (test)")

        monkeypatch.setattr(numba_backend, "_import_numba", _no_numba)
        kb._clear_instances()
        try:
            engine = _obs_engine(small_ds, small_quantized, small_params)
            try:
                base = engine.search(
                    small_ds.queries[:32], kernel_backend="numpy"
                )
                out = engine.search(
                    small_ds.queries[:32], kernel_backend="numba"
                )
            finally:
                engine.close()
        finally:
            kb._clear_instances()
        assert np.array_equal(out.results.ids, base.results.ids)
        assert np.array_equal(
            out.results.distances, base.results.distances
        )
        rows = _counter(out.metrics.to_dict(), "drimann_kernel_fallbacks_total")
        reasons = {row["labels"]["reason"] for row in rows}
        assert "numba-unavailable" in reasons

    def test_jit_failure_mid_flight_degrades_not_crashes(
        self, small_ds, small_quantized, small_params, monkeypatch
    ):
        """A compiled backend whose kernels raise mid-batch must fall
        back to numpy results and surface the degradation counter."""
        import repro.pim.system as pim_system

        def _guarded(mode="auto"):
            return _GuardedBackend(
                TestGuardedFallback._Exploding(), NumpyBackend()
            )

        engine = _obs_engine(small_ds, small_quantized, small_params)
        monkeypatch.setattr(pim_system, "resolve_backend", _guarded)
        try:
            out = engine.search(small_ds.queries[:32])
        finally:
            monkeypatch.undo()
            engine.close()
        base_engine = _obs_engine(small_ds, small_quantized, small_params)
        try:
            base = base_engine.search(small_ds.queries[:32])
        finally:
            base_engine.close()
        assert np.array_equal(out.results.ids, base.results.ids)
        assert np.array_equal(
            out.results.distances, base.results.distances
        )
        assert out.breakdown.kernel_cycles == base.breakdown.kernel_cycles
        rows = _counter(out.metrics.to_dict(), "drimann_kernel_fallbacks_total")
        reasons = {row["labels"]["reason"] for row in rows}
        assert "exploding-scan-failed" in reasons or any(
            r.startswith("exploding-") for r in reasons
        )

    def test_search_params_default_flows_through(
        self, small_ds, small_quantized, small_params
    ):
        engine = _obs_engine(
            small_ds, small_quantized, small_params, kernel_backend="numpy"
        )
        try:
            out = engine.search(small_ds.queries[:16])
        finally:
            engine.close()
        rows = _counter(out.metrics.to_dict(), "drimann_kernel_backend_total")
        assert rows and all(
            row["labels"]["backend"] == "numpy" for row in rows
        )


class TestMicrobench:
    def test_record_shape_and_gate(self):
        from repro.pim.backend.microbench import format_record, run_microbench

        record = run_microbench(repeats=1, seed=0)
        assert set(record["backends"]) == set(available_backends())
        for entry in record["backends"].values():
            assert entry["bit_identical"] is True
        assert record["best_backend"] in record["backends"]
        text = format_record(record)
        assert "stacked scan" in text and "best:" in text
