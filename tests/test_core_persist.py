import os

import numpy as np
import pytest

from repro.core.persist import (
    IndexFormatError,
    load_quantized,
    save_quantized,
)


class TestRoundTrip:
    def test_roundtrip_identity(self, small_quantized, tmp_path):
        path = str(tmp_path / "index.npz")
        save_quantized(small_quantized, path)
        back = load_quantized(path)
        np.testing.assert_array_equal(back.centroids, small_quantized.centroids)
        np.testing.assert_array_equal(back.codebooks, small_quantized.codebooks)
        assert back.nlist == small_quantized.nlist
        for a, b in zip(back.cluster_ids, small_quantized.cluster_ids):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(back.cluster_codes, small_quantized.cluster_codes):
            np.testing.assert_array_equal(a, b)

    def test_loaded_index_searches_identically(
        self, small_quantized, small_ds, tmp_path
    ):
        path = str(tmp_path / "index.npz")
        save_quantized(small_quantized, path)
        back = load_quantized(path)
        q = small_ds.queries[:20]
        a = small_quantized.reference_search(q, 10, 4)
        b = back.reference_search(q, 10, 4)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.distances, b.distances)

    def test_engine_from_loaded_index(self, small_quantized, small_ds, small_params, tmp_path):
        from repro.core import DrimAnnEngine
        from repro.pim.config import PimSystemConfig

        path = str(tmp_path / "index.npz")
        save_quantized(small_quantized, path)
        eng = DrimAnnEngine.build(
            small_ds.base,
            small_params,
            system_config=PimSystemConfig(num_dpus=4),
            prebuilt_quantized=load_quantized(path),
            seed=0,
        )
        res, _ = eng.search(small_ds.queries[:10])
        assert res.ids.shape == (10, 10)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_quantized(str(tmp_path / "nope.npz"))

    def test_not_an_index(self, tmp_path):
        path = str(tmp_path / "other.npz")
        np.savez(path, foo=np.arange(3))
        with pytest.raises(ValueError, match="not a DRIM-ANN index"):
            load_quantized(path)

    def test_future_version_rejected(self, small_quantized, tmp_path):
        import repro.core.persist as persist

        path = str(tmp_path / "index.npz")
        old = persist.FORMAT_VERSION
        try:
            persist.FORMAT_VERSION = 99
            save_quantized(small_quantized, path)
        finally:
            persist.FORMAT_VERSION = old
        with pytest.raises(ValueError, match="format version"):
            load_quantized(path)

    def test_empty_cluster_roundtrip(self, tmp_path):
        from repro.core.quantized import QuantizedIndexData

        quant = QuantizedIndexData(
            centroids=np.zeros((2, 4), dtype=np.uint8),
            codebooks=np.zeros((2, 4, 2), dtype=np.int16),
            cluster_ids=[np.array([5, 7], dtype=np.int64), np.empty(0, dtype=np.int64)],
            cluster_codes=[
                np.zeros((2, 2), dtype=np.uint8),
                np.empty((0, 2), dtype=np.uint8),
            ],
        )
        path = str(tmp_path / "index.npz")
        save_quantized(quant, path)
        back = load_quantized(path)
        assert len(back.cluster_ids[1]) == 0
        np.testing.assert_array_equal(back.cluster_ids[0], [5, 7])

    def test_format_error_is_a_value_error(self):
        assert issubclass(IndexFormatError, ValueError)

    def test_garbage_file_raises_format_error(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        with open(path, "wb") as f:
            f.write(b"this is not a zip archive")
        with pytest.raises(IndexFormatError):
            load_quantized(path)

    def test_truncated_file_raises_format_error(
        self, small_quantized, tmp_path
    ):
        path = str(tmp_path / "index.npz")
        save_quantized(small_quantized, path)
        size = os.path.getsize(path)
        with open(path, "rb") as f:
            head = f.read(size // 2)
        with open(path, "wb") as f:
            f.write(head)
        with pytest.raises(IndexFormatError):
            load_quantized(path)

    def test_empty_file_raises_format_error(self, tmp_path):
        path = str(tmp_path / "empty.npz")
        open(path, "wb").close()
        with pytest.raises(IndexFormatError):
            load_quantized(path)


class TestCrashSafety:
    def test_successful_save_leaves_no_temp_files(
        self, small_quantized, tmp_path
    ):
        path = str(tmp_path / "index.npz")
        save_quantized(small_quantized, path)
        assert sorted(os.listdir(tmp_path)) == ["index.npz"]

    def test_failed_save_preserves_previous_index(
        self, small_quantized, tmp_path, monkeypatch
    ):
        import repro.core.persist as persist

        path = str(tmp_path / "index.npz")
        save_quantized(small_quantized, path)
        before = open(path, "rb").read()

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(persist.np, "savez_compressed", boom)
        with pytest.raises(OSError, match="disk full"):
            save_quantized(small_quantized, path)
        # The old archive is untouched and no temp debris remains.
        assert open(path, "rb").read() == before
        assert sorted(os.listdir(tmp_path)) == ["index.npz"]
        load_quantized(path)

    def test_failed_first_save_leaves_nothing(
        self, small_quantized, tmp_path, monkeypatch
    ):
        import repro.core.persist as persist

        path = str(tmp_path / "index.npz")

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(persist.np, "savez_compressed", boom)
        with pytest.raises(OSError):
            save_quantized(small_quantized, path)
        assert os.listdir(tmp_path) == []
