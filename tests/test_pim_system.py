import numpy as np
import pytest

from repro.core.square_lut import SquareLut
from repro.pim import PimSystem, PimSystemConfig
from repro.pim.memory import CapacityError
from repro.pim.system import ShardData


@pytest.fixture()
def sys4(rng):
    cfg = PimSystemConfig(num_dpus=4)
    s = PimSystem(cfg)
    books = rng.integers(-100, 100, size=(8, 16, 4)).astype(np.int16)
    s.load_codebooks(books)
    s.load_square_lut(SquareLut.for_bit_width(8, levels=3))
    for i in range(4):
        s.place_shard(
            i,
            ShardData(
                shard_key=f"s{i}",
                centroid=rng.integers(0, 255, size=32).astype(np.uint8),
                ids=np.arange(i * 20, i * 20 + 20, dtype=np.int64),
                codes=rng.integers(0, 16, size=(20, 8)).astype(np.uint8),
            ),
        )
    return s


class TestPlacement:
    def test_shard_location(self, sys4):
        assert sys4.shard_location("s2") == 2
        assert sys4.num_shards() == 4

    def test_duplicate_key_rejected(self, sys4, rng):
        with pytest.raises(ValueError, match="already placed"):
            sys4.place_shard(
                0,
                ShardData(
                    shard_key="s0",
                    centroid=np.zeros(32, dtype=np.uint8),
                    ids=np.zeros(1, dtype=np.int64),
                    codes=np.zeros((1, 8), dtype=np.uint8),
                ),
            )

    def test_bad_dpu_id(self, sys4):
        with pytest.raises(ValueError, match="out of range"):
            sys4.place_shard(
                9,
                ShardData(
                    shard_key="x",
                    centroid=np.zeros(32, dtype=np.uint8),
                    ids=np.zeros(1, dtype=np.int64),
                    codes=np.zeros((1, 8), dtype=np.uint8),
                ),
            )

    def test_mram_capacity_enforced(self):
        from repro.pim.config import DpuConfig

        cfg = PimSystemConfig(num_dpus=1, dpu=DpuConfig(mram_bytes=1024))
        s = PimSystem(cfg)
        with pytest.raises(CapacityError):
            s.place_shard(
                0,
                ShardData(
                    shard_key="big",
                    centroid=np.zeros(32, dtype=np.uint8),
                    ids=np.zeros(100, dtype=np.int64),
                    codes=np.zeros((100, 8), dtype=np.uint8),
                ),
            )

    def test_mram_usage_reported(self, sys4):
        usage = sys4.mram_usage()
        assert usage.shape == (4,)
        assert (usage > 0).all()


class TestRunBatch:
    def test_results_match_manual_math(self, sys4, rng):
        queries = rng.integers(0, 255, size=(2, 32)).astype(np.uint8)
        partials, timing = sys4.run_batch(
            {0: [(0, "s0")], 1: [(1, "s1")]}, queries, k=5
        )
        assert len(partials) == 2
        books = sys4.codebooks.astype(np.int64)
        for p in partials:
            skey = "s0" if p.query_index == 0 else "s1"
            shard = sys4.get_shard(skey)
            r = queries[p.query_index].astype(np.int64) - shard.centroid.astype(np.int64)
            lut = ((r.reshape(8, 1, 4) - books) ** 2).sum(-1)
            d = lut[np.arange(8)[None, :], shard.codes.astype(int)].sum(1)
            want = np.sort(d)[:5]
            np.testing.assert_array_equal(np.sort(p.distances), want)

    def test_requires_codebooks(self, rng):
        s = PimSystem(PimSystemConfig(num_dpus=1))
        with pytest.raises(RuntimeError, match="codebooks"):
            s.run_batch({}, np.zeros((1, 8), dtype=np.uint8), k=1)

    def test_requires_square_lut_when_multiplier_less(self, rng):
        s = PimSystem(PimSystemConfig(num_dpus=1))
        s.load_codebooks(rng.integers(-5, 5, size=(2, 4, 4)).astype(np.int16))
        with pytest.raises(RuntimeError, match="square LUT"):
            s.run_batch({}, np.zeros((1, 8), dtype=np.uint8), k=1)

    def test_wrong_dpu_task_rejected(self, sys4, rng):
        queries = rng.integers(0, 255, size=(1, 32)).astype(np.uint8)
        with pytest.raises(ValueError, match="assigned to DPU"):
            sys4.run_batch({0: [(0, "s1")]}, queries, k=3)

    def test_timing_max_semantics(self, sys4, rng):
        """Batch time equals the busiest DPU's cycles / frequency."""
        queries = rng.integers(0, 255, size=(4, 32)).astype(np.uint8)
        assignments = {0: [(0, "s0"), (1, "s0"), (2, "s0"), (3, "s0")]}
        _, timing = sys4.run_batch(assignments, queries, k=3)
        freq = sys4.config.dpu.frequency_hz
        assert timing.pim_seconds == pytest.approx(
            timing.per_dpu_cycles.max() / freq
        )
        # only DPU 0 worked
        assert timing.per_dpu_cycles[1:].sum() == 0
        assert timing.busy_fraction < 0.5

    def test_kernel_cycles_recorded(self, sys4, rng):
        queries = rng.integers(0, 255, size=(1, 32)).astype(np.uint8)
        _, timing = sys4.run_batch({0: [(0, "s0")]}, queries, k=3)
        assert set(timing.kernel_cycles) >= {"RC", "LC", "DC", "TS"}
        assert all(v >= 0 for v in timing.kernel_cycles.values())

    def test_multiplier_toggle_changes_time(self, sys4, rng):
        queries = rng.integers(0, 255, size=(2, 32)).astype(np.uint8)
        assignments = {0: [(0, "s0"), (1, "s0")]}
        _, t_ml = sys4.run_batch(assignments, queries, k=3, multiplier_less=True)
        sys4.reset_ledgers()
        _, t_mul = sys4.run_batch(assignments, queries, k=3, multiplier_less=False)
        assert t_mul.kernel_cycles["LC"] > t_ml.kernel_cycles["LC"]

    def test_reset_ledgers(self, sys4, rng):
        queries = rng.integers(0, 255, size=(1, 32)).astype(np.uint8)
        sys4.run_batch({0: [(0, "s0")]}, queries, k=3)
        sys4.reset_ledgers()
        assert all(d.total_cycles == 0 for d in sys4.dpus)
