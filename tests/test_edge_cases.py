"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro.ann import IVFPQIndex
from repro.core import DrimAnnEngine, IndexParams, LayoutConfig
from repro.core.layout import generate_layout
from repro.core.quantized import build_quantized_index
from repro.pim.config import DpuConfig, PimSystemConfig
from repro.pim.memory import CapacityError


class TestEmptyClusters:
    """Heavily skewed corpora leave some IVF lists empty; nothing may
    crash and results must stay correct."""

    @pytest.fixture(scope="class")
    def engine_with_empties(self, small_ds):
        # Force empty clusters: nlist close to the number of distinct
        # regions, built on a small slice.
        base = small_ds.base[:1500]
        params = IndexParams(nlist=48, nprobe=6, k=5, num_subspaces=16, codebook_size=16)
        idx = IVFPQIndex.build(
            base, nlist=48, num_subspaces=16, codebook_size=16, seed=0
        )
        # Manually empty a few clusters to guarantee the path is hit.
        victims = [i for i in range(3)]
        for v in victims:
            idx.ivf.lists[v] = np.empty(0, dtype=np.int64)
            idx.codes[v] = np.empty((0, 16), dtype=idx.codes[v].dtype)
        quant = build_quantized_index(idx)
        eng = DrimAnnEngine.build(
            base,
            params,
            system_config=PimSystemConfig(num_dpus=4),
            prebuilt_quantized=quant,
            seed=0,
        )
        return eng, base

    def test_search_with_empty_clusters(self, engine_with_empties, small_ds):
        eng, base = engine_with_empties
        res, _ = eng.search(small_ds.queries[:20])
        ref = eng.reference_search(small_ds.queries[:20])
        np.testing.assert_allclose(
            np.sort(res.distances, axis=1), np.sort(ref.distances, axis=1)
        )


class TestExtremeShapes:
    def test_single_dpu(self, small_ds, small_quantized, small_params):
        eng = DrimAnnEngine.build(
            small_ds.base,
            small_params,
            system_config=PimSystemConfig(num_dpus=1),
            prebuilt_quantized=small_quantized,
            seed=0,
        )
        res, bd = eng.search(small_ds.queries[:20])
        ref = eng.reference_search(small_ds.queries[:20])
        np.testing.assert_allclose(
            np.sort(res.distances, axis=1), np.sort(ref.distances, axis=1)
        )
        assert bd.mean_busy_fraction == pytest.approx(1.0)

    def test_more_dpus_than_shards(self, small_ds, small_quantized, small_params):
        eng = DrimAnnEngine.build(
            small_ds.base,
            small_params,
            system_config=PimSystemConfig(num_dpus=256),
            layout_config=LayoutConfig(min_split_size=None, max_copies=0),
            prebuilt_quantized=small_quantized,
            seed=0,
        )
        res, _ = eng.search(small_ds.queries[:20])
        ref = eng.reference_search(small_ds.queries[:20])
        np.testing.assert_allclose(
            np.sort(res.distances, axis=1), np.sort(ref.distances, axis=1)
        )

    def test_batch_larger_than_queries(self, small_engine, small_ds):
        res, bd = small_engine.search(small_ds.queries[:10])
        assert bd.num_batches >= 1
        assert res.ids.shape == (10, 10)

    def test_single_query(self, small_engine, small_ds):
        res, _ = small_engine.search(small_ds.queries[:1])
        assert res.ids.shape == (1, 10)

    def test_nprobe_equals_nlist(self, small_ds, small_quantized):
        params = IndexParams(
            nlist=64, nprobe=64, k=10, num_subspaces=16, codebook_size=64
        )
        eng = DrimAnnEngine.build(
            small_ds.base,
            params,
            system_config=PimSystemConfig(num_dpus=8),
            prebuilt_quantized=small_quantized,
            seed=0,
        )
        res, _ = eng.search(small_ds.queries[:10])
        ref = eng.reference_search(small_ds.queries[:10])
        np.testing.assert_allclose(
            np.sort(res.distances, axis=1), np.sort(ref.distances, axis=1)
        )


class TestCapacityFailures:
    def test_corpus_too_big_for_mram(self, small_ds):
        """An undersized MRAM must fail loudly at build, not corrupt."""
        params = IndexParams(nlist=4, nprobe=2, k=5, num_subspaces=16, codebook_size=16)
        tiny_dpu = DpuConfig(mram_bytes=64 * 1024)  # 64 KB MRAM
        with pytest.raises(CapacityError):
            DrimAnnEngine.build(
                small_ds.base[:5000],
                params,
                system_config=PimSystemConfig(num_dpus=2, dpu=tiny_dpu),
                layout_config=LayoutConfig(min_split_size=None, max_copies=0),
                seed=0,
            )

    def test_duplication_respects_budget_overall(
        self, small_quantized
    ):
        """Even with max_copies high, the byte budget bounds replicas."""
        heat = np.ones(small_quantized.nlist)
        plan = generate_layout(
            small_quantized,
            4,
            heat,
            LayoutConfig(min_split_size=None, max_copies=5, dup_budget_per_dpu=1024),
        )
        extra = sum(
            len(g) - 1 for g in map(len, ())
        )
        total_copies = sum(
            plan.replica_count(c) - 1 for c in range(small_quantized.nlist)
        )
        # 4 KB total budget can hold at most a couple of tiny clusters.
        assert total_copies <= 2


class TestDtypeRobustness:
    def test_float32_corpus_via_ann_layer(self, rng):
        """The reference ANN layer (not the PIM path) accepts floats."""
        base = rng.normal(size=(2000, 16)).astype(np.float32) * 50
        idx = IVFPQIndex.build(base, nlist=16, num_subspaces=4, codebook_size=16, seed=0)
        res = idx.search(base[:5], k=3, nprobe=4)
        assert res.ids.shape == (5, 3)

    def test_uint16_codes_roundtrip(self, rng):
        """CB > 256 switches code dtype to uint16 end to end."""
        from repro.ann import ProductQuantizer

        x = rng.normal(size=(3000, 8)) * 30
        pq = ProductQuantizer.train(x, 2, codebook_size=300, seed=0)
        codes = pq.encode(x[:50])
        assert codes.dtype == np.uint16
        rec = pq.decode(codes)
        assert rec.shape == (50, 8)

    def test_large_codebook_through_pim_path(self, small_ds):
        """Paper: "DRIM-ANN supports more codebook entries" — CB=512
        (uint16 codes) must run the full PIM pipeline, provided the ADC
        LUT still fits WRAM (M=8 x 512 x 4B = 16 KB)."""
        params = IndexParams(
            nlist=16, nprobe=4, k=5, num_subspaces=8, codebook_size=512
        )
        eng = DrimAnnEngine.build(
            small_ds.base[:4000],
            params,
            system_config=PimSystemConfig(num_dpus=4),
            seed=0,
        )
        codes_dtype = eng.quantized.cluster_codes[0].dtype
        assert codes_dtype == np.uint16
        q = small_ds.queries[:15]
        res, _ = eng.search(q)
        ref = eng.reference_search(q)
        np.testing.assert_allclose(
            np.sort(res.distances, axis=1), np.sort(ref.distances, axis=1)
        )

    def test_zero_queries(self, small_engine):
        """An empty batch is a no-op, not a crash."""
        res, bd = small_engine.search(
            np.empty((0, small_engine.quantized.dim), dtype=np.uint8)
        )
        assert res.ids.shape == (0, small_engine.params.k)
        assert bd.num_batches == 0
