"""Dataset characterization — and verification that the synthetic
corpora exhibit the paper's three load-imbalance preconditions."""

import numpy as np
import pytest

from repro.data.analysis import (
    AccessStats,
    ClusterSizeStats,
    intrinsic_dimension_estimate,
)


class TestClusterSizeStats:
    def test_even_sizes(self):
        s = ClusterSizeStats.from_sizes(np.full(10, 100))
        assert s.imbalance_factor == pytest.approx(1.0)
        assert s.gini == pytest.approx(0.0, abs=1e-9)

    def test_skewed_sizes(self):
        s = ClusterSizeStats.from_sizes(np.array([1000, 10, 10, 10]))
        assert s.imbalance_factor > 2.0
        assert s.gini > 0.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ClusterSizeStats.from_sizes(np.array([]))

    def test_observation1_holds_on_synthetic(self, small_index):
        """Paper Observation 1: cluster sizes are unbalanced."""
        s = ClusterSizeStats.from_sizes(small_index.ivf.list_sizes())
        assert s.imbalance_factor > 1.2


class TestAccessStats:
    def test_uniform_accesses(self, rng):
        probes = rng.permutation(np.repeat(np.arange(20), 5)).reshape(20, 5)
        s = AccessStats.from_probes(probes, 20)
        assert s.top1_share == pytest.approx(1 / 20)

    def test_concentrated_accesses(self):
        probes = np.zeros((50, 4), dtype=int)  # everyone hits cluster 0
        s = AccessStats.from_probes(probes, 16)
        assert s.top1_share == pytest.approx(1.0)
        assert s.mean_batch_contention == 200

    def test_zipf_exponent_detects_skew(self, rng):
        ranks = np.arange(1, 33)
        weights = 1.0 / ranks**1.2
        weights /= weights.sum()
        probes = rng.choice(32, size=(500, 8), p=weights)
        s = AccessStats.from_probes(probes, 32)
        assert 0.6 < s.zipf_exponent < 2.5

    def test_observations_2_3_hold_on_synthetic(self, small_ds, small_quantized):
        """Paper Observations 2/3: same-batch contention and skewed
        cluster access frequency."""
        probes = small_quantized.locate(small_ds.queries, 8)
        s = AccessStats.from_probes(probes, small_quantized.nlist, batch_size=32)
        assert s.mean_batch_contention > 1.5  # repeated same-batch hits
        assert s.top10pct_share > 0.15  # hot clusters exist

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AccessStats.from_probes(np.zeros((0, 2), dtype=int), 4)


class TestIntrinsicDimension:
    def test_low_rank_data(self, rng):
        z = rng.normal(size=(2000, 5))
        basis = rng.normal(size=(5, 64))
        x = z @ basis
        est = intrinsic_dimension_estimate(x)
        assert est < 10

    def test_full_rank_data(self, rng):
        x = rng.normal(size=(2000, 32))
        est = intrinsic_dimension_estimate(x)
        assert est > 25

    def test_synthetic_corpus_is_low_rank(self, small_ds):
        """The generator's intrinsic_dim must actually materialize."""
        est = intrinsic_dimension_estimate(small_ds.base)
        assert est < small_ds.dim / 2

    def test_degenerate(self):
        assert intrinsic_dimension_estimate(np.zeros((10, 4))) == 0.0
