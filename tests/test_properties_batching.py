"""Randomized batching invariants (hypothesis).

Property tests over the batched execution path:

* **batch-split invariance** — any chunking of the query stream
  (including one query per round) returns bit-identical results;
* **permutation invariance** — permuting the query matrix permutes the
  result rows and changes nothing else;
* **transfer conservation** — with the deferral filter off, aggregated
  transfer bytes in one batched round equal the sum over per-query
  rounds (broadcast ``nq*D``, scatter ``8`` per task part, gather
  ``16`` per returned candidate).

One engine is built per module (the deferral filter is disabled so
round membership is a pure function of the chunking) and reused across
examples; searches mutate no engine state in the fault-free setup.
"""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    DrimAnnEngine,
    EngineConfig,
    IndexParams,
    LayoutConfig,
    SearchParams,
)
from repro.core.scheduler import SchedulerConfig
from repro.pim.config import PimSystemConfig
from repro.testing import canonical_dataset
from repro.testing.goldens import _quantized

NQ = 48

_SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@pytest.fixture(scope="module")
def prop_engine():
    ds = canonical_dataset()
    config = EngineConfig(
        index=IndexParams(
            nlist=32, nprobe=4, k=10, num_subspaces=8, codebook_size=32
        ),
        search=SearchParams(batch_size=16),
        scheduler=SchedulerConfig(filter_threshold=None),
        system=PimSystemConfig(num_dpus=8),
        layout=LayoutConfig(min_split_size=200, max_copies=2),
    )
    return DrimAnnEngine.from_config(
        ds.base,
        config,
        heat_queries=ds.queries[:50],
        prebuilt_quantized=_quantized(32, 8, 32),
        seed=0,
    )


@pytest.fixture(scope="module")
def prop_queries():
    return canonical_dataset().queries[:NQ]


@pytest.fixture(scope="module")
def batched_result(prop_engine, prop_queries):
    res, _ = prop_engine.search(prop_queries)
    return res


class TestBatchSplitInvariance:
    @given(batch_size=st.integers(min_value=1, max_value=NQ))
    @_SETTINGS
    def test_any_chunking_is_bit_identical(
        self, prop_engine, prop_queries, batched_result, batch_size
    ):
        original = prop_engine.search_params
        prop_engine.search_params = replace(original, batch_size=batch_size)
        try:
            res, _ = prop_engine.search(prop_queries, execution="chunked")
        finally:
            prop_engine.search_params = original
        np.testing.assert_array_equal(res.ids, batched_result.ids)
        np.testing.assert_array_equal(res.distances, batched_result.distances)

    def test_per_query_is_bit_identical(
        self, prop_engine, prop_queries, batched_result
    ):
        res, _ = prop_engine.search(prop_queries, execution="per_query")
        np.testing.assert_array_equal(res.ids, batched_result.ids)
        np.testing.assert_array_equal(res.distances, batched_result.distances)


class TestPermutationInvariance:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @_SETTINGS
    def test_permuting_queries_permutes_results(
        self, prop_engine, prop_queries, batched_result, seed
    ):
        perm = np.random.default_rng(seed).permutation(NQ)
        res, _ = prop_engine.search(prop_queries[perm])
        np.testing.assert_array_equal(res.ids, batched_result.ids[perm])
        np.testing.assert_array_equal(
            res.distances, batched_result.distances[perm]
        )


class TestTransferConservation:
    @given(nq=st.integers(min_value=1, max_value=NQ))
    @_SETTINGS
    def test_batched_bytes_equal_sum_of_per_query_bytes(
        self, prop_engine, prop_queries, nq
    ):
        transfer = prop_engine.system.transfer

        def bytes_for(execution):
            before = transfer.total_bytes
            prop_engine.search(prop_queries[:nq], execution=execution)
            return transfer.total_bytes - before

        batched = bytes_for("batched")
        per_query = bytes_for("per_query")
        assert batched == per_query

    def test_batched_bytes_decompose(self, prop_engine, prop_queries):
        """broadcast nq*D + scatter 8/task + gather 16/candidate.

        The gather carries *per-task* partial top-k candidates (merged
        on the host afterwards), so its byte count is a multiple of 16
        and at least 16 per finally-returned hit.
        """
        transfer = prop_engine.system.transfer
        n_before = len(transfer.events)
        res, _ = prop_engine.search(prop_queries)
        events = transfer.events[n_before:]
        by_kind = {}
        for ev in events:
            by_kind[ev.label] = by_kind.get(ev.label, 0.0) + ev.total_bytes
        assert by_kind["queries"] == prop_queries.nbytes
        returned = int(np.count_nonzero(res.ids >= 0))
        assert by_kind["results"] % 16 == 0
        assert by_kind["results"] >= returned * 16
        assert by_kind["task_lists"] % 8 == 0
