"""Cost-claim cross-check: contracts vs kernels vs microcode."""

import os

from repro.analysis.costcheck import (
    check_builtin_contracts,
    check_contract_module,
)

_FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "broken_kernel.py"
)


class TestBuiltinContracts:
    def test_shipped_contracts_are_clean(self):
        assert check_builtin_contracts() == []


class TestBrokenFixture:
    def test_broken_contract_caught(self):
        findings = check_contract_module(_FIXTURE)
        rules = {f.rule for f in findings}
        assert "instruction-mix-drift" in rules
        assert "memory-traffic-drift" in rules

    def test_delta_payload_names_the_wrong_class(self):
        findings = check_contract_module(_FIXTURE)
        mix = [f for f in findings if f.rule == "instruction-mix-drift"]
        # The fixture doubles the add count: 2*g*d claimed vs g*d real.
        assert all("add" in f.data["deltas"] for f in mix)
        claimed, measured = mix[0].data["deltas"]["add"]
        assert claimed == 2 * measured

    def test_microcode_disagrees_too(self):
        findings = check_contract_module(_FIXTURE)
        sources = {f.data["source"] for f in findings}
        assert "kernel" in sources
        assert "microcode" in sources  # RC has a micro program


class TestModuleLoading:
    def test_missing_file_is_a_finding(self):
        findings = check_contract_module("/nonexistent/contract.py")
        assert [f.rule for f in findings] == ["module-load-error"]

    def test_module_without_contract(self):
        findings = check_contract_module("repro.utils.rng")
        assert [f.rule for f in findings] == ["missing-contract"]
