import numpy as np
import pytest

from repro.utils import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1 << 30, size=8)
        b = ensure_rng(42).integers(0, 1 << 30, size=8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1 << 30, size=8)
        b = ensure_rng(2).integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_streams_independent(self):
        a, b = spawn_rngs(7, 2)
        assert not np.array_equal(
            a.integers(0, 1 << 30, size=16), b.integers(0, 1 << 30, size=16)
        )

    def test_deterministic_from_seed(self):
        x = [g.integers(0, 1 << 30) for g in spawn_rngs(3, 4)]
        y = [g.integers(0, 1 << 30) for g in spawn_rngs(3, 4)]
        assert x == y

    def test_spawn_from_generator(self):
        rngs = spawn_rngs(np.random.default_rng(0), 3)
        assert len(rngs) == 3
