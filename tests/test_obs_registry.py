"""repro.obs.registry: metric semantics, snapshots, exporters."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.registry import DEFAULT_TIME_BUCKETS, Histogram


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("drimann_test_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_inc_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("drimann_test_total").inc(-1)

    def test_get_or_create_returns_same_series(self):
        reg = MetricsRegistry()
        reg.counter("drimann_test_total", dpu=3).inc(2)
        reg.counter("drimann_test_total", dpu=3).inc(3)
        assert reg.counter("drimann_test_total", dpu=3).value == 5

    def test_labels_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("drimann_test_total", dpu=0).inc(1)
        reg.counter("drimann_test_total", dpu=1).inc(7)
        snap = reg.snapshot()
        assert snap.value("drimann_test_total", dpu=0) == 1
        assert snap.value("drimann_test_total", dpu=1) == 7


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("drimann_depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestKindConflicts:
    def test_name_bound_to_one_kind(self):
        reg = MetricsRegistry()
        reg.counter("drimann_thing")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("drimann_thing")

    def test_kind_of(self):
        reg = MetricsRegistry()
        reg.histogram("drimann_h")
        assert reg.kind_of("drimann_h") == "histogram"
        assert reg.kind_of("missing") is None


class TestHistogram:
    def test_bucket_assignment(self):
        h = Histogram((1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 1, 1]
        assert h.count == 4
        assert h.total == pytest.approx(555.5)

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0, 2.0))

    def test_percentile_tracks_numpy_roughly(self):
        import numpy as np

        h = Histogram(tuple(float(b) for b in np.linspace(0, 100, 201)))
        vals = np.linspace(0.0, 99.0, 1000)
        for v in vals:
            h.observe(float(v))
        for q in (50, 95, 99):
            exact = float(np.percentile(vals, q))
            assert h.percentile(q) == pytest.approx(exact, abs=1.0)

    def test_to_dict_carries_inf_bucket(self):
        h = Histogram((1.0,))
        h.observe(2.0)
        d = h.to_dict()
        assert d["buckets"][-1] == {"le": "+Inf", "count": 1}


class TestSnapshot:
    def _reg(self):
        reg = MetricsRegistry()
        reg.counter("drimann_a_total", help="a").inc(3)
        reg.gauge("drimann_b", help="b").set(1.5)
        reg.histogram("drimann_c_seconds", help="c", phase="DC").observe(0.25)
        reg.sketch("drimann_d_seconds", help="d").add(0.125)
        return reg

    def test_to_dict_groups_by_kind(self):
        d = self._reg().snapshot().to_dict()
        assert sorted(d) == ["counters", "gauges", "histograms", "sketches"]
        assert len(d["counters"]) == 1
        assert d["counters"][0]["name"] == "drimann_a_total"
        assert d["gauges"][0]["value"] == 1.5
        assert d["histograms"][0]["labels"] == {"phase": "DC"}

    def test_to_json_round_trips(self):
        snap = self._reg().snapshot()
        assert json.loads(snap.to_json()) == json.loads(
            json.dumps(snap.to_dict(), sort_keys=True)
        )

    def test_value_raises_on_distribution(self):
        snap = self._reg().snapshot()
        with pytest.raises(ValueError, match="not a scalar"):
            snap.value("drimann_c_seconds", phase="DC")

    def test_untouched_series_reads_zero(self):
        snap = self._reg().snapshot()
        assert snap.value("drimann_never_written_total") == 0.0

    def test_write_json_and_prometheus(self, tmp_path):
        snap = self._reg().snapshot()
        jp = tmp_path / "m.json"
        pp = tmp_path / "m.prom"
        snap.write_json(str(jp))
        snap.write_prometheus(str(pp))
        assert json.loads(jp.read_text()) == json.loads(snap.to_json())
        assert pp.read_text() == snap.to_prometheus()


class TestPrometheusFormat:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("drimann_a_total", help="things").inc(3)
        reg.gauge("drimann_b", dpu=2).set(1.5)
        text = reg.snapshot().to_prometheus()
        assert "# HELP drimann_a_total things" in text
        assert "# TYPE drimann_a_total counter" in text
        assert "drimann_a_total 3" in text
        assert 'drimann_b{dpu="2"} 1.5' in text

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("drimann_h", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        text = reg.snapshot().to_prometheus()
        assert 'drimann_h_bucket{le="1"} 1' in text
        assert 'drimann_h_bucket{le="10"} 2' in text
        assert 'drimann_h_bucket{le="+Inf"} 3' in text
        assert "drimann_h_count 3" in text

    def test_sketch_becomes_summary(self):
        reg = MetricsRegistry()
        sk = reg.sketch("drimann_lat_seconds")
        for v in (0.001, 0.002, 0.003):
            sk.add(v)
        text = reg.snapshot().to_prometheus()
        assert "# TYPE drimann_lat_seconds summary" in text
        assert 'quantile="0.5"' in text
        assert 'quantile="0.99"' in text
        assert "drimann_lat_seconds_count 3" in text

    def test_default_time_buckets_cover_microseconds_to_seconds(self):
        assert DEFAULT_TIME_BUCKETS[0] <= 1e-6
        assert DEFAULT_TIME_BUCKETS[-1] >= 1.0
