import numpy as np
import pytest

from repro.ann.heap import BoundedMaxHeap
from repro.core.square_lut import SquareLut
from repro.pim.kernels import (
    expected_heap_updates,
    run_cluster_locate,
    run_distance_scan,
    run_lut_build,
    run_residual,
    run_topk_sort,
)


@pytest.fixture()
def setup(rng):
    d, m, cb, dsub, n = 32, 8, 16, 4, 50
    queries = rng.integers(0, 255, size=(3, d)).astype(np.uint8)
    centroid = rng.integers(0, 255, size=d).astype(np.uint8)
    books = rng.integers(-200, 200, size=(m, cb, dsub)).astype(np.int16)
    codes = rng.integers(0, cb, size=(n, m)).astype(np.uint8)
    ids = rng.permutation(1000)[:n].astype(np.int64)
    return queries, centroid, books, codes, ids


class TestResidual:
    def test_values(self, setup):
        q, c, *_ = setup
        res, cost = run_residual(q, c)
        np.testing.assert_array_equal(
            res, q.astype(np.int32) - c.astype(np.int32)
        )
        assert cost.kernel == "RC"

    def test_cost_scales_with_tasks(self, setup):
        q, c, *_ = setup
        _, c1 = run_residual(q[:1], c)
        _, c3 = run_residual(q, c)
        assert c3.instructions.add == 3 * c1.instructions.add
        assert c3.traffic.sequential_read == 3 * c1.traffic.sequential_read

    def test_shape_validation(self, setup):
        q, c, *_ = setup
        with pytest.raises(ValueError):
            run_residual(q, c[:-1])


class TestLutBuild:
    def test_exact_integer_lut(self, setup):
        q, c, books, *_ = setup
        res, _ = run_residual(q, c)
        luts, cost = run_lut_build(res, books)
        m, cb, dsub = books.shape
        want = (
            (
                res.astype(np.int64).reshape(3, m, 1, dsub)
                - books.astype(np.int64)[None]
            )
            ** 2
        ).sum(-1)
        np.testing.assert_array_equal(luts, want)
        assert cost.kernel == "LC"

    def test_square_lut_is_lossless(self, setup):
        q, c, books, *_ = setup
        res, _ = run_residual(q, c)
        sq = SquareLut.for_bit_width(8, levels=3)
        a, _ = run_lut_build(res, books)
        b, _ = run_lut_build(res, books, sq)
        np.testing.assert_array_equal(a, b)

    def test_multiplier_less_removes_muls(self, setup):
        q, c, books, *_ = setup
        res, _ = run_residual(q, c)
        sq = SquareLut.for_bit_width(8, levels=3)
        _, with_mul = run_lut_build(res, books)
        _, without = run_lut_build(res, books, sq)
        assert with_mul.instructions.mul > 0
        assert without.instructions.mul == 0
        assert without.instructions.load > with_mul.instructions.load

    def test_partial_lut_misses_charged(self, setup):
        q, c, books, *_ = setup
        res, _ = run_residual(q, c)
        # Tiny resident window: many lookups miss.
        sq = SquareLut.for_bit_width(8, levels=3).partial(10)
        luts, cost = run_lut_build(res, books, sq)
        assert cost.traffic.random_read > 0

    def test_dim_mismatch(self, setup):
        _, _, books, _, _ = setup
        with pytest.raises(ValueError):
            run_lut_build(np.zeros((2, 31), dtype=np.int32), books)


class TestDistanceScan:
    def test_matches_manual_gather(self, setup):
        q, c, books, codes, _ = setup
        res, _ = run_residual(q, c)
        luts, _ = run_lut_build(res, books)
        dists, cost = run_distance_scan(luts, codes)
        m = books.shape[0]
        want = luts[:, np.arange(m)[None, :], codes.astype(int)].sum(2)
        np.testing.assert_array_equal(dists, want)
        assert cost.kernel == "DC"

    def test_cost_scales_with_points(self, setup):
        q, c, books, codes, _ = setup
        res, _ = run_residual(q, c)
        luts, _ = run_lut_build(res, books)
        _, c_half = run_distance_scan(luts, codes[:25])
        _, c_full = run_distance_scan(luts, codes)
        assert c_full.instructions.add == 2 * c_half.instructions.add

    def test_code_width_mismatch(self, setup):
        q, c, books, codes, _ = setup
        res, _ = run_residual(q, c)
        luts, _ = run_lut_build(res, books)
        with pytest.raises(ValueError):
            run_distance_scan(luts, codes[:, :-1])


class TestTopkSort:
    def test_exact_topk(self, setup, rng):
        dists = rng.integers(0, 10_000, size=(4, 50)).astype(np.int64)
        ids = np.arange(50, dtype=np.int64)
        rows, cost = run_topk_sort(dists, ids, 10)
        for g, (rid, rd) in enumerate(rows):
            np.testing.assert_array_equal(np.sort(rd), np.sort(dists[g])[:10])
        assert cost.kernel == "TS"

    def test_fewer_candidates_than_k(self, rng):
        dists = rng.integers(0, 100, size=(2, 3)).astype(np.int64)
        rows, _ = run_topk_sort(dists, np.arange(3, dtype=np.int64), 10)
        assert len(rows[0][0]) == 3

    def test_empty_shard(self):
        rows, _ = run_topk_sort(
            np.empty((2, 0), dtype=np.int64), np.empty(0, dtype=np.int64), 5
        )
        assert len(rows) == 2 and len(rows[0][0]) == 0

    def test_expected_updates_matches_heap_within_factor(self, rng):
        """The analytic estimate should track the real heap's updates."""
        n, k, trials = 2000, 10, 20
        total = 0
        for _ in range(trials):
            vals = rng.permutation(n).astype(float)
            h = BoundedMaxHeap(k)
            before = 0
            updates = 0
            for i, v in enumerate(vals):
                if v < h.worst or len(h) < k:
                    updates += 1
                h.push(float(v), i)
            total += updates
        measured = total / trials
        predicted = expected_heap_updates(n, k)
        assert 0.5 * measured < predicted < 2.0 * measured

    def test_expected_updates_small_n(self):
        assert expected_heap_updates(5, 10) == 5.0
        assert expected_heap_updates(0, 10) == 0.0


class TestClusterLocate:
    def test_finds_nearest_centroids(self, rng):
        cents = rng.integers(0, 255, size=(20, 16)).astype(np.uint8)
        q = rng.integers(0, 255, size=(5, 16)).astype(np.uint8)
        (idx, vals), cost = run_cluster_locate(q, cents, 4)
        d = (
            (q[:, None].astype(np.int64) - cents[None].astype(np.int64)) ** 2
        ).sum(-1)
        want = np.sort(d, axis=1)[:, :4]
        np.testing.assert_array_equal(np.sort(vals, axis=1), want)
        assert cost.kernel == "CL"

    def test_square_lut_variant_identical(self, rng):
        cents = rng.integers(0, 255, size=(10, 8)).astype(np.uint8)
        q = rng.integers(0, 255, size=(3, 8)).astype(np.uint8)
        sq = SquareLut.for_bit_width(8, levels=2)
        (i1, v1), _ = run_cluster_locate(q, cents, 3)
        (i2, v2), _ = run_cluster_locate(q, cents, 3, sq)
        np.testing.assert_array_equal(v1, v2)

    def test_nprobe_clamped_to_slice(self, rng):
        cents = rng.integers(0, 255, size=(3, 8)).astype(np.uint8)
        q = rng.integers(0, 255, size=(2, 8)).astype(np.uint8)
        (idx, _), _ = run_cluster_locate(q, cents, 10)
        assert idx.shape == (2, 3)
