import numpy as np
import pytest

from repro.utils import check_2d, check_dtype, check_positive, check_same_dim


class TestCheck2d:
    def test_passes_2d(self):
        a = np.zeros((3, 4))
        assert check_2d(a, "a") is a

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="must be 2-D"):
            check_2d(np.zeros(3), "a")

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="a must be 2-D"):
            check_2d(np.zeros((2, 2, 2)), "a")

    def test_converts_lists(self):
        out = check_2d([[1, 2], [3, 4]], "a")
        assert out.shape == (2, 2)


class TestCheckDtype:
    def test_accepts_matching(self):
        a = np.zeros(3, dtype=np.uint8)
        assert check_dtype(a, "uint8", "a") is a

    def test_accepts_one_of_many(self):
        a = np.zeros(3, dtype=np.float32)
        check_dtype(a, ["uint8", "float32"], "a")

    def test_rejects_mismatch(self):
        with pytest.raises(TypeError, match="dtype"):
            check_dtype(np.zeros(3, dtype=np.int64), "uint8", "a")


class TestCheckPositive:
    def test_positive_ok(self):
        assert check_positive(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_nonpositive_raises(self, bad):
        with pytest.raises(ValueError, match="must be > 0"):
            check_positive(bad, "x")


class TestCheckSameDim:
    def test_matching(self):
        check_same_dim(np.zeros((2, 5)), np.zeros((9, 5)), "a", "b")

    def test_mismatch_raises(self):
        with pytest.raises(ValueError, match="feature dimension"):
            check_same_dim(np.zeros((2, 5)), np.zeros((9, 4)), "a", "b")
