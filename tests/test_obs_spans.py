"""SpanRecorder: per-track timelines, metrics feeding, tracer unification."""

import json

import pytest

from repro.obs import MetricsRegistry, SpanRecorder
from repro.obs.spans import SPAN_METRIC
from repro.pim.trace import HOST_TRACK_BASE, Tracer


class TestTimelines:
    def test_spans_on_one_track_never_overlap(self):
        rec = SpanRecorder()
        a = rec.record("CL", 0.010)
        b = rec.record("RC", 0.005)
        c = rec.record("LC", 0.002)
        assert a.start_s == 0.0 and a.end_s == pytest.approx(0.010)
        assert b.start_s == pytest.approx(a.end_s)
        assert c.start_s == pytest.approx(b.end_s)
        assert rec.track_seconds() == pytest.approx(0.017)

    def test_tracks_are_independent(self):
        rec = SpanRecorder()
        rec.record("CL", 0.010, track="phases")
        rec.record("queue", 0.001, track="serving")
        assert rec.track_seconds("phases") == pytest.approx(0.010)
        assert rec.track_seconds("serving") == pytest.approx(0.001)
        assert rec.track_seconds("missing") == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            SpanRecorder().record("CL", -0.001)

    def test_span_context_manager_measures_wall_time(self):
        rec = SpanRecorder(registry=MetricsRegistry())
        with rec.span("work"):
            sum(range(1000))
        assert rec.track_seconds() > 0.0

    def test_enabled_property(self):
        assert not SpanRecorder().enabled
        assert SpanRecorder(registry=MetricsRegistry()).enabled
        assert SpanRecorder(tracer=Tracer()).enabled


class TestMetricsFeeding:
    def test_spans_feed_labeled_histogram(self):
        reg = MetricsRegistry()
        rec = SpanRecorder(registry=reg)
        rec.record("CL", 0.010)
        rec.record("CL", 0.012)
        rec.record("RC", 0.001)
        snap = reg.snapshot()
        cl = snap.find(SPAN_METRIC, span="CL", track="host")
        rc = snap.find(SPAN_METRIC, span="RC", track="host")
        assert cl is not None and cl["count"] == 2
        assert cl["sum"] == pytest.approx(0.022)
        assert rc is not None and rc["count"] == 1


class TestTracerUnification:
    def test_spans_land_on_host_tracks(self):
        tracer = Tracer(frequency_hz=450e6)
        rec = SpanRecorder(tracer=tracer, frequency_hz=450e6)
        rec.record("CL", 0.010, track="phases")
        rec.record("RC", 0.005, track="phases")
        assert tracer.num_events == 2
        tids = {e.dpu_id for e in tracer.events}
        assert all(Tracer.is_host_track(t) for t in tids)
        assert min(tids) >= HOST_TRACK_BASE

    def test_span_cycles_match_seconds_times_frequency(self):
        tracer = Tracer(frequency_hz=450e6)
        rec = SpanRecorder(tracer=tracer, frequency_hz=450e6)
        rec.record("CL", 0.010)
        ev = tracer.events[0]
        assert ev.start_cycle == pytest.approx(0.0)
        assert ev.cycles == pytest.approx(0.010 * 450e6)

    def test_host_tracks_excluded_from_dpu_stats(self):
        tracer = Tracer()
        tracer.record("LC", 0, 0, 100)
        rec = SpanRecorder(tracer=tracer)
        rec.record("CL", 0.010)
        assert set(tracer.busy_cycles_per_dpu()) == {0}

    def test_chrome_export_puts_spans_under_pid_1(self, tmp_path):
        tracer = Tracer(frequency_hz=450e6)
        tracer.record("LC", 0, 0, 4500)
        rec = SpanRecorder(tracer=tracer, frequency_hz=450e6)
        rec.record("CL", 0.010, track="phases")
        path = str(tmp_path / "trace.json")
        tracer.export_chrome_trace(path)
        with open(path) as f:
            events = json.load(f)["traceEvents"]
        host_x = [
            e for e in events
            if e["ph"] == "X" and Tracer.is_host_track(e["tid"])
        ]
        assert len(host_x) == 1 and host_x[0]["pid"] == 1
        names = [
            e for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        ]
        assert {m["pid"]: m["args"]["name"] for m in names}[1] == "Host (spans)"
        threads = [
            e for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
            and Tracer.is_host_track(e.get("tid", 0))
        ]
        assert threads[0]["args"]["name"] == "phases"

    def test_exported_trace_passes_lint(self, tmp_path):
        from repro.cli import main

        tracer = Tracer(frequency_hz=450e6)
        tracer.record("LC", 0, 0, 4500)
        rec = SpanRecorder(tracer=tracer, frequency_hz=450e6)
        rec.record("CL", 0.010)
        rec.record("RC", 0.005)
        path = str(tmp_path / "trace.json")
        tracer.export_chrome_trace(path)
        assert main(["lint", "--strict", "--trace", path]) == 0
