"""Shared fixtures.

Expensive artifacts (datasets with ground truth, trained indexes,
built engines) are session-scoped: many test modules reuse one small
corpus and one engine configuration.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ann import IVFPQIndex
from repro.core import (
    DrimAnnEngine,
    EngineConfig,
    IndexParams,
    LayoutConfig,
    SearchParams,
)
from repro.core.quantized import build_quantized_index
from repro.data import load_dataset
from repro.pim.config import PimSystemConfig


@pytest.fixture(scope="session")
def small_ds():
    """20k x 128 uint8 corpus, 150 queries, exact top-10 ground truth."""
    return load_dataset(
        "sift-like-20k", seed=0, num_queries=150, ground_truth_k=10
    )


@pytest.fixture(scope="session")
def small_index(small_ds):
    """IVF-PQ trained on the small corpus (nlist=64, M=16, CB=64)."""
    return IVFPQIndex.build(
        small_ds.base, nlist=64, num_subspaces=16, codebook_size=64, seed=0
    )


@pytest.fixture(scope="session")
def small_quantized(small_index):
    return build_quantized_index(small_index)


@pytest.fixture(scope="session")
def small_params():
    return IndexParams(nlist=64, nprobe=8, k=10, num_subspaces=16, codebook_size=64)


@pytest.fixture(scope="session")
def small_engine(small_ds, small_quantized, small_params):
    """Engine over 16 simulated DPUs with splitting + duplication on."""
    config = EngineConfig(
        index=small_params,
        search=SearchParams(batch_size=64),
        system=PimSystemConfig(num_dpus=16),
        layout=LayoutConfig(min_split_size=400, max_copies=2),
    )
    return DrimAnnEngine.from_config(
        small_ds.base,
        config,
        heat_queries=small_ds.queries[:50],
        prebuilt_quantized=small_quantized,
        seed=0,
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(autouse=True)
def _global_rng_guard():
    """Fail any test that mutates the global NumPy RNG.

    All repro code and tests must draw from explicit
    ``np.random.default_rng`` / ``repro.utils.rng`` generators; touching
    the legacy global state couples tests to execution order. The
    astlint ``rng-bypass`` rule polices src/; this guard polices the
    tests themselves.
    """
    before = np.random.get_state()
    yield
    after = np.random.get_state()
    clean = (
        before[0] == after[0]
        and np.array_equal(before[1], after[1])
        and before[2:] == after[2:]
    )
    assert clean, (
        "test mutated the global NumPy RNG state; use an explicit "
        "np.random.default_rng(seed) generator (e.g. the `rng` fixture)"
    )
