"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.ann.distance import adc_lookup_distances, l2_sq
from repro.ann.heap import BoundedMaxHeap, topk_smallest
from repro.core.square_lut import SquareLut
from repro.pim.isa import InstructionMix, IsaCostModel
from repro.tuning.space import DiscreteSpace

SMALL_FLOATS = st.floats(
    min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False
)


class TestDistanceProperties:
    @given(
        hnp.arrays(np.float64, hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=8), elements=SMALL_FLOATS)
    )
    @settings(max_examples=40, deadline=None)
    def test_self_distance_zero(self, x):
        d = l2_sq(x, x)
        assert np.all(np.diag(d) <= 1e-6 * (1 + np.abs(d).max()))

    @given(
        st.integers(1, 6), st.integers(1, 6), st.integers(1, 6),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, nq, nx, d, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        a = rng.normal(size=(nq, d))
        b = rng.normal(size=(nx, d))
        np.testing.assert_allclose(l2_sq(a, b), l2_sq(b, a).T, atol=1e-8)

    @given(st.integers(1, 5), st.integers(1, 16), st.integers(2, 8), st.randoms(use_true_random=False))
    @settings(max_examples=30, deadline=None)
    def test_adc_nonnegative_for_squared_luts(self, m, n, cb, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**31))
        lut = rng.normal(size=(m, cb)) ** 2
        codes = rng.integers(0, cb, size=(n, m))
        assert (adc_lookup_distances(lut, codes) >= 0).all()


class TestHeapProperties:
    @given(
        st.lists(SMALL_FLOATS, min_size=1, max_size=200),
        st.integers(1, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_heap_equals_sort(self, values, k):
        h = BoundedMaxHeap(k)
        for i, v in enumerate(values):
            h.push(float(v), i)
        _, dists = h.result()
        want = np.sort(np.asarray(values))[: min(k, len(values))]
        np.testing.assert_allclose(dists, want)

    @given(
        st.lists(SMALL_FLOATS, min_size=1, max_size=100),
        st.integers(1, 10),
    )
    @settings(max_examples=40, deadline=None)
    def test_topk_smallest_equals_sort(self, values, k):
        v = np.asarray(values)
        _, vals = topk_smallest(v, k)
        np.testing.assert_allclose(vals, np.sort(v)[: min(k, len(v))])

    @given(st.lists(SMALL_FLOATS, min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_heap_result_sorted(self, values):
        h = BoundedMaxHeap(7)
        for i, v in enumerate(values):
            h.push(float(v), i)
        _, dists = h.result()
        assert (np.diff(dists) >= 0).all()


class TestSquareLutProperties:
    @given(
        hnp.arrays(
            np.int64,
            st.integers(1, 64).map(lambda n: (n,)),
            elements=st.integers(-765, 765),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_lossless(self, v):
        lut = SquareLut.for_bit_width(8, levels=3)
        sq, _ = lut.square(v)
        np.testing.assert_array_equal(sq, v**2)

    @given(
        hnp.arrays(
            np.int64, st.integers(1, 64).map(lambda n: (n,)),
            elements=st.integers(-765, 765),
        ),
        st.integers(0, 765),
    )
    @settings(max_examples=40, deadline=None)
    def test_partial_miss_count(self, v, window):
        lut = SquareLut.for_bit_width(8, levels=3).partial(window)
        sq, misses = lut.square(v)
        np.testing.assert_array_equal(sq, v**2)  # still exact
        assert misses == int(np.count_nonzero(np.abs(v) > window))


class TestIsaProperties:
    mixes = st.builds(
        InstructionMix,
        add=st.floats(0, 1e6),
        mul=st.floats(0, 1e6),
        load=st.floats(0, 1e6),
        store=st.floats(0, 1e6),
        compare=st.floats(0, 1e6),
        control=st.floats(0, 1e6),
    )

    @given(mixes, mixes)
    @settings(max_examples=40, deadline=None)
    def test_issue_slots_additive(self, a, b):
        isa = IsaCostModel()
        assert isa.issue_slots(a + b) == pytest.approx(
            isa.issue_slots(a) + isa.issue_slots(b)
        )

    @given(mixes, st.floats(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_issue_slots_homogeneous(self, m, f):
        isa = IsaCostModel()
        assert isa.issue_slots(m.scaled(f)) == pytest.approx(
            isa.issue_slots(m) * f, rel=1e-9, abs=1e-6
        )


class TestSpaceProperties:
    @given(
        st.dictionaries(
            st.text(st.characters(categories=("Ll",)), min_size=1, max_size=4),
            st.lists(st.integers(0, 100), min_size=1, max_size=5, unique=True),
            min_size=1,
            max_size=3,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_encode_in_unit_cube(self, spec):
        space = DiscreteSpace.from_dict(spec)
        for p in space.points():
            x = space.encode(p)
            assert ((x >= 0) & (x <= 1)).all()

    @given(
        st.lists(st.integers(0, 1000), min_size=2, max_size=8, unique=True)
    )
    @settings(max_examples=40, deadline=None)
    def test_encoding_order_preserving(self, values):
        space = DiscreteSpace.from_dict({"v": values})
        svals = sorted(values)
        codes = [space.encode({"v": v})[0] for v in svals]
        assert codes == sorted(codes)
