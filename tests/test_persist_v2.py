"""The v2 ``DRIMIDX2`` on-disk format: round trips, zero-copy loads,
validation, tooling (`index_info`/`verify_index`), shims, and the
crash-safety windows exposed through :mod:`repro.faults.disk`.
"""

import os
import warnings
import zlib

import numpy as np
import pytest

from repro.core.persist import (
    FORMAT_VERSION_V2,
    IndexBundle,
    IndexFormatError,
    index_info,
    load_index,
    load_index_bundle,
    load_quantized,
    save_index,
    save_quantized,
    verify_index,
    write_v1,
)
from repro.core.quantized import QuantizedIndexData
from repro.faults.disk import CrashPoint, SimulatedCrash


def _tiny_index(with_tombstones=False):
    rng = np.random.default_rng(7)
    nlist, m, cb, dsub = 3, 4, 8, 2
    cluster_sizes = (5, 0, 3)
    next_id = 0
    ids, codes = [], []
    for n in cluster_sizes:
        ids.append(np.arange(next_id, next_id + n, dtype=np.int64))
        next_id += n
        codes.append(
            rng.integers(0, cb, size=(n, m), dtype=np.int64).astype(np.uint8)
        )
    tombs = None
    if with_tombstones:
        tombs = [np.zeros(n, dtype=bool) for n in cluster_sizes]
        tombs[0][1] = True
        tombs[2][2] = True
    return QuantizedIndexData(
        centroids=rng.integers(0, 256, size=(nlist, m * dsub), dtype=np.int64)
        .astype(np.uint8),
        codebooks=rng.integers(-300, 300, size=(m, cb, dsub), dtype=np.int64)
        .astype(np.int16),
        cluster_ids=ids,
        cluster_codes=codes,
        tombstones=tombs,
    )


def _assert_same_index(a, b):
    np.testing.assert_array_equal(a.centroids, b.centroids)
    np.testing.assert_array_equal(a.codebooks, b.codebooks)
    assert a.nlist == b.nlist
    for x, y in zip(a.cluster_ids, b.cluster_ids):
        np.testing.assert_array_equal(x, y)
    for x, y in zip(a.cluster_codes, b.cluster_codes):
        np.testing.assert_array_equal(x, y)
        assert x.dtype == y.dtype
    am, bm = a.tombstone_masks(), b.tombstone_masks()
    assert a.num_tombstones == b.num_tombstones
    if am is not None and bm is not None:
        for x, y in zip(am, bm):
            np.testing.assert_array_equal(x, y)


class TestV2RoundTrip:
    def test_roundtrip_identity(self, small_quantized, tmp_path):
        path = str(tmp_path / "index.drim")
        save_index(small_quantized, path)
        _assert_same_index(load_index(path), small_quantized)

    def test_roundtrip_searches_identically(
        self, small_quantized, small_ds, tmp_path
    ):
        path = str(tmp_path / "index.drim")
        save_index(small_quantized, path)
        back = load_index(path)
        q = small_ds.queries[:20]
        a = small_quantized.reference_search(q, 10, 4)
        b = back.reference_search(q, 10, 4)
        np.testing.assert_array_equal(a.ids, b.ids)
        np.testing.assert_array_equal(a.distances, b.distances)

    def test_roundtrip_with_tombstones(self, tmp_path):
        quant = _tiny_index(with_tombstones=True)
        path = str(tmp_path / "t.drim")
        save_index(quant, path)
        back = load_index(path)
        _assert_same_index(back, quant)
        assert back.num_tombstones == 2
        # Restored masks must be writable: delete() keeps working.
        assert back.delete(np.array([back.cluster_ids[0][0]])) == 1
        assert back.num_tombstones == 3

    def test_roundtrip_empty_cluster(self, tmp_path):
        quant = _tiny_index()
        path = str(tmp_path / "e.drim")
        save_index(quant, path)
        back = load_index(path)
        assert len(back.cluster_ids[1]) == 0
        assert back.cluster_codes[1].shape == (0, quant.num_subspaces)

    def test_cluster_heat_round_trips(self, tmp_path):
        quant = _tiny_index()
        heat = np.array([3.5, 0.25, 11.0])
        path = str(tmp_path / "h.drim")
        save_index(quant, path, cluster_heat=heat)
        bundle = load_index_bundle(path)
        assert isinstance(bundle, IndexBundle)
        assert bundle.version == FORMAT_VERSION_V2
        np.testing.assert_array_equal(
            np.asarray(bundle.cluster_heat), heat
        )

    def test_opq_round_trips(self, small_ds, tmp_path):
        from repro.core.opq_preprocess import OpqPreprocessor

        pre = OpqPreprocessor.train(
            small_ds.base[:512], 16, sample_size=512, num_rounds=1, seed=0
        )
        quant = _tiny_index()
        path = str(tmp_path / "o.drim")
        save_index(quant, path, preprocessor=pre)
        back = load_index_bundle(path).preprocessor
        assert back is not None
        q = small_ds.queries[:8]
        np.testing.assert_array_equal(back.transform(q), pre.transform(q))

    def test_mmap_load_returns_views_of_the_file(
        self, small_quantized, tmp_path
    ):
        path = str(tmp_path / "m.drim")
        save_index(small_quantized, path)
        back = load_index(path, mmap=True)
        # Cluster payloads are views over one read-only file mapping,
        # not decompressed copies: no cluster array owns its data.
        assert not back.centroids.flags.owndata
        assert all(not c.flags.owndata for c in back.cluster_codes)
        assert all(not i.flags.owndata for i in back.cluster_ids)

    def test_materialized_load_owns_its_data(self, small_quantized, tmp_path):
        path = str(tmp_path / "m.drim")
        save_index(small_quantized, path)
        back = load_index(path, mmap=False)
        a = small_quantized.reference_search(
            np.zeros((1, small_quantized.dim), dtype=np.uint8), 5, 2
        )
        b = back.reference_search(
            np.zeros((1, back.dim), dtype=np.uint8), 5, 2
        )
        np.testing.assert_array_equal(a.ids, b.ids)


class TestBackCompat:
    def test_load_index_reads_v1_archives(self, small_quantized, tmp_path):
        path = str(tmp_path / "index.npz")
        write_v1(small_quantized, path)
        _assert_same_index(load_index(path), small_quantized)

    def test_v1_refuses_tombstones(self, tmp_path):
        quant = _tiny_index(with_tombstones=True)
        with pytest.raises(ValueError, match="tombstone"):
            write_v1(quant, str(tmp_path / "t.npz"))

    def test_save_quantized_shim_warns_and_writes_v1(
        self, small_quantized, tmp_path
    ):
        path = str(tmp_path / "index.npz")
        with pytest.warns(DeprecationWarning, match="save_index"):
            save_quantized(small_quantized, path)
        _assert_same_index(load_index(path), small_quantized)

    def test_load_quantized_shim_warns_and_reads_both(
        self, small_quantized, tmp_path
    ):
        v2 = str(tmp_path / "index.drim")
        save_index(small_quantized, v2)
        with pytest.warns(DeprecationWarning, match="load_index"):
            back = load_quantized(v2)
        _assert_same_index(back, small_quantized)

    def test_public_shims_do_not_warn_on_import(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            from repro.core import load_quantized as _  # noqa: F401


class TestOffsetValidation:
    """The satellite bugfix: corrupt offset tables must name the file
    and the broken member instead of surfacing a bare IndexError."""

    def test_v1_bad_offsets_raise_format_error(
        self, small_quantized, tmp_path
    ):
        path = str(tmp_path / "index.npz")
        write_v1(small_quantized, path)
        data = dict(np.load(path))
        offsets = data["offsets"]
        offsets[-1] = offsets[-1] + 64  # points past ids_flat
        data["offsets"] = offsets
        np.savez_compressed(path, **data)
        with pytest.raises(IndexFormatError, match="offsets") as ei:
            load_index(path)
        assert "index.npz" in str(ei.value)

    def test_v1_decreasing_offsets_raise_format_error(
        self, small_quantized, tmp_path
    ):
        path = str(tmp_path / "index.npz")
        write_v1(small_quantized, path)
        data = dict(np.load(path))
        offsets = data["offsets"]
        assert len(offsets) > 2
        offsets[1], offsets[2] = offsets[2].copy(), offsets[1].copy()
        data["offsets"] = offsets
        np.savez_compressed(path, **data)
        with pytest.raises(IndexFormatError, match="offsets"):
            load_index(path)


class TestV2Validation:
    def _corrupt(self, path, needle):
        """Flip one byte inside the segment holding ``needle``."""
        info = index_info(path)
        seg = info["segments"][needle]
        with open(path, "r+b") as f:
            f.seek(seg["offset"])
            b = f.read(1)
            f.seek(seg["offset"])
            f.write(bytes([b[0] ^ 0xFF]))

    def test_verify_clean_file(self, small_quantized, tmp_path):
        path = str(tmp_path / "v.drim")
        save_index(small_quantized, path)
        report = verify_index(path)
        assert report["ok"]
        assert report["errors"] == []
        assert report["checked_segments"] >= 6

    def test_verify_catches_payload_corruption(
        self, small_quantized, tmp_path
    ):
        path = str(tmp_path / "v.drim")
        save_index(small_quantized, path)
        self._corrupt(path, "codes_flat")
        report = verify_index(path)
        assert not report["ok"]
        assert any("codes_flat" in e for e in report["errors"])

    def test_future_version_rejected(self, small_quantized, tmp_path):
        path = str(tmp_path / "f.drim")
        save_index(small_quantized, path)
        raw = open(path, "rb").read()
        patched = raw.replace(b'"version": 2', b'"version": 9', 1)
        assert patched != raw
        open(path, "wb").write(patched)
        with pytest.raises(IndexFormatError, match="format version 9"):
            load_index(path)

    def test_garbage_magic_rejected(self, tmp_path):
        path = str(tmp_path / "g.drim")
        open(path, "wb").write(b"GARBAGE!" + b"\x00" * 64)
        with pytest.raises(IndexFormatError):
            load_index(path)

    def test_truncated_v2_rejected(self, small_quantized, tmp_path):
        path = str(tmp_path / "t.drim")
        save_index(small_quantized, path)
        size = os.path.getsize(path)
        with open(path, "rb") as f:
            head = f.read(size // 2)
        open(path, "wb").write(head)
        with pytest.raises(IndexFormatError):
            load_index(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_index(str(tmp_path / "nope.drim"))

    def test_crc_catalog_matches_recomputation(
        self, small_quantized, tmp_path
    ):
        path = str(tmp_path / "c.drim")
        save_index(small_quantized, path)
        info = index_info(path)
        raw = open(path, "rb").read()
        for name, seg in info["segments"].items():
            body = raw[seg["offset"] : seg["offset"] + seg["nbytes"]]
            assert (zlib.crc32(body) & 0xFFFFFFFF) == seg["crc32"], name


class TestIndexInfo:
    def test_info_fields_v2(self, small_quantized, tmp_path):
        path = str(tmp_path / "i.drim")
        save_index(small_quantized, path, cluster_heat=np.ones(64))
        info = index_info(path)
        assert info["container"] == "drimidx2"
        assert info["format_version"] == 2
        assert info["nlist"] == 64
        assert info["num_points"] == small_quantized.num_points
        assert info["num_tombstones"] == 0
        assert info["has_cluster_heat"]
        assert not info["has_opq"]
        assert info["file_bytes"] == os.path.getsize(path)

    def test_info_counts_tombstones(self, tmp_path):
        quant = _tiny_index(with_tombstones=True)
        path = str(tmp_path / "i.drim")
        save_index(quant, path)
        info = index_info(path)
        assert info["num_tombstones"] == 2
        assert info["tombstone_ratio"] == pytest.approx(2 / 8)

    def test_info_reads_v1(self, small_quantized, tmp_path):
        path = str(tmp_path / "i.npz")
        write_v1(small_quantized, path)
        info = index_info(path)
        assert info["container"] == "npz"
        assert info["format_version"] == 1
        assert info["num_points"] == small_quantized.num_points


class TestCrashWindows:
    def test_crash_staged_preserves_old_index(self, tmp_path):
        quant = _tiny_index()
        path = str(tmp_path / "x.drim")
        save_index(quant, path)
        before = open(path, "rb").read()
        grown = quant.compact()
        grown.delete(grown.cluster_ids[0][:1])
        with CrashPoint("staged") as cp:
            with pytest.raises(SimulatedCrash):
                save_index(grown, path)
        assert cp.fired
        # Old bytes intact, no temp debris, still loadable.
        assert open(path, "rb").read() == before
        assert sorted(os.listdir(tmp_path)) == ["x.drim"]
        _assert_same_index(load_index(path), quant)

    def test_crash_replaced_leaves_new_index(self, tmp_path):
        quant = _tiny_index()
        path = str(tmp_path / "x.drim")
        save_index(quant, path)
        grown = quant.compact()
        grown.delete(grown.cluster_ids[0][:1])
        with CrashPoint("replaced") as cp:
            with pytest.raises(SimulatedCrash):
                save_index(grown, path)
        assert cp.fired
        back = load_index(path)
        assert back.num_tombstones == 1
        assert sorted(os.listdir(tmp_path)) == ["x.drim"]

    def test_crash_first_save_leaves_nothing(self, tmp_path):
        path = str(tmp_path / "x.drim")
        with CrashPoint("staged"):
            with pytest.raises(SimulatedCrash):
                save_index(_tiny_index(), path)
        assert os.listdir(tmp_path) == []

    def test_hook_restored_after_exit(self, tmp_path):
        from repro.core import persist

        assert persist._crash_hook is None
        with CrashPoint("staged"):
            assert persist._crash_hook is not None
        assert persist._crash_hook is None
        save_index(_tiny_index(), str(tmp_path / "ok.drim"))

    def test_invalid_stage_rejected(self):
        with pytest.raises(ValueError, match="staged"):
            CrashPoint("mid-air")
