"""Incremental insertion and exact re-ranking (IVFPQIndex extensions)."""

import numpy as np
import pytest

from repro.ann import IVFPQIndex, recall_at_k


class TestAdd:
    @pytest.fixture()
    def idx(self, small_ds):
        return IVFPQIndex.build(
            small_ds.base[:5000], nlist=16, num_subspaces=16, codebook_size=32, seed=0
        )

    def test_count_grows(self, idx, small_ds):
        before = idx.num_points
        new_ids = idx.add(small_ds.base[5000:5100])
        assert idx.num_points == before + 100
        assert len(new_ids) == 100

    def test_auto_ids_are_fresh(self, idx, small_ds):
        new_ids = idx.add(small_ds.base[5000:5050])
        existing = np.concatenate(idx.ivf.lists)
        assert len(np.unique(existing)) == len(existing)
        assert new_ids.min() >= 5000

    def test_explicit_ids(self, idx, small_ds):
        ids = np.arange(90_000, 90_020)
        got = idx.add(small_ds.base[5000:5020], ids=ids)
        np.testing.assert_array_equal(got, ids)

    def test_added_vectors_are_findable(self, idx, small_ds):
        """A query identical to an inserted vector should retrieve it."""
        new = small_ds.base[5000:5040]
        ids = idx.add(new)
        res = idx.search(new, k=5, nprobe=8)
        hit = np.mean([ids[i] in res.ids[i] for i in range(len(new))])
        assert hit > 0.8

    def test_codes_lists_stay_aligned(self, idx, small_ds):
        idx.add(small_ds.base[5000:5200])
        for lst, codes in zip(idx.ivf.lists, idx.codes):
            assert len(lst) == len(codes)

    def test_dim_mismatch(self, idx):
        with pytest.raises(ValueError, match="dim"):
            idx.add(np.zeros((2, 7), dtype=np.uint8))

    def test_id_shape_mismatch(self, idx, small_ds):
        with pytest.raises(ValueError, match="ids shape"):
            idx.add(small_ds.base[5000:5002], ids=np.arange(3))


class TestRerank:
    @pytest.fixture(scope="class")
    def idx(self, small_ds):
        return IVFPQIndex.build(
            small_ds.base, nlist=64, num_subspaces=8, codebook_size=32, seed=0
        )

    def test_rerank_improves_recall(self, idx, small_ds):
        """Coarse PQ (M=8) has a low ceiling; refine must lift it."""
        plain = idx.search(small_ds.queries, k=10, nprobe=8)
        refined = idx.search(
            small_ds.queries, k=10, nprobe=8, rerank=100, base=small_ds.base
        )
        r_plain = recall_at_k(plain.ids, small_ds.ground_truth, 10)
        r_refined = recall_at_k(refined.ids, small_ds.ground_truth, 10)
        assert r_refined > r_plain + 0.1

    def test_rerank_distances_are_exact(self, idx, small_ds):
        from repro.ann.distance import l2_sq

        res = idx.search(
            small_ds.queries[:5], k=5, nprobe=4, rerank=50, base=small_ds.base
        )
        for qi in range(5):
            ids = res.ids[qi][res.ids[qi] >= 0]
            d = l2_sq(
                small_ds.queries[qi : qi + 1].astype(np.float64),
                small_ds.base[ids].astype(np.float64),
            )[0]
            np.testing.assert_allclose(res.distances[qi][: len(ids)], d)

    def test_rerank_requires_base(self, idx, small_ds):
        with pytest.raises(ValueError, match="base"):
            idx.search(small_ds.queries[:2], k=5, nprobe=2, rerank=20)

    def test_rerank_smaller_than_k_still_returns_k(self, idx, small_ds):
        res = idx.search(
            small_ds.queries[:3], k=10, nprobe=4, rerank=5, base=small_ds.base
        )
        assert res.ids.shape == (3, 10)
        assert (res.ids >= 0).all()  # max(rerank, k) candidates fetched
