import numpy as np
import pytest

from repro.core.layout import (
    LayoutConfig,
    estimate_cluster_heat,
    generate_layout,
)


@pytest.fixture(scope="module")
def heat(small_quantized, small_ds):
    return estimate_cluster_heat(
        small_quantized,
        small_ds.queries[:50],
        nprobe=8,
        lut_weight=1000.0,
        point_weight=10.0,
    )


class TestHeat:
    def test_shape_and_nonneg(self, heat, small_quantized):
        assert heat.shape == (small_quantized.nlist,)
        assert (heat >= 0).all()

    def test_probed_clusters_have_heat(self, heat, small_quantized, small_ds):
        probes = small_quantized.locate(small_ds.queries[:50], 8)
        touched = np.unique(probes)
        assert (heat[touched] > 0).all()


class TestLayoutGeneration:
    def test_every_point_covered_once_per_replica(self, small_quantized, heat):
        plan = generate_layout(
            small_quantized, 8, heat, LayoutConfig(min_split_size=300, max_copies=1)
        )
        for cid in range(small_quantized.nlist):
            n = len(small_quantized.cluster_ids[cid])
            for group in plan.replica_groups[cid]:
                rows = np.concatenate(
                    [plan.shards[k].point_rows for k in group]
                ) if group else np.array([], dtype=int)
                assert sorted(rows.tolist()) == list(range(n))

    def test_splitting_respects_threshold(self, small_quantized, heat):
        plan = generate_layout(
            small_quantized, 8, heat, LayoutConfig(min_split_size=200, max_copies=0)
        )
        for shard in plan.shards.values():
            assert shard.num_points <= 200 or (
                len(plan.replica_groups[shard.cluster_id][0]) == 1
            )

    def test_no_splitting_when_disabled(self, small_quantized, heat):
        plan = generate_layout(
            small_quantized, 8, heat, LayoutConfig(min_split_size=None, max_copies=0)
        )
        assert len(plan.shards) == small_quantized.nlist

    def test_duplication_respects_max_copies(self, small_quantized, heat):
        plan = generate_layout(
            small_quantized,
            8,
            heat,
            LayoutConfig(min_split_size=None, max_copies=2),
        )
        for cid in range(small_quantized.nlist):
            assert 1 <= plan.replica_count(cid) <= 3

    def test_zero_budget_means_no_copies(self, small_quantized, heat):
        plan = generate_layout(
            small_quantized,
            8,
            heat,
            LayoutConfig(min_split_size=None, max_copies=2, dup_budget_per_dpu=0),
        )
        assert all(plan.replica_count(c) == 1 for c in range(small_quantized.nlist))

    def test_hottest_clusters_duplicated_first(self, small_quantized, heat):
        plan = generate_layout(
            small_quantized,
            8,
            heat,
            LayoutConfig(min_split_size=None, max_copies=1, dup_budget_per_dpu=4096),
        )
        dup = [c for c in range(small_quantized.nlist) if plan.replica_count(c) > 1]
        if dup:
            not_dup = [
                c for c in range(small_quantized.nlist) if plan.replica_count(c) == 1
            ]
            assert min(heat[dup]) >= np.median(heat[not_dup]) * 0.5

    def test_heat_greedy_balances_better_than_id_order(
        self, small_quantized, heat
    ):
        greedy = generate_layout(
            small_quantized,
            8,
            heat,
            LayoutConfig(min_split_size=300, max_copies=0, allocation="heat_greedy"),
        )
        id_order = generate_layout(
            small_quantized,
            8,
            heat,
            LayoutConfig(min_split_size=300, max_copies=0, allocation="id_order"),
        )
        assert greedy.heat_per_dpu().max() <= id_order.heat_per_dpu().max()

    def test_sibling_repulsion(self, small_quantized, heat):
        """Copies / parts of one cluster should land on distinct DPUs
        whenever DPUs are plentiful."""
        plan = generate_layout(
            small_quantized,
            16,
            heat,
            LayoutConfig(min_split_size=400, max_copies=1),
        )
        for cid, groups in plan.replica_groups.items():
            keys = [k for g in groups for k in g]
            dpus = [plan.placement[k] for k in keys]
            if len(keys) <= 16:
                assert len(set(dpus)) == len(dpus), f"cluster {cid} collides"

    def test_heat_shape_validated(self, small_quantized):
        with pytest.raises(ValueError, match="cluster_heat"):
            generate_layout(small_quantized, 4, np.zeros(3), LayoutConfig())

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LayoutConfig(min_split_size=0)
        with pytest.raises(ValueError):
            LayoutConfig(max_copies=-1)
        with pytest.raises(ValueError):
            LayoutConfig(allocation="random")

    def test_shards_on(self, small_quantized, heat):
        plan = generate_layout(
            small_quantized, 4, heat, LayoutConfig(min_split_size=None, max_copies=0)
        )
        total = sum(len(plan.shards_on(d)) for d in range(4))
        assert total == len(plan.shards)
