import numpy as np
import pytest

from repro.core.breakdown import TimingBreakdown
from repro.pim.system import BatchTiming


def _batch(cycles, kernels=None, xfer=0.001, tasks=10):
    return BatchTiming(
        per_dpu_cycles=np.asarray(cycles, dtype=float),
        kernel_cycles=kernels or {"DC": float(sum(cycles))},
        pim_seconds=max(cycles) / 450e6,
        transfer_seconds=xfer,
        num_tasks=tasks,
    )


class TestAddBatch:
    def test_accumulates(self):
        bd = TimingBreakdown()
        bd.add_batch(_batch([100, 200]), host_seconds=0.0001, num_queries=5)
        bd.add_batch(_batch([300, 100]), host_seconds=0.0001, num_queries=5)
        assert bd.num_batches == 2
        assert bd.num_queries == 10
        assert bd.pim_seconds == pytest.approx((200 + 300) / 450e6)

    def test_e2e_overlap_semantics(self):
        """e2e charges the max of PIM, host, transfer per batch."""
        bd = TimingBreakdown()
        bd.add_batch(_batch([450_000], xfer=0.0005), host_seconds=0.01, num_queries=1)
        assert bd.e2e_seconds == pytest.approx(0.01)  # host dominates

    def test_kernel_shares_sum_to_one(self):
        bd = TimingBreakdown()
        bd.add_batch(
            _batch([100], kernels={"LC": 60.0, "DC": 40.0}), 0.0, 1
        )
        shares = bd.kernel_shares()
        assert shares["LC"] == pytest.approx(0.6)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_empty_shares(self):
        assert TimingBreakdown().kernel_shares() == {}

    def test_busy_fraction_tracking(self):
        bd = TimingBreakdown()
        bd.add_batch(_batch([100, 100]), 0.0, 1)  # perfectly balanced
        assert bd.mean_busy_fraction == pytest.approx(1.0)
        bd.add_batch(_batch([100, 0]), 0.0, 1)  # half idle
        assert bd.mean_busy_fraction == pytest.approx(0.75)

    def test_throughput(self):
        bd = TimingBreakdown()
        bd.add_batch(_batch([450e6]), 0.0, 100)  # 1 second batch
        assert bd.throughput_qps == pytest.approx(100.0, rel=1e-2)

    def test_summary_contains_key_numbers(self):
        bd = TimingBreakdown()
        bd.add_batch(_batch([450_000]), 0.0001, 7)
        s = bd.summary()
        assert "7 queries" in s and "qps=" in s


class TestTailLatency:
    def test_percentiles(self):
        bd = TimingBreakdown()
        for c in (100, 100, 100, 1000):  # one straggler batch
            bd.add_batch(_batch([c]), 0.0, 1)
        p50 = bd.batch_latency_percentile(50)
        p95 = bd.batch_latency_percentile(95)
        assert p95 > p50

    def test_tail_ratio_balanced(self):
        bd = TimingBreakdown()
        for _ in range(10):
            bd.add_batch(_batch([100]), 0.0, 1)
        assert bd.tail_ratio == pytest.approx(1.0)

    def test_tail_ratio_skewed(self):
        bd = TimingBreakdown()
        for c in [100] * 19 + [2000]:
            bd.add_batch(_batch([c]), 0.0, 1)
        assert bd.tail_ratio > 1.5

    def test_empty(self):
        bd = TimingBreakdown()
        assert bd.batch_latency_percentile(95) == 0.0
        assert bd.tail_ratio == 1.0
