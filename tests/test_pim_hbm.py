"""HBM-PIM platform preset (paper §II-B portability claim)."""

import numpy as np

from repro.core import DrimAnnEngine, LayoutConfig
from repro.pim.config import hbm_pim_system_config, scaled_system_config


class TestHbmConfig:
    def test_capacity_is_bounded(self):
        """Total capacity fixed: more units -> less memory per unit."""
        few = hbm_pim_system_config(num_units=128)
        many = hbm_pim_system_config(num_units=1024)
        assert few.dpu.mram_bytes > many.dpu.mram_bytes
        assert (
            few.num_dpus * few.dpu.mram_bytes
            == many.num_dpus * many.dpu.mram_bytes
        )

    def test_stronger_per_unit_compute_than_upmem(self):
        hbm = hbm_pim_system_config(64).dpu
        upmem = scaled_system_config(64).dpu
        hbm_rate = hbm.frequency_hz * hbm.effective_ipc * hbm.compute_scale
        upmem_rate = upmem.frequency_hz * upmem.effective_ipc * upmem.compute_scale
        assert hbm_rate > 5 * upmem_rate

    def test_capacity_smaller_than_upmem(self):
        hbm = hbm_pim_system_config(2048)
        upmem = scaled_system_config(2048)
        assert (
            hbm.num_dpus * hbm.dpu.mram_bytes
            < upmem.num_dpus * upmem.dpu.mram_bytes
        )


class TestEngineOnHbm:
    def test_engine_runs_unchanged(self, small_ds, small_quantized, small_params):
        eng = DrimAnnEngine.build(
            small_ds.base,
            small_params,
            system_config=hbm_pim_system_config(num_units=16),
            prebuilt_quantized=small_quantized,
            seed=0,
        )
        res, bd = eng.search(small_ds.queries[:30])
        ref = eng.reference_search(small_ds.queries[:30])
        np.testing.assert_allclose(
            np.sort(res.distances, axis=1), np.sort(ref.distances, axis=1)
        )
        assert bd.pim_seconds > 0

    def test_hbm_faster_per_unit_on_compute_bound_work(
        self, small_ds, small_quantized, small_params
    ):
        times = {}
        for name, cfg in (
            ("upmem", scaled_system_config(16)),
            ("hbm", hbm_pim_system_config(num_units=16)),
        ):
            eng = DrimAnnEngine.build(
                small_ds.base,
                small_params,
                system_config=cfg,
                layout_config=LayoutConfig(min_split_size=400, max_copies=1),
                prebuilt_quantized=small_quantized,
                seed=0,
            )
            _, bd = eng.search(small_ds.queries[:50])
            times[name] = bd.pim_seconds
        assert times["hbm"] < times["upmem"]
