import numpy as np
import pytest

from repro.faults import (
    FaultConfig,
    FaultPlan,
    NodeFaultConfig,
    NodeFaultPlan,
)


class TestFaultConfig:
    def test_defaults_are_benign(self):
        cfg = FaultConfig()
        assert cfg.fail_stop_fraction == 0.0
        assert cfg.transient_rate == 0.0

    @pytest.mark.parametrize(
        "kw",
        [
            {"fail_stop_fraction": -0.1},
            {"fail_stop_fraction": 1.5},
            {"straggler_fraction": 2.0},
            {"transient_rate": -1e-9},
            {"transfer_timeout_rate": 1.1},
            {"straggler_derate": (0.0, 0.5)},
            {"straggler_derate": (0.9, 0.4)},
            {"straggler_derate": (0.5, 1.2)},
            {"fail_stop_max_batch": -1},
            {"horizon_batches": 0},
            {"transient_backoff_s": -1.0},
            {"retry_backoff_s": -1e-6},
            {"max_redispatch_attempts": 0},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            FaultConfig(**kw)


class TestGenerate:
    def test_deterministic_for_seed(self):
        cfg = FaultConfig(
            fail_stop_fraction=0.1,
            straggler_fraction=0.2,
            transient_rate=0.05,
            transfer_timeout_rate=0.1,
        )
        a = FaultPlan.generate(64, cfg, seed=7)
        b = FaultPlan.generate(64, cfg, seed=7)
        assert a.fail_at_batch == b.fail_at_batch
        np.testing.assert_array_equal(a.derates, b.derates)
        assert a.transients == b.transients
        assert a.transfer_timeouts == b.transfer_timeouts

    def test_different_seeds_differ(self):
        cfg = FaultConfig(fail_stop_fraction=0.25, straggler_fraction=0.25)
        a = FaultPlan.generate(64, cfg, seed=1)
        b = FaultPlan.generate(64, cfg, seed=2)
        assert (
            a.fail_at_batch != b.fail_at_batch
            or not np.array_equal(a.derates, b.derates)
        )

    def test_failstop_and_stragglers_disjoint(self):
        cfg = FaultConfig(fail_stop_fraction=0.3, straggler_fraction=0.3)
        plan = FaultPlan.generate(40, cfg, seed=0)
        assert not set(plan.failstop_dpus) & set(plan.straggler_dpus)
        assert len(plan.failstop_dpus) == 12
        assert len(plan.straggler_dpus) == 12

    def test_derates_in_configured_range(self):
        cfg = FaultConfig(straggler_fraction=0.5, straggler_derate=(0.6, 0.8))
        plan = FaultPlan.generate(32, cfg, seed=3)
        der = plan.derates[plan.straggler_dpus]
        assert np.all((der >= 0.6) & (der <= 0.8))
        healthy = np.delete(plan.derates, plan.straggler_dpus)
        assert np.all(healthy == 1.0)

    def test_crash_batches_within_bound(self):
        cfg = FaultConfig(fail_stop_fraction=0.5, fail_stop_max_batch=2)
        plan = FaultPlan.generate(20, cfg, seed=0)
        assert all(0 <= b <= 2 for b in plan.fail_at_batch.values())


class TestLookups:
    def test_dead_at_is_cumulative(self):
        plan = FaultPlan(
            num_dpus=8, config=FaultConfig(), fail_at_batch={1: 0, 5: 2}
        )
        assert plan.dead_at(0) == {1}
        assert plan.dead_at(1) == {1}
        assert plan.dead_at(2) == {1, 5}
        assert plan.dead_at(100) == {1, 5}

    def test_transient_and_timeout_lookups(self):
        plan = FaultPlan(
            num_dpus=4,
            config=FaultConfig(),
            transients=frozenset({(2, 1)}),
            transfer_timeouts=frozenset({3}),
        )
        assert plan.transient_at(2, 1)
        assert not plan.transient_at(2, 0)
        assert plan.transfer_timeout_at(3)
        assert not plan.transfer_timeout_at(2)

    def test_none_is_benign(self):
        plan = FaultPlan.none(16)
        assert plan.is_benign
        assert not plan.has_capacity_faults
        assert plan.dead_at(1000) == set()
        np.testing.assert_array_equal(plan.derates, np.ones(16))

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(num_dpus=0, config=FaultConfig())
        with pytest.raises(ValueError):
            FaultPlan(num_dpus=4, config=FaultConfig(), fail_at_batch={9: 0})
        with pytest.raises(ValueError):
            FaultPlan(num_dpus=4, config=FaultConfig(), fail_at_batch={1: -1})
        with pytest.raises(ValueError):
            FaultPlan(
                num_dpus=4, config=FaultConfig(), derates=np.array([1, 1, 0, 1.0])
            )

    def test_summary_mentions_counts(self):
        cfg = FaultConfig(fail_stop_fraction=0.25)
        plan = FaultPlan.generate(8, cfg, seed=0)
        assert "2 fail-stop" in plan.summary()


class TestNodeFaultConfig:
    def test_defaults_are_benign(self):
        cfg = NodeFaultConfig()
        assert cfg.crash_fraction == 0.0
        assert cfg.partition_rate == 0.0
        assert cfg.slow_fraction == 0.0

    @pytest.mark.parametrize(
        "kw",
        [
            {"crash_fraction": 1.5},
            {"partition_rate": -0.1},
            {"slow_fraction": 2.0},
            {"slow_factor": (0.5, 2.0)},
            {"slow_factor": (4.0, 2.0)},
            {"crash_max_round": -1},
            {"horizon_rounds": 0},
        ],
    )
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            NodeFaultConfig(**kw)


class TestNodeFaultPlan:
    def test_none_is_benign(self):
        plan = NodeFaultPlan.none(6)
        assert plan.is_benign
        assert not plan.crashed_at(0, 100)
        assert not plan.partitioned_at(3, 0)
        assert plan.slow_factor_of(5) == 1.0

    def test_generate_deterministic_for_seed(self):
        cfg = NodeFaultConfig(
            crash_fraction=0.25, partition_rate=0.05, slow_fraction=0.25
        )
        a = NodeFaultPlan.generate(8, cfg, seed=3)
        b = NodeFaultPlan.generate(8, cfg, seed=3)
        assert a.crash_at_round == b.crash_at_round
        assert a.partitions == b.partitions
        np.testing.assert_array_equal(a.slow_factors, b.slow_factors)
        c = NodeFaultPlan.generate(8, cfg, seed=4)
        assert a.to_dict() != c.to_dict()

    def test_crash_and_slow_nodes_disjoint(self):
        cfg = NodeFaultConfig(crash_fraction=0.5, slow_fraction=0.5)
        plan = NodeFaultPlan.generate(8, cfg, seed=0)
        assert not set(plan.crashed_nodes) & set(plan.slow_nodes)

    def test_crashed_at_is_cumulative(self):
        plan = NodeFaultPlan(
            num_nodes=4, config=NodeFaultConfig(), crash_at_round={2: 3}
        )
        assert not plan.crashed_at(2, 2)
        assert plan.crashed_at(2, 3)
        assert plan.crashed_at(2, 99)
        assert not plan.crashed_at(1, 99)

    def test_slow_factors_in_configured_range(self):
        cfg = NodeFaultConfig(slow_fraction=0.5, slow_factor=(3.0, 5.0))
        plan = NodeFaultPlan.generate(8, cfg, seed=1)
        slow = plan.slow_factors[plan.slow_nodes]
        assert len(slow) == 4
        assert np.all((slow >= 3.0) & (slow <= 5.0))

    def test_dict_roundtrip(self):
        cfg = NodeFaultConfig(
            crash_fraction=0.25,
            partition_rate=0.02,
            slow_fraction=0.25,
            slow_factor=(2.0, 4.0),
        )
        plan = NodeFaultPlan.generate(8, cfg, seed=7)
        back = NodeFaultPlan.from_dict(plan.to_dict())
        assert back.config == plan.config
        assert back.crash_at_round == plan.crash_at_round
        assert back.partitions == plan.partitions
        np.testing.assert_array_equal(back.slow_factors, plan.slow_factors)
        assert back.to_dict() == plan.to_dict()

    def test_roundtrip_survives_json(self):
        import json

        plan = NodeFaultPlan.generate(
            6,
            NodeFaultConfig(crash_fraction=0.5, partition_rate=0.1),
            seed=2,
        )
        wire = json.loads(json.dumps(plan.to_dict()))
        assert NodeFaultPlan.from_dict(wire).to_dict() == plan.to_dict()

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeFaultPlan(num_nodes=0, config=NodeFaultConfig())
        with pytest.raises(ValueError):
            NodeFaultPlan(
                num_nodes=4, config=NodeFaultConfig(), crash_at_round={9: 0}
            )
        with pytest.raises(ValueError):
            NodeFaultPlan(
                num_nodes=4, config=NodeFaultConfig(), crash_at_round={1: -1}
            )
        with pytest.raises(ValueError):
            NodeFaultPlan(
                num_nodes=4,
                config=NodeFaultConfig(),
                slow_factors=np.array([1.0, 0.5, 1.0, 1.0]),
            )

    def test_summary_mentions_counts(self):
        plan = NodeFaultPlan.generate(
            8, NodeFaultConfig(crash_fraction=0.25), seed=0
        )
        assert "2 crashes" in plan.summary()
