import numpy as np
import pytest

from repro.data.io_vecs import iter_vecs, read_vecs, write_vecs


class TestRoundTrip:
    @pytest.mark.parametrize(
        "ext,dtype",
        [(".fvecs", np.float32), (".bvecs", np.uint8), (".ivecs", np.int32)],
    )
    def test_roundtrip(self, tmp_path, rng, ext, dtype):
        path = str(tmp_path / f"x{ext}")
        if dtype == np.float32:
            data = rng.normal(size=(17, 9)).astype(dtype)
        else:
            data = rng.integers(0, 100, size=(17, 9)).astype(dtype)
        write_vecs(path, data)
        back = read_vecs(path)
        np.testing.assert_array_equal(back, data)

    def test_offset_and_count(self, tmp_path, rng):
        path = str(tmp_path / "x.bvecs")
        data = rng.integers(0, 255, size=(20, 4)).astype(np.uint8)
        write_vecs(path, data)
        np.testing.assert_array_equal(read_vecs(path, count=5, offset=3), data[3:8])

    def test_count_beyond_end_clamped(self, tmp_path, rng):
        path = str(tmp_path / "x.bvecs")
        data = rng.integers(0, 255, size=(5, 4)).astype(np.uint8)
        write_vecs(path, data)
        assert read_vecs(path, count=100).shape == (5, 4)


class TestIterVecs:
    def test_chunks_reassemble(self, tmp_path, rng):
        path = str(tmp_path / "x.bvecs")
        data = rng.integers(0, 255, size=(23, 6)).astype(np.uint8)
        write_vecs(path, data)
        blocks = list(iter_vecs(path, chunk=7))
        assert [len(b) for b in blocks] == [7, 7, 7, 2]
        np.testing.assert_array_equal(np.concatenate(blocks), data)

    def test_exact_multiple(self, tmp_path, rng):
        path = str(tmp_path / "x.fvecs")
        data = rng.normal(size=(10, 3)).astype(np.float32)
        write_vecs(path, data)
        blocks = list(iter_vecs(path, chunk=5))
        assert [len(b) for b in blocks] == [5, 5]

    def test_chunk_larger_than_file(self, tmp_path, rng):
        path = str(tmp_path / "x.bvecs")
        data = rng.integers(0, 9, size=(4, 2)).astype(np.uint8)
        write_vecs(path, data)
        blocks = list(iter_vecs(path, chunk=100))
        assert len(blocks) == 1

    def test_invalid_chunk(self, tmp_path):
        with pytest.raises(ValueError):
            list(iter_vecs(str(tmp_path / "x.bvecs"), chunk=0))


class TestErrors:
    def test_bad_extension(self, tmp_path):
        with pytest.raises(ValueError, match="extension"):
            read_vecs(str(tmp_path / "x.dat"))

    def test_write_bad_extension(self, tmp_path):
        with pytest.raises(ValueError, match="extension"):
            write_vecs(str(tmp_path / "x.dat"), np.zeros((2, 2)))

    def test_write_1d_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="2-D"):
            write_vecs(str(tmp_path / "x.fvecs"), np.zeros(4, dtype=np.float32))

    def test_corrupt_size(self, tmp_path):
        path = tmp_path / "x.fvecs"
        path.write_bytes(b"\x04\x00\x00\x00" + b"\x00" * 10)  # wrong payload len
        with pytest.raises(ValueError, match="corrupt"):
            read_vecs(str(path))

    def test_offset_out_of_range(self, tmp_path, rng):
        path = str(tmp_path / "x.bvecs")
        write_vecs(path, rng.integers(0, 9, size=(3, 2)).astype(np.uint8))
        with pytest.raises(ValueError, match="offset"):
            read_vecs(path, offset=10)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "x.fvecs"
        path.write_bytes(b"")
        assert read_vecs(str(path)).size == 0
