import numpy as np
import pytest

from repro.ann import FlatIndex, recall_at_k
from repro.ann.recall import one_recall_at_k


class TestFlatIndex:
    def test_perfect_recall(self, small_ds):
        res = FlatIndex(small_ds.base).search(small_ds.queries, 10)
        assert recall_at_k(res.ids, small_ds.ground_truth, 10) == 1.0

    def test_self_query(self, rng):
        base = rng.integers(0, 255, size=(100, 8)).astype(np.uint8)
        res = FlatIndex(base).search(base[:5], 1)
        # each point's nearest neighbor is itself (distance 0)
        np.testing.assert_allclose(res.distances[:, 0], 0.0)

    def test_k_bounds(self, rng):
        idx = FlatIndex(rng.normal(size=(10, 4)))
        with pytest.raises(ValueError):
            idx.search(np.zeros((1, 4)), 0)
        with pytest.raises(ValueError):
            idx.search(np.zeros((1, 4)), 11)


class TestRecallAtK:
    def test_perfect(self):
        gt = np.array([[1, 2, 3], [4, 5, 6]])
        assert recall_at_k(gt, gt, 3) == 1.0

    def test_zero(self):
        res = np.array([[7, 8, 9]])
        gt = np.array([[1, 2, 3]])
        assert recall_at_k(res, gt, 3) == 0.0

    def test_partial(self):
        res = np.array([[1, 8, 9]])
        gt = np.array([[1, 2, 3]])
        assert recall_at_k(res, gt, 3) == pytest.approx(1 / 3)

    def test_order_irrelevant(self):
        res = np.array([[3, 1, 2]])
        gt = np.array([[1, 2, 3]])
        assert recall_at_k(res, gt, 3) == 1.0

    def test_padding_counts_as_miss(self):
        res = np.array([[1, -1, -1]])
        gt = np.array([[1, 2, 3]])
        assert recall_at_k(res, gt, 3) == pytest.approx(1 / 3)

    def test_k_wider_than_results_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k(np.zeros((1, 2), dtype=int), np.zeros((1, 5), dtype=int), 5)

    def test_row_mismatch_rejected(self):
        with pytest.raises(ValueError):
            recall_at_k(np.zeros((2, 3), dtype=int), np.zeros((1, 3), dtype=int), 3)


class TestOneRecallAtK:
    def test_hit(self):
        res = np.array([[9, 5, 1]])
        gt = np.array([[1, 2, 3]])
        assert one_recall_at_k(res, gt, 3) == 1.0

    def test_miss(self):
        res = np.array([[9, 5, 4]])
        gt = np.array([[1, 2, 3]])
        assert one_recall_at_k(res, gt, 3) == 0.0
