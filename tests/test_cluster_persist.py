"""Rack persistence: ``ClusterIndex.save`` / ``load_cluster_index``.

A reloaded rack must be the *same* rack: identical topology, identical
routing, and bit-identical frontend answers — because every shard file
stores the intra-platform cluster heat its engines' layouts were
generated from.
"""

import json
import os

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterFrontend,
    build_cluster_index,
    load_cluster_index,
)
from repro.core import EngineConfig, LayoutConfig, SearchParams
from repro.core.persist import IndexFormatError
from repro.pim.config import PimSystemConfig


@pytest.fixture(scope="module")
def engine_config(small_params):
    return EngineConfig(
        index=small_params,
        search=SearchParams(batch_size=64),
        system=PimSystemConfig(num_dpus=16),
        layout=LayoutConfig(min_split_size=400, max_copies=2),
    )


@pytest.fixture(scope="module")
def saved_rack(small_ds, small_quantized, engine_config, tmp_path_factory):
    """Build a 3x2 rack, capture its answers, save it, tear it down."""
    directory = str(tmp_path_factory.mktemp("rack"))
    queries = small_ds.queries[:24]
    with build_cluster_index(
        small_ds.base,
        engine_config,
        ClusterConfig(num_shards=3, replication=2),
        heat_queries=small_ds.queries[:50],
        prebuilt_quantized=small_quantized,
        seed=0,
    ) as cluster:
        res, _ = ClusterFrontend(cluster, seed=0).search(queries)
        cluster.save(directory)
        owner = cluster.owner.copy()
    return {
        "directory": directory,
        "queries": queries,
        "ids": res.ids.copy(),
        "distances": res.distances.copy(),
        "owner": owner,
    }


class TestRackRoundTrip:
    def test_layout_on_disk(self, saved_rack):
        files = sorted(os.listdir(saved_rack["directory"]))
        assert files == [
            "manifest.json",
            "router.drim",
            "shard_0000.drim",
            "shard_0001.drim",
            "shard_0002.drim",
        ]

    def test_reloaded_rack_is_bit_identical(self, saved_rack, engine_config):
        with load_cluster_index(
            saved_rack["directory"], engine_config, seed=0
        ) as cluster:
            assert cluster.num_shards == 3
            assert cluster.replication == 2
            np.testing.assert_array_equal(cluster.owner, saved_rack["owner"])
            res, rep = ClusterFrontend(cluster, seed=0).search(
                saved_rack["queries"]
            )
        np.testing.assert_array_equal(res.ids, saved_rack["ids"])
        np.testing.assert_array_equal(res.distances, saved_rack["distances"])
        assert rep.mean_coverage == 1.0

    def test_reloaded_rack_matches_oracle(self, saved_rack, engine_config):
        with load_cluster_index(
            saved_rack["directory"], engine_config, seed=0
        ) as cluster:
            gold = cluster.oracle_search(saved_rack["queries"])
            res, _ = ClusterFrontend(cluster, seed=0).search(
                saved_rack["queries"]
            )
        np.testing.assert_array_equal(res.ids, gold.ids)
        np.testing.assert_array_equal(res.distances, gold.distances)


class TestRackValidation:
    def test_missing_manifest(self, tmp_path, engine_config):
        with pytest.raises(FileNotFoundError, match="manifest"):
            load_cluster_index(str(tmp_path), engine_config)

    def test_mismatched_config_rejected(self, saved_rack, engine_config):
        from dataclasses import replace

        bad = engine_config.replace(
            index=replace(engine_config.index, nlist=32)
        )
        with pytest.raises(ValueError, match="nlist"):
            load_cluster_index(saved_rack["directory"], bad)

    def test_corrupt_manifest_rejected(self, saved_rack, engine_config,
                                       tmp_path):
        import shutil

        directory = str(tmp_path / "rack")
        shutil.copytree(saved_rack["directory"], directory)
        with open(os.path.join(directory, "manifest.json"), "w") as f:
            f.write("{not json")
        with pytest.raises(IndexFormatError, match="JSON"):
            load_cluster_index(directory, engine_config)

    def test_missing_shard_file_rejected(self, saved_rack, engine_config,
                                         tmp_path):
        import shutil

        directory = str(tmp_path / "rack")
        shutil.copytree(saved_rack["directory"], directory)
        os.unlink(os.path.join(directory, "shard_0001.drim"))
        with pytest.raises(IndexFormatError, match="shard_0001"):
            load_cluster_index(directory, engine_config)

    def test_manifest_written_last_is_atomic(self, saved_rack):
        with open(
            os.path.join(saved_rack["directory"], "manifest.json")
        ) as f:
            manifest = json.load(f)
        assert manifest["magic"] == "drimann-cluster-index"
        assert manifest["num_shards"] == 3
        assert len(manifest["shards"]) == 3
