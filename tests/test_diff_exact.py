"""Differential exactness: engine vs brute-force oracle, mode vs mode.

Two layers of differential testing on seeded synthetic data:

* the engine's recall@10 against the *exact* int64 brute-force oracle
  must equal the stored golden exactly for every canonical config —
  any change to quantization, layout, scheduling, or merging that
  moves accuracy by even one hit fails;
* batched, chunked, and per-query execution must return bit-identical
  ids *and* distances (the canonical (distance, id) merge makes the
  result independent of round structure).
"""

import json
import os

import numpy as np
import pytest

from repro.testing import (
    CANONICAL_CONFIGS,
    brute_force_topk,
    build_canonical_engine,
    canonical_dataset,
    oracle_recall,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "fixtures", "golden_cycles.json"
)


@pytest.fixture(scope="module")
def goldens():
    with open(GOLDEN_PATH) as f:
        return json.load(f)


def _run(name, execution=None):
    ds = canonical_dataset()
    engine = build_canonical_engine(name, execution=execution)
    queries = ds.queries[: CANONICAL_CONFIGS[name]["num_queries"]]
    res, bd = engine.search(queries)
    return res, bd, queries


class TestOracleRecall:
    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_recall_matches_golden_exactly(self, name, goldens):
        ds = canonical_dataset()
        res, _, queries = _run(name)
        oracle = brute_force_topk(ds.base, queries, 10)
        recall = oracle_recall(res.ids, oracle)
        assert recall == goldens[name]["recall_at_10"], (
            f"recall@10 drifted for {name!r}: got {recall}, golden "
            f"{goldens[name]['recall_at_10']} — if the change is an "
            "intentional accuracy change, regenerate via "
            "tools/update_goldens.py"
        )

    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    def test_results_match_host_reference_bitwise(self, name):
        """The engine must agree with the host gold standard exactly
        (same integer math, canonical merge) for every config."""
        res, _, queries = _run(name)
        engine = build_canonical_engine(name)
        ref = engine.reference_search(queries)
        np.testing.assert_array_equal(res.ids, ref.ids)
        np.testing.assert_array_equal(res.distances, ref.distances)


class TestExecutionModeEquivalence:
    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    @pytest.mark.parametrize("execution", ["chunked", "per_query"])
    def test_bit_identical_to_batched(self, name, execution):
        res_b, _, _ = _run(name, execution="batched")
        res_o, _, _ = _run(name, execution=execution)
        np.testing.assert_array_equal(res_b.ids, res_o.ids)
        np.testing.assert_array_equal(res_b.distances, res_o.distances)

    def test_execution_override_rejects_unknown_mode(self):
        ds = canonical_dataset()
        engine = build_canonical_engine("split-replicated")
        with pytest.raises(ValueError, match="execution"):
            engine.search(ds.queries[:4], execution="warp-speed")

    def test_search_params_execution_validated(self):
        from repro.core.params import SearchParams

        with pytest.raises(ValueError, match="execution"):
            SearchParams(execution="bogus")


class TestPlanEquivalence:
    """Data-plane strategies are pure wall-clock knobs: every plan
    returns bit-identical ids and distances."""

    @pytest.mark.parametrize("name", sorted(CANONICAL_CONFIGS))
    @pytest.mark.parametrize("plan", ["vectorized", "pool", "auto"])
    def test_bit_identical_to_serial(self, name, plan):
        queries = canonical_dataset().queries[
            : CANONICAL_CONFIGS[name]["num_queries"]
        ]
        base_engine = build_canonical_engine(name, plan="serial")
        res_s, _ = base_engine.search(queries)
        workers = 2 if plan in ("pool", "auto") else 0
        engine = build_canonical_engine(
            name, plan=plan, shard_workers=workers
        )
        try:
            res_p, _ = engine.search(queries)
        finally:
            engine.close()
        np.testing.assert_array_equal(res_s.ids, res_p.ids)
        np.testing.assert_array_equal(res_s.distances, res_p.distances)

    def test_search_call_override_beats_params(self):
        """A per-call plan= override applies without mutating params."""
        ds = canonical_dataset()
        engine = build_canonical_engine("split-replicated", plan="serial")
        res_a, _ = engine.search(ds.queries[:8])
        res_b, _ = engine.search(ds.queries[:8], plan="vectorized")
        np.testing.assert_array_equal(res_a.ids, res_b.ids)
        np.testing.assert_array_equal(res_a.distances, res_b.distances)
        assert engine.search_params.plan == "serial"

    def test_unknown_plan_rejected(self):
        ds = canonical_dataset()
        engine = build_canonical_engine("split-replicated")
        with pytest.raises(ValueError, match="plan"):
            engine.search(ds.queries[:4], plan="warp-speed")

    def test_search_params_plan_validated(self):
        from repro.core.params import SearchParams

        with pytest.raises(ValueError, match="plan"):
            SearchParams(plan="bogus")
