"""Cluster tier: sharding, scatter-gather bit-exactness, failover.

The load-bearing claim is structural: shards own **disjoint** cluster
sets and the merge uses the canonical ``(distance, id)`` tie-break, so
the cluster result is bit-identical to the single-engine oracle
whenever every probed shard answers — regardless of execution mode,
shard count, replication, or response arrival order. The fault tests
then show that claim surviving a crash (with replication) and
degrading with *accurate* coverage (without).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ann.heap import topk_canonical
from repro.cluster import (
    ClusterConfig,
    ClusterFrontend,
    FrontendConfig,
    ShardResponse,
    build_cluster_index,
    merge_shard_results,
    partition_clusters,
    simulate_cluster_serving,
)
from repro.core import EngineConfig, LayoutConfig, SearchParams
from repro.core.serving import BatchingPolicy
from repro.faults.plan import NodeFaultConfig, NodeFaultPlan
from repro.pim.config import PimSystemConfig


@pytest.fixture(scope="module")
def engine_config(small_params):
    return EngineConfig(
        index=small_params,
        search=SearchParams(batch_size=64),
        system=PimSystemConfig(num_dpus=16),
        layout=LayoutConfig(min_split_size=400, max_copies=2),
    )


@pytest.fixture(scope="module")
def replicated_cluster(small_ds, small_quantized, engine_config):
    """3 shards x 2 replicas over the shared 20k corpus."""
    with build_cluster_index(
        small_ds.base,
        engine_config,
        ClusterConfig(num_shards=3, replication=2),
        heat_queries=small_ds.queries[:50],
        prebuilt_quantized=small_quantized,
        seed=0,
    ) as cluster:
        yield cluster


@pytest.fixture(scope="module")
def unreplicated_cluster(small_ds, small_quantized, engine_config):
    with build_cluster_index(
        small_ds.base,
        engine_config,
        ClusterConfig(num_shards=3, replication=1),
        heat_queries=small_ds.queries[:50],
        prebuilt_quantized=small_quantized,
        seed=0,
    ) as cluster:
        yield cluster


@pytest.fixture(scope="module")
def queries(small_ds):
    return small_ds.queries[:32]


@pytest.fixture(scope="module")
def gold(replicated_cluster, queries):
    return replicated_cluster.oracle_search(queries)


def crash_plan(cluster, node_ids, round_index=0):
    return NodeFaultPlan(
        num_nodes=cluster.num_nodes,
        config=NodeFaultConfig(),
        crash_at_round={n: round_index for n in node_ids},
    )


class TestPartitionClusters:
    def test_disjoint_and_complete(self, rng):
        heat = rng.random(64)
        owner = partition_clusters(heat, 4)
        assert owner.shape == (64,)
        assert set(np.unique(owner)) == {0, 1, 2, 3}

    def test_deterministic(self, rng):
        heat = rng.random(64)
        np.testing.assert_array_equal(
            partition_clusters(heat, 4), partition_clusters(heat.copy(), 4)
        )

    def test_balances_heat(self, rng):
        heat = rng.random(256)
        owner = partition_clusters(heat, 4)
        loads = np.array([heat[owner == s].sum() for s in range(4)])
        # Greedy least-loaded-first lands within a few percent of even.
        assert loads.max() / loads.min() < 1.1

    def test_single_shard_owns_everything(self, rng):
        owner = partition_clusters(rng.random(16), 1)
        assert np.all(owner == 0)


class TestClusterTopology:
    def test_shards_partition_the_clusters(self, replicated_cluster):
        owned = np.concatenate(
            [s.global_cids for s in replicated_cluster.shards]
        )
        assert sorted(owned) == list(range(replicated_cluster.router.nlist))

    def test_node_grid(self, replicated_cluster):
        c = replicated_cluster
        assert c.num_nodes == c.num_shards * c.replication
        for s in range(c.num_shards):
            for r in range(c.replication):
                node = c.node_id(s, r)
                assert c.shard_of_node(node) == s

    def test_local_probe_routing(self, replicated_cluster, queries):
        c = replicated_cluster
        probes = c.locate(queries)
        for shard in c.shards:
            lp = shard.local_probes(probes)
            owned = lp >= 0
            # Exactly the probes this shard owns map to local ids.
            np.testing.assert_array_equal(
                owned, c.owner[probes] == shard.shard_id
            )
            if np.any(owned):
                assert lp[owned].max() < len(shard.global_cids)


class TestBitExactness:
    def test_healthy_matches_oracle(self, replicated_cluster, queries, gold):
        res, rep = ClusterFrontend(replicated_cluster, seed=0).search(queries)
        np.testing.assert_array_equal(res.ids, gold.ids)
        np.testing.assert_array_equal(res.distances, gold.distances)
        assert rep.mean_coverage == 1.0
        assert rep.failed_shards == []

    @pytest.mark.parametrize("execution", ["batched", "chunked", "per_query"])
    def test_every_execution_mode_matches_oracle(
        self, replicated_cluster, queries, gold, execution
    ):
        res, _ = ClusterFrontend(replicated_cluster, seed=0).search(
            queries, execution=execution
        )
        np.testing.assert_array_equal(res.ids, gold.ids)
        np.testing.assert_array_equal(res.distances, gold.distances)

    def test_unreplicated_healthy_matches_oracle(
        self, unreplicated_cluster, queries, gold
    ):
        res, _ = ClusterFrontend(unreplicated_cluster, seed=0).search(queries)
        np.testing.assert_array_equal(res.ids, gold.ids)


class TestAdaptiveRouting:
    """Adaptive probing composes with the rack tier.

    Shard-local bound termination is globally safe (a shard's candidate
    pool is a subset of the global pool, so its k-th distance is an
    overestimate), hence ``adaptive="bound"`` stays bit-identical to
    the exhaustive oracle even when scattered across shards. Budget
    modes truncate the probe matrix *before* the scatter, so coverage
    accounting must only count the probes that were actually requested.
    """

    def test_bound_matches_oracle(self, replicated_cluster, queries, gold):
        res, rep = ClusterFrontend(replicated_cluster, seed=0).search(
            queries, adaptive="bound"
        )
        np.testing.assert_array_equal(res.ids, gold.ids)
        np.testing.assert_array_equal(res.distances, gold.distances)
        assert rep.mean_coverage == 1.0

    def test_bound_matches_oracle_unreplicated(
        self, unreplicated_cluster, queries, gold
    ):
        res, _ = ClusterFrontend(unreplicated_cluster, seed=0).search(
            queries, adaptive="bound"
        )
        np.testing.assert_array_equal(res.ids, gold.ids)

    @pytest.mark.parametrize("mode", ["budget", "full"])
    def test_budget_modes_serve_with_full_coverage(
        self, replicated_cluster, queries, mode
    ):
        res, rep = ClusterFrontend(replicated_cluster, seed=0).search(
            queries, adaptive=mode
        )
        # Truncated probes are elided work, not failed coverage.
        assert rep.mean_coverage == 1.0
        assert rep.failed_shards == []
        assert (res.ids >= 0).all()

    def test_off_matches_default(self, replicated_cluster, queries, gold):
        res, _ = ClusterFrontend(replicated_cluster, seed=0).search(
            queries, adaptive="off"
        )
        np.testing.assert_array_equal(res.ids, gold.ids)

    def test_bad_mode_rejected(self, replicated_cluster, queries):
        with pytest.raises(ValueError, match="adaptive"):
            ClusterFrontend(replicated_cluster, seed=0).search(
                queries, adaptive="sometimes"
            )

    def test_shard_count_invariance(
        self, small_ds, small_quantized, engine_config, queries, gold
    ):
        with build_cluster_index(
            small_ds.base,
            engine_config,
            ClusterConfig(num_shards=2, replication=1),
            heat_queries=small_ds.queries[:50],
            prebuilt_quantized=small_quantized,
            seed=0,
        ) as two_shards:
            res, _ = ClusterFrontend(two_shards, seed=0).search(queries)
        np.testing.assert_array_equal(res.ids, gold.ids)
        np.testing.assert_array_equal(res.distances, gold.distances)

    def test_repeated_rounds_are_deterministic(
        self, replicated_cluster, queries
    ):
        f1 = ClusterFrontend(replicated_cluster, seed=0)
        f2 = ClusterFrontend(replicated_cluster, seed=0)
        for _ in range(3):
            r1, rep1 = f1.search(queries)
            r2, rep2 = f2.search(queries)
            np.testing.assert_array_equal(r1.ids, r2.ids)
            np.testing.assert_array_equal(r1.distances, r2.distances)
            d1, d2 = rep1.to_dict(), rep2.to_dict()
            # Modeled latencies drift in the last ulp across repeated
            # searches on one engine instance (pre-existing engine
            # behavior); everything structural must match exactly.
            lat1 = d1.pop("shard_latencies_s")
            lat2 = d2.pop("shard_latencies_s")
            e1, e2 = d1.pop("e2e_seconds"), d2.pop("e2e_seconds")
            assert d1 == d2
            assert e1 == pytest.approx(e2)
            assert sorted(lat1) == sorted(lat2)
            for s in lat1:
                assert lat1[s] == pytest.approx(lat2[s])


class TestFailover:
    def test_replicated_crash_stays_exact(
        self, replicated_cluster, queries, gold
    ):
        c = replicated_cluster
        frontend = ClusterFrontend(
            c, node_faults=crash_plan(c, [c.node_id(0, 0)]), seed=0
        )
        res, rep = frontend.search(queries)
        np.testing.assert_array_equal(res.ids, gold.ids)
        np.testing.assert_array_equal(res.distances, gold.distances)
        assert rep.mean_coverage == 1.0
        assert rep.node_retries >= 1
        assert frontend.dead_nodes == {c.node_id(0, 0)}
        # Next round the dead node is skipped outright: no new retries.
        res, rep = frontend.search(queries)
        np.testing.assert_array_equal(res.ids, gold.ids)

    def test_unreplicated_crash_degrades_with_accurate_coverage(
        self, unreplicated_cluster, queries, gold
    ):
        c = unreplicated_cluster
        frontend = ClusterFrontend(
            c, node_faults=crash_plan(c, [c.node_id(0, 0)]), seed=0
        )
        res, rep = frontend.search(queries)
        assert rep.failed_shards == [0]
        assert rep.mean_coverage < 1.0
        probes = c.locate(queries)
        predicted = (c.owner[probes] != 0).mean(axis=1)
        np.testing.assert_allclose(rep.coverage, predicted)
        assert rep.degraded_queries == [
            int(q) for q in np.flatnonzero(predicted < 1.0)
        ]
        # Fully-covered queries are still bit-exact.
        full = np.flatnonzero(predicted == 1.0)
        np.testing.assert_array_equal(res.ids[full], gold.ids[full])

    def test_all_shards_down_returns_empty_not_raises(
        self, unreplicated_cluster, queries
    ):
        c = unreplicated_cluster
        frontend = ClusterFrontend(
            c, node_faults=crash_plan(c, range(c.num_nodes)), seed=0
        )
        res, rep = frontend.search(queries)
        assert np.all(res.ids == -1)
        assert np.all(np.isinf(res.distances))
        np.testing.assert_array_equal(rep.coverage, np.zeros(len(queries)))
        assert rep.mean_coverage == 0.0
        assert sorted(rep.failed_shards) == list(range(c.num_shards))
        assert rep.degraded_queries == list(range(len(queries)))

    def test_both_replicas_down_degrades(
        self, replicated_cluster, queries, gold
    ):
        c = replicated_cluster
        dead = [c.node_id(0, r) for r in range(c.replication)]
        frontend = ClusterFrontend(c, node_faults=crash_plan(c, dead), seed=0)
        res, rep = frontend.search(queries)
        assert rep.failed_shards == [0]
        assert rep.mean_coverage < 1.0
        assert frontend.dead_nodes == set(dead)

    def test_partition_suspends_then_recovers(
        self, replicated_cluster, queries, gold
    ):
        c = replicated_cluster
        node = c.node_id(1, 0)
        plan = NodeFaultPlan(
            num_nodes=c.num_nodes,
            config=NodeFaultConfig(),
            partitions=frozenset({(node, 0), (node, 1)}),
        )
        frontend = ClusterFrontend(
            c,
            FrontendConfig(suspend_after=2, suspend_rounds=1),
            node_faults=plan,
            seed=0,
        )
        for _ in range(4):
            res, rep = frontend.search(queries)
            np.testing.assert_array_equal(res.ids, gold.ids)
        # Partitions are transient: nothing is permanently dead.
        assert frontend.dead_nodes == set()
        assert not frontend._node_available(node) or frontend.round_index >= 3

    def test_straggler_hedging_bounds_latency(
        self, replicated_cluster, queries, gold
    ):
        c = replicated_cluster
        healthy = ClusterFrontend(c, seed=0)
        _, rep = healthy.search(queries)
        budget = 1.5 * max(rep.shard_latencies_s.values())
        slow = np.ones(c.num_nodes)
        slow[0] = 16.0
        plan = NodeFaultPlan(
            num_nodes=c.num_nodes,
            config=NodeFaultConfig(),
            slow_factors=slow,
        )
        hedged = ClusterFrontend(
            c,
            FrontendConfig(hedge_after_s=budget),
            node_faults=plan,
            seed=0,
        )
        res_h, rep_h = hedged.search(queries)
        unhedged = ClusterFrontend(
            c,
            FrontendConfig(hedge_after_s=None),
            node_faults=plan,
            seed=0,
        )
        res_u, rep_u = unhedged.search(queries)
        # Same bits either way; hedging only changes the clock.
        np.testing.assert_array_equal(res_h.ids, gold.ids)
        np.testing.assert_array_equal(res_u.ids, gold.ids)
        assert rep_h.hedged_requests >= 1
        assert rep_h.e2e_seconds < rep_u.e2e_seconds

    def test_mismatched_fault_plan_rejected(self, replicated_cluster):
        with pytest.raises(ValueError, match="nodes"):
            ClusterFrontend(
                replicated_cluster,
                node_faults=NodeFaultPlan.none(99),
            )


def _merge_oracle(pools, k):
    """Brute-force global top-k over per-query candidate pools."""
    nq = len(pools)
    out_ids = np.full((nq, k), -1, dtype=np.int64)
    out_dist = np.full((nq, k), np.inf)
    for qi, (ids, dists) in enumerate(pools):
        if len(ids) == 0:
            continue
        kk = min(k, len(ids))
        sel_i, sel_d = topk_canonical(
            np.asarray(dists, dtype=np.float64),
            np.asarray(ids, dtype=np.int64),
            kk,
        )
        out_ids[qi, :kk] = sel_i
        out_dist[qi, :kk] = sel_d
    return out_ids, out_dist


class TestMergeProperties:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_merge_invariant_to_sharding_and_order(self, data):
        """Sharded merge == global top-k, for any shard split/arrival order.

        Candidates are drawn with possibly-duplicated distances (ties
        exercise the canonical tie-break) but ids unique per query, as
        disjoint shard ownership guarantees in the real system.
        """
        nq = data.draw(st.integers(1, 4), label="nq")
        k = data.draw(st.integers(1, 8), label="k")
        num_shards = data.draw(st.integers(1, 5), label="shards")
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))

        pools = []
        per_shard_rows = [[] for _ in range(num_shards)]
        per_shard_ids = [[] for _ in range(num_shards)]
        per_shard_dists = [[] for _ in range(num_shards)]
        for qi in range(nq):
            n_cand = int(rng.integers(0, 24))
            ids = rng.choice(1000, size=n_cand, replace=False)
            dists = rng.integers(0, 6, size=n_cand).astype(np.float64)
            pools.append((ids, dists))
            shard_of = rng.integers(0, num_shards, size=n_cand)
            for s in range(num_shards):
                mine = shard_of == s
                per_shard_rows[s].append(qi)
                per_shard_ids[s].append(ids[mine])
                per_shard_dists[s].append(dists[mine])

        responses = []
        for s in range(num_shards):
            # Each shard reports its local top-k, padded to k like the
            # engine does.
            ids_mat = np.full((nq, k), -1, dtype=np.int64)
            dist_mat = np.full((nq, k), np.inf)
            for row, (ids, dists) in enumerate(
                zip(per_shard_ids[s], per_shard_dists[s])
            ):
                kk = min(k, len(ids))
                if kk:
                    sel_i, sel_d = topk_canonical(dists, ids, kk)
                    ids_mat[row, :kk] = sel_i
                    dist_mat[row, :kk] = sel_d
            responses.append(
                ShardResponse(
                    shard_id=s,
                    query_rows=np.array(per_shard_rows[s]),
                    ids=ids_mat,
                    distances=dist_mat,
                )
            )
        order = rng.permutation(num_shards)
        merged = merge_shard_results(
            [responses[i] for i in order], nq, k
        )
        want_ids, want_dist = _merge_oracle(pools, k)
        np.testing.assert_array_equal(merged.ids, want_ids)
        np.testing.assert_array_equal(merged.distances, want_dist)

    def test_failed_responses_contribute_nothing(self):
        ok = ShardResponse(
            shard_id=0,
            query_rows=np.array([0]),
            ids=np.array([[3, 1]]),
            distances=np.array([[1.0, 2.0]]),
        )
        failed = ShardResponse(
            shard_id=1, query_rows=np.array([0]), failed=True
        )
        res = merge_shard_results([ok, failed], 1, 2)
        np.testing.assert_array_equal(res.ids, [[3, 1]])

    def test_no_responses_yields_sentinel_fill(self):
        res = merge_shard_results([], 2, 3)
        assert np.all(res.ids == -1)
        assert np.all(np.isinf(res.distances))


class TestClusterServing:
    def test_serving_healthy_stream(self, replicated_cluster, queries, gold):
        frontend = ClusterFrontend(replicated_cluster, seed=0)
        arrivals = np.linspace(0.0, 0.05, len(queries))
        outcome = simulate_cluster_serving(
            frontend,
            queries,
            arrivals,
            BatchingPolicy(batch_size=8, max_wait_s=5e-3),
            return_results=True,
        )
        rep = outcome.report
        assert rep.num_queries == len(queries)
        assert rep.admission_rejected == 0
        assert rep.mean_coverage == 1.0
        np.testing.assert_array_equal(outcome.results.ids, gold.ids)

    def test_admission_control_rejects_overflow(
        self, replicated_cluster, queries
    ):
        frontend = ClusterFrontend(
            replicated_cluster,
            FrontendConfig(admission_queue_limit=8),
            seed=0,
        )
        # Everyone arrives at once: only the limit's worth may queue.
        arrivals = np.zeros(len(queries))
        outcome = simulate_cluster_serving(
            frontend,
            queries,
            arrivals,
            BatchingPolicy(batch_size=64, max_wait_s=1e-3),
            return_results=True,
        )
        rep = outcome.report
        assert rep.admission_rejected > 0
        assert rep.num_queries + rep.admission_rejected == len(queries)
        assert rep.num_offered == len(queries)
        # Rejected queries keep the sentinel fill.
        rejected_rows = np.all(outcome.results.ids == -1, axis=1)
        assert rejected_rows.sum() == rep.admission_rejected

    def test_serving_report_carries_cluster_ledger(
        self, replicated_cluster, queries
    ):
        c = replicated_cluster
        frontend = ClusterFrontend(
            c, node_faults=crash_plan(c, [c.node_id(0, 0)]), seed=0
        )
        arrivals = np.linspace(0.0, 0.01, len(queries))
        outcome = simulate_cluster_serving(frontend, queries, arrivals)
        rep = outcome.report
        assert rep.node_retries >= 1
        assert rep.dead_nodes == 1
        assert rep.mean_coverage == 1.0
        d = rep.to_dict()
        for key in (
            "admission_rejected",
            "hedged_requests",
            "node_retries",
            "dead_nodes",
            "mean_coverage",
        ):
            assert key in d
