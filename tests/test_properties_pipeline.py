"""Property-based end-to-end checks: for random tiny corpora and random
engine configurations, the PIM execution must equal the integer host
reference exactly (up to ties at the k-th distance)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ann import IVFPQIndex
from repro.core import DrimAnnEngine, IndexParams, LayoutConfig, SearchParams
from repro.core.quantized import build_quantized_index
from repro.pim.config import PimSystemConfig

config_strategy = st.fixed_dictionaries(
    {
        "seed": st.integers(0, 10_000),
        "num_dpus": st.sampled_from([1, 3, 8]),
        "nprobe": st.sampled_from([1, 3, 8]),
        "k": st.sampled_from([1, 5, 12]),
        "min_split": st.sampled_from([None, 20, 60]),
        "max_copies": st.sampled_from([0, 2]),
        "multiplier_less": st.booleans(),
        "with_scheduler": st.booleans(),
        "batch_size": st.sampled_from([7, 64]),
    }
)


@pytest.fixture(scope="module")
def tiny_corpus():
    rng = np.random.default_rng(42)
    centers = rng.integers(30, 220, size=(8, 16))
    assign = rng.integers(0, 8, size=600)
    base = np.clip(
        centers[assign] + rng.normal(0, 12, size=(600, 16)), 0, 255
    ).astype(np.uint8)
    queries = np.clip(
        base[rng.integers(0, 600, size=25)].astype(float)
        + rng.normal(0, 8, size=(25, 16)),
        0,
        255,
    ).astype(np.uint8)
    index = IVFPQIndex.build(base, nlist=8, num_subspaces=4, codebook_size=16, seed=0)
    return base, queries, build_quantized_index(index)


@given(cfg=config_strategy)
@settings(max_examples=25, deadline=None)
def test_engine_equals_reference_for_any_configuration(tiny_corpus, cfg):
    base, queries, quant = tiny_corpus
    params = IndexParams(
        nlist=8,
        nprobe=cfg["nprobe"],
        k=cfg["k"],
        num_subspaces=4,
        codebook_size=16,
    )
    engine = DrimAnnEngine.build(
        base,
        params,
        search_params=SearchParams(
            batch_size=cfg["batch_size"], multiplier_less=cfg["multiplier_less"]
        ),
        system_config=PimSystemConfig(num_dpus=cfg["num_dpus"]),
        layout_config=LayoutConfig(
            min_split_size=cfg["min_split"], max_copies=cfg["max_copies"]
        ),
        prebuilt_quantized=quant,
        seed=cfg["seed"],
    )
    res, bd = engine.search(queries, with_scheduler=cfg["with_scheduler"])
    ref = engine.reference_search(queries)
    np.testing.assert_allclose(
        np.sort(res.distances, axis=1), np.sort(ref.distances, axis=1)
    )
    # Where distances are strictly inside the k-th boundary, ids match.
    for qi in range(len(queries)):
        kth = ref.distances[qi, -1]
        strict = ref.distances[qi] < kth
        assert set(ref.ids[qi][strict]) <= set(res.ids[qi])
    assert bd.pim_seconds > 0
