import numpy as np
import pytest

from repro.ann import ProductQuantizer
from repro.ann.distance import l2_sq


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(0)
    x = rng.integers(0, 255, size=(3000, 16)).astype(np.float64)
    pq = ProductQuantizer.train(x, num_subspaces=4, codebook_size=32, seed=0)
    return x, pq


class TestTraining:
    def test_shapes(self, trained):
        _, pq = trained
        assert pq.codebooks.shape == (4, 32, 4)
        assert pq.num_subspaces == 4
        assert pq.codebook_size == 32
        assert pq.dsub == 4
        assert pq.dim == 16

    def test_dim_divisibility(self, rng):
        x = rng.normal(size=(100, 10))
        with pytest.raises(ValueError, match="divisible"):
            ProductQuantizer.train(x, num_subspaces=3)

    def test_codebook_larger_than_data(self, rng):
        x = rng.normal(size=(10, 4))
        with pytest.raises(ValueError, match="exceeds"):
            ProductQuantizer.train(x, num_subspaces=2, codebook_size=64)

    def test_code_dtype_selection(self):
        cb8 = ProductQuantizer(codebooks=np.zeros((2, 256, 3), dtype=np.float32))
        cb16 = ProductQuantizer(codebooks=np.zeros((2, 257, 3), dtype=np.float32))
        assert cb8.code_dtype == np.uint8
        assert cb16.code_dtype == np.uint16


class TestEncodeDecode:
    def test_codes_in_range(self, trained):
        x, pq = trained
        codes = pq.encode(x[:100])
        assert codes.shape == (100, 4)
        assert codes.max() < 32

    def test_encode_is_nearest_codeword(self, trained):
        x, pq = trained
        codes = pq.encode(x[:20])
        for j in range(pq.num_subspaces):
            sub = x[:20, j * 4 : (j + 1) * 4]
            d = l2_sq(sub, pq.codebooks[j].astype(np.float64))
            np.testing.assert_array_equal(codes[:, j], d.argmin(axis=1))

    def test_decode_shape(self, trained):
        x, pq = trained
        rec = pq.decode(pq.encode(x[:10]))
        assert rec.shape == (10, 16)

    def test_reconstruction_reduces_with_codebook_size(self, rng):
        x = rng.normal(size=(2000, 8)) * 50
        e_small = ProductQuantizer.train(
            x, 2, codebook_size=4, seed=0
        ).quantization_error(x)
        e_big = ProductQuantizer.train(
            x, 2, codebook_size=64, seed=0
        ).quantization_error(x)
        assert e_big < e_small

    def test_reconstruction_reduces_with_subspaces(self, rng):
        x = rng.normal(size=(2000, 8)) * 50
        e1 = ProductQuantizer.train(x, 1, codebook_size=16, seed=0).quantization_error(x)
        e4 = ProductQuantizer.train(x, 4, codebook_size=16, seed=0).quantization_error(x)
        assert e4 < e1

    def test_encode_dim_mismatch(self, trained):
        _, pq = trained
        with pytest.raises(ValueError, match="dim"):
            pq.encode(np.zeros((3, 12)))


class TestAdc:
    def test_lut_entries_are_subspace_distances(self, trained):
        x, pq = trained
        residual = x[0]
        lut = pq.build_lut(residual)
        assert lut.shape == (4, 32)
        for j in range(4):
            sub = residual[j * 4 : (j + 1) * 4][None]
            np.testing.assert_allclose(
                lut[j], l2_sq(sub, pq.codebooks[j].astype(np.float64))[0]
            )

    def test_build_luts_batched(self, trained):
        x, pq = trained
        luts = pq.build_luts(x[:5])
        for i in range(5):
            np.testing.assert_allclose(luts[i], pq.build_lut(x[i]))

    def test_adc_equals_decoded_distance(self, trained):
        """ADC(q, code) must equal the exact distance to the decoded point."""
        x, pq = trained
        codes = pq.encode(x[:50])
        rec = pq.decode(codes).astype(np.float64)
        q = x[60]
        adc = pq.adc_distances(q, codes)
        exact = l2_sq(q[None], rec)[0]
        np.testing.assert_allclose(adc, exact, rtol=1e-6, atol=1e-6)

    def test_residual_dim_check(self, trained):
        _, pq = trained
        with pytest.raises(ValueError, match="dim"):
            pq.build_lut(np.zeros(12))


class TestSdc:
    def test_tables_shape_and_symmetry(self, trained):
        _, pq = trained
        t = pq.sdc_tables()
        assert t.shape == (4, 32, 32)
        np.testing.assert_allclose(t, np.swapaxes(t, 1, 2))
        np.testing.assert_allclose(
            t[np.arange(4)[:, None], np.arange(32), np.arange(32)], 0.0, atol=1e-9
        )

    def test_sdc_equals_decoded_pair_distance(self, trained):
        """SDC(x, y) must equal the exact distance between decodes."""
        x, pq = trained
        from repro.ann.distance import l2_sq

        codes = pq.encode(x[:30])
        qcode = pq.encode(x[40:41])[0]
        sdc = pq.sdc_distances(qcode, codes)
        rec = pq.decode(codes).astype(np.float64)
        qrec = pq.decode(qcode[None]).astype(np.float64)
        exact = l2_sq(qrec, rec)[0]
        np.testing.assert_allclose(sdc, exact, rtol=1e-6, atol=1e-6)

    def test_sdc_less_accurate_than_adc(self, trained):
        """The paper's reason for adopting ADC: SDC adds the query's
        own quantization error."""
        x, pq = trained
        q = x[100]
        codes = pq.encode(x[:200])
        adc = pq.adc_distances(q, codes)
        sdc = pq.sdc_distances(pq.encode(q[None])[0], codes)
        from repro.ann.distance import l2_sq

        exact = l2_sq(q[None], x[:200])[0]
        err_adc = np.abs(adc - exact).mean()
        err_sdc = np.abs(sdc - exact).mean()
        assert err_adc <= err_sdc * 1.05

    def test_sdc_shape_checks(self, trained):
        _, pq = trained
        with pytest.raises(ValueError, match="sub-codes"):
            pq.sdc_distances(np.zeros(3, dtype=int), np.zeros((5, 4), dtype=int))

    def test_tables_amortization(self, trained):
        x, pq = trained
        codes = pq.encode(x[:10])
        tables = pq.sdc_tables()
        a = pq.sdc_distances(codes[0], codes, tables)
        b = pq.sdc_distances(codes[0], codes)
        np.testing.assert_allclose(a, b)
