import numpy as np
import pytest

from repro.core.serving import (
    BatchingPolicy,
    PoissonArrivals,
    simulate_serving,
)


class TestArrivals:
    def test_sorted_and_positive(self):
        t = PoissonArrivals(1000).sample(100, seed=0)
        assert (np.diff(t) >= 0).all()
        assert (t > 0).all()

    def test_rate_controls_density(self):
        fast = PoissonArrivals(10_000).sample(500, seed=0)
        slow = PoissonArrivals(100).sample(500, seed=0)
        assert fast[-1] < slow[-1]

    def test_deterministic(self):
        a = PoissonArrivals(100).sample(10, seed=3)
        b = PoissonArrivals(100).sample(10, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0)


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchingPolicy(batch_size=0)
        with pytest.raises(ValueError):
            BatchingPolicy(max_wait_s=-1)


class TestSimulateServing:
    @pytest.fixture(scope="class")
    def served(self, small_engine, small_ds):
        queries = small_ds.queries[:100]
        arrivals = PoissonArrivals(rate_qps=20_000).sample(100, seed=0)
        report = simulate_serving(
            small_engine,
            queries,
            arrivals,
            BatchingPolicy(batch_size=32, max_wait_s=1e-3),
        )
        return report

    def test_every_query_served(self, served):
        assert served.num_queries == 100
        assert sum(served.batch_sizes) == 100

    def test_latencies_positive(self, served):
        assert (served.latencies_s > 0).all()

    def test_batches_bounded(self, served):
        assert max(served.batch_sizes) <= 32

    def test_percentiles_ordered(self, served):
        assert (
            served.percentile_ms(50)
            <= served.percentile_ms(95)
            <= served.percentile_ms(99)
        )

    def test_summary(self, served):
        s = served.summary()
        assert "p99" in s and "QPS" in s

    def test_low_load_has_low_latency(self, small_engine, small_ds):
        """At trivial arrival rates, latency ~ max_wait + one batch."""
        queries = small_ds.queries[:20]
        arrivals = np.arange(20) * 1.0  # one query per second
        report = simulate_serving(
            small_engine,
            queries,
            arrivals,
            BatchingPolicy(batch_size=32, max_wait_s=1e-3),
        )
        # Each query rides its own batch: latency = wait + service.
        assert all(s == 1 for s in report.batch_sizes)
        assert report.percentile_ms(99) < 50.0

    def test_overload_latency_grows(self, small_engine, small_ds):
        """Arrivals faster than service capacity queue up."""
        queries = small_ds.queries[:100]
        slow = simulate_serving(
            small_engine,
            queries,
            PoissonArrivals(2_000).sample(100, seed=0),
            BatchingPolicy(batch_size=16, max_wait_s=1e-4),
        )
        crushed = simulate_serving(
            small_engine,
            queries,
            PoissonArrivals(500_000).sample(100, seed=0),
            BatchingPolicy(batch_size=16, max_wait_s=1e-4),
        )
        assert crushed.mean_ms > slow.mean_ms * 0.5  # queueing visible

    def test_mismatched_lengths(self, small_engine, small_ds):
        with pytest.raises(ValueError, match="arrivals"):
            simulate_serving(
                small_engine, small_ds.queries[:5], np.zeros(4)
            )

    def test_unsorted_arrivals(self, small_engine, small_ds):
        with pytest.raises(ValueError, match="sorted"):
            simulate_serving(
                small_engine,
                small_ds.queries[:3],
                np.array([3.0, 1.0, 2.0]),
            )
