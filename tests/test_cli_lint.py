"""`repro lint` end-to-end through cli.main()."""

import json
import os

from repro.cli import main

_FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "broken_kernel.py"
)


class TestCleanRepo:
    def test_default_lint_is_clean(self, capsys):
        assert main(["lint", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_json_output_parses(self, capsys):
        assert main(["lint", "--json", "--select", "resources"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "lint"
        assert payload["config"]["families"] == ["resources"]
        assert "findings" in payload["results"]
        assert payload["results"]["counts"]["error"] == 0
        assert payload["metrics"] is None


class TestSelect:
    def test_single_family(self, capsys):
        assert main(["lint", "--select", "ast"]) == 0
        assert "finding(s)" in capsys.readouterr().out

    def test_unknown_family_exits_2(self, capsys):
        assert main(["lint", "--select", "nonsense"]) == 2
        assert "unknown checker families" in capsys.readouterr().out


class TestStrictFailures:
    def test_broken_contract_fails_strict(self, capsys):
        rc = main(
            ["lint", "--strict", "--select", "costs",
             "--kernel-module", _FIXTURE]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "instruction-mix-drift" in out

    def test_broken_contract_without_strict_exits_0(self, capsys):
        rc = main(["lint", "--select", "costs", "--kernel-module", _FIXTURE])
        assert rc == 0
        assert "instruction-mix-drift" in capsys.readouterr().out

    def test_infeasible_grid_fails_strict(self, capsys):
        rc = main(
            ["lint", "--strict", "--select", "resources",
             "--grid-m", "32", "--grid-cb", "256", "--grid-tasklets", "24"]
        )
        assert rc == 1
        assert "wram-overflow" in capsys.readouterr().out

    def test_same_grid_at_16_tasklets_passes(self, capsys):
        rc = main(
            ["lint", "--strict", "--select", "resources",
             "--grid-m", "32", "--grid-cb", "256", "--grid-tasklets", "16"]
        )
        assert rc == 0


class TestTraceMode:
    def test_trace_flag_runs_trace_family_only(self, tmp_path, capsys):
        path = str(tmp_path / "trace.json")
        with open(path, "w") as f:
            json.dump(
                {"traceEvents": [
                    {"name": "RC", "ph": "X", "ts": 0, "dur": 10, "tid": 0},
                    {"name": "LC", "ph": "X", "ts": 5, "dur": 10, "tid": 0},
                ]},
                f,
            )
        assert main(["lint", "--strict", "--trace", path]) == 1
        assert "event-overlap" in capsys.readouterr().out

    def test_clean_trace_passes(self, tmp_path, capsys):
        from repro.pim.trace import Tracer

        tracer = Tracer()
        tracer.record("RC", 0, 0, 100)
        path = str(tmp_path / "trace.json")
        tracer.export_chrome_trace(path)
        assert main(["lint", "--strict", "--trace", path]) == 0

    def test_missing_trace_fails_strict(self, tmp_path, capsys):
        rc = main(
            ["lint", "--strict", "--trace", str(tmp_path / "nope.json")]
        )
        assert rc == 1
        assert "unreadable-trace" in capsys.readouterr().out


class TestMinSeverity:
    def test_min_severity_filters_text(self, capsys):
        assert main(
            ["lint", "--select", "resources", "--grid-tasklets", "8",
             "--min-severity", "error"]
        ) == 0
        out = capsys.readouterr().out
        # The underfill warnings exist but are hidden from the text.
        assert "tasklet-underfill" not in out
        assert "finding(s)" in out


class TestConcurrencyFamily:
    def test_concurrency_family_selectable_and_clean(self, capsys):
        assert main(["lint", "--strict", "--select", "concurrency"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_default_families_include_concurrency(self, capsys):
        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["families"] == [
            "resources", "costs", "ast", "concurrency"
        ]


class TestSanitizeCommand:
    def test_sanitize_strict_is_clean(self, capsys):
        assert main(["sanitize", "--strict", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "sanitize"
        assert payload["results"]["counts"]["error"] == 0
        stats = payload["results"]["sanitize"]
        assert stats["num_events"] > 0 and stats["num_processes"] >= 1
        assert stats["kinds"]["unlink"] == 1

    def test_lint_sanitize_merges_envelope(self, capsys):
        rc = main(
            ["lint", "--strict", "--sanitize", "--select", "concurrency",
             "--json"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config"]["sanitize"] is True
        assert "sanitize" in payload["results"]
        assert payload["results"]["counts"]["error"] == 0

    def test_sanitize_trace_out(self, tmp_path, capsys):
        path = str(tmp_path / "arena.json")
        assert main(["sanitize", "--trace-out", path, "--json"]) == 0
        capsys.readouterr()
        with open(path) as f:
            trace = json.load(f)
        names = {e.get("name") for e in trace["traceEvents"]}
        assert "arena:create" in names and "arena:unlink" in names

    def test_sanitize_unknown_config_raises(self):
        import pytest

        with pytest.raises(ValueError, match="config"):
            main(["sanitize", "--config", "nope"])
