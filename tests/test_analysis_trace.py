"""Trace-invariant checker: live events and exported Chrome JSON."""

import json

import numpy as np
import pytest

from repro.analysis.tracecheck import (
    check_chrome_trace,
    check_events,
    check_tracer,
)
from repro.pim.trace import TraceEvent, Tracer


def _ev(name, dpu, start, end, batch=0, detail=""):
    return TraceEvent(
        name=name,
        dpu_id=dpu,
        start_cycle=start,
        end_cycle=end,
        batch=batch,
        detail=detail,
    )


class _RawEvent:
    """Stand-in that bypasses TraceEvent's constructor validation, to
    exercise the checker on invariants the dataclass would reject."""

    def __init__(self, name, dpu_id, start_cycle, end_cycle, batch=0):
        self.name = name
        self.dpu_id = dpu_id
        self.start_cycle = start_cycle
        self.end_cycle = end_cycle
        self.batch = batch


class TestLiveEvents:
    def test_clean_timeline(self):
        events = [
            _ev("RC", 0, 0, 10),
            _ev("LC", 0, 10, 30),
            _ev("RC", 1, 0, 12),
        ]
        assert check_events(events) == []

    def test_overlap_detected(self):
        events = [_ev("RC", 0, 0, 10), _ev("LC", 0, 5, 15)]
        findings = check_events(events)
        assert [f.rule for f in findings] == ["event-overlap"]
        assert findings[0].data["dpu"] == 0

    def test_overlap_on_distinct_dpus_is_fine(self):
        events = [_ev("RC", 0, 0, 10), _ev("LC", 1, 5, 15)]
        assert check_events(events) == []

    def test_batch_regression(self):
        events = [
            _ev("RC", 0, 0, 10, batch=1),
            _ev("RC", 0, 10, 20, batch=0),
        ]
        findings = check_events(events)
        assert [f.rule for f in findings] == ["batch-regression"]

    def test_negative_duration(self):
        findings = check_events([_RawEvent("RC", 0, 30.0, 10.0)])
        assert "negative-duration" in [f.rule for f in findings]

    def test_negative_dpu_id(self):
        findings = check_events([_RawEvent("RC", -1, 0.0, 10.0)])
        assert [f.rule for f in findings] == ["invalid-dpu-id"]

    def test_live_tracer_from_simulator_is_clean(self, rng):
        from repro.core.square_lut import SquareLut
        from repro.pim import PimSystem, PimSystemConfig
        from repro.pim.system import ShardData

        tracer = Tracer()
        s = PimSystem(PimSystemConfig(num_dpus=2), tracer=tracer)
        s.load_codebooks(
            rng.integers(-50, 50, size=(4, 8, 4)).astype(np.int16)
        )
        s.load_square_lut(SquareLut.for_bit_width(8, levels=3))
        for i in range(2):
            s.place_shard(
                i,
                ShardData(
                    shard_key=f"s{i}",
                    centroid=rng.integers(0, 255, size=16).astype(np.uint8),
                    ids=np.arange(10, dtype=np.int64),
                    codes=rng.integers(0, 8, size=(10, 4)).astype(np.uint8),
                ),
            )
        q = rng.integers(0, 255, size=(2, 16)).astype(np.uint8)
        s.run_batch({0: [(0, "s0")], 1: [(1, "s1")]}, q, k=3)
        assert check_tracer(tracer) == []


class TestRetryOrdering:
    def test_retry_after_original_is_clean(self):
        events = [
            _ev("DC", 0, 0, 10, detail="c0p0"),
            _ev("DC", 0, 15, 25, detail="c0p0#retry1"),
        ]
        assert check_events(events) == []

    def test_retry_overlapping_original_flagged(self):
        events = [
            _ev("DC", 0, 0, 10, detail="c0p0"),
            _ev("DC", 0, 8, 18, detail="c0p0#retry1"),
        ]
        findings = check_events(events)
        assert "retry-before-original" in [f.rule for f in findings]

    def test_retry_entirely_before_original_flagged(self):
        events = [
            _ev("DC", 0, 20, 30, detail="c0p0"),
            _ev("DC", 0, 0, 5, detail="c0p0#retry1"),
        ]
        findings = check_events(events)
        assert [f.rule for f in findings] == ["retry-before-original"]

    def test_retry_of_other_task_not_matched(self):
        # A retry only orders against its own base task, not others
        # sharing the kernel name.
        events = [
            _ev("DC", 0, 0, 10, detail="c1p0"),
            _ev("DC", 0, 10, 15, detail="c0p0#retry1"),
        ]
        assert check_events(events) == []

    def test_retry_on_other_dpu_independent(self):
        events = [
            _ev("DC", 0, 20, 30, detail="c0p0"),
            _ev("DC", 1, 0, 5, detail="c0p0#retry1"),
        ]
        assert check_events(events) == []


class TestChromeTrace:
    def _write(self, tmp_path, records):
        path = str(tmp_path / "trace.json")
        with open(path, "w") as f:
            json.dump({"traceEvents": records}, f)
        return path

    def test_exported_trace_is_clean(self, tmp_path):
        tracer = Tracer()
        tracer.record("RC", 0, 0, 100)
        tracer.record("LC", 0, 100, 300)
        path = str(tmp_path / "trace.json")
        tracer.export_chrome_trace(path)
        assert check_chrome_trace(path) == []

    def test_overlap_in_json(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                {"name": "RC", "ph": "X", "ts": 0, "dur": 10, "tid": 0},
                {"name": "LC", "ph": "X", "ts": 5, "dur": 10, "tid": 0},
            ],
        )
        findings = check_chrome_trace(path)
        assert [f.rule for f in findings] == ["event-overlap"]

    def test_metadata_events_skipped(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                {"name": "process_name", "ph": "M", "pid": 0,
                 "args": {"name": "x"}},
                {"name": "RC", "ph": "X", "ts": 0, "dur": 10, "tid": 0},
            ],
        )
        assert check_chrome_trace(path) == []

    def test_bare_array_accepted(self, tmp_path):
        path = str(tmp_path / "trace.json")
        with open(path, "w") as f:
            json.dump(
                [{"name": "RC", "ph": "X", "ts": 0, "dur": -5, "tid": 0}], f
            )
        findings = check_chrome_trace(path)
        assert "negative-duration" in [f.rule for f in findings]

    def test_unreadable_file(self, tmp_path):
        findings = check_chrome_trace(str(tmp_path / "missing.json"))
        assert [f.rule for f in findings] == ["unreadable-trace"]

    def test_non_trace_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        with open(path, "w") as f:
            json.dump({"not": "a trace"}, f)
        findings = check_chrome_trace(path)
        assert [f.rule for f in findings] == ["malformed-trace"]

    def test_event_without_ts_warned(self, tmp_path):
        path = self._write(
            tmp_path, [{"name": "RC", "ph": "X", "dur": 10, "tid": 0}]
        )
        findings = check_chrome_trace(path)
        assert [f.rule for f in findings] == ["malformed-event"]

    def test_retry_ordering_checked_in_json(self, tmp_path):
        path = self._write(
            tmp_path,
            [
                {"name": "DC", "ph": "X", "ts": 20, "dur": 10, "tid": 0,
                 "args": {"detail": "c0p0", "batch": 0}},
                {"name": "DC", "ph": "X", "ts": 0, "dur": 5, "tid": 0,
                 "args": {"detail": "c0p0#retry1", "batch": 0}},
            ],
        )
        findings = check_chrome_trace(path)
        assert [f.rule for f in findings] == ["retry-before-original"]


class TestTracerValidation:
    def test_record_rejects_negative_dpu(self):
        tracer = Tracer()
        with pytest.raises(ValueError, match="dpu_id"):
            tracer.record("RC", -2, 0.0, 1.0)
