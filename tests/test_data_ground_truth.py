import numpy as np
import pytest

from repro.data.ground_truth import attach_ground_truth, exact_topk
from repro.data import Dataset


class TestExactTopk:
    def test_matches_naive(self, rng):
        base = rng.integers(0, 255, size=(200, 8)).astype(np.uint8)
        queries = rng.integers(0, 255, size=(7, 8)).astype(np.uint8)
        idx = exact_topk(base, queries, 5)
        d = ((queries[:, None, :].astype(float) - base[None].astype(float)) ** 2).sum(-1)
        naive = np.argsort(d, axis=1, kind="stable")[:, :5]
        naive_d = np.take_along_axis(d, naive, axis=1)
        got_d = np.take_along_axis(d, idx, axis=1)
        np.testing.assert_allclose(got_d, naive_d)

    def test_blocked_equals_unblocked(self, rng):
        base = rng.integers(0, 255, size=(500, 6)).astype(np.uint8)
        queries = rng.integers(0, 255, size=(9, 6)).astype(np.uint8)
        a = exact_topk(base, queries, 7, block_n=64, block_q=3)
        b = exact_topk(base, queries, 7)
        da = ((queries[:, None].astype(float) - base[a].astype(float)) ** 2).sum(-1)
        db = ((queries[:, None].astype(float) - base[b].astype(float)) ** 2).sum(-1)
        np.testing.assert_allclose(da, db)

    def test_self_query_is_own_nn(self, rng):
        base = rng.integers(0, 255, size=(50, 8)).astype(np.uint8)
        idx = exact_topk(base, base[:5], 1)
        d = ((base[:5, None].astype(float) - base[None].astype(float)) ** 2).sum(-1)
        np.testing.assert_array_equal(
            np.take_along_axis(d, idx, 1).ravel(), d.min(axis=1)
        )

    def test_return_distances_sorted(self, rng):
        base = rng.normal(size=(100, 4)).astype(np.float32)
        _, dist = exact_topk(base, base[:3], 10, return_distances=True)
        assert np.all(np.diff(dist, axis=1) >= 0)

    def test_k_bounds(self, rng):
        base = rng.normal(size=(10, 4))
        with pytest.raises(ValueError):
            exact_topk(base, base[:1], 0)
        with pytest.raises(ValueError):
            exact_topk(base, base[:1], 11)

    def test_k_equals_n(self, rng):
        base = rng.normal(size=(10, 4))
        idx = exact_topk(base, base[:2], 10)
        assert sorted(idx[0].tolist()) == list(range(10))


class TestAttach:
    def test_attach(self, rng):
        base = rng.integers(0, 255, size=(50, 4)).astype(np.uint8)
        ds = Dataset(name="t", base=base, queries=base[:3])
        attach_ground_truth(ds, k=5)
        assert ds.ground_truth.shape == (3, 5)

    def test_attach_requires_queries(self, rng):
        ds = Dataset(name="t", base=rng.normal(size=(10, 4)))
        with pytest.raises(ValueError):
            attach_ground_truth(ds, k=2)
