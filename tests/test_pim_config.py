import pytest

from repro.pim.config import (
    DpuConfig,
    PimSystemConfig,
    TransferConfig,
    paper_system_config,
    scaled_system_config,
)


class TestDpuConfig:
    def test_defaults(self):
        c = DpuConfig()
        assert c.frequency_hz == 450e6
        assert c.wram_bytes == 64 * 1024
        assert c.mram_bytes == 64 * 1024 * 1024

    def test_effective_ipc_full_pipeline(self):
        assert DpuConfig(num_tasklets=16, pipeline_depth=11).effective_ipc == 1.0

    def test_effective_ipc_underfilled(self):
        c = DpuConfig(num_tasklets=4, pipeline_depth=11)
        assert c.effective_ipc == pytest.approx(4 / 11)

    @pytest.mark.parametrize(
        "kw",
        [
            dict(num_tasklets=0),
            dict(num_tasklets=25),
            dict(frequency_hz=0),
            dict(compute_scale=0),
            dict(mram_random_derate=0.0),
            dict(mram_random_derate=1.5),
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(ValueError):
            DpuConfig(**kw)


class TestSystemConfig:
    def test_paper_config(self):
        c = paper_system_config()
        assert c.num_dpus == 2530
        assert c.num_dimms == 20
        assert c.combined_mram_bandwidth == pytest.approx(2530 * 1e9)

    def test_scaled_config(self):
        assert scaled_system_config(64).num_dpus == 64

    def test_dimm_count_ceil(self):
        assert PimSystemConfig(num_dpus=129).num_dimms == 2

    def test_total_power(self):
        c = PimSystemConfig(num_dpus=256)
        assert c.total_power_watts == pytest.approx(2 * 13.92)

    def test_with_compute_scale(self):
        c = PimSystemConfig(num_dpus=8).with_compute_scale(5.0)
        assert c.dpu.compute_scale == 5.0
        assert c.num_dpus == 8

    def test_invalid_num_dpus(self):
        with pytest.raises(ValueError):
            PimSystemConfig(num_dpus=0)

    def test_transfer_validation(self):
        with pytest.raises(ValueError):
            TransferConfig(host_bandwidth_bytes_per_s=0)

    def test_host_bandwidth_fraction(self):
        """Paper: host bandwidth is ~0.75% of combined PIM bandwidth."""
        c = paper_system_config()
        frac = c.transfer.host_bandwidth_bytes_per_s / c.combined_mram_bandwidth
        assert 0.005 < frac < 0.01
