"""drimsan static prong: the AL006-AL012 concurrency & determinism rules.

Each rule is pinned by at least one broken fixture (flagged) and one
clean counterpart (silent), the escape hatch is honored, and — the
false-positive gate — the shipped package itself lints clean.
"""

import os
import textwrap

from repro.analysis import concurrency
from repro.analysis.findings import Severity

_PIM_PATH = "src/repro/pim/mod.py"
_FIXTURE = os.path.join(
    os.path.dirname(__file__), "fixtures", "broken_dataplane.py"
)


def _rules(source, path=_PIM_PATH):
    findings = concurrency.lint_source(textwrap.dedent(source), path)
    return sorted(f.rule for f in findings)


class TestShmLifecycle:
    def test_leak_plain(self):
        assert _rules(
            """
            from multiprocessing import shared_memory

            def f(data):
                shm = shared_memory.SharedMemory(create=True, size=64)
                shm.buf[:4] = data
                shm.close()
            """
        ) == ["shm-lifecycle"]

    def test_leak_on_branch(self):
        assert _rules(
            """
            def f(arrays, cond):
                a = SharedShardArena.create(arrays)
                if cond:
                    a.close()
                else:
                    pass
            """
        ) == ["shm-lifecycle"]

    def test_try_finally_is_clean(self):
        assert _rules(
            """
            def f(arrays):
                a = SharedShardArena.create(arrays)
                try:
                    work(a)
                finally:
                    a.close()
            """
        ) == []

    def test_with_is_clean(self):
        assert _rules(
            """
            def f(arrays):
                with SharedShardArena.create(arrays) as a:
                    work(a)
            """
        ) == []

    def test_escape_by_return_is_clean(self):
        assert _rules(
            """
            def f(name, manifest):
                a = SharedShardArena.attach(name, manifest)
                return a
            """
        ) == []

    def test_escape_to_attribute_is_clean(self):
        assert _rules(
            """
            def f(self, arrays):
                a = SharedShardArena.create(arrays)
                self._arena = a
            """
        ) == []

    def test_none_guard_close_is_clean(self):
        assert _rules(
            """
            def f(name, manifest):
                a = None
                try:
                    a = SharedShardArena.attach(name, manifest)
                    work(a)
                finally:
                    if a is not None:
                        a.close()
            """
        ) == []

    def test_opt_out(self):
        assert _rules(
            '''
            def f(arrays):
                """Intentional. drimsan: allow shm-lifecycle"""
                a = SharedShardArena.create(arrays)
                work(a)
            '''
        ) == []


class TestForkUnsafeState:
    def test_worker_reading_module_mutable_flagged(self):
        assert _rules(
            """
            import threading

            CACHE = {}

            def worker():
                return CACHE.get("x")

            def run():
                t = threading.Thread(target=worker)
                t.start()
                t.join()
            """
        ) == ["fork-unsafe-state"]

    def test_worker_without_module_state_clean(self):
        assert _rules(
            """
            import threading

            def worker(q):
                q.put(1)

            def run(q):
                t = threading.Thread(target=worker, args=(q,))
                t.start()
                t.join()
            """
        ) == []


class TestUnseededRng:
    def test_stdlib_random_flagged(self):
        assert _rules(
            """
            import random

            def jitter():
                x = random.random()
                log(x)
            """
        ) == ["unseeded-rng"]

    def test_ensure_rng_clean(self):
        assert _rules(
            """
            from repro.utils import ensure_rng

            def draw(seed):
                rng = ensure_rng(seed)
                x = rng.integers(0, 10)
                log(x)
            """
        ) == []


class TestUnorderedIteration:
    def test_set_iteration_flagged(self):
        assert _rules(
            """
            def merge(ids):
                seen = set(ids)
                out = []
                for i in seen:
                    out.append(i)
                return out
            """
        ) == ["unordered-iteration"]

    def test_sorted_set_clean(self):
        assert _rules(
            """
            def merge(ids):
                seen = set(ids)
                out = []
                for i in sorted(seen):
                    out.append(i)
                return out
            """
        ) == []

    def test_set_union_expression_flagged(self):
        assert _rules(
            """
            def merge(a, b):
                out = []
                for key in set(a) | set(b):
                    out.append(key)
                return out
            """
        ) == ["unordered-iteration"]


class TestWallclockInResult:
    def test_time_in_return_flagged(self):
        assert _rules(
            """
            import time

            def result(rows):
                stamp = time.time()
                return rows, stamp
            """
        ) == ["wallclock-in-result"]

    def test_timing_for_logging_clean(self):
        assert _rules(
            """
            import time

            def result(rows):
                t0 = time.time()
                out = compute(rows)
                log(time.time() - t0)
                return out
            """
        ) == []

    def test_obs_layer_exempt(self):
        assert _rules(
            """
            import time

            def snapshot():
                return {"ts": time.time()}
            """,
            path="src/repro/obs/registry.py",
        ) == []


class TestUnstableSort:
    def test_default_argsort_flagged(self):
        assert _rules(
            """
            import numpy as np

            def rank(d):
                return np.argsort(d)
            """
        ) == ["unstable-sort"]

    def test_stable_kind_clean(self):
        assert _rules(
            """
            import numpy as np

            def rank(d):
                return np.argsort(d, kind="stable")
            """
        ) == []

    def test_out_of_scope_path_ignored(self):
        assert _rules(
            """
            import numpy as np

            def rank(d):
                return np.argsort(d)
            """,
            path="src/repro/faults/report.py",
        ) == []


class TestLeakedWorker:
    def test_unjoined_thread_flagged(self):
        assert _rules(
            """
            import threading

            def fire(fn):
                t = threading.Thread(target=fn)
                t.start()
            """
        ) == ["leaked-worker"]

    def test_joined_thread_clean(self):
        assert _rules(
            """
            import threading

            def fire(fn):
                t = threading.Thread(target=fn)
                t.start()
                t.join()
            """
        ) == []

    def test_executor_stored_on_self_clean(self):
        assert _rules(
            """
            from concurrent.futures import ProcessPoolExecutor

            def attach(self, n):
                pool = ProcessPoolExecutor(max_workers=n)
                self._pool = pool
            """
        ) == []

    def test_leaked_asyncio_task_flagged(self):
        assert _rules(
            """
            import asyncio

            async def fire(coro):
                t = asyncio.create_task(coro)
                return 1
            """
        ) == ["leaked-worker"]

    def test_leaked_ensure_future_flagged(self):
        assert _rules(
            """
            import asyncio

            async def fire(coro):
                fut = asyncio.ensure_future(coro)
            """
        ) == ["leaked-worker"]

    def test_awaited_asyncio_task_clean(self):
        assert _rules(
            """
            import asyncio

            async def run(coro):
                t = asyncio.create_task(coro)
                return await t
            """
        ) == []

    def test_gathered_asyncio_task_clean(self):
        assert _rules(
            """
            import asyncio

            async def run(a, b):
                t1 = asyncio.create_task(a)
                t2 = asyncio.create_task(b)
                return await asyncio.gather(t1, t2)
            """
        ) == []

    def test_cancelled_asyncio_task_clean(self):
        assert _rules(
            """
            import asyncio

            async def bound(coro, s):
                t = asyncio.ensure_future(coro)
                await asyncio.sleep(s)
                t.cancel()
            """
        ) == []

    def test_taskgroup_create_task_not_flagged(self):
        # TaskGroup awaits its children on exit; tg.create_task never
        # needs a manual discharge.
        assert _rules(
            """
            async def run(tg, coro):
                t = tg.create_task(coro)
            """
        ) == []


class TestEntryPoints:
    def test_broken_fixture_trips_every_rule(self):
        with open(_FIXTURE, encoding="utf-8") as f:
            src = f.read()
        findings = concurrency.lint_source(src, _PIM_PATH)
        assert sorted(f.rule for f in findings) == sorted(concurrency.RULE_IDS)
        assert sorted(f.data["id"] for f in findings) == sorted(
            concurrency.RULE_IDS.values()
        )

    def test_syntax_error_reported_not_raised(self):
        findings = concurrency.lint_source("def broken(:\n", _PIM_PATH)
        assert [f.rule for f in findings] == ["syntax-error"]
        assert findings[0].severity is Severity.ERROR

    def test_findings_carry_checker_and_id(self):
        findings = concurrency.lint_source(
            "import random\n\ndef f():\n    x = random.random()\n    log(x)\n",
            _PIM_PATH,
        )
        (f,) = findings
        assert f.checker == "concurrency"
        assert f.data["id"] == "AL008"
        assert f.file == _PIM_PATH and f.line == 4

    def test_shipped_package_is_clean(self):
        """The false-positive gate: the repo's own data plane lints clean."""
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        findings = [
            f
            for f in concurrency.lint_tree(root)
            if f.severity >= Severity.ERROR
        ]
        assert findings == []
