import pytest

from repro.core.layout import LayoutConfig, generate_layout
from repro.core.scheduler import RuntimeScheduler, SchedulerConfig


@pytest.fixture(scope="module")
def plan(small_quantized):
    heat = small_quantized.cluster_sizes().astype(float)
    return generate_layout(
        small_quantized,
        8,
        heat,
        LayoutConfig(min_split_size=400, max_copies=2),
        seed=0,
    )


def _cfg(**kw):
    base = dict(lut_latency=5000.0, per_point_calc=50.0, per_point_sort=2.0)
    base.update(kw)
    return SchedulerConfig(**base)


class TestPredictor:
    def test_task_latency_eq15(self):
        sched_cfg = _cfg()
        from repro.core.layout import LayoutPlan

        # latency = l_lut + x * (l_calu + l_sortu)
        lat = sched_cfg.lut_latency + 100 * (
            sched_cfg.per_point_calc + sched_cfg.per_point_sort
        )
        plan = LayoutPlan(shards={}, placement={}, replica_groups={}, num_dpus=1)
        s = RuntimeScheduler(plan, sched_cfg)
        assert s.task_latency(100) == pytest.approx(lat)

    def test_all_tasks_assigned(self, plan):
        s = RuntimeScheduler(plan, _cfg(filter_threshold=None))
        tasks = [(q, c) for q in range(10) for c in range(5)]
        out = s.schedule_batch(tasks)
        assigned = sum(len(v) for v in out.assignments.values())
        parts = sum(
            len(plan.replica_groups[c][0]) for _, c in tasks
        )
        assert assigned == parts
        assert out.deferred == []

    def test_tasks_only_on_resident_dpus(self, plan):
        s = RuntimeScheduler(plan, _cfg(filter_threshold=None))
        out = s.schedule_batch([(0, 3), (1, 7)])
        for dpu, items in out.assignments.items():
            for _, key in items:
                assert plan.placement[key] == dpu

    def test_predictor_beats_static_on_makespan(self, plan):
        tasks = [(q, 0) for q in range(40)]  # everyone hits cluster 0
        pred = RuntimeScheduler(plan, _cfg(filter_threshold=None))
        stat = RuntimeScheduler(
            plan, _cfg(filter_threshold=None, policy="static")
        )
        mp = pred.schedule_batch(tasks).predicted_load.max()
        ms = stat.schedule_batch(tasks).predicted_load.max()
        if plan.replica_count(0) > 1:
            assert mp < ms
        else:
            assert mp <= ms

    def test_deterministic(self, plan):
        tasks = [(q, c) for q in range(6) for c in (1, 2, 3)]
        a = RuntimeScheduler(plan, _cfg()).schedule_batch(tasks)
        b = RuntimeScheduler(plan, _cfg()).schedule_batch(tasks)
        assert a.assignments == b.assignments


class TestFilter:
    def test_filter_defers_from_hot_dpus(self, plan):
        s = RuntimeScheduler(plan, _cfg(filter_threshold=1.05, max_defer_fraction=0.5))
        # All queries hammer one cluster: its DPUs overload.
        tasks = [(q, 0) for q in range(50)]
        out = s.schedule_batch(tasks)
        assert len(out.deferred) > 0
        assert all(c == 0 for _, c in out.deferred)

    def test_filter_respects_cap(self, plan):
        s = RuntimeScheduler(plan, _cfg(filter_threshold=1.01, max_defer_fraction=0.1))
        tasks = [(q, 0) for q in range(50)]
        out = s.schedule_batch(tasks)
        assert len(out.deferred) <= 5

    def test_no_filter_when_disabled(self, plan):
        s = RuntimeScheduler(plan, _cfg(filter_threshold=None))
        out = s.schedule_batch([(q, 0) for q in range(50)])
        assert out.deferred == []

    def test_deferred_tasks_not_in_assignments(self, plan):
        s = RuntimeScheduler(plan, _cfg(filter_threshold=1.05, max_defer_fraction=0.5))
        tasks = [(q, 0) for q in range(30)]
        out = s.schedule_batch(tasks)
        deferred_q = {q for q, _ in out.deferred}
        for items in out.assignments.values():
            for q, key in items:
                assert (
                    q not in deferred_q
                    or plan.shards[key].cluster_id != 0
                )


class TestConfigValidation:
    def test_bad_policy(self):
        with pytest.raises(ValueError):
            SchedulerConfig(policy="bogus")

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            SchedulerConfig(filter_threshold=0.9)

    def test_bad_defer_fraction(self):
        with pytest.raises(ValueError):
            SchedulerConfig(max_defer_fraction=1.5)
