"""CL-on-PIM placement variant (cluster_locate_on="pim")."""

import numpy as np
import pytest

from repro.core import DrimAnnEngine, SearchParams
from repro.pim.config import PimSystemConfig


@pytest.fixture(scope="module")
def engines(small_ds, small_quantized, small_params):
    out = {}
    for placement in ("host", "pim"):
        out[placement] = DrimAnnEngine.build(
            small_ds.base,
            small_params,
            search_params=SearchParams(cluster_locate_on=placement),
            system_config=PimSystemConfig(num_dpus=8),
            prebuilt_quantized=small_quantized,
            seed=0,
        )
    return out


class TestClOnPim:
    def test_same_results_as_host_placement(self, engines, small_ds):
        q = small_ds.queries[:60]
        res_host, _ = engines["host"].search(q)
        res_pim, _ = engines["pim"].search(q)
        np.testing.assert_allclose(
            np.sort(res_host.distances, axis=1),
            np.sort(res_pim.distances, axis=1),
        )

    def test_cl_cycles_appear_in_breakdown(self, engines, small_ds):
        _, bd = engines["pim"].search(small_ds.queries[:60])
        assert bd.kernel_cycles.get("CL", 0.0) > 0

    def test_host_placement_has_no_cl_cycles(self, engines, small_ds):
        _, bd = engines["host"].search(small_ds.queries[:60])
        assert bd.kernel_cycles.get("CL", 0.0) == 0.0

    def test_cl_on_pim_charges_pim_time(self, engines, small_ds):
        _, bd_pim = engines["pim"].search(small_ds.queries[:60])
        _, bd_host = engines["host"].search(small_ds.queries[:60])
        assert bd_pim.pim_seconds > bd_host.pim_seconds
        assert bd_host.host_seconds > bd_pim.host_seconds

    def test_locate_requires_slices(self, small_quantized):
        from repro.pim import PimSystem, PimSystemConfig as Cfg

        s = PimSystem(Cfg(num_dpus=4))
        with pytest.raises(RuntimeError, match="centroid slices"):
            s.locate_on_pim(np.zeros((2, small_quantized.dim), dtype=np.uint8), 2)

    def test_locate_on_pim_matches_host_locate(self, engines, small_ds, small_quantized):
        q = small_ds.queries[:20]
        probes_pim, _, _ = engines["pim"].system.locate_on_pim(q, 5)
        probes_host = small_quantized.locate(q, 5)
        # Same distances (ids may differ on exact ties).
        c = small_quantized.centroids.astype(np.int64)
        qq = q.astype(np.int64)
        d = ((qq[:, None] - c[None]) ** 2).sum(-1)
        np.testing.assert_array_equal(
            np.sort(np.take_along_axis(d, probes_pim, 1), axis=1),
            np.sort(np.take_along_axis(d, probes_host, 1), axis=1),
        )
