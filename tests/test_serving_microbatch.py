"""Micro-batch serving: coalescing is a latency knob, never a result knob.

Two layers:

* :class:`~repro.core.serving.MicroBatcher` window-formation
  invariants, property-tested over random arrival streams without an
  engine (members contiguous, launches ordered, every query served
  exactly once, no window outlives its size/timeout bound);
* end-to-end: ``dispatch="coalesce"`` and ``dispatch="per_query"``
  return bit-identical per-query ids/distances (via
  ``return_results=True``), deadlines are honored by both overload
  policies, and the plan override reaches the engine.
"""

import numpy as np
import pytest

from repro.core.serving import (
    BatchingPolicy,
    MicroBatcher,
    PoissonArrivals,
    simulate_serving,
)
from repro.testing import build_canonical_engine, canonical_dataset


def _random_policy(rng):
    return BatchingPolicy(
        batch_size=int(rng.integers(1, 20)),
        max_wait_s=float(rng.uniform(0, 5e-3)),
        dispatch="coalesce",
    )


def _drive(batcher, n, rng):
    """Run the window former over the whole stream, collecting batches."""
    batches = []
    free_at = 0.0
    i = 0
    while i < n:
        b = batcher.next_batch(i, free_at)
        batches.append(b)
        free_at = b.launch + float(rng.uniform(0, 2e-3))  # service time
        i = b.next_index
    return batches


class TestMicroBatcherProperties:
    @pytest.mark.parametrize("trial", range(10))
    def test_window_invariants(self, rng, trial):
        n = int(rng.integers(1, 200))
        arrivals = np.sort(rng.uniform(0, 0.05, size=n))
        policy = _random_policy(rng)
        batches = _drive(MicroBatcher(arrivals, policy), n, rng)
        covered = np.concatenate([b.members for b in batches])
        # Every query served exactly once, in arrival order.
        np.testing.assert_array_equal(covered, np.arange(n))
        prev_launch = -np.inf
        for b in batches:
            assert 1 <= len(b.members) <= policy.batch_size
            # Members are contiguous and all arrived by launch time.
            np.testing.assert_array_equal(
                b.members, np.arange(b.members[0], b.next_index)
            )
            assert float(arrivals[b.members].max()) <= b.launch
            # Launches are non-decreasing (single-tenant engine).
            assert b.launch >= prev_launch
            prev_launch = b.launch

    @pytest.mark.parametrize("trial", range(5))
    def test_oldest_waiter_bounded_by_window(self, rng, trial):
        """With a free engine, the oldest waiter never waits past the
        size-or-timeout bound: launch <= arrival + max_wait_s unless a
        full batch formed earlier."""
        n = 100
        arrivals = np.sort(rng.uniform(0, 0.02, size=n))
        policy = _random_policy(rng)
        batcher = MicroBatcher(arrivals, policy)
        i = 0
        while i < n:
            b = batcher.next_batch(i, 0.0)  # engine always free
            if len(b.members) < policy.batch_size:
                assert b.launch <= arrivals[i] + policy.max_wait_s + 1e-12
            i = b.next_index

    def test_per_query_windows_are_singletons(self, rng):
        n = 50
        arrivals = np.sort(rng.uniform(0, 0.01, size=n))
        policy = BatchingPolicy(batch_size=16, dispatch="per_query")
        batches = _drive(MicroBatcher(arrivals, policy), n, rng)
        assert len(batches) == n
        assert all(len(b.members) == 1 for b in batches)

    def test_dispatch_validated(self):
        with pytest.raises(ValueError, match="dispatch"):
            BatchingPolicy(dispatch="psychic")


@pytest.fixture(scope="module")
def serving_setup():
    ds = canonical_dataset()
    engine = build_canonical_engine("split-replicated")
    queries = ds.queries[:60]
    arrivals = PoissonArrivals(rate_qps=4000).sample(len(queries), seed=3)
    yield engine, queries, arrivals
    engine.close()


class TestDispatchEquivalence:
    def test_coalesce_matches_per_query_bitwise(self, serving_setup):
        engine, queries, arrivals = serving_setup
        out_c = simulate_serving(
            engine, queries, arrivals,
            BatchingPolicy(batch_size=16, max_wait_s=1e-3),
            return_results=True,
        )
        out_p = simulate_serving(
            engine, queries, arrivals,
            BatchingPolicy(batch_size=16, max_wait_s=1e-3,
                           dispatch="per_query"),
            return_results=True,
        )
        assert max(out_c.batch_sizes) > 1  # coalescing actually happened
        assert set(out_p.batch_sizes) == {1}
        np.testing.assert_array_equal(out_c.results.ids, out_p.results.ids)
        np.testing.assert_array_equal(
            out_c.results.distances, out_p.results.distances
        )

    def test_serving_results_match_offline_search(self, serving_setup):
        """Micro-batched serving returns exactly what one offline
        search over the same queries returns."""
        engine, queries, arrivals = serving_setup
        out = simulate_serving(
            engine, queries, arrivals,
            BatchingPolicy(batch_size=16, max_wait_s=1e-3),
            return_results=True,
        )
        res, _ = engine.search(queries)
        np.testing.assert_array_equal(out.results.ids, res.ids)
        np.testing.assert_array_equal(out.results.distances, res.distances)

    @pytest.mark.parametrize("plan", ["serial", "vectorized", "auto"])
    def test_plan_override_does_not_change_results(self, serving_setup, plan):
        engine, queries, arrivals = serving_setup
        base = simulate_serving(
            engine, queries, arrivals, return_results=True
        )
        out = simulate_serving(
            engine, queries, arrivals, return_results=True, plan=plan
        )
        np.testing.assert_array_equal(base.results.ids, out.results.ids)
        np.testing.assert_array_equal(
            base.results.distances, out.results.distances
        )

    def test_results_absent_by_default(self, serving_setup):
        engine, queries, arrivals = serving_setup
        out = simulate_serving(engine, queries, arrivals)
        assert out.results is None


class TestDeadlines:
    def test_shed_drops_only_hopeless_queries(self, serving_setup):
        """Shed queries are exactly those already past their deadline at
        launch; everything served is returned with the -1 fill absent."""
        engine, queries, arrivals = serving_setup
        policy = BatchingPolicy(
            batch_size=16, max_wait_s=1e-3, deadline_s=2e-3,
            overload_policy="shed",
        )
        out = simulate_serving(
            engine, queries, arrivals, policy, return_results=True
        )
        assert out.num_offered == len(queries)
        assert out.num_queries + out.shed_queries == len(queries)
        served_rows = out.results.ids[out.results.ids[:, 0] >= 0]
        assert len(served_rows) == out.num_queries

    def test_degrade_counts_misses_from_latencies(self, serving_setup):
        engine, queries, arrivals = serving_setup
        deadline = 1.5e-3
        policy = BatchingPolicy(
            batch_size=16, max_wait_s=1e-3, deadline_s=deadline,
        )
        out = simulate_serving(engine, queries, arrivals, policy)
        want = int(np.count_nonzero(out.latencies_s > deadline))
        assert out.deadline_misses == want
        assert out.shed_queries == 0  # degrade never drops

    def test_per_query_dispatch_respects_deadlines_too(self, serving_setup):
        engine, queries, arrivals = serving_setup
        deadline = 1.5e-3
        policy = BatchingPolicy(
            deadline_s=deadline, dispatch="per_query",
            overload_policy="shed",
        )
        out = simulate_serving(engine, queries, arrivals, policy)
        # Whatever was served arrived -> completed within accounting:
        # misses are exactly the served latencies past the deadline.
        want = int(np.count_nonzero(out.latencies_s > deadline))
        assert out.deadline_misses == want
        assert out.num_queries + out.shed_queries == len(queries)
