"""End-to-end integration tests across modules.

These exercise the whole stack the way the benchmarks do: dataset →
index → quantize → layout → PIM search → recall/timing, plus the
paper's key qualitative claims at test scale.
"""

import numpy as np

from repro.ann import recall_at_k
from repro.baselines import CpuIvfPqBaseline
from repro.core import (
    DrimAnnEngine,
    IndexParams,
    LayoutConfig,
    SearchParams,
)
from repro.core.accuracy import measure_accuracy_table
from repro.core.dse import DesignSpaceExplorer
from repro.core.params import DatasetShape
from repro.core.perf_model import AnalyticPerfModel, HardwareProfile
from repro.data import load_dataset
from repro.pim.config import PimSystemConfig
from repro.pim.energy import EnergyModel


class TestEndToEnd:
    def test_engine_beats_unbalanced_engine(self, small_ds, small_quantized, small_params):
        """Load balancing (layout + scheduler) must beat id-order layout
        with static scheduling — the Fig. 11 direction."""
        balanced = DrimAnnEngine.build(
            small_ds.base,
            small_params,
            system_config=PimSystemConfig(num_dpus=16),
            layout_config=LayoutConfig(min_split_size=300, max_copies=2),
            heat_queries=small_ds.queries[:50],
            prebuilt_quantized=small_quantized,
            seed=0,
        )
        unbalanced = DrimAnnEngine.build(
            small_ds.base,
            small_params,
            system_config=PimSystemConfig(num_dpus=16),
            layout_config=LayoutConfig(
                min_split_size=None, max_copies=0, allocation="id_order"
            ),
            prebuilt_quantized=small_quantized,
            seed=0,
        )
        _, bd_bal = balanced.search(small_ds.queries)
        _, bd_unb = unbalanced.search(small_ds.queries, with_scheduler=False)
        assert bd_bal.pim_seconds < bd_unb.pim_seconds

    def test_recall_consistent_between_engine_and_cpu_baseline(
        self, small_ds, small_params, small_engine, small_index
    ):
        cpu = CpuIvfPqBaseline(small_index)
        res_cpu = cpu.search(small_ds.queries, small_params)
        res_pim, _ = small_engine.search(small_ds.queries)
        r_cpu = recall_at_k(res_cpu.ids, small_ds.ground_truth, 10)
        r_pim = recall_at_k(res_pim.ids, small_ds.ground_truth, 10)
        assert abs(r_cpu - r_pim) < 0.12  # integer quantization tolerance

    def test_deferral_does_not_lose_queries(self, small_ds, small_quantized, small_params):
        """Aggressive filtering must still answer every query fully."""
        eng = DrimAnnEngine.build(
            small_ds.base,
            small_params,
            search_params=SearchParams(batch_size=32),
            system_config=PimSystemConfig(num_dpus=16),
            layout_config=LayoutConfig(min_split_size=300, max_copies=2),
            prebuilt_quantized=small_quantized,
            seed=0,
        )
        # Tighten the filter drastically.
        from repro.core.scheduler import RuntimeScheduler, SchedulerConfig

        old = eng.scheduler.config
        eng.scheduler = RuntimeScheduler(
            eng.plan,
            SchedulerConfig(
                lut_latency=old.lut_latency,
                per_point_calc=old.per_point_calc,
                per_point_sort=old.per_point_sort,
                filter_threshold=1.05,
                max_defer_fraction=0.25,
            ),
        )
        res, _ = eng.search(small_ds.queries)
        ref = eng.reference_search(small_ds.queries)
        np.testing.assert_allclose(
            np.sort(res.distances, axis=1), np.sort(ref.distances, axis=1)
        )

    def test_dse_to_engine_pipeline(self, small_ds):
        """DSE → engine: the chosen configuration must actually meet the
        accuracy constraint when deployed."""
        table = measure_accuracy_table(
            small_ds.base,
            small_ds.queries[:60],
            small_ds.ground_truth[:60],
            nlist_values=[64],
            nprobe_values=[2, 8, 16],
            m_values=[16, 32],
            cb_values=[64],
            seed=0,
        )
        shape = DatasetShape(
            num_points=small_ds.num_base, dim=small_ds.dim, num_queries=150
        )
        dse = DesignSpaceExplorer(
            shape,
            HardwareProfile.for_pim(PimSystemConfig(num_dpus=16)),
            nlist_values=[64],
            nprobe_values=[2, 8, 16],
            m_values=[16, 32],
            cb_values=[64],
        )
        res = dse.explore_with_table(table, 0.6, num_iterations=10)
        assert res.found_feasible
        eng = DrimAnnEngine.build(
            small_ds.base,
            res.best_params,
            system_config=PimSystemConfig(num_dpus=16),
            seed=0,
        )
        out, _ = eng.search(small_ds.queries)
        assert recall_at_k(out.ids, small_ds.ground_truth, 10) >= 0.55

    def test_energy_accounting(self, small_engine, small_ds):
        _, bd = small_engine.search(small_ds.queries)
        em = EnergyModel()
        pim = em.pim_run(bd.e2e_seconds, small_engine.system.config)
        cpu = em.cpu_run(bd.e2e_seconds * 3)
        assert pim.joules > 0
        assert cpu.queries_per_joule(150) < pim.queries_per_joule(150) * 100

    def test_deep_like_dataset_pipeline(self):
        """The DEEP100M-like shape (d=96) runs through the full stack."""
        ds = load_dataset("deep-like-20k", seed=0, num_queries=60, ground_truth_k=10)
        params = IndexParams(nlist=64, nprobe=8, k=10, num_subspaces=16, codebook_size=64)
        eng = DrimAnnEngine.build(
            ds.base,
            params,
            system_config=PimSystemConfig(num_dpus=8),
            seed=0,
        )
        res, bd = eng.search(ds.queries)
        assert recall_at_k(res.ids, ds.ground_truth, 10) > 0.4
        assert bd.pim_seconds > 0


class TestQualitativeClaims:
    """The paper's directional findings, at test scale."""

    def test_lc_share_grows_with_nlist(self, small_ds):
        """Fig. 8: the bottleneck shifts from DC toward LC as nlist grows."""
        shares = {}
        for nlist in (16, 128):
            params = IndexParams(
                nlist=nlist, nprobe=4, k=10, num_subspaces=16, codebook_size=64
            )
            eng = DrimAnnEngine.build(
                small_ds.base,
                params,
                system_config=PimSystemConfig(num_dpus=8),
                layout_config=LayoutConfig(min_split_size=None, max_copies=0),
                seed=0,
            )
            _, bd = eng.search(small_ds.queries[:60])
            s = bd.kernel_shares()
            shares[nlist] = s.get("LC", 0.0) / max(s.get("DC", 1e-9), 1e-9)
        assert shares[128] > shares[16]

    def test_throughput_decreases_with_nprobe(self, small_ds, small_quantized):
        times = {}
        for nprobe in (2, 16):
            params = IndexParams(
                nlist=64, nprobe=nprobe, k=10, num_subspaces=16, codebook_size=64
            )
            eng = DrimAnnEngine.build(
                small_ds.base,
                params,
                system_config=PimSystemConfig(num_dpus=8),
                prebuilt_quantized=small_quantized,
                seed=0,
            )
            _, bd = eng.search(small_ds.queries[:60])
            times[nprobe] = bd.pim_seconds
        assert times[16] > times[2]

    def test_model_gap_positive_without_balancing(self, small_ds, small_quantized, small_params):
        """Fig. 10(b): the ideal model is faster than the imbalanced
        simulator (the gap the load balancer closes)."""
        eng = DrimAnnEngine.build(
            small_ds.base,
            small_params,
            system_config=PimSystemConfig(num_dpus=16),
            layout_config=LayoutConfig(
                min_split_size=None, max_copies=0, allocation="id_order"
            ),
            prebuilt_quantized=small_quantized,
            seed=0,
        )
        _, bd = eng.search(small_ds.queries, with_scheduler=False)
        shape = DatasetShape(
            num_points=small_ds.num_base,
            dim=small_ds.dim,
            num_queries=small_ds.num_queries,
        )
        model = AnalyticPerfModel(
            shape,
            HardwareProfile.for_pim(PimSystemConfig(num_dpus=16)),
            multiplier_less=True,
        )
        ideal = model.split_seconds(small_params)
        assert bd.pim_seconds > ideal
