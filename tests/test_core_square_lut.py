import numpy as np
import pytest

from repro.core.square_lut import SquareLut


class TestConstruction:
    def test_8bit_single_level(self):
        lut = SquareLut.for_bit_width(8, levels=1)
        assert lut.max_abs == 255
        assert lut.table.shape == (511,)

    def test_8bit_three_level(self):
        lut = SquareLut.for_bit_width(8, levels=3)
        assert lut.max_abs == 765

    def test_16bit(self):
        lut = SquareLut.for_bit_width(16, levels=1)
        assert lut.max_abs == 65535

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            SquareLut.for_bit_width(12)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            SquareLut.for_bit_width(8, levels=0)

    def test_table_shape_validated(self):
        with pytest.raises(ValueError, match="shape"):
            SquareLut(max_abs=2, resident_max_abs=2, table=np.zeros(3, dtype=np.int64))


class TestSquare:
    def test_exact_squares(self):
        lut = SquareLut.for_bit_width(8, levels=2)
        v = np.arange(-510, 511)
        sq, misses = lut.square(v)
        np.testing.assert_array_equal(sq, v.astype(np.int64) ** 2)
        assert misses == 0

    def test_lossless_on_random_operands(self, rng):
        lut = SquareLut.for_bit_width(8, levels=3)
        v = rng.integers(-765, 766, size=(7, 13))
        sq, _ = lut.square(v)
        np.testing.assert_array_equal(sq, v.astype(np.int64) ** 2)

    def test_out_of_range_rejected(self):
        lut = SquareLut.for_bit_width(8, levels=1)
        with pytest.raises(ValueError, match="out of range"):
            lut.square(np.array([256]))

    def test_float_rejected(self):
        lut = SquareLut.for_bit_width(8)
        with pytest.raises(TypeError, match="integers"):
            lut.square(np.array([1.5]))


class TestPartial:
    def test_partial_still_exact(self):
        full = SquareLut.for_bit_width(8, levels=3)
        part = full.partial(100)
        v = np.array([-700, -50, 0, 99, 700])
        sq, misses = part.square(v)
        np.testing.assert_array_equal(sq, v.astype(np.int64) ** 2)
        assert misses == 2  # |±700| > 100

    def test_partial_resident_bytes(self):
        part = SquareLut.for_bit_width(8, levels=3).partial(63)
        assert part.resident_bytes == (2 * 63 + 1) * 4

    def test_partial_bounds_validated(self):
        full = SquareLut.for_bit_width(8)
        with pytest.raises(ValueError):
            full.partial(9999)

    def test_full_table_no_misses(self, rng):
        lut = SquareLut.for_bit_width(8, levels=3)
        _, misses = lut.square(rng.integers(-765, 766, size=100))
        assert misses == 0


class TestSquareTermCache:
    def test_cache_hit_returns_same_row(self, rng):
        from repro.core.square_lut import SquareTermCache

        c = rng.integers(0, 255, size=(16, 8), dtype=np.uint8)
        cache = SquareTermCache()
        first = cache.terms(c)
        np.testing.assert_array_equal(
            first, np.einsum("ij,ij->i", c.astype(np.int64),
                             c.astype(np.int64))[None, :]
        )
        assert cache.terms(c) is first  # no recompute on hit

    def test_new_centroid_table_invalidates(self, rng):
        from repro.core.square_lut import SquareTermCache

        cache = SquareTermCache()
        a = rng.integers(0, 255, size=(16, 8), dtype=np.uint8)
        b = rng.integers(0, 255, size=(16, 8), dtype=np.uint8)
        row_a = cache.terms(a)
        row_b = cache.terms(b)
        assert row_b is not row_a
        np.testing.assert_array_equal(
            row_b, np.einsum("ij,ij->i", b.astype(np.int64),
                             b.astype(np.int64))[None, :]
        )

    def test_explicit_invalidate_recomputes(self, rng):
        from repro.core.square_lut import SquareTermCache

        c = rng.integers(0, 255, size=(8, 4), dtype=np.uint8)
        cache = SquareTermCache()
        first = cache.terms(c)
        cache.invalidate()
        second = cache.terms(c)
        assert second is not first
        np.testing.assert_array_equal(first, second)

    def test_quantized_locate_uses_cache_bit_exactly(self, rng):
        """locate() with the cache equals a fresh engine's locate()."""
        from repro.testing import build_canonical_engine, canonical_dataset

        ds = canonical_dataset()
        engine = build_canonical_engine("split-replicated")
        q = ds.queries[:16]
        first = engine.quantized.locate(q, nprobe=4)
        again = engine.quantized.locate(q, nprobe=4)  # cache hit path
        np.testing.assert_array_equal(first, again)
        engine.quantized.invalidate_caches()
        after = engine.quantized.locate(q, nprobe=4)
        np.testing.assert_array_equal(first, after)
