import numpy as np
import pytest

from repro.ann import kmeans_fit
from repro.ann.kmeans import minibatch_kmeans_fit
from repro.ann.distance import l2_sq


def _blobs(rng, k=4, per=50, d=8, sep=20.0):
    centers = rng.normal(size=(k, d)) * sep
    pts = np.concatenate(
        [centers[i] + rng.normal(size=(per, d)) for i in range(k)]
    )
    return pts, centers


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        pts, centers = _blobs(rng)
        km = kmeans_fit(pts, 4, seed=0)
        # Every true center must have a fitted centroid nearby.
        d = l2_sq(centers, km.centroids.astype(np.float64))
        assert (d.min(axis=1) < 5.0).all()

    def test_assign_consistent_with_centroids(self, rng):
        pts, _ = _blobs(rng)
        km = kmeans_fit(pts, 4, seed=0)
        assign = km.assign(pts)
        d = l2_sq(pts, km.centroids.astype(np.float64))
        np.testing.assert_array_equal(assign, d.argmin(axis=1))

    def test_inertia_decreases_with_k(self, rng):
        pts, _ = _blobs(rng)
        i2 = kmeans_fit(pts, 2, seed=0).inertia
        i8 = kmeans_fit(pts, 8, seed=0).inertia
        assert i8 < i2

    def test_deterministic_with_seed(self, rng):
        pts, _ = _blobs(rng)
        a = kmeans_fit(pts, 4, seed=7).centroids
        b = kmeans_fit(pts, 4, seed=7).centroids
        np.testing.assert_array_equal(a, b)

    def test_k_equals_n(self, rng):
        pts = rng.normal(size=(5, 3))
        km = kmeans_fit(pts, 5, seed=0)
        assert km.k == 5
        assert km.inertia < 1e-9

    def test_k_bounds(self, rng):
        pts = rng.normal(size=(5, 3))
        with pytest.raises(ValueError):
            kmeans_fit(pts, 0)
        with pytest.raises(ValueError):
            kmeans_fit(pts, 6)

    def test_sampled_training(self, rng):
        pts, centers = _blobs(rng, per=200)
        km = kmeans_fit(pts, 4, sample_size=200, seed=0)
        d = l2_sq(centers, km.centroids.astype(np.float64))
        assert (d.min(axis=1) < 10.0).all()

    def test_duplicate_points_no_crash(self):
        pts = np.ones((20, 4))
        km = kmeans_fit(pts, 3, seed=0)
        assert km.k == 3

    def test_empty_cluster_repair(self, rng):
        # Heavily imbalanced data tends to produce empty clusters.
        pts = np.concatenate([np.zeros((50, 2)), np.ones((1, 2)) * 100])
        km = kmeans_fit(pts, 4, seed=0)
        assert km.centroids.shape == (4, 2)
        assert np.isfinite(km.centroids).all()


class TestMiniBatchKMeans:
    def test_recovers_separated_blobs(self, rng):
        pts, centers = _blobs(rng, per=400)
        km = minibatch_kmeans_fit(pts, 4, batch_size=256, seed=0)
        d = l2_sq(centers, km.centroids.astype(np.float64))
        assert (d.min(axis=1) < 10.0).all()

    def test_quality_close_to_full_lloyd(self, rng):
        pts, _ = _blobs(rng, k=8, per=300, sep=10.0)
        full = kmeans_fit(pts, 8, seed=0)
        mb = minibatch_kmeans_fit(pts, 8, batch_size=512, max_iter=80, seed=0)
        # Mini-batch is allowed to be somewhat worse, not catastrophically.
        assert mb.inertia < full.inertia * 2.0

    def test_deterministic(self, rng):
        pts, _ = _blobs(rng)
        a = minibatch_kmeans_fit(pts, 4, seed=5).centroids
        b = minibatch_kmeans_fit(pts, 4, seed=5).centroids
        np.testing.assert_array_equal(a, b)

    def test_assign_works(self, rng):
        pts, _ = _blobs(rng)
        km = minibatch_kmeans_fit(pts, 4, seed=0)
        assert km.assign(pts).shape == (len(pts),)

    def test_validation(self, rng):
        pts = rng.normal(size=(10, 2))
        with pytest.raises(ValueError):
            minibatch_kmeans_fit(pts, 0)
        with pytest.raises(ValueError):
            minibatch_kmeans_fit(pts, 2, batch_size=0)
