import pytest

from repro.ann import recall_at_k
from repro.baselines import CpuIvfPqBaseline, GpuModel
from repro.baselines.roofline import RooflinePoint, roofline_time
from repro.core.params import DatasetShape, IndexParams


class TestRoofline:
    def test_time_is_max(self):
        assert roofline_time(100, 10, 10, 1) == pytest.approx(10.0)
        assert roofline_time(10, 100, 10, 1) == pytest.approx(100.0)

    def test_point_regimes(self):
        mem = RooflinePoint("m", work_ops=1, bytes_moved=100, peak_ops_per_s=1e9, peak_bytes_per_s=1e9)
        comp = RooflinePoint("c", work_ops=100, bytes_moved=1, peak_ops_per_s=1e9, peak_bytes_per_s=1e9)
        assert mem.memory_bound and not comp.memory_bound

    def test_attained_below_peak(self):
        p = RooflinePoint("x", work_ops=10, bytes_moved=100, peak_ops_per_s=1e9, peak_bytes_per_s=1e9)
        assert p.attained_ops_per_s <= p.peak_ops_per_s

    def test_validation(self):
        with pytest.raises(ValueError):
            roofline_time(1, 1, 0, 1)
        with pytest.raises(ValueError):
            RooflinePoint("x", work_ops=-1, bytes_moved=0, peak_ops_per_s=1, peak_bytes_per_s=1)


class TestCpuBaseline:
    @pytest.fixture(scope="class")
    def baseline(self, small_ds, small_params):
        return CpuIvfPqBaseline.build(small_ds.base, small_params, seed=0)

    def test_functional_recall(self, baseline, small_ds, small_params):
        res = baseline.search(small_ds.queries, small_params)
        assert recall_at_k(res.ids, small_ds.ground_truth, 10) > 0.4

    def test_modeled_timing_positive(self, baseline, small_params):
        rep = baseline.model_timing(100, small_params)
        assert rep.seconds > 0
        assert rep.throughput_qps > 0
        assert set(rep.phases) == {"CL", "RC", "LC", "DC", "TS"}

    def test_timing_scales_with_queries(self, baseline, small_params):
        t1 = baseline.model_timing(100, small_params).seconds
        t2 = baseline.model_timing(200, small_params).seconds
        assert t2 > t1

    def test_search_with_timing(self, baseline, small_ds, small_params):
        res, rep = baseline.search_with_timing(small_ds.queries[:10], small_params)
        assert res.ids.shape == (10, 10)
        assert rep.num_queries == 10


class TestGpuModel:
    def test_fits_small_index(self):
        shape = DatasetShape(num_points=1_000_000, dim=128, num_queries=100)
        p = IndexParams(nlist=1024, nprobe=8, k=10, num_subspaces=16)
        assert GpuModel().fits(shape, p)

    def test_capacity_wall(self):
        """The paper's motivation: billion-scale exceeds GPU memory."""
        shape = DatasetShape(num_points=2_000_000_000, dim=128, num_queries=100)
        p = IndexParams(nlist=2**16, nprobe=8, k=10, num_subspaces=16)
        gpu = GpuModel()
        assert not gpu.fits(shape, p)
        with pytest.raises(MemoryError, match="capacity"):
            gpu.model_timing(shape, p)

    def test_timing(self):
        shape = DatasetShape(num_points=10_000_000, dim=128, num_queries=1000)
        p = IndexParams(nlist=4096, nprobe=16, k=10, num_subspaces=16)
        rep = GpuModel().model_timing(shape, p)
        assert rep.seconds > 0

    def test_gpu_faster_than_cpu_model(self):
        """Paper §V-D: the 4090 outruns both CPU and DRIM-ANN."""
        from repro.core.perf_model import AnalyticPerfModel, HardwareProfile

        shape = DatasetShape(num_points=10_000_000, dim=128, num_queries=1000)
        p = IndexParams(nlist=4096, nprobe=16, k=10, num_subspaces=16)
        t_gpu = GpuModel().model_timing(shape, p).seconds
        t_cpu = AnalyticPerfModel(shape, HardwareProfile.for_cpu()).total_seconds(p)
        assert t_gpu < t_cpu
