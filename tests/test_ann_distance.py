import numpy as np
import pytest

from repro.ann.distance import (
    adc_lookup_distances,
    batched_adc_lookup,
    l2_sq,
    l2_sq_blocked,
)


class TestL2Sq:
    def test_matches_naive(self, rng):
        q = rng.normal(size=(5, 7))
        x = rng.normal(size=(11, 7))
        naive = ((q[:, None, :] - x[None]) ** 2).sum(-1)
        np.testing.assert_allclose(l2_sq(q, x), naive, rtol=1e-10)

    def test_zero_distance_to_self(self, rng):
        x = rng.integers(0, 255, size=(6, 9)).astype(np.uint8)
        d = l2_sq(x, x)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-9)

    def test_nonnegative(self, rng):
        q = rng.normal(size=(20, 3)) * 1e-8  # stress cancellation
        assert (l2_sq(q, q) >= 0).all()

    def test_uint8_exact(self, rng):
        q = rng.integers(0, 255, size=(4, 16)).astype(np.uint8)
        x = rng.integers(0, 255, size=(9, 16)).astype(np.uint8)
        naive = ((q[:, None].astype(np.int64) - x[None].astype(np.int64)) ** 2).sum(-1)
        np.testing.assert_array_equal(l2_sq(q, x).astype(np.int64), naive)

    def test_dim_mismatch(self, rng):
        with pytest.raises(ValueError):
            l2_sq(rng.normal(size=(2, 3)), rng.normal(size=(2, 4)))


class TestBlocked:
    def test_equals_unblocked(self, rng):
        q = rng.normal(size=(4, 5))
        x = rng.normal(size=(333, 5))
        np.testing.assert_allclose(
            l2_sq_blocked(q, x, block=50), l2_sq(q, x), rtol=1e-10
        )

    def test_single_block_path(self, rng):
        q = rng.normal(size=(4, 5))
        x = rng.normal(size=(10, 5))
        np.testing.assert_allclose(l2_sq_blocked(q, x, block=100), l2_sq(q, x))


class TestAdcLookup:
    def test_matches_manual_sum(self, rng):
        m, cb, n = 4, 8, 12
        lut = rng.normal(size=(m, cb))
        codes = rng.integers(0, cb, size=(n, m))
        got = adc_lookup_distances(lut, codes)
        want = np.array(
            [sum(lut[j, codes[i, j]] for j in range(m)) for i in range(n)]
        )
        np.testing.assert_allclose(got, want)

    def test_integer_lut_exact(self, rng):
        lut = rng.integers(0, 1000, size=(3, 4)).astype(np.int64)
        codes = rng.integers(0, 4, size=(5, 3))
        got = adc_lookup_distances(lut, codes)
        want = lut[0, codes[:, 0]] + lut[1, codes[:, 1]] + lut[2, codes[:, 2]]
        np.testing.assert_array_equal(got.astype(np.int64), want)

    def test_code_width_mismatch(self, rng):
        with pytest.raises(ValueError, match="sub-codes"):
            adc_lookup_distances(rng.normal(size=(4, 8)), rng.integers(0, 8, (5, 3)))

    def test_batched_matches_single(self, rng):
        q, m, cb, n = 3, 4, 16, 20
        luts = rng.normal(size=(q, m, cb))
        codes = rng.integers(0, cb, size=(n, m))
        got = batched_adc_lookup(luts, codes)
        for qi in range(q):
            np.testing.assert_allclose(
                got[qi], adc_lookup_distances(luts[qi], codes)
            )

    def test_batched_shape_checks(self, rng):
        with pytest.raises(ValueError, match="3-D"):
            batched_adc_lookup(rng.normal(size=(4, 8)), rng.integers(0, 8, (5, 4)))
