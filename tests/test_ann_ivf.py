import numpy as np
import pytest

from repro.ann import IVFIndex
from repro.ann.distance import l2_sq


@pytest.fixture(scope="module")
def built(small_ds):
    return IVFIndex.build(small_ds.base, nlist=32, seed=0)


class TestBuild:
    def test_all_points_assigned_once(self, built, small_ds):
        all_ids = np.concatenate(built.lists)
        assert len(all_ids) == small_ds.num_base
        assert len(np.unique(all_ids)) == small_ds.num_base

    def test_points_in_nearest_list(self, built, small_ds):
        d = l2_sq(
            small_ds.base[:200].astype(np.float64),
            built.centroids.astype(np.float64),
        )
        nearest = d.argmin(axis=1)
        member_of = np.empty(small_ds.num_base, dtype=np.int64)
        for cid, ids in enumerate(built.lists):
            member_of[ids] = cid
        np.testing.assert_array_equal(member_of[:200], nearest)

    def test_shapes(self, built, small_ds):
        assert built.nlist == 32
        assert built.dim == small_ds.dim
        assert built.num_points == small_ds.num_base

    def test_list_count_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="lists"):
            IVFIndex(centroids=rng.normal(size=(4, 8)), lists=[np.array([0])])


class TestLocate:
    def test_probes_sorted_by_distance(self, built, small_ds):
        q = small_ds.queries[:10].astype(np.float64)
        probes = built.locate(q, 5)
        d = l2_sq(q, built.centroids.astype(np.float64))
        pd = np.take_along_axis(d, probes, axis=1)
        assert (np.diff(pd, axis=1) >= 0).all()

    def test_first_probe_is_nearest(self, built, small_ds):
        q = small_ds.queries[:10].astype(np.float64)
        probes = built.locate(q, 3)
        d = l2_sq(q, built.centroids.astype(np.float64))
        np.testing.assert_array_equal(probes[:, 0], d.argmin(axis=1))

    def test_nprobe_bounds(self, built, small_ds):
        with pytest.raises(ValueError):
            built.locate(small_ds.queries[:1], 0)
        with pytest.raises(ValueError):
            built.locate(small_ds.queries[:1], 33)


class TestImbalance:
    def test_imbalance_at_least_one(self, built):
        assert built.imbalance_factor() >= 1.0

    def test_even_lists_give_one(self):
        idx = IVFIndex(
            centroids=np.zeros((4, 2), dtype=np.float32),
            lists=[np.arange(5)] * 4,
        )
        assert idx.imbalance_factor() == pytest.approx(1.0)

    def test_skewed_lists_exceed_one(self):
        idx = IVFIndex(
            centroids=np.zeros((2, 2), dtype=np.float32),
            lists=[np.arange(100), np.arange(2)],
        )
        assert idx.imbalance_factor() > 1.5
