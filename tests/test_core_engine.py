import numpy as np
import pytest

from repro.ann import recall_at_k
from repro.core import (
    DrimAnnEngine,
    IndexParams,
    LayoutConfig,
    SearchParams,
)
from repro.pim.config import PimSystemConfig


def _assert_same_results(res, ref):
    """Results must match up to ties at the k-th distance."""
    np.testing.assert_allclose(
        np.sort(res.distances, axis=1), np.sort(ref.distances, axis=1)
    )


class TestBuild:
    def test_report_fields(self, small_engine):
        rep = small_engine.report
        assert rep.num_shards >= small_engine.quantized.nlist
        assert rep.layout_heat_per_dpu.shape == (16,)
        assert rep.offline_transfer_seconds > 0

    def test_wram_overflow_rejected(self, small_ds):
        params = IndexParams(
            nlist=16, nprobe=2, k=10, num_subspaces=64, codebook_size=512
        )
        with pytest.raises(ValueError, match="WRAM"):
            DrimAnnEngine.build(small_ds.base[:2000], params, seed=0)

    def test_nlist_mismatch_rejected(self, small_ds, small_quantized):
        params = IndexParams(nlist=32, nprobe=4, k=10, num_subspaces=16, codebook_size=64)
        with pytest.raises(ValueError, match="nlist"):
            DrimAnnEngine.build(
                small_ds.base, params, prebuilt_quantized=small_quantized, seed=0
            )


class TestSearchCorrectness:
    def test_matches_reference(self, small_engine, small_ds):
        res, _ = small_engine.search(small_ds.queries)
        ref = small_engine.reference_search(small_ds.queries)
        _assert_same_results(res, ref)

    def test_static_policy_matches_reference(self, small_engine, small_ds):
        res, _ = small_engine.search(small_ds.queries, with_scheduler=False)
        ref = small_engine.reference_search(small_ds.queries)
        _assert_same_results(res, ref)

    def test_layout_invariance(self, small_ds, small_quantized, small_params):
        """Same results for radically different layouts."""
        ref = None
        for cfg in (
            LayoutConfig(min_split_size=None, max_copies=0),
            LayoutConfig(min_split_size=150, max_copies=2),
            LayoutConfig(min_split_size=None, max_copies=0, allocation="id_order"),
        ):
            eng = DrimAnnEngine.build(
                small_ds.base,
                small_params,
                system_config=PimSystemConfig(num_dpus=8),
                layout_config=cfg,
                prebuilt_quantized=small_quantized,
                seed=0,
            )
            res, _ = eng.search(small_ds.queries[:60])
            if ref is None:
                ref = res
            else:
                _assert_same_results(res, ref)

    def test_batch_size_invariance(self, small_ds, small_quantized, small_params):
        engines = []
        for bs in (16, 64):
            engines.append(
                DrimAnnEngine.build(
                    small_ds.base,
                    small_params,
                    search_params=SearchParams(batch_size=bs),
                    system_config=PimSystemConfig(num_dpus=8),
                    prebuilt_quantized=small_quantized,
                    seed=0,
                )
            )
        r1, _ = engines[0].search(small_ds.queries[:50])
        r2, _ = engines[1].search(small_ds.queries[:50])
        _assert_same_results(r1, r2)

    def test_recall_meets_floor(self, small_engine, small_ds):
        res, _ = small_engine.search(small_ds.queries)
        rec = recall_at_k(res.ids, small_ds.ground_truth, 10)
        assert rec > 0.5

    def test_query_dim_checked(self, small_engine):
        with pytest.raises(ValueError, match="dim"):
            small_engine.search(np.zeros((2, 3), dtype=np.uint8))


class TestTiming:
    def test_breakdown_structure(self, small_engine, small_ds):
        _, bd = small_engine.search(small_ds.queries)
        assert bd.num_queries == small_ds.num_queries
        assert bd.pim_seconds > 0
        assert bd.e2e_seconds >= bd.pim_seconds * 0.99
        shares = bd.kernel_shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        assert set(shares) >= {"LC", "DC"}

    def test_scheduler_improves_balance(self, small_engine, small_ds):
        _, with_sched = small_engine.search(small_ds.queries)
        _, without = small_engine.search(small_ds.queries, with_scheduler=False)
        assert with_sched.mean_busy_fraction >= without.mean_busy_fraction

    def test_multiplier_less_faster(
        self, small_ds, small_quantized, small_params
    ):
        times = {}
        for ml in (True, False):
            eng = DrimAnnEngine.build(
                small_ds.base,
                small_params,
                search_params=SearchParams(multiplier_less=ml),
                system_config=PimSystemConfig(num_dpus=8),
                prebuilt_quantized=small_quantized,
                seed=0,
            )
            _, bd = eng.search(small_ds.queries[:60])
            times[ml] = bd.pim_seconds
        assert times[True] < times[False]

    def test_compute_scale_speeds_up(
        self, small_ds, small_quantized, small_params
    ):
        times = {}
        for scale in (1.0, 5.0):
            eng = DrimAnnEngine.build(
                small_ds.base,
                small_params,
                system_config=PimSystemConfig(num_dpus=8).with_compute_scale(scale),
                prebuilt_quantized=small_quantized,
                seed=0,
            )
            _, bd = eng.search(small_ds.queries[:60])
            times[scale] = bd.pim_seconds
        assert times[5.0] < times[1.0]
