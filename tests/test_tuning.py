import numpy as np
import pytest

from repro.tuning import (
    ConstrainedBayesOpt,
    DiscreteSpace,
    GaussianProcess,
    rbf_kernel,
)
from repro.tuning.gp import median_heuristic


class TestRbfKernel:
    def test_unit_diagonal(self, rng):
        x = rng.normal(size=(5, 3))
        k = rbf_kernel(x, x, lengthscale=1.0)
        np.testing.assert_allclose(np.diag(k), 1.0)

    def test_symmetry(self, rng):
        x = rng.normal(size=(5, 3))
        k = rbf_kernel(x, x, lengthscale=0.7)
        np.testing.assert_allclose(k, k.T)

    def test_decay_with_distance(self):
        a = np.array([[0.0]])
        b = np.array([[0.1], [3.0]])
        k = rbf_kernel(a, b, lengthscale=1.0)
        assert k[0, 0] > k[0, 1]

    def test_invalid_lengthscale(self):
        with pytest.raises(ValueError):
            rbf_kernel(np.zeros((1, 1)), np.zeros((1, 1)), lengthscale=0)


class TestGaussianProcess:
    def test_interpolates_training_points(self, rng):
        x = rng.uniform(size=(10, 2))
        y = np.sin(x[:, 0] * 3) + x[:, 1]
        gp = GaussianProcess(noise=1e-8).fit(x, y)
        mean, std = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-3)
        assert (std < 0.1).all()

    def test_uncertainty_grows_away_from_data(self, rng):
        x = np.zeros((3, 1))
        y = np.array([1.0, 1.1, 0.9])
        gp = GaussianProcess(lengthscale=0.3).fit(x, y)
        _, near = gp.predict(np.array([[0.01]]))
        _, far = gp.predict(np.array([[5.0]]))
        assert far[0] > near[0]

    def test_prior_prediction(self):
        gp = GaussianProcess()
        mean, std = gp.predict(np.zeros((2, 3)))
        np.testing.assert_allclose(mean, 0.0)
        assert (std > 0).all()

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            GaussianProcess().fit(rng.normal(size=(4, 2)), np.zeros(3))

    def test_median_heuristic_degenerate(self):
        assert median_heuristic(np.zeros((1, 2))) == 1.0
        assert median_heuristic(np.zeros((5, 2))) == 1.0


class TestDiscreteSpace:
    def test_points_enumeration(self):
        s = DiscreteSpace.from_dict({"a": [1, 2], "b": [10, 20, 30]})
        assert s.size == 6
        assert len(s.points()) == 6

    def test_encode_unit_cube(self):
        s = DiscreteSpace.from_dict({"a": [1, 2, 4]})
        np.testing.assert_allclose(s.encode({"a": 1}), [0.0])
        np.testing.assert_allclose(s.encode({"a": 2}), [0.5])
        np.testing.assert_allclose(s.encode({"a": 4}), [1.0])

    def test_encode_unknown_value(self):
        s = DiscreteSpace.from_dict({"a": [1, 2]})
        with pytest.raises(ValueError):
            s.encode({"a": 3})

    def test_missing_dim(self):
        s = DiscreteSpace.from_dict({"a": [1], "b": [2]})
        with pytest.raises(KeyError):
            s.encode({"a": 1})

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            DiscreteSpace.from_dict({"a": [1, 1]})

    def test_empty_dim_rejected(self):
        with pytest.raises(ValueError):
            DiscreteSpace.from_dict({"a": []})


class TestConstrainedBayesOpt:
    def _make(self, threshold=0.8, greedy=2):
        space = DiscreteSpace.from_dict(
            {"x": list(range(10)), "y": list(range(5))}
        )
        # objective: cheaper at small x; accuracy: grows with x + y.
        calls = []

        def oracle(p):
            calls.append(p)
            return (p["x"] / 9 + p["y"] / 4) / 2 + 0.3

        bo = ConstrainedBayesOpt(
            space=space,
            objective_fn=lambda p: p["x"] + 0.1 * p["y"],
            accuracy_oracle=oracle,
            accuracy_threshold=threshold,
            greedy_budget=greedy,
        )
        return bo, calls

    def test_finds_feasible_optimum_region(self):
        bo, _ = self._make()
        best = bo.run(30)
        assert best is not None
        assert best.accuracy >= 0.8
        # true cheapest feasible: accuracy >= 0.8 -> x/9 + y/4 >= 1.0
        # objective favors small x, so optimum has y = 4.
        assert best.point["y"] == 4

    def test_respects_oracle_budget(self):
        bo, calls = self._make()
        bo.run(5)
        assert len(calls) <= 5

    def test_no_feasible_returns_none(self):
        space = DiscreteSpace.from_dict({"x": [0, 1]})
        bo = ConstrainedBayesOpt(
            space=space,
            objective_fn=lambda p: p["x"],
            accuracy_oracle=lambda p: 0.1,
            accuracy_threshold=0.9,
            greedy_budget=1,
        )
        assert bo.run(4) is None

    def test_exhausts_small_space(self):
        space = DiscreteSpace.from_dict({"x": [0, 1, 2]})
        bo = ConstrainedBayesOpt(
            space=space,
            objective_fn=lambda p: -p["x"],
            accuracy_oracle=lambda p: 1.0,
            accuracy_threshold=0.5,
            greedy_budget=1,
        )
        best = bo.run(10)
        assert len(bo.observations) == 3
        assert best.point["x"] == 2

    def test_invalid_iterations(self):
        bo, _ = self._make()
        with pytest.raises(ValueError):
            bo.run(0)

    def test_more_sample_efficient_than_random(self, rng):
        """BO should need no more oracle calls than random search to
        find a feasible point of comparable quality (statistical, fixed
        seed)."""
        bo, _ = self._make(greedy=3)
        best_bo = bo.run(12)
        # random search with the same budget
        space_pts = bo.space.points()
        picks = rng.choice(len(space_pts), size=12, replace=False)
        feas = [
            space_pts[i]
            for i in picks
            if (space_pts[i]["x"] / 9 + space_pts[i]["y"] / 4) / 2 + 0.3 >= 0.8
        ]
        best_rand = min(
            (p["x"] + 0.1 * p["y"] for p in feas), default=float("inf")
        )
        assert best_bo.objective <= best_rand + 2.0
