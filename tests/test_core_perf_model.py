import math

import pytest

from repro.core.params import DatasetShape, IndexParams
from repro.core.perf_model import PHASES, AnalyticPerfModel, HardwareProfile
from repro.pim.config import PimSystemConfig, paper_system_config


@pytest.fixture(scope="module")
def shape():
    return DatasetShape(num_points=1_000_000, dim=128, num_queries=1000)


@pytest.fixture(scope="module")
def params():
    return IndexParams(nlist=1024, nprobe=16, k=10, num_subspaces=16, codebook_size=256)


@pytest.fixture(scope="module")
def pim_profile():
    return HardwareProfile.for_pim(PimSystemConfig(num_dpus=256))


@pytest.fixture(scope="module")
def cpu_profile():
    return HardwareProfile.for_cpu()


class TestPhaseEstimates:
    def test_all_phases_present(self, shape, params, pim_profile):
        est = AnalyticPerfModel(shape, pim_profile).estimate(params)
        assert set(est) == set(PHASES)
        assert all(e.seconds > 0 for e in est.values())

    def test_time_is_max_of_compute_io(self, shape, params, pim_profile):
        est = AnalyticPerfModel(shape, pim_profile).estimate(params)
        for e in est.values():
            assert e.seconds == pytest.approx(max(e.compute_seconds, e.io_seconds))

    def test_unknown_phase_rejected(self, shape, params, pim_profile):
        with pytest.raises(ValueError, match="unknown phase"):
            AnalyticPerfModel(shape, pim_profile).phase(params, "XX")

    def test_c2io_positive(self, shape, params, pim_profile):
        est = AnalyticPerfModel(shape, pim_profile).estimate(params)
        assert all(e.c2io > 0 for e in est.values())

    def test_io_mode_validation(self, shape, pim_profile):
        with pytest.raises(ValueError):
            AnalyticPerfModel(shape, pim_profile, io_mode="bogus")


class TestScalingLaws:
    def test_dc_scales_linearly_with_nprobe(self, shape, pim_profile):
        m = AnalyticPerfModel(shape, pim_profile)
        p1 = IndexParams(nlist=1024, nprobe=8, k=10, num_subspaces=16)
        p2 = p1.replace(nprobe=16)
        t1 = m.phase(p1, "DC").issue_slots
        t2 = m.phase(p2, "DC").issue_slots
        assert t2 == pytest.approx(2 * t1)

    def test_dc_shrinks_with_nlist(self, shape, pim_profile):
        m = AnalyticPerfModel(shape, pim_profile)
        p1 = IndexParams(nlist=512, nprobe=8, k=10, num_subspaces=16)
        p2 = IndexParams(nlist=2048, nprobe=8, k=10, num_subspaces=16)
        assert m.phase(p2, "DC").issue_slots < m.phase(p1, "DC").issue_slots

    def test_lc_independent_of_nlist(self, shape, pim_profile):
        m = AnalyticPerfModel(shape, pim_profile)
        p1 = IndexParams(nlist=512, nprobe=8, k=10, num_subspaces=16)
        p2 = IndexParams(nlist=2048, nprobe=8, k=10, num_subspaces=16)
        assert m.phase(p1, "LC").issue_slots == pytest.approx(
            m.phase(p2, "LC").issue_slots
        )

    def test_lc_scales_with_codebook(self, shape, pim_profile):
        m = AnalyticPerfModel(shape, pim_profile)
        p1 = IndexParams(nlist=1024, nprobe=8, k=10, num_subspaces=16, codebook_size=128)
        p2 = p1.replace(codebook_size=256)
        assert m.phase(p2, "LC").issue_slots == pytest.approx(
            2 * m.phase(p1, "LC").issue_slots
        )

    def test_ts_only_depends_on_k_via_log(self, shape, pim_profile):
        m = AnalyticPerfModel(shape, pim_profile)
        p1 = IndexParams(nlist=1024, nprobe=8, k=4, num_subspaces=16)
        p2 = p1.replace(k=16)
        r = m.phase(p2, "TS").issue_slots / m.phase(p1, "TS").issue_slots
        assert r == pytest.approx((math.log2(16) - 1) / (math.log2(4) - 1))


class TestMultiplierLess:
    def test_lc_faster_on_pim(self, shape, params, pim_profile):
        with_mul = AnalyticPerfModel(shape, pim_profile, multiplier_less=False)
        without = AnalyticPerfModel(shape, pim_profile, multiplier_less=True)
        assert without.phase(params, "LC").seconds < with_mul.phase(params, "LC").seconds

    def test_no_mul_instructions_when_converted(self, shape, params, pim_profile):
        m = AnalyticPerfModel(shape, pim_profile, multiplier_less=True)
        assert m.phase(params, "LC").ops.mul == 0

    def test_conversion_neutral_on_cpu(self, shape, params, cpu_profile):
        """On a uniform-cost ISA the conversion gains nothing."""
        with_mul = AnalyticPerfModel(shape, cpu_profile, multiplier_less=False)
        without = AnalyticPerfModel(shape, cpu_profile, multiplier_less=True)
        assert (
            without.phase(params, "LC").compute_seconds
            >= with_mul.phase(params, "LC").compute_seconds * 0.99
        )


class TestAggregates:
    def test_total_is_sum(self, shape, params, pim_profile):
        m = AnalyticPerfModel(shape, pim_profile)
        est = m.estimate(params)
        assert m.total_seconds(params) == pytest.approx(
            sum(e.seconds for e in est.values())
        )

    def test_split_overlaps_host(self, shape, params, pim_profile):
        m = AnalyticPerfModel(shape, pim_profile)
        split = m.split_seconds(params, host_phases=("CL",))
        pim_only = sum(
            m.phase(params, ph).seconds for ph in PHASES if ph != "CL"
        )
        assert split >= pim_only

    def test_throughput(self, shape, params, pim_profile):
        m = AnalyticPerfModel(shape, pim_profile)
        qps = m.throughput_qps(params)
        assert qps == pytest.approx(shape.num_queries / m.split_seconds(params))

    def test_paper_mode_more_pessimistic(self, shape, params, pim_profile):
        split = AnalyticPerfModel(shape, pim_profile, io_mode="split")
        paper = AnalyticPerfModel(shape, pim_profile, io_mode="paper")
        assert paper.total_seconds(params) >= split.total_seconds(params)


class TestPaperScaleSanity:
    """Coarse checks that the model reproduces the paper's regimes."""

    def test_cpu_is_memory_bound_at_balanced_configs(self):
        """Paper Fig. 2: Faiss-CPU balanced settings are memory-bound."""
        shape = DatasetShape(num_points=100_000_000, dim=128, num_queries=10_000)
        m = AnalyticPerfModel(shape, HardwareProfile.for_cpu())
        p = IndexParams(nlist=2**14, nprobe=96, k=10, num_subspaces=16)
        dc = m.phase(p, "DC")
        assert not dc.compute_bound

    def test_pim_speedup_in_paper_range(self):
        """Ideal-model speedup at the paper's scale lands in single digits."""
        shape = DatasetShape(num_points=100_000_000, dim=128, num_queries=10_000)
        pim = HardwareProfile.for_pim(paper_system_config())
        cpu = HardwareProfile.for_cpu()
        p = IndexParams(nlist=2**14, nprobe=96, k=10, num_subspaces=16)
        tp = AnalyticPerfModel(shape, pim, multiplier_less=True).split_seconds(p)
        tc = AnalyticPerfModel(shape, cpu).total_seconds(p)
        assert 1.5 < tc / tp < 20

    def test_compute_scaling_helps(self):
        """Fig. 13: scaling DPU compute increases the ideal speedup."""
        shape = DatasetShape(num_points=100_000_000, dim=128, num_queries=10_000)
        p = IndexParams(nlist=2**14, nprobe=96, k=10, num_subspaces=16)
        t1 = AnalyticPerfModel(
            shape,
            HardwareProfile.for_pim(paper_system_config()),
            multiplier_less=True,
        ).split_seconds(p)
        t5 = AnalyticPerfModel(
            shape,
            HardwareProfile.for_pim(paper_system_config().with_compute_scale(5)),
            multiplier_less=True,
        ).split_seconds(p)
        assert t5 < t1
