#!/usr/bin/env python
"""Regenerate the frozen golden regression fixtures.

Reruns every canonical configuration (``repro.testing.goldens``) and
rewrites ``tests/fixtures/golden_cycles.json`` with the observed
recall@10 (vs the exact brute-force oracle) and per-kernel /
end-to-end cycle counts, plus ``tests/fixtures/golden_adaptive.json``
with the same records for the frozen adaptive-probing cells
(``adaptive="bound"`` / ``"budget"`` per config).
``tests/test_golden_cycles.py`` and ``tests/test_diff_exact.py`` then
fail on *any* drift from the stored values.

Regenerating goldens is a deliberate act, not a fix for a red test:
it is legitimate only when a change is *supposed* to alter the frozen
numbers — a cost-model correction, a new kernel term, an intentional
recall-affecting change — and the new values have been reviewed. See
docs/testing.md ("Golden regeneration"). Run with ``--check`` to
verify the stored files match a fresh run without writing anything
(exit 1 on drift).

Usage::

    PYTHONPATH=src python tools/update_goldens.py [--check]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN_PATH = os.path.join(
    REPO_ROOT, "tests", "fixtures", "golden_cycles.json"
)
GOLDEN_ADAPTIVE_PATH = os.path.join(
    REPO_ROOT, "tests", "fixtures", "golden_adaptive.json"
)


def _check_one(path: str, fresh: dict) -> int:
    """Compare one fixture file against a fresh run; 0 iff identical."""
    if not os.path.exists(path):
        print(f"no goldens at {path}; run without --check first")
        return 1
    with open(path) as f:
        stored = json.load(f)
    if stored == json.loads(json.dumps(fresh)):
        print(f"{os.path.basename(path)} up to date ({len(fresh)} configs)")
        return 0
    for name in sorted(set(stored) | set(fresh)):
        if stored.get(name) != json.loads(json.dumps(fresh.get(name))):
            print(f"drift in {name!r} ({os.path.basename(path)}):")
            print(f"  stored: {stored.get(name)}")
            print(f"  fresh:  {fresh.get(name)}")
    return 1


def _write_one(path: str, fresh: dict) -> None:
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as f:
        json.dump(fresh, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {path}")


def main(argv=None) -> int:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.testing import run_all_adaptive, run_all_canonical

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare a fresh run against the stored goldens; write "
        "nothing, exit 1 on drift",
    )
    args = parser.parse_args(argv)

    fresh = run_all_canonical()
    fresh_adaptive = run_all_adaptive()
    if args.check:
        rc = _check_one(GOLDEN_PATH, fresh)
        rc |= _check_one(GOLDEN_ADAPTIVE_PATH, fresh_adaptive)
        # Every registered kernel backend must reproduce the same
        # goldens byte-equal — the registry changes host wall-clock
        # only, never results or ledgers.
        from repro.pim.backend import available_backends
        from repro.testing import CANONICAL_CONFIGS, run_canonical

        for backend in available_backends():
            per_backend = {
                name: run_canonical(name, kernel_backend=backend)
                for name in CANONICAL_CONFIGS
            }
            if json.loads(json.dumps(per_backend)) != json.loads(
                json.dumps(fresh)
            ):
                print(f"drift under kernel_backend={backend!r}")
                rc |= 1
            else:
                print(f"kernel_backend={backend}: matches the goldens")
        return rc

    for name, g in fresh.items():
        cycles = {k: round(v) for k, v in g["kernel_cycles"].items()}
        print(f"{name}: recall@10={g['recall_at_10']:.4f} cycles={cycles}")
    for name, modes in fresh_adaptive.items():
        for mode, g in modes.items():
            print(
                f"{name}[adaptive={mode}]: recall@10={g['recall_at_10']:.4f} "
                f"total_cycles={g['total_kernel_cycles']:.0f} "
                f"probes={g.get('total_probes_executed')}"
            )
    _write_one(GOLDEN_PATH, fresh)
    _write_one(GOLDEN_ADAPTIVE_PATH, fresh_adaptive)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
