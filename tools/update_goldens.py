#!/usr/bin/env python
"""Regenerate the frozen golden regression fixtures.

Reruns every canonical configuration (``repro.testing.goldens``) and
rewrites ``tests/fixtures/golden_cycles.json`` with the observed
recall@10 (vs the exact brute-force oracle) and per-kernel /
end-to-end cycle counts. ``tests/test_golden_cycles.py`` and
``tests/test_diff_exact.py`` then fail on *any* drift from the stored
values.

Regenerating goldens is a deliberate act, not a fix for a red test:
it is legitimate only when a change is *supposed* to alter the frozen
numbers — a cost-model correction, a new kernel term, an intentional
recall-affecting change — and the new values have been reviewed. See
docs/testing.md ("Golden regeneration"). Run with ``--check`` to
verify the stored file matches a fresh run without writing anything
(exit 1 on drift).

Usage::

    PYTHONPATH=src python tools/update_goldens.py [--check]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN_PATH = os.path.join(
    REPO_ROOT, "tests", "fixtures", "golden_cycles.json"
)


def main(argv=None) -> int:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.testing import run_all_canonical

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare a fresh run against the stored goldens; write "
        "nothing, exit 1 on drift",
    )
    args = parser.parse_args(argv)

    fresh = run_all_canonical()
    if args.check:
        if not os.path.exists(GOLDEN_PATH):
            print(f"no goldens at {GOLDEN_PATH}; run without --check first")
            return 1
        with open(GOLDEN_PATH) as f:
            stored = json.load(f)
        if stored == json.loads(json.dumps(fresh)):
            print(f"goldens up to date ({len(fresh)} configs)")
            return 0
        for name in sorted(set(stored) | set(fresh)):
            if stored.get(name) != json.loads(json.dumps(fresh.get(name))):
                print(f"drift in {name!r}:")
                print(f"  stored: {stored.get(name)}")
                print(f"  fresh:  {fresh.get(name)}")
        return 1

    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w") as f:
        json.dump(fresh, f, indent=2, sort_keys=True)
        f.write("\n")
    for name, g in fresh.items():
        cycles = {k: round(v) for k, v in g["kernel_cycles"].items()}
        print(f"{name}: recall@10={g['recall_at_10']:.4f} cycles={cycles}")
    print(f"wrote {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
