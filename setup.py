"""Setup shim for environments without the `wheel` package.

Lets ``pip install -e . --no-build-isolation --no-use-pep517`` work
offline; all real metadata lives in pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.22", "scipy>=1.8"],
    python_requires=">=3.9",
)
