"""Shared benchmark configuration and scaled workload constants.

The paper's platform is 2,530 DPUs over SIFT100M/DEEP100M with 10,000
queries. The simulator runs laptop-scale workloads with the governing
*ratios* preserved (see DESIGN.md §3):

==================== ================= =================
quantity             paper             this harness
==================== ================= =================
corpus               100M vectors      400k vectors
nlist sweep          2^13 .. 2^16      2^8 .. 2^11
points per cluster   ~1.5k .. 12.2k    ~195 .. 1562
nprobe sweep         32 .. 128         2 .. 16
DPUs                 2,530             64
clusters per DPU     3.2 .. 25.9       4 .. 32
queries per batch    10,000            1,000 (batch 128)
recall constraint    recall@10 >= 0.8  recall@10 >= 0.75 (scaled)
==================== ================= =================

The CPU (and GPU) comparison profiles are scaled to the same silicon
fraction as the 64-DPU system — see :func:`scaled_cpu_profile`.

Trained indexes are cached on disk (.cache/) keyed by dataset/params so
re-running individual figure benches doesn't retrain.
"""

from __future__ import annotations

import os
import pickle
from typing import Dict, Optional

import numpy as np

from repro.ann import IVFPQIndex
from repro.baselines import CpuIvfPqBaseline
from repro.core import DrimAnnEngine, IndexParams, LayoutConfig, SearchParams
from repro.core.config import EngineConfig
from repro.core.quantized import QuantizedIndexData, build_quantized_index
from repro.data import Dataset, load_dataset
from repro.pim.config import PimSystemConfig

# ---- scaled workload constants -------------------------------------------
SIFT_PRESET = "sift-like-400k"
DEEP_PRESET = "deep-like-400k"
NUM_QUERIES = 1000
BATCH_SIZE = 128
NUM_DPUS = 64
K = 10
M_DEFAULT = 32
CB_DEFAULT = 256
NLIST_SWEEP = (256, 512, 1024, 2048)  # ~ paper's 2^13..2^16
NPROBE_SWEEP = (2, 4, 8, 16)  # ~ paper's 32..128
NLIST_DEFAULT = 1024  # ~ paper's 2^14 regime (recall-feasible)
NPROBE_DEFAULT = 8  # ~ paper's 96
# The paper's constraint is recall@10 >= 0.8 on SIFT100M. On the scaled
# synthetic corpus the PQ ceiling at WRAM-feasible (M=32, CB=256) sits
# slightly lower; the harness enforces the same constraint mechanism at
# the scaled level (see EXPERIMENTS.md, "accuracy constraint" note).
RECALL_CONSTRAINT = 0.75
SEED = 0

CACHE_DIR = os.path.join(os.path.dirname(__file__), os.pardir, ".cache")


def params_for(
    nlist: int = NLIST_DEFAULT,
    nprobe: int = NPROBE_DEFAULT,
    m: int = M_DEFAULT,
    cb: int = CB_DEFAULT,
    k: int = K,
) -> IndexParams:
    return IndexParams(
        nlist=nlist, nprobe=nprobe, k=k, num_subspaces=m, codebook_size=cb
    )


def _cache_path(tag: str) -> str:
    os.makedirs(CACHE_DIR, exist_ok=True)
    return os.path.join(CACHE_DIR, f"{tag}.pkl")


def cached(tag: str, builder):
    """Disk-backed memoization of expensive build artifacts."""
    path = _cache_path(tag)
    if os.path.exists(path):
        with open(path, "rb") as f:
            return pickle.load(f)
    obj = builder()
    with open(path, "wb") as f:
        pickle.dump(obj, f)
    return obj


def bench_dataset(preset: str = SIFT_PRESET) -> Dataset:
    return cached(
        f"ds_{preset}_s{SEED}_q{NUM_QUERIES}",
        lambda: load_dataset(
            preset, seed=SEED, num_queries=NUM_QUERIES, ground_truth_k=K
        ),
    )


def bench_index(ds: Dataset, nlist: int, m: int = M_DEFAULT, cb: int = CB_DEFAULT) -> IVFPQIndex:
    return cached(
        f"idx_{ds.name}_n{nlist}_m{m}_cb{cb}_s{SEED}",
        lambda: IVFPQIndex.build(
            ds.base, nlist=nlist, num_subspaces=m, codebook_size=cb, seed=SEED
        ),
    )


def bench_quantized(ds: Dataset, nlist: int, m: int = M_DEFAULT, cb: int = CB_DEFAULT) -> QuantizedIndexData:
    return cached(
        f"quant_{ds.name}_n{nlist}_m{m}_cb{cb}_s{SEED}",
        lambda: build_quantized_index(bench_index(ds, nlist, m, cb)),
    )


def default_layout() -> LayoutConfig:
    return LayoutConfig(min_split_size=400, max_copies=2)


def unbalanced_layout() -> LayoutConfig:
    return LayoutConfig(min_split_size=None, max_copies=0, allocation="id_order")


def build_engine(
    ds: Dataset,
    params: IndexParams,
    *,
    num_dpus: int = NUM_DPUS,
    layout: Optional[LayoutConfig] = None,
    multiplier_less: bool = True,
    compute_scale: float = 1.0,
    execution: str = "batched",
    plan: str = "auto",
    shard_workers: int = 0,
    shard_pool: str = "persistent",
) -> DrimAnnEngine:
    quant = bench_quantized(ds, params.nlist, params.num_subspaces, params.codebook_size)
    cfg = PimSystemConfig(
        num_dpus=num_dpus,
        shard_workers=shard_workers,
        shard_pool=shard_pool,
    ).with_compute_scale(compute_scale)
    engine_cfg = EngineConfig(
        index=params,
        search=SearchParams(
            batch_size=BATCH_SIZE,
            multiplier_less=multiplier_less,
            execution=execution,
            plan=plan,
        ),
        layout=layout if layout is not None else default_layout(),
        system=cfg,
    )
    return DrimAnnEngine.from_config(
        ds.base,
        engine_cfg,
        heat_queries=ds.queries[: NUM_QUERIES // 4],
        prebuilt_quantized=quant,
        cpu_profile=scaled_cpu_profile(num_dpus),
        seed=SEED,
    )


PAPER_NUM_DPUS = 2530


def scaled_cpu_profile(num_dpus: int = NUM_DPUS):
    """A silicon-fraction slice of the paper's Xeon baseline.

    The simulator runs ``num_dpus`` DPUs instead of the paper's 2,530;
    comparing that against a *full* 32-thread Xeon would understate PIM
    by the scale factor. Both sides are therefore scaled by the same
    fraction: the CPU keeps its 32-thread structure but its issue rate
    and bandwidths shrink by ``num_dpus / 2530`` — a 1/40 time-slice of
    the machine. Because the analytic model is linear in rate and
    bandwidth, speedup *ratios* equal the full-scale comparison.
    """
    from repro.core.perf_model import HardwareProfile

    frac = num_dpus / PAPER_NUM_DPUS
    return HardwareProfile.for_cpu(
        threads=32,
        frequency_hz=2.3e9 * frac,
        bandwidth_bytes_per_s=80e9 * frac,
        local_bandwidth_bytes_per_s=2e12 * frac,
    )


def cpu_baseline(ds: Dataset, params: IndexParams, *, num_dpus: int = NUM_DPUS) -> CpuIvfPqBaseline:
    return CpuIvfPqBaseline(
        bench_index(ds, params.nlist, params.num_subspaces, params.codebook_size),
        profile=scaled_cpu_profile(num_dpus),
    )


# In-process memo of engine runs: several figure benches share the same
# (params, layout) arms; one pytest session computes each arm once.
_RUN_CACHE: Dict[tuple, tuple] = {}


def engine_run(
    ds: Dataset,
    params: IndexParams,
    *,
    layout_tag: str = "balanced",
    multiplier_less: bool = True,
    compute_scale: float = 1.0,
    with_scheduler: bool = True,
    num_dpus: int = NUM_DPUS,
    num_queries: int = NUM_QUERIES,
):
    """Build-and-search an arm once per session; returns (recall, breakdown).

    ``layout_tag``: "balanced" (default layout), "unbalanced" (id-order,
    no split/dup), "alloc_only" (heat allocation, no split/dup), or
    "split<N>" / "dup<N>" for Fig. 12 sweeps.
    """
    from repro.ann import recall_at_k

    key = (
        ds.name, params, layout_tag, multiplier_less, compute_scale,
        with_scheduler, num_dpus, num_queries,
    )
    if key in _RUN_CACHE:
        return _RUN_CACHE[key]

    if layout_tag == "balanced":
        layout = default_layout()
    elif layout_tag == "unbalanced":
        layout = unbalanced_layout()
    elif layout_tag == "alloc_only":
        layout = LayoutConfig(min_split_size=None, max_copies=0)
    elif layout_tag.startswith("split"):
        layout = LayoutConfig(min_split_size=int(layout_tag[5:]), max_copies=0)
    elif layout_tag.startswith("dup"):
        layout = LayoutConfig(min_split_size=None, max_copies=int(layout_tag[3:]))
    else:
        raise ValueError(f"unknown layout_tag {layout_tag!r}")

    engine = build_engine(
        ds, params,
        num_dpus=num_dpus,
        layout=layout,
        multiplier_less=multiplier_less,
        compute_scale=compute_scale,
    )
    queries = ds.queries[:num_queries]
    res, bd = engine.search(queries, with_scheduler=with_scheduler)
    recall = (
        recall_at_k(res.ids, ds.ground_truth[:num_queries], K)
        if ds.ground_truth is not None
        else float("nan")
    )
    _RUN_CACHE[key] = (recall, bd)
    return _RUN_CACHE[key]


def write_bench_artifact(path: str, record: dict) -> None:
    """Write one machine-readable bench record (BENCH_*.json).

    The CI smoke gates emit these so the perf trajectory across PRs is
    diffable without parsing console output.
    """
    import json

    with open(path, "w") as f:
        json.dump(record, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {path}")


def geomean(values) -> float:
    v = np.asarray(list(values), dtype=float)
    return float(np.exp(np.mean(np.log(v))))


def print_table(title: str, headers, rows) -> None:
    """Render one paper-style series as a fixed-width console table."""
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
