"""Ablation — OPQ preprocessing accuracy gain (paper §I: "supports
IVF-PQ and its variants, including OPQ").

OPQ's rotation balances variance across PQ sub-spaces before encoding;
on the PIM it is folded into a host-side rotate+requantize transform
(the DPUs need uint8 input — see repro.core.opq_preprocess). This
ablation measures its recall effect at a fixed operating point and the
PQ reconstruction error behind it, at small scale (OPQ training is a
full extra index build).
"""

import numpy as np
import pytest

from benchmarks.common import print_table
from repro.ann import recall_at_k
from repro.core import DrimAnnEngine, IndexParams
from repro.data import load_dataset
from repro.pim.config import PimSystemConfig


def _compare_opq():
    ds = load_dataset("sift-like-20k", seed=0, num_queries=200, ground_truth_k=10)
    params = IndexParams(
        nlist=128, nprobe=8, k=10, num_subspaces=16, codebook_size=128
    )
    rows = []
    recalls = {}
    for use_opq in (False, True):
        engine = DrimAnnEngine.build(
            ds.base,
            params,
            system_config=PimSystemConfig(num_dpus=16),
            use_opq=use_opq,
            seed=0,
        )
        res, bd = engine.search(ds.queries)
        rec = recall_at_k(res.ids, ds.ground_truth, 10)
        recalls[use_opq] = rec
        rows.append(
            (
                "OPQ" if use_opq else "plain PQ",
                f"{rec:.3f}",
                f"{200 / bd.e2e_seconds:,.0f}",
            )
        )
    return rows, recalls


def test_ablation_opq(benchmark):
    rows, recalls = benchmark.pedantic(_compare_opq, rounds=1, iterations=1)
    print_table(
        "OPQ ablation (sift-like-20k, M=16, CB=128)",
        ("variant", "recall@10", "QPS"),
        rows,
    )
    # OPQ must not hurt (it may help little when sub-spaces already
    # balance; M=16 on 128-d low-rank data leaves room).
    assert recalls[True] >= recalls[False] - 0.02
