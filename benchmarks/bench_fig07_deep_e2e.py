"""Fig. 7 — End-to-end performance vs the CPU baseline on DEEP-like data.

Paper: 0.61–2.07x over Faiss-CPU on DEEP100M (geomean 1.17x) — weaker
than SIFT because LC (LUT construction) takes ~10x larger share of the
total on DEEP, making performance less sensitive to nlist (which only
affects DC/TS) and favoring small nprobe (LC is linear in nprobe).
"""

import pytest

from benchmarks.common import (
    DEEP_PRESET,
    NLIST_DEFAULT,
    NLIST_SWEEP,
    NPROBE_DEFAULT,
    NPROBE_SWEEP,
    NUM_QUERIES,
    cpu_baseline,
    engine_run,
    geomean,
    params_for,
    print_table,
)


def _sweep_deep(ds):
    nlist_rows = []
    speedups = []
    lc_shares = []
    for nlist in NLIST_SWEEP:
        params = params_for(nlist=nlist)
        recall, bd = engine_run(ds, params)
        cpu_s = cpu_baseline(ds, params).model_timing(NUM_QUERIES, params).seconds
        speedup = cpu_s / bd.e2e_seconds
        speedups.append(speedup)
        lc_shares.append(bd.kernel_shares().get("LC", 0.0))
        nlist_rows.append(
            (
                nlist,
                params.nprobe,
                f"{NUM_QUERIES / bd.e2e_seconds:,.0f}",
                f"{speedup:.2f}x",
                f"{lc_shares[-1]:.0%}",
                f"{recall:.3f}",
            )
        )
    nprobe_rows = []
    for nprobe in NPROBE_SWEEP:
        params = params_for(nlist=NLIST_DEFAULT, nprobe=nprobe)
        recall, bd = engine_run(ds, params)
        cpu_s = cpu_baseline(ds, params).model_timing(NUM_QUERIES, params).seconds
        nprobe_rows.append(
            (
                NLIST_DEFAULT,
                nprobe,
                f"{NUM_QUERIES / bd.e2e_seconds:,.0f}",
                f"{cpu_s / bd.e2e_seconds:.2f}x",
                f"{recall:.3f}",
            )
        )
    return nlist_rows, nprobe_rows, speedups, lc_shares


def test_fig07_deep_e2e(deep_ds, benchmark):
    nlist_rows, nprobe_rows, speedups, lc_shares = benchmark.pedantic(
        _sweep_deep, args=(deep_ds,), rounds=1, iterations=1
    )
    print_table(
        f"Fig. 7(a): DEEP-like, nprobe={NPROBE_DEFAULT}, nlist sweep",
        ("nlist", "nprobe", "pim QPS", "speedup", "LC share", "recall@10"),
        nlist_rows,
    )
    print_table(
        f"Fig. 7(b): DEEP-like, nlist={NLIST_DEFAULT}, nprobe sweep",
        ("nlist", "nprobe", "pim QPS", "speedup", "recall@10"),
        nprobe_rows,
    )
    print(f"geomean speedup: {geomean(speedups):.2f}x (paper: 1.17x on DEEP100M)")

    # Paper: on DEEP, LC dominates, so performance is less sensitive to
    # nlist than on SIFT — check LC is a large share throughout.
    assert min(lc_shares) > 0.3
