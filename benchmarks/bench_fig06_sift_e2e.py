"""Fig. 6 — End-to-end performance vs the CPU baseline on SIFT-like data.

Paper: Fig. 6(a) sweeps nlist at fixed nprobe (DRIM-ANN 2.35–3.65x over
Faiss-CPU, geomean 2.92x, peaking at moderate nlist); Fig. 6(b) sweeps
nprobe at fixed nlist (throughput falls as nprobe grows for both
systems). The simulator reproduces the sweep at the scaled workload
(see benchmarks/common.py): modeled CPU time comes from the same
five-phase model on a silicon-fraction slice of the Xeon, PIM time from
the cycle-accounted simulator with the full load-balancing stack.

Run directly for a console report, or with ``--smoke`` as the CI
perf-regression gate: it times the *simulator host wall-clock* of
batched vs per-query execution on a reduced workload, checks the two
produce bit-identical results, and exits non-zero when batched
execution is less than 2x faster (the batching speedup this harness
locks in).
"""

import pytest

from benchmarks.common import (
    NLIST_DEFAULT,
    NLIST_SWEEP,
    NPROBE_DEFAULT,
    NPROBE_SWEEP,
    NUM_QUERIES,
    cpu_baseline,
    engine_run,
    geomean,
    params_for,
    print_table,
)


def _sweep(ds, sweep_axis):
    rows = []
    speedups = []
    if sweep_axis == "nlist":
        configs = [params_for(nlist=n) for n in NLIST_SWEEP]
    else:
        configs = [
            params_for(nlist=NLIST_DEFAULT, nprobe=p) for p in NPROBE_SWEEP
        ]
    for params in configs:
        recall, bd = engine_run(ds, params)
        cpu = cpu_baseline(ds, params)
        cpu_s = cpu.model_timing(NUM_QUERIES, params).seconds
        speedup = cpu_s / bd.e2e_seconds
        speedups.append(speedup)
        rows.append(
            (
                params.nlist,
                params.nprobe,
                f"{NUM_QUERIES / bd.e2e_seconds:,.0f}",
                f"{NUM_QUERIES / cpu_s:,.0f}",
                f"{speedup:.2f}x",
                f"{recall:.3f}",
            )
        )
    return rows, speedups


def test_fig06a_nlist_sweep(sift_ds, benchmark):
    rows, speedups = benchmark.pedantic(
        _sweep, args=(sift_ds, "nlist"), rounds=1, iterations=1
    )
    print_table(
        f"Fig. 6(a): SIFT-like, nprobe={NPROBE_DEFAULT}, nlist sweep",
        ("nlist", "nprobe", "pim QPS", "cpu QPS", "speedup", "recall@10"),
        rows,
    )
    print(f"geomean speedup: {geomean(speedups):.2f}x (paper: 2.92x on SIFT100M)")
    # Shape assertions: PIM wins, and the peak is at moderate nlist.
    assert max(speedups) > 1.0


def test_fig06b_nprobe_sweep(sift_ds, benchmark):
    rows, speedups = benchmark.pedantic(
        _sweep, args=(sift_ds, "nprobe"), rounds=1, iterations=1
    )
    print_table(
        f"Fig. 6(b): SIFT-like, nlist={NLIST_DEFAULT}, nprobe sweep",
        ("nlist", "nprobe", "pim QPS", "cpu QPS", "speedup", "recall@10"),
        rows,
    )
    qps = [float(r[2].replace(",", "")) for r in rows]
    # Paper: throughput decreases as nprobe increases.
    assert qps[0] > qps[-1]


# ---------------------------------------------------------------- CLI
def run_smoke(
    num_queries: int = 400, min_speedup: float = 2.0, repeats: int = 3
) -> bool:
    """CI perf gate: batched vs per-query host wall-clock.

    Uses a reduced workload (the 20k test preset) so the gate runs in
    seconds; both modes produce bit-identical results, so the only
    thing compared is simulator host wall-clock. Each mode is timed
    ``repeats`` times interleaved and scored by its best run — the
    standard noise shield for a shared CI box, where one descheduled
    slice would otherwise flip the gate.
    """
    import time

    import numpy as np

    from benchmarks.common import SEED, build_engine
    from repro.data import load_dataset

    ds = load_dataset(
        "sift-like-20k", seed=SEED, num_queries=num_queries, ground_truth_k=10
    )
    params = params_for(nlist=128, nprobe=8, m=16, cb=64)
    engine = build_engine(ds, params, num_dpus=16)
    queries = ds.queries[:num_queries]
    engine.search(queries[:8])  # warm caches outside the timed region

    res_b = res_q = None
    t_batched = t_per_query = float("inf")
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        res_b, _ = engine.search(queries, execution="batched")
        t_batched = min(t_batched, time.perf_counter() - t0)

        t0 = time.perf_counter()
        res_q, _ = engine.search(queries, execution="per_query")
        t_per_query = min(t_per_query, time.perf_counter() - t0)

    if not (
        np.array_equal(res_b.ids, res_q.ids)
        and np.array_equal(res_b.distances, res_q.distances)
    ):
        print("FAIL: batched and per-query results differ")
        return False
    speedup = t_per_query / t_batched
    print(
        f"batched {t_batched:.3f}s vs per-query {t_per_query:.3f}s "
        f"(best of {max(repeats, 1)}) over {num_queries} queries "
        f"-> {speedup:.2f}x (floor {min_speedup:.1f}x)"
    )
    if speedup < min_speedup:
        print(f"FAIL: batched execution only {speedup:.2f}x faster")
        return False
    print("OK")
    return True


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced perf-regression gate: batched must beat per-query "
        "by --min-speedup on host wall-clock",
    )
    parser.add_argument("--queries", type=int, default=400)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    if args.smoke:
        ok = run_smoke(args.queries, args.min_speedup, args.repeats)
        return 0 if ok else 1
    from benchmarks.common import bench_dataset

    ds = bench_dataset()
    for axis, title in (
        ("nlist", f"Fig. 6(a): SIFT-like, nprobe={NPROBE_DEFAULT}, nlist sweep"),
        ("nprobe", f"Fig. 6(b): SIFT-like, nlist={NLIST_DEFAULT}, nprobe sweep"),
    ):
        rows, speedups = _sweep(ds, axis)
        print_table(
            title,
            ("nlist", "nprobe", "pim QPS", "cpu QPS", "speedup", "recall@10"),
            rows,
        )
        print(f"geomean speedup: {geomean(speedups):.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
