"""Fig. 6 — End-to-end performance vs the CPU baseline on SIFT-like data.

Paper: Fig. 6(a) sweeps nlist at fixed nprobe (DRIM-ANN 2.35–3.65x over
Faiss-CPU, geomean 2.92x, peaking at moderate nlist); Fig. 6(b) sweeps
nprobe at fixed nlist (throughput falls as nprobe grows for both
systems). The simulator reproduces the sweep at the scaled workload
(see benchmarks/common.py): modeled CPU time comes from the same
five-phase model on a silicon-fraction slice of the Xeon, PIM time from
the cycle-accounted simulator with the full load-balancing stack.

Run directly for a console report, or with ``--smoke`` as the CI
perf-regression gate. The smoke run stacks two wall-clock checks on
reduced workloads, verifies each is bit-identical across the compared
strategies, and exits non-zero when either floor is missed:

* batched vs per-query execution must be >= ``--min-speedup`` (2x);
* the persistent shard pool must be >= ``--min-pool-speedup`` (1.5x)
  faster than the PR 4 per-call pool on the same round shape (see
  docs/data_plane.md for why single-LUT-row rounds are the shape where
  per-round shard shipping dominates).

It also writes a machine-readable ``BENCH_fig06.json`` artifact with
both measurements so the perf trajectory is diffable across PRs.
"""

import pytest

from benchmarks.common import (
    NLIST_DEFAULT,
    NLIST_SWEEP,
    NPROBE_DEFAULT,
    NPROBE_SWEEP,
    NUM_QUERIES,
    cpu_baseline,
    engine_run,
    geomean,
    params_for,
    print_table,
)


def _sweep(ds, sweep_axis):
    rows = []
    speedups = []
    if sweep_axis == "nlist":
        configs = [params_for(nlist=n) for n in NLIST_SWEEP]
    else:
        configs = [
            params_for(nlist=NLIST_DEFAULT, nprobe=p) for p in NPROBE_SWEEP
        ]
    for params in configs:
        recall, bd = engine_run(ds, params)
        cpu = cpu_baseline(ds, params)
        cpu_s = cpu.model_timing(NUM_QUERIES, params).seconds
        speedup = cpu_s / bd.e2e_seconds
        speedups.append(speedup)
        rows.append(
            (
                params.nlist,
                params.nprobe,
                f"{NUM_QUERIES / bd.e2e_seconds:,.0f}",
                f"{NUM_QUERIES / cpu_s:,.0f}",
                f"{speedup:.2f}x",
                f"{recall:.3f}",
            )
        )
    return rows, speedups


def test_fig06a_nlist_sweep(sift_ds, benchmark):
    rows, speedups = benchmark.pedantic(
        _sweep, args=(sift_ds, "nlist"), rounds=1, iterations=1
    )
    print_table(
        f"Fig. 6(a): SIFT-like, nprobe={NPROBE_DEFAULT}, nlist sweep",
        ("nlist", "nprobe", "pim QPS", "cpu QPS", "speedup", "recall@10"),
        rows,
    )
    print(f"geomean speedup: {geomean(speedups):.2f}x (paper: 2.92x on SIFT100M)")
    # Shape assertions: PIM wins, and the peak is at moderate nlist.
    assert max(speedups) > 1.0


def test_fig06b_nprobe_sweep(sift_ds, benchmark):
    rows, speedups = benchmark.pedantic(
        _sweep, args=(sift_ds, "nprobe"), rounds=1, iterations=1
    )
    print_table(
        f"Fig. 6(b): SIFT-like, nlist={NLIST_DEFAULT}, nprobe sweep",
        ("nlist", "nprobe", "pim QPS", "cpu QPS", "speedup", "recall@10"),
        rows,
    )
    qps = [float(r[2].replace(",", "")) for r in rows]
    # Paper: throughput decreases as nprobe increases.
    assert qps[0] > qps[-1]


# ---------------------------------------------------------------- CLI
def run_pool_smoke(
    min_speedup: float = 1.5, repeats: int = 3, rounds: int = 30
) -> dict:
    """CI perf gate: persistent shard pool vs the PR 4 per-call pool.

    Times ``scan_groups`` on both executors over identical rounds — the
    "same round shape" comparison the data-plane rework claims. The
    shape is chosen where shard shipping dominates: single-LUT-row
    rounds (the serving steady state) over many modest shards, so the
    per-call executor pays pickling codes+ids every round while the
    persistent pool ships only the one-row LUTs. Results are checked
    bit-identical first; timing is best-of-``repeats`` interleaved.
    """
    import time

    import numpy as np

    from repro.pim.parallel import PersistentShardPool, ShardExecutor

    NSHARDS, PTS, M, CB, K, WORKERS = 32, 4096, 8, 64, 10, 2
    rng = np.random.default_rng(0)
    shards = {}
    for s in range(NSHARDS):
        codes = rng.integers(0, CB, size=(PTS, M), dtype=np.int16)
        ids = rng.permutation(PTS * 10)[:PTS].astype(np.int64)
        shards[f"shard{s}"] = (codes, ids)

    def jobs_for(round_i):
        r = np.random.default_rng(round_i)
        jobs, keys = [], []
        for key, (codes, ids) in shards.items():
            luts = r.integers(0, 255, size=(1, M, CB), dtype=np.int64)
            jobs.append((luts, codes, ids, K))
            keys.append(key)
        return jobs, keys

    record = {
        "gate": "persistent_vs_percall_pool",
        "round_shape": {
            "num_shards": NSHARDS, "points_per_shard": PTS,
            "num_subspaces": M, "codebook_size": CB, "lut_rows": 1,
            "workers": WORKERS, "rounds": rounds,
        },
        "floor": min_speedup,
        "ok": False,
    }
    pool = PersistentShardPool(WORKERS)
    pool.host_shards(shards)
    pool.ensure_started()
    percall = ShardExecutor(WORKERS)
    percall.ensure_started()
    try:
        if not pool.wait_warm():
            print("FAIL: persistent pool never became warm")
            return record
        jobs, keys = jobs_for(0)
        for rows_p, rows_c in zip(
            pool.scan_groups(jobs, keys=keys), percall.scan_groups(jobs)
        ):
            for (ip, dp), (ic, dc) in zip(rows_p, rows_c):
                if not (np.array_equal(ip, ic) and np.array_equal(dp, dc)):
                    print("FAIL: pool kinds returned different results")
                    return record
        best = {"persistent": float("inf"), "percall": float("inf")}
        for _ in range(max(repeats, 1)):
            for name, ex, use_keys in (
                ("persistent", pool, True), ("percall", percall, False)
            ):
                t0 = time.perf_counter()
                for i in range(rounds):
                    jobs, keys = jobs_for(i)
                    ex.scan_groups(jobs, keys=keys if use_keys else None)
                best[name] = min(best[name], time.perf_counter() - t0)
    finally:
        pool.close()
        percall.close()
    speedup = best["percall"] / best["persistent"]
    record.update(
        t_persistent_s=best["persistent"], t_percall_s=best["percall"],
        speedup=speedup, ok=speedup >= min_speedup,
    )
    print(
        f"persistent pool {best['persistent']:.3f}s vs per-call "
        f"{best['percall']:.3f}s (best of {max(repeats, 1)}, {rounds} "
        f"rounds) -> {speedup:.2f}x (floor {min_speedup:.1f}x)"
    )
    if not record["ok"]:
        print(f"FAIL: persistent pool only {speedup:.2f}x faster")
    return record


def run_smoke(
    num_queries: int = 400, min_speedup: float = 2.0, repeats: int = 3
) -> dict:
    """CI perf gate: batched vs per-query host wall-clock.

    Uses a reduced workload (the 20k test preset) so the gate runs in
    seconds; both modes produce bit-identical results, so the only
    thing compared is simulator host wall-clock. Each mode is timed
    ``repeats`` times interleaved and scored by its best run — the
    standard noise shield for a shared CI box, where one descheduled
    slice would otherwise flip the gate.
    """
    import time

    import numpy as np

    from benchmarks.common import SEED, build_engine
    from repro.data import load_dataset

    record = {
        "gate": "batched_vs_per_query",
        "num_queries": num_queries,
        "floor": min_speedup,
        "ok": False,
    }
    ds = load_dataset(
        "sift-like-20k", seed=SEED, num_queries=num_queries, ground_truth_k=10
    )
    params = params_for(nlist=128, nprobe=8, m=16, cb=64)
    engine = build_engine(ds, params, num_dpus=16)
    queries = ds.queries[:num_queries]
    engine.search(queries[:8])  # warm caches outside the timed region

    res_b = res_q = None
    t_batched = t_per_query = float("inf")
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        res_b, _ = engine.search(queries, execution="batched")
        t_batched = min(t_batched, time.perf_counter() - t0)

        t0 = time.perf_counter()
        res_q, _ = engine.search(queries, execution="per_query")
        t_per_query = min(t_per_query, time.perf_counter() - t0)
    engine.close()

    if not (
        np.array_equal(res_b.ids, res_q.ids)
        and np.array_equal(res_b.distances, res_q.distances)
    ):
        print("FAIL: batched and per-query results differ")
        return record
    speedup = t_per_query / t_batched
    record.update(
        t_batched_s=t_batched, t_per_query_s=t_per_query,
        speedup=speedup, ok=speedup >= min_speedup,
    )
    print(
        f"batched {t_batched:.3f}s vs per-query {t_per_query:.3f}s "
        f"(best of {max(repeats, 1)}) over {num_queries} queries "
        f"-> {speedup:.2f}x (floor {min_speedup:.1f}x)"
    )
    if not record["ok"]:
        print(f"FAIL: batched execution only {speedup:.2f}x faster")
    return record


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced perf-regression gate: batched must beat per-query "
        "by --min-speedup on host wall-clock",
    )
    parser.add_argument("--queries", type=int, default=400)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument("--min-pool-speedup", type=float, default=1.5)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--artifact",
        default="BENCH_fig06.json",
        help="where the machine-readable smoke record is written",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        from benchmarks.common import write_bench_artifact

        batched = run_smoke(args.queries, args.min_speedup, args.repeats)
        pool = run_pool_smoke(args.min_pool_speedup, args.repeats)
        write_bench_artifact(
            args.artifact,
            {"bench": "fig06_smoke", "gates": [batched, pool]},
        )
        ok = batched["ok"] and pool["ok"]
        print("OK" if ok else "FAIL")
        return 0 if ok else 1
    from benchmarks.common import bench_dataset

    ds = bench_dataset()
    for axis, title in (
        ("nlist", f"Fig. 6(a): SIFT-like, nprobe={NPROBE_DEFAULT}, nlist sweep"),
        ("nprobe", f"Fig. 6(b): SIFT-like, nlist={NLIST_DEFAULT}, nprobe sweep"),
    ):
        rows, speedups = _sweep(ds, axis)
        print_table(
            title,
            ("nlist", "nprobe", "pim QPS", "cpu QPS", "speedup", "recall@10"),
            rows,
        )
        print(f"geomean speedup: {geomean(speedups):.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
