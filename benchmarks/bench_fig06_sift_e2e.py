"""Fig. 6 — End-to-end performance vs the CPU baseline on SIFT-like data.

Paper: Fig. 6(a) sweeps nlist at fixed nprobe (DRIM-ANN 2.35–3.65x over
Faiss-CPU, geomean 2.92x, peaking at moderate nlist); Fig. 6(b) sweeps
nprobe at fixed nlist (throughput falls as nprobe grows for both
systems). The simulator reproduces the sweep at the scaled workload
(see benchmarks/common.py): modeled CPU time comes from the same
five-phase model on a silicon-fraction slice of the Xeon, PIM time from
the cycle-accounted simulator with the full load-balancing stack.
"""

import pytest

from benchmarks.common import (
    NLIST_DEFAULT,
    NLIST_SWEEP,
    NPROBE_DEFAULT,
    NPROBE_SWEEP,
    NUM_QUERIES,
    cpu_baseline,
    engine_run,
    geomean,
    params_for,
    print_table,
)


def _sweep(ds, sweep_axis):
    rows = []
    speedups = []
    if sweep_axis == "nlist":
        configs = [params_for(nlist=n) for n in NLIST_SWEEP]
    else:
        configs = [
            params_for(nlist=NLIST_DEFAULT, nprobe=p) for p in NPROBE_SWEEP
        ]
    for params in configs:
        recall, bd = engine_run(ds, params)
        cpu = cpu_baseline(ds, params)
        cpu_s = cpu.model_timing(NUM_QUERIES, params).seconds
        speedup = cpu_s / bd.e2e_seconds
        speedups.append(speedup)
        rows.append(
            (
                params.nlist,
                params.nprobe,
                f"{NUM_QUERIES / bd.e2e_seconds:,.0f}",
                f"{NUM_QUERIES / cpu_s:,.0f}",
                f"{speedup:.2f}x",
                f"{recall:.3f}",
            )
        )
    return rows, speedups


def test_fig06a_nlist_sweep(sift_ds, benchmark):
    rows, speedups = benchmark.pedantic(
        _sweep, args=(sift_ds, "nlist"), rounds=1, iterations=1
    )
    print_table(
        f"Fig. 6(a): SIFT-like, nprobe={NPROBE_DEFAULT}, nlist sweep",
        ("nlist", "nprobe", "pim QPS", "cpu QPS", "speedup", "recall@10"),
        rows,
    )
    print(f"geomean speedup: {geomean(speedups):.2f}x (paper: 2.92x on SIFT100M)")
    # Shape assertions: PIM wins, and the peak is at moderate nlist.
    assert max(speedups) > 1.0


def test_fig06b_nprobe_sweep(sift_ds, benchmark):
    rows, speedups = benchmark.pedantic(
        _sweep, args=(sift_ds, "nprobe"), rounds=1, iterations=1
    )
    print_table(
        f"Fig. 6(b): SIFT-like, nlist={NLIST_DEFAULT}, nprobe sweep",
        ("nlist", "nprobe", "pim QPS", "cpu QPS", "speedup", "recall@10"),
        rows,
    )
    qps = [float(r[2].replace(",", "")) for r in rows]
    # Paper: throughput decreases as nprobe increases.
    assert qps[0] > qps[-1]
