"""Extension — compiled kernel backends: fused scans vs the staged path.

The staged reference kernels (``repro.pim.kernels.distance_scan``)
materialize a per-subspace gather before reducing; the backend registry
(``repro.pim.backend``) replaces the hot path with fused
gather-accumulate implementations — the guaranteed NumPy backend plus
an optional numba build — that return bit-identical int64 distances
and LUTs while changing only host wall-clock (cycle ledgers are
charged from closed forms and cannot move).

Run with ``--smoke`` as the CI kernel gate: every registered backend
must be bit-identical to the staged reference, and the best backend's
stacked scan must clear ``MIN_SCAN_SPEEDUP`` (3x). When numba is
importable, the compiled backend must additionally clear the same bar
itself — a regression that leaves only NumPy fast is a packaging bug
worth failing on. Writes a machine-readable ``BENCH_kernels.json``
artifact.
"""


def run_smoke(repeats: int = 5, seed: int = 0) -> dict:
    """CI gate: bit-identical backends, best stacked scan >= 3x."""
    from repro.pim.backend.microbench import (
        MIN_SCAN_SPEEDUP,
        format_record,
        run_microbench,
    )

    record = run_microbench(repeats=repeats, seed=seed)
    record["gate"] = "kernel_backend_speedup_at_bit_equality"
    print(format_record(record))

    ok = record["gate_ok"]
    numba_entry = record["backends"].get("numba")
    if numba_entry is not None:
        compiled_ok = bool(
            numba_entry["bit_identical"]
            and numba_entry["scan_speedup"] >= MIN_SCAN_SPEEDUP
        )
        record["compiled_gate_ok"] = compiled_ok
        if not compiled_ok:
            print(
                f"FAIL: numba backend at {numba_entry['scan_speedup']:.2f}x "
                f"(bit_identical={numba_entry['bit_identical']}) misses the "
                f"{MIN_SCAN_SPEEDUP:.1f}x compiled bar"
            )
        ok = ok and compiled_ok
    record["ok"] = bool(ok)
    return record


def main(argv=None) -> int:
    import argparse

    from benchmarks.common import write_bench_artifact

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI kernel gate: all backends bit-identical to the staged "
        "reference; best stacked scan >= 3x (numba too when importable)",
    )
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--artifact",
        default="BENCH_kernels.json",
        help="where the machine-readable smoke record is written",
    )
    args = parser.parse_args(argv)
    record = run_smoke(repeats=args.repeats, seed=args.seed)
    if args.smoke:
        write_bench_artifact(
            args.artifact, {"bench": "kernels_smoke", "gates": [record]}
        )
    print("OK" if record["ok"] else "FAIL")
    return 0 if record["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
