"""Ablation — workload drift and the inter-batch filter.

The paper's justification for the filter is non-stationarity: "a DPU
that had a long execution time in the previous batch may not
necessarily have a long execution time in the next". On a drift-free
stream the filter is nearly neutral; this ablation sweeps hot-set
drift and shows (a) drifting workloads hurt the static layout far more
than the scheduled one, and (b) the filter's contribution grows with
drift.
"""

import pytest

from benchmarks.common import (
    BATCH_SIZE,
    NLIST_SWEEP,
    NUM_DPUS,
    SEED,
    bench_dataset,
    bench_quantized,
    default_layout,
    params_for,
    print_table,
    scaled_cpu_profile,
)
from repro.core import DrimAnnEngine, SearchParams
from repro.core.scheduler import RuntimeScheduler, SchedulerConfig
from repro.data import make_query_workload
from repro.data.ground_truth import exact_topk
from repro.pim.config import PimSystemConfig

DRIFTS = (0.0, 0.5, 1.0)
NUM = 600


def _with(engine, policy, threshold):
    old = engine.scheduler.config
    return RuntimeScheduler(
        engine.plan,
        SchedulerConfig(
            lut_latency=old.lut_latency,
            per_point_calc=old.per_point_calc,
            per_point_sort=old.per_point_sort,
            filter_threshold=threshold,
            policy=policy,
        ),
    )


def _drift_sweep(ds):
    params = params_for(nlist=NLIST_SWEEP[2])
    quant = bench_quantized(
        ds, params.nlist, params.num_subspaces, params.codebook_size
    )
    rows = []
    results = {}
    for drift in DRIFTS:
        wl = make_query_workload(
            ds,
            num_queries=NUM,
            batch_size=BATCH_SIZE,
            zipf_skew=1.3,
            hot_fraction=0.05,
            drift=drift,
            noise_scale=5.0,
            seed=11,
        )
        engine = DrimAnnEngine.build(
            ds.base,
            params,
            search_params=SearchParams(batch_size=BATCH_SIZE),
            system_config=PimSystemConfig(num_dpus=NUM_DPUS),
            layout_config=default_layout(),
            heat_queries=wl.queries[:150],
            prebuilt_quantized=quant,
            cpu_profile=scaled_cpu_profile(NUM_DPUS),
            seed=SEED,
        )
        times = {}
        for label, policy, threshold in (
            ("static", "static", None),
            ("pred", "predictor", None),
            ("pred+filter", "predictor", 1.3),
        ):
            engine.scheduler = _with(engine, policy, threshold)
            _, bd = engine.search(wl.queries)
            times[label] = bd.pim_seconds
        results[drift] = times
        rows.append(
            (
                drift,
                f"{times['static'] * 1e3:.2f} ms",
                f"{times['static'] / times['pred']:.2f}x",
                f"{times['static'] / times['pred+filter']:.2f}x",
            )
        )
    return rows, results


def test_ablation_drift(sift_ds, benchmark):
    rows, results = benchmark.pedantic(
        _drift_sweep, args=(sift_ds,), rounds=1, iterations=1
    )
    print_table(
        "Drift ablation (speedup over static replica choice)",
        ("drift", "static time", "predictor", "predictor+filter"),
        rows,
    )
    # The scheduler must help at every drift level, filter never hurting
    # materially.
    for drift, times in results.items():
        assert times["pred"] <= times["static"] * 1.02
        assert times["pred+filter"] <= times["pred"] * 1.10
