"""Fig. 2 — Roofline analysis of the Faiss-CPU baseline.

The paper's Fig. 2 places Faiss-CPU configurations on the Xeon's
roofline and finds every setting that balances performance and
accuracy in the memory-bound region — the motivation for moving ANNS
onto a high-bandwidth PIM. This bench reproduces the analysis: for a
sweep of (nlist, nprobe, M) it computes each configuration's
arithmetic intensity and attained performance bound on the paper's CPU
(32 threads AVX2, 80 GB/s) and prints the roofline placement.
"""

import pytest

from benchmarks.common import (
    M_DEFAULT,
    NLIST_SWEEP,
    NPROBE_SWEEP,
    NUM_QUERIES,
    params_for,
    print_table,
)
from repro.baselines.roofline import RooflinePoint
from repro.core.params import DatasetShape
from repro.core.perf_model import AnalyticPerfModel, HardwareProfile


def _roofline_points(ds):
    """Whole-search roofline points on the full-size Xeon."""
    shape = DatasetShape(
        num_points=ds.num_base, dim=ds.dim, num_queries=NUM_QUERIES
    )
    profile = HardwareProfile.for_cpu()
    peak_ops = profile.ops_per_s_per_unit * profile.units * profile.simd_width
    points = []
    for nlist in NLIST_SWEEP:
        for nprobe in NPROBE_SWEEP:
            params = params_for(nlist=nlist, nprobe=nprobe)
            model = AnalyticPerfModel(shape, profile)
            est = model.estimate(params)
            ops = sum(e.issue_slots * profile.simd_width for e in est.values())
            dram = sum(e.dram_bytes for e in est.values())
            points.append(
                RooflinePoint(
                    label=f"nlist={nlist},nprobe={nprobe}",
                    work_ops=ops,
                    bytes_moved=dram,
                    peak_ops_per_s=peak_ops,
                    peak_bytes_per_s=profile.bandwidth_bytes_per_s,
                )
            )
    return points


def test_fig02_roofline(sift_ds, benchmark):
    points = benchmark(_roofline_points, sift_ds)

    rows = []
    for p in points:
        rows.append(
            (
                p.label,
                f"{p.arithmetic_intensity:.2f}",
                f"{p.machine_balance:.2f}",
                "memory" if p.memory_bound else "compute",
                f"{p.attained_ops_per_s / 1e9:.1f} Gop/s",
            )
        )
    print_table(
        "Fig. 2: Faiss-CPU roofline placement (SIFT-like)",
        ("config", "ops/byte", "balance", "bound", "attained"),
        rows,
    )

    # Paper's claim: the balanced settings are memory-bound on CPU.
    memory_bound = sum(p.memory_bound for p in points)
    print(
        f"\n{memory_bound}/{len(points)} configurations memory-bound "
        f"(paper: all balanced settings)"
    )
    assert memory_bound >= len(points) * 0.75
