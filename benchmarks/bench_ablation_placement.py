"""Ablation — CL phase placement (host vs PIM).

§III-B: after multiplier-less conversion "those [phases] with higher
C2IO can be placed on the host to be overlapped with other operations".
DRIM-ANN places CL on the host. This ablation runs both placements:
CL-on-PIM avoids the host compute but serializes an extra DPU launch
per batch, pays the candidate gather through the 19.2 GB/s channel, and
cannot overlap — quantifying why the paper's default placement wins at
realistic batch sizes.
"""

import pytest

from benchmarks.common import (
    BATCH_SIZE,
    NLIST_SWEEP,
    NUM_DPUS,
    SEED,
    bench_quantized,
    default_layout,
    params_for,
    print_table,
    scaled_cpu_profile,
)
from repro.core import DrimAnnEngine, SearchParams
from repro.pim.config import PimSystemConfig


def _run_placements(ds):
    rows = []
    e2e = {}
    for nlist in (NLIST_SWEEP[1], NLIST_SWEEP[3]):
        params = params_for(nlist=nlist)
        quant = bench_quantized(
            ds, params.nlist, params.num_subspaces, params.codebook_size
        )
        for placement in ("host", "pim"):
            engine = DrimAnnEngine.build(
                ds.base,
                params,
                search_params=SearchParams(
                    batch_size=BATCH_SIZE, cluster_locate_on=placement
                ),
                system_config=PimSystemConfig(num_dpus=NUM_DPUS),
                layout_config=default_layout(),
                heat_queries=ds.queries[:250],
                prebuilt_quantized=quant,
                cpu_profile=scaled_cpu_profile(NUM_DPUS),
                seed=SEED,
            )
            _, bd = engine.search(ds.queries[:500])
            e2e[(nlist, placement)] = bd.e2e_seconds
            rows.append(
                (
                    nlist,
                    placement,
                    f"{bd.e2e_seconds * 1e3:.2f} ms",
                    f"{bd.pim_seconds * 1e3:.2f} ms",
                    f"{bd.host_seconds * 1e3:.2f} ms",
                    f"{bd.kernel_shares().get('CL', 0.0):.0%}",
                )
            )
    return rows, e2e


def test_ablation_cl_placement(sift_ds, benchmark):
    rows, e2e = benchmark.pedantic(
        _run_placements, args=(sift_ds,), rounds=1, iterations=1
    )
    print_table(
        "CL placement ablation",
        ("nlist", "CL on", "e2e", "pim", "host", "CL share"),
        rows,
    )
    # The paper's placement (host, overlapped) should win or tie.
    for nlist in (NLIST_SWEEP[1], NLIST_SWEEP[3]):
        assert e2e[(nlist, "host")] <= e2e[(nlist, "pim")] * 1.05
