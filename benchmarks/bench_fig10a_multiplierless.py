"""Fig. 10(a) — Multiplier-less ANNS conversion speedup.

Paper: with ADC, the square-LUT conversion applies to the LC phase;
nprobe barely affects the gain. At nlist=2^16 the end-to-end speedup is
~1.40x (LC-only ~1.93x); at 2^14 the e2e gain drops to ~1.17x because
DC (unaffected by the conversion) takes a larger share when clusters
are bigger, while the LC-only gain stays put.

Our scaled mapping: nlist=1024 ~ 2^16, nlist=256 ~ 2^14. The simulator's
LC-only ratio is larger than the paper's 1.93x because its WRAM-load
cost model is optimistic against real UPMEM (see EXPERIMENTS.md).
"""

import pytest

from benchmarks.common import (
    NLIST_SWEEP,
    NPROBE_SWEEP,
    engine_run,
    geomean,
    params_for,
    print_table,
)

HIGH_NLIST = NLIST_SWEEP[-1]
MID_NLIST = NLIST_SWEEP[1]


def _conversion_sweep(ds):
    rows = []
    e2e_by_nlist = {}
    lc_by_nlist = {}
    for nlist in (MID_NLIST, HIGH_NLIST):
        e2e_gains = []
        lc_gains = []
        for nprobe in NPROBE_SWEEP[1:3]:
            params = params_for(nlist=nlist, nprobe=nprobe)
            _, bd_ml = engine_run(ds, params, multiplier_less=True)
            _, bd_mul = engine_run(ds, params, multiplier_less=False)
            e2e = bd_mul.pim_seconds / bd_ml.pim_seconds
            lc = bd_mul.kernel_cycles["LC"] / bd_ml.kernel_cycles["LC"]
            e2e_gains.append(e2e)
            lc_gains.append(lc)
            rows.append(
                (nlist, nprobe, f"{e2e:.2f}x", f"{lc:.2f}x")
            )
        e2e_by_nlist[nlist] = geomean(e2e_gains)
        lc_by_nlist[nlist] = geomean(lc_gains)
    return rows, e2e_by_nlist, lc_by_nlist


def test_fig10a_multiplierless(sift_ds, benchmark):
    rows, e2e_by_nlist, lc_by_nlist = benchmark.pedantic(
        _conversion_sweep, args=(sift_ds,), rounds=1, iterations=1
    )
    print_table(
        "Fig. 10(a): multiplier-less conversion speedup",
        ("nlist", "nprobe", "e2e speedup", "LC speedup"),
        rows,
    )
    print(
        f"e2e gain @nlist={HIGH_NLIST} (paper ~1.40x @2^16): "
        f"{e2e_by_nlist[HIGH_NLIST]:.2f}x; "
        f"@nlist={MID_NLIST} (paper ~1.17x @2^14): {e2e_by_nlist[MID_NLIST]:.2f}x"
    )

    # Shape 1: conversion always helps, and helps LC most.
    assert all(v > 1.0 for v in e2e_by_nlist.values())
    assert all(
        lc_by_nlist[n] >= e2e_by_nlist[n] for n in e2e_by_nlist
    )
    # Shape 2: e2e gain is larger at large nlist (LC share grows).
    assert e2e_by_nlist[HIGH_NLIST] > e2e_by_nlist[MID_NLIST]
