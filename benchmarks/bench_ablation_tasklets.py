"""Ablation — tasklet count vs pipeline utilization.

UPMEM's in-order pipeline only sustains 1 instruction/cycle when at
least ``pipeline_depth`` (11) tasklets are resident (Gómez-Luna et al.;
the paper's "multi-threaded optimization is necessary ... to hide
memory access latency and fully utilize the deep processor pipeline").
This ablation sweeps the tasklet count and confirms the knee at the
pipeline depth — the reason the engine defaults to 16 tasklets.
"""

import pytest

from benchmarks.common import (
    NLIST_SWEEP,
    SEED,
    BATCH_SIZE,
    bench_quantized,
    default_layout,
    params_for,
    print_table,
    scaled_cpu_profile,
    NUM_DPUS,
)
from repro.core import DrimAnnEngine, SearchParams
from repro.pim.config import DpuConfig, PimSystemConfig

TASKLETS = (2, 6, 11, 16, 24)


def _sweep_tasklets(ds):
    params = params_for(nlist=NLIST_SWEEP[2])
    quant = bench_quantized(ds, params.nlist, params.num_subspaces, params.codebook_size)
    rows = []
    times = {}
    for t in TASKLETS:
        cfg = PimSystemConfig(num_dpus=NUM_DPUS, dpu=DpuConfig(num_tasklets=t))
        engine = DrimAnnEngine.build(
            ds.base,
            params,
            search_params=SearchParams(batch_size=BATCH_SIZE),
            system_config=cfg,
            layout_config=default_layout(),
            heat_queries=ds.queries[:250],
            prebuilt_quantized=quant,
            cpu_profile=scaled_cpu_profile(NUM_DPUS),
            seed=SEED,
        )
        _, bd = engine.search(ds.queries[:500])
        times[t] = bd.pim_seconds
        rows.append((t, f"{cfg.dpu.effective_ipc:.2f}", f"{bd.pim_seconds * 1e3:.2f} ms"))
    return rows, times


def test_ablation_tasklets(sift_ds, benchmark):
    rows, times = benchmark.pedantic(
        _sweep_tasklets, args=(sift_ds,), rounds=1, iterations=1
    )
    print_table(
        "Tasklet-count ablation", ("tasklets", "effective IPC", "pim time"), rows
    )
    # Below the pipeline depth, fewer tasklets = slower, proportionally.
    assert times[2] > times[6] > times[11] * 1.05
    # At/after the knee, extra tasklets do not help.
    assert times[16] == pytest.approx(times[11], rel=0.05)
    assert times[24] == pytest.approx(times[16], rel=0.05)
