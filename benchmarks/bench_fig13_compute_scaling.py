"""Fig. 13 — DRIM-ANN on future DRAM-PIMs with higher compute ability.

Paper: scaling DPU compute to 2x / 5x lifts the speedup over the CPU
baseline from 2.92x (geomean) to 4.63x / 7.12x — evidence that DRIM-ANN
is compute-bound on today's UPMEM, and that the gains are sub-linear
because memory-bound phases and residual imbalance remain.
"""

import pytest

from benchmarks.common import (
    NLIST_SWEEP,
    NUM_QUERIES,
    cpu_baseline,
    engine_run,
    geomean,
    params_for,
    print_table,
)

SCALES = (1.0, 2.0, 5.0)


def _scaling(ds):
    rows = []
    geo = {}
    for scale in SCALES:
        speedups = []
        for nlist in NLIST_SWEEP:
            params = params_for(nlist=nlist)
            _, bd = engine_run(ds, params, compute_scale=scale)
            cpu_s = cpu_baseline(ds, params).model_timing(NUM_QUERIES, params).seconds
            speedups.append(cpu_s / bd.e2e_seconds)
            rows.append(
                (f"{scale:.0f}x", nlist, f"{NUM_QUERIES / bd.e2e_seconds:,.0f}",
                 f"{speedups[-1]:.2f}x")
            )
        geo[scale] = geomean(speedups)
    return rows, geo


def test_fig13_compute_scaling(sift_ds, benchmark):
    rows, geo = benchmark.pedantic(_scaling, args=(sift_ds,), rounds=1, iterations=1)
    print_table(
        "Fig. 13: speedup vs CPU with scaled DPU compute",
        ("compute", "nlist", "pim QPS", "speedup"),
        rows,
    )
    print(
        "geomean speedups: "
        + ", ".join(f"{s:.0f}x compute -> {geo[s]:.2f}x" for s in SCALES)
        + "  (paper: 2.92x -> 4.63x -> 7.12x)"
    )

    # Shapes: monotone improvement, sub-linear in the compute scale.
    assert geo[2.0] > geo[1.0]
    assert geo[5.0] > geo[2.0]
    assert geo[5.0] / geo[1.0] < 5.0
