"""Fig. 11 — Load-balancing speedup.

Paper: (a) the full load-balancing stack (splitting + duplication +
heat allocation + runtime scheduling) achieves 4.84–6.19x over the
baseline that assigns whole clusters to DPUs in ID order; (b) heat-aware
allocation alone yields 1.76–4.07x — randomly co-locating hot clusters
on one DPU is the dominant pathology.
"""

import pytest

from benchmarks.common import (
    NLIST_SWEEP,
    NPROBE_DEFAULT,
    engine_run,
    geomean,
    params_for,
    print_table,
)


def _arms(ds):
    rows = []
    full_speedups = []
    alloc_speedups = []
    for nlist in NLIST_SWEEP:
        params = params_for(nlist=nlist)
        _, base = engine_run(
            ds, params, layout_tag="unbalanced", with_scheduler=False
        )
        _, alloc = engine_run(
            ds, params, layout_tag="alloc_only", with_scheduler=False
        )
        _, full = engine_run(ds, params, layout_tag="balanced")
        s_full = base.pim_seconds / full.pim_seconds
        s_alloc = base.pim_seconds / alloc.pim_seconds
        full_speedups.append(s_full)
        alloc_speedups.append(s_alloc)
        rows.append(
            (
                nlist,
                f"{base.pim_seconds * 1e3:.2f} ms",
                f"{s_alloc:.2f}x",
                f"{s_full:.2f}x",
                f"{base.mean_busy_fraction:.0%}",
                f"{full.mean_busy_fraction:.0%}",
            )
        )
    return rows, full_speedups, alloc_speedups


def test_fig11_load_balance(sift_ds, benchmark):
    rows, full_speedups, alloc_speedups = benchmark.pedantic(
        _arms, args=(sift_ds,), rounds=1, iterations=1
    )
    print_table(
        f"Fig. 11: load-balancing speedup vs id-order baseline (nprobe={NPROBE_DEFAULT})",
        ("nlist", "baseline", "(b) alloc-only", "(a) full stack", "busy base", "busy full"),
        rows,
    )
    print(
        f"geomean: full {geomean(full_speedups):.2f}x (paper 4.84-6.19x), "
        f"alloc-only {geomean(alloc_speedups):.2f}x (paper 1.76-4.07x)"
    )

    # Shapes: every arm helps; the full stack beats allocation alone.
    assert all(s > 1.0 for s in full_speedups)
    assert geomean(full_speedups) > geomean(alloc_speedups)
