"""Extension — query-adaptive probing: cycles saved at held recall.

Fixed ``nprobe`` spends the same cycle budget on every query; under a
skewed workload (``sift-like-20k-skewed``, zipf 2.5) most queries sit
on a hot cluster and finish long before the budget runs out. This
benchmark runs the same engine exhaustively and with
``adaptive="bound"`` / ``"budget"`` / ``"full"``
(``repro.core.adaptive``) and reports, per mode, the total
kernel-cycle ratio against the exhaustive arm, recall@10 against the
exact ground truth, and the mean probes actually executed.

Run with ``--smoke`` as the CI adaptive gate: ``adaptive="full"`` must
cut total kernel cycles by >= 1.3x while holding recall@10 within
0.5 pt of the exhaustive arm, and ``adaptive="bound"`` must be
bit-identical to exhaustive (it is exact by construction — losing that
here means the bound math regressed). Writes a machine-readable
``BENCH_adaptive.json`` artifact.
"""

MIN_CYCLE_RATIO = 1.3
MAX_RECALL_LOSS = 0.005  # 0.5 pt of recall@10
MODES = ("bound", "budget", "full")


def _recall(ids, ground_truth) -> float:
    import numpy as np

    k = ground_truth.shape[1]
    hits = sum(
        len(np.intersect1d(r[r >= 0], g)) for r, g in zip(ids, ground_truth)
    )
    return hits / (len(ground_truth) * k)


def run_smoke(
    num_queries: int = 128,
    min_cycle_ratio: float = MIN_CYCLE_RATIO,
    max_recall_loss: float = MAX_RECALL_LOSS,
) -> dict:
    """CI gate: full-mode cycles >= 1.3x cheaper at <= 0.5 pt recall."""
    import numpy as np

    from benchmarks.common import SEED, params_for
    from repro.core import EngineConfig, LayoutConfig, SearchParams
    from repro.core.engine import DrimAnnEngine
    from repro.data import load_dataset
    from repro.pim.config import PimSystemConfig

    ds = load_dataset(
        "sift-like-20k-skewed",
        seed=SEED,
        num_queries=num_queries,
        ground_truth_k=10,
    )
    nprobe = 16
    config = EngineConfig(
        index=params_for(nlist=128, nprobe=nprobe, m=16, cb=64),
        # The skewed workload's centroid-distance profiles flatten past
        # the hot cluster; a 1.5x-mean gap with a floor of 2 probes lets
        # the budget heuristic engage without measurable recall cost.
        search=SearchParams(batch_size=64, adaptive_gap=1.5, nprobe_min=2),
        system=PimSystemConfig(num_dpus=16),
        layout=LayoutConfig(min_split_size=256, max_copies=2),
    )
    record = {
        "gate": "adaptive_cycles_at_held_recall",
        "preset": "sift-like-20k-skewed",
        "num_queries": num_queries,
        "nprobe": nprobe,
        "nprobe_min": 2,
        "adaptive_gap": 1.5,
        "min_cycle_ratio": min_cycle_ratio,
        "max_recall_loss": max_recall_loss,
        "modes": {},
        "ok": False,
    }

    engine = DrimAnnEngine.from_config(
        ds.base, config, heat_queries=ds.queries[:32], seed=SEED
    )
    try:
        base = engine.search(ds.queries)
        base_cycles = float(sum(base.breakdown.kernel_cycles.values()))
        base_recall = _recall(base.results.ids, ds.ground_truth)
        record["exhaustive"] = {
            "recall_at_10": base_recall,
            "total_kernel_cycles": base_cycles,
            "mean_probes": float(nprobe),
        }
        print(
            f"exhaustive: recall@10={base_recall:.4f} "
            f"cycles={base_cycles:,.0f} probes={nprobe}/{nprobe}"
        )

        bound_exact = False
        for mode in MODES:
            out = engine.search(ds.queries, adaptive=mode)
            cycles = float(sum(out.breakdown.kernel_cycles.values()))
            rec = _recall(out.results.ids, ds.ground_truth)
            rep = out.adaptive.to_dict()
            record["modes"][mode] = {
                "recall_at_10": rec,
                "total_kernel_cycles": cycles,
                "cycle_ratio": base_cycles / cycles,
                "mean_probes": rep["mean_probes_executed"],
                "stop_reasons": rep["stop_reasons"],
            }
            print(
                f"{mode}: recall@10={rec:.4f} cycles={cycles:,.0f} "
                f"({base_cycles / cycles:.2f}x) "
                f"probes={rep['mean_probes_executed']:.2f}/{nprobe}"
            )
            if mode == "bound":
                bound_exact = bool(
                    np.array_equal(out.results.ids, base.results.ids)
                    and np.array_equal(
                        out.results.distances, base.results.distances
                    )
                )
    finally:
        engine.close()

    record["bound_bit_identical"] = bound_exact
    if not bound_exact:
        print("FAIL: adaptive='bound' results differ from exhaustive")
        return record

    full = record["modes"]["full"]
    ratio, loss = full["cycle_ratio"], base_recall - full["recall_at_10"]
    record["recall_loss"] = loss
    print(
        f"full mode saves {ratio:.2f}x cycles at {loss * 100:.2f} pt recall "
        f"loss (floor {min_cycle_ratio:.1f}x at <= "
        f"{max_recall_loss * 100:.1f} pt)"
    )
    if ratio < min_cycle_ratio:
        print(f"FAIL: cycle ratio {ratio:.2f}x below {min_cycle_ratio:.1f}x")
        return record
    if loss > max_recall_loss:
        print(f"FAIL: recall loss {loss * 100:.2f} pt exceeds the gate")
        return record
    record["ok"] = True
    return record


def main(argv=None) -> int:
    import argparse

    from benchmarks.common import write_bench_artifact

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI adaptive gate: full mode >= 1.3x cheaper in kernel "
        "cycles at <= 0.5 pt recall@10 loss; bound mode bit-identical",
    )
    parser.add_argument("--queries", type=int, default=128)
    parser.add_argument("--min-cycle-ratio", type=float, default=MIN_CYCLE_RATIO)
    parser.add_argument(
        "--max-recall-loss", type=float, default=MAX_RECALL_LOSS
    )
    parser.add_argument(
        "--artifact",
        default="BENCH_adaptive.json",
        help="where the machine-readable smoke record is written",
    )
    args = parser.parse_args(argv)
    record = run_smoke(args.queries, args.min_cycle_ratio, args.max_recall_loss)
    if args.smoke:
        write_bench_artifact(
            args.artifact, {"bench": "adaptive_smoke", "gates": [record]}
        )
    print("OK" if record["ok"] else "FAIL")
    return 0 if record["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
