"""Fig. 8 — PIM kernel latency breakdown.

Paper: with nprobe fixed, DC's share falls and LC/TS's shares grow as
nlist increases (smaller clusters → less DC work per pair, same number
of (query, cluster) pairs → constant RC/LC/TS work). With nlist fixed,
shares barely move with nprobe (all kernels scale linearly in nprobe).
Only DPU-execution time is broken down — host and transfer are
overlapped, exactly as in the paper's analysis.
"""

import pytest

from benchmarks.common import (
    NLIST_DEFAULT,
    NLIST_SWEEP,
    NPROBE_DEFAULT,
    NPROBE_SWEEP,
    engine_run,
    params_for,
    print_table,
)

KERNELS = ("RC", "LC", "DC", "TS")


def _share_row(label, shares):
    return (label,) + tuple(f"{shares.get(k, 0.0):.1%}" for k in KERNELS)


def _breakdown(ds):
    nlist_rows = []
    dc_shares = []
    lc_shares = []
    for nlist in NLIST_SWEEP:
        _, bd = engine_run(ds, params_for(nlist=nlist))
        shares = bd.kernel_shares()
        dc_shares.append(shares.get("DC", 0.0))
        lc_shares.append(shares.get("LC", 0.0))
        nlist_rows.append(_share_row(f"nlist={nlist}", shares))
    nprobe_rows = []
    nprobe_dc = []
    for nprobe in NPROBE_SWEEP:
        _, bd = engine_run(ds, params_for(nlist=NLIST_DEFAULT, nprobe=nprobe))
        shares = bd.kernel_shares()
        nprobe_dc.append(shares.get("DC", 0.0))
        nprobe_rows.append(_share_row(f"nprobe={nprobe}", shares))
    return nlist_rows, nprobe_rows, dc_shares, lc_shares, nprobe_dc


def test_fig08_crossover_regime(sift_ds, benchmark):
    """The paper's Fig. 8(a) has DC *dominant* at small nlist, crossing
    to LC at large nlist. At the default CB=256 our scaled clusters are
    too small for DC to dominate outright (EXPERIMENTS.md D3); at CB=64
    the LC cost shrinks 4x and the full crossover appears."""

    def run():
        shares = []
        for nlist in (NLIST_SWEEP[0], NLIST_SWEEP[-1]):
            _, bd = engine_run(
                sift_ds, params_for(nlist=nlist, cb=64), layout_tag="alloc_only",
                with_scheduler=False,
            )
            s = bd.kernel_shares()
            shares.append((nlist, s.get("DC", 0.0), s.get("LC", 0.0)))
        return shares

    shares = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Fig. 8 crossover regime (CB=64, no splitting)",
        ("nlist", "DC share", "LC share"),
        [(n, f"{dc:.1%}", f"{lc:.1%}") for n, dc, lc in shares],
    )
    (n0, dc0, lc0), (n1, dc1, lc1) = shares
    # DC dominates at small nlist, LC at large — the paper's crossover.
    assert dc0 > lc0
    assert lc1 > dc1


def test_fig08_breakdown(sift_ds, benchmark):
    nlist_rows, nprobe_rows, dc_shares, lc_shares, nprobe_dc = benchmark.pedantic(
        _breakdown, args=(sift_ds,), rounds=1, iterations=1
    )
    print_table(
        f"Fig. 8(a): kernel shares vs nlist (nprobe={NPROBE_DEFAULT})",
        ("config",) + KERNELS,
        nlist_rows,
    )
    print_table(
        f"Fig. 8(b): kernel shares vs nprobe (nlist={NLIST_DEFAULT})",
        ("config",) + KERNELS,
        nprobe_rows,
    )

    # Paper shape 1: DC share decreases as nlist grows, LC share grows.
    assert dc_shares[0] > dc_shares[-1]
    assert lc_shares[-1] > lc_shares[0]
    # Paper shape 2: shares are nearly flat across the nprobe sweep.
    assert max(nprobe_dc) - min(nprobe_dc) < 0.15
