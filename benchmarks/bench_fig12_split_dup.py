"""Fig. 12 — Splitting-threshold and duplication-budget sweeps.

Paper: (a) sweeping the minimum split size is U-shaped — large
thresholds leave giant clusters (long DC/TS tails), tiny thresholds
multiply shards and pay extra LUT builds; (b) adding replica copies
helps steeply at the first copy (2–3x with runtime scheduling) and
saturates, at a memory cost of a few MB per DPU against the 64 MB MRAM.
"""

import pytest

from benchmarks.common import (
    NLIST_SWEEP,
    NUM_DPUS,
    engine_run,
    params_for,
    print_table,
)

# Split thresholds around the mean cluster size of the small-nlist arm.
SPLIT_SWEEP = (100, 200, 400, 800, 1600)
COPIES_SWEEP = (0, 1, 2, 3)
SPLIT_NLIST = NLIST_SWEEP[0]  # big clusters: where splitting matters
DUP_NLIST = NLIST_SWEEP[2]


def _split_sweep(ds):
    params = params_for(nlist=SPLIT_NLIST)
    _, base = engine_run(ds, params, layout_tag="unbalanced", with_scheduler=False)
    rows = []
    speedups = {}
    for thr in SPLIT_SWEEP:
        _, bd = engine_run(
            ds, params, layout_tag=f"split{thr}", with_scheduler=False
        )
        speedups[thr] = base.pim_seconds / bd.pim_seconds
        rows.append(
            (thr, f"{bd.pim_seconds * 1e3:.2f} ms", f"{speedups[thr]:.2f}x",
             f"{bd.mean_busy_fraction:.0%}")
        )
    return rows, speedups


def _dup_sweep(ds):
    params = params_for(nlist=DUP_NLIST)
    _, base = engine_run(ds, params, layout_tag="unbalanced", with_scheduler=False)
    rows = []
    speedups = {}
    for copies in COPIES_SWEEP:
        recall, bd = engine_run(ds, params, layout_tag=f"dup{copies}")
        speedups[copies] = base.pim_seconds / bd.pim_seconds
        rows.append(
            (copies, f"{bd.pim_seconds * 1e3:.2f} ms", f"{speedups[copies]:.2f}x")
        )
    return rows, speedups


def test_fig12a_split_threshold(sift_ds, benchmark):
    rows, speedups = benchmark.pedantic(_split_sweep, args=(sift_ds,), rounds=1, iterations=1)
    print_table(
        f"Fig. 12(a): split-threshold sweep (nlist={SPLIT_NLIST}, allocation+splitting)",
        ("min split size", "pim time", "speedup vs id-order", "busy"),
        rows,
    )
    # Shape: splitting helps relative to no-splitting extremes; the best
    # threshold is interior or at least not the largest.
    best = max(speedups, key=speedups.get)
    print(f"best threshold: {best}")
    assert speedups[best] > 1.0
    assert speedups[best] >= speedups[SPLIT_SWEEP[-1]]


def test_fig12b_duplication(sift_ds, benchmark):
    rows, speedups = benchmark.pedantic(_dup_sweep, args=(sift_ds,), rounds=1, iterations=1)
    print_table(
        f"Fig. 12(b): replica-count sweep (nlist={DUP_NLIST}, allocation+duplication+scheduling)",
        ("extra copies", "pim time", "speedup vs id-order"),
        rows,
    )
    # Shapes: the first copy gives the big jump; gains saturate.
    assert speedups[1] > speedups[0]
    jump_first = speedups[1] - speedups[0]
    jump_last = speedups[COPIES_SWEEP[-1]] - speedups[COPIES_SWEEP[-2]]
    assert jump_first >= jump_last - 0.05
