"""Extension — platform portability: UPMEM-like vs HBM-PIM-like.

Paper §II-B compares DIMM-PIM (UPMEM: weak scalar DPUs, huge capacity)
with die-stacked HBM-PIM (strong SIMD units on a logic die, bounded
capacity) and argues the framework applies to both. This bench runs
the identical engine on both platform presets at equal unit counts:
HBM-PIM's stronger units win throughput, while its capacity bound is
what would exclude it at the paper's 100M-point scale (asserted via
the config arithmetic, since the scaled corpus fits both).
"""

import pytest

from benchmarks.common import (
    BATCH_SIZE,
    NLIST_SWEEP,
    NUM_DPUS,
    SEED,
    bench_quantized,
    default_layout,
    params_for,
    print_table,
    scaled_cpu_profile,
)
from repro.core import DrimAnnEngine, SearchParams
from repro.pim.config import hbm_pim_system_config, scaled_system_config


def _compare(ds):
    params = params_for(nlist=NLIST_SWEEP[2])
    quant = bench_quantized(
        ds, params.nlist, params.num_subspaces, params.codebook_size
    )
    rows = []
    times = {}
    for name, cfg in (
        ("upmem-like", scaled_system_config(NUM_DPUS)),
        ("hbm-pim-like", hbm_pim_system_config(num_units=NUM_DPUS)),
    ):
        engine = DrimAnnEngine.build(
            ds.base,
            params,
            search_params=SearchParams(batch_size=BATCH_SIZE),
            system_config=cfg,
            layout_config=default_layout(),
            heat_queries=ds.queries[:250],
            prebuilt_quantized=quant,
            cpu_profile=scaled_cpu_profile(NUM_DPUS),
            seed=SEED,
        )
        _, bd = engine.search(ds.queries[:500])
        times[name] = bd.pim_seconds
        capacity_gb = cfg.num_dpus * cfg.dpu.mram_bytes / 1024**3
        rows.append(
            (
                name,
                f"{bd.pim_seconds * 1e3:.2f} ms",
                f"{bd.mean_busy_fraction:.0%}",
                f"{capacity_gb:,.0f} GB",
            )
        )
    return rows, times


def test_hbm_platform_comparison(sift_ds, benchmark):
    rows, times = benchmark.pedantic(_compare, args=(sift_ds,), rounds=1, iterations=1)
    print_table(
        f"Platform comparison at {NUM_DPUS} units (same engine, same index)",
        ("platform", "pim time", "busy", "total capacity"),
        rows,
    )
    # §II-B: the logic-die units out-compute DPUs...
    assert times["hbm-pim-like"] < times["upmem-like"]
    # ...but the full UPMEM server holds more than the HBM stacks.
    from repro.pim.config import paper_system_config

    upmem_full = paper_system_config()
    hbm_full = hbm_pim_system_config()
    assert (
        upmem_full.num_dpus * upmem_full.dpu.mram_bytes
        > hbm_full.num_dpus * hbm_full.dpu.mram_bytes
    )
