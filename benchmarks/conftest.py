"""Benchmark fixtures: session-scoped datasets (disk-cached)."""

import pytest

from benchmarks.common import DEEP_PRESET, SIFT_PRESET, bench_dataset


@pytest.fixture(scope="session")
def sift_ds():
    return bench_dataset(SIFT_PRESET)


@pytest.fixture(scope="session")
def deep_ds():
    return bench_dataset(DEEP_PRESET)
