"""Ablation — DSE search strategy sample-efficiency (§III-C).

The paper uses Bayesian optimization because evaluating a configuration
(train an index, measure recall) is expensive. This ablation compares,
on a measured accuracy table for the small corpus, how many oracle
calls each strategy needs to find a feasible configuration whose
modeled time is within 10% of the best feasible configuration:

* constrained BO (the paper's approach);
* random search;
* exhaustive greedy (ascending modeled time — optimal calls in the
  worst case, but front-loads infeasible cheap configs).
"""

import numpy as np
import pytest

from benchmarks.common import cached, print_table
from repro.core.accuracy import AccuracyTable, measure_accuracy_table
from repro.core.dse import DesignSpaceExplorer
from repro.core.params import DatasetShape
from repro.core.perf_model import HardwareProfile
from repro.data import load_dataset
from repro.pim.config import PimSystemConfig

NLISTS = [64, 128, 256]
NPROBES = [1, 2, 4, 8, 16]
MS = [16, 32]
CBS = [64, 128]
CONSTRAINT = 0.7


def _table_and_space():
    ds = load_dataset("sift-like-20k", seed=0, num_queries=150, ground_truth_k=10)
    table = cached(
        "dse_ablation_table",
        lambda: measure_accuracy_table(
            ds.base,
            ds.queries,
            ds.ground_truth,
            nlist_values=NLISTS,
            nprobe_values=NPROBES,
            m_values=MS,
            cb_values=CBS,
            seed=0,
        ),
    )
    shape = DatasetShape(num_points=ds.num_base, dim=ds.dim, num_queries=150)
    dse = DesignSpaceExplorer(
        shape,
        HardwareProfile.for_pim(PimSystemConfig(num_dpus=32)),
        nlist_values=NLISTS,
        nprobe_values=NPROBES,
        m_values=MS,
        cb_values=CBS,
    )
    return table, dse


def _best_feasible_time(table: AccuracyTable, dse: DesignSpaceExplorer) -> float:
    times = [
        dse.objective(p)
        for p in dse.space.points()
        if table.entries.get(AccuracyTable.key_of(dse.params_of(p)), 0.0)
        >= CONSTRAINT
    ]
    return min(t for t in times if np.isfinite(t))


def _calls_to_good(order, table, dse, target):
    calls = 0
    for point in order:
        calls += 1
        acc = table.entries.get(AccuracyTable.key_of(dse.params_of(point)), 0.0)
        if acc >= CONSTRAINT and dse.objective(point) <= target:
            return calls
    return len(order) + 1


def _compare(seed=0):
    table, dse = _table_and_space()
    target = _best_feasible_time(table, dse) * 1.10
    rng = np.random.default_rng(seed)
    pts = dse.space.points()

    # BO
    res = dse.explore_with_table(table, CONSTRAINT, num_iterations=len(pts))
    bo_calls = next(
        (
            i + 1
            for i, o in enumerate(res.observations)
            if o.feasible and o.objective <= target
        ),
        len(pts) + 1,
    )
    # Random (mean over restarts)
    rand_calls = np.mean(
        [
            _calls_to_good(
                [pts[i] for i in rng.permutation(len(pts))], table, dse, target
            )
            for _ in range(10)
        ]
    )
    # Greedy ascending modeled time
    greedy_calls = _calls_to_good(
        sorted(pts, key=dse.objective), table, dse, target
    )
    return bo_calls, rand_calls, greedy_calls, len(pts)


def test_ablation_dse(benchmark):
    bo, rand, greedy, total = benchmark.pedantic(_compare, rounds=1, iterations=1)
    print_table(
        f"DSE strategy ablation ({total}-point space, constraint {CONSTRAINT})",
        ("strategy", "oracle calls to within 10% of optimum"),
        [("bayes-opt", bo), ("random (mean of 10)", f"{rand:.1f}"), ("greedy-by-model", greedy)],
    )
    # BO must be competitive with random search's mean.
    assert bo <= rand * 1.5
