"""§V-D — Comparison with Faiss-GPU (RTX 4090).

Paper: across the Fig. 6 settings DRIM-ANN reaches 10.11–53.05% of the
4090's throughput (geomean 21.92%): the 4090's ~1 TB/s approaches the
PIM's aggregate bandwidth while its compute is vastly higher, and
DRIM-ANN additionally trades bandwidth for compute via the square LUT.
The GPU's counterweight is capacity: the corpus must fit in 24 GB,
which is the paper's case *for* PIM at billion scale — asserted here
via the capacity check on a synthetic billion-point shape.

The GPU model is scaled to the same silicon fraction as the simulated
PIM system and the CPU slice (see common.scaled_cpu_profile).
"""

import pytest

from benchmarks.common import (
    NLIST_SWEEP,
    NPROBE_DEFAULT,
    NUM_DPUS,
    NUM_QUERIES,
    PAPER_NUM_DPUS,
    engine_run,
    geomean,
    params_for,
    print_table,
)
from repro.baselines import GpuModel
from repro.core.params import DatasetShape, IndexParams


def _scaled_gpu() -> GpuModel:
    frac = NUM_DPUS / PAPER_NUM_DPUS
    return GpuModel(
        bandwidth_bytes_per_s=1.008e12 * frac,
        peak_ops_per_s=40e12 * frac,
    )


def _compare(ds):
    gpu = _scaled_gpu()
    shape = DatasetShape(
        num_points=ds.num_base, dim=ds.dim, num_queries=NUM_QUERIES
    )
    rows = []
    fracs = []
    for nlist in NLIST_SWEEP:
        params = params_for(nlist=nlist)
        _, bd = engine_run(ds, params)
        gpu_s = gpu.model_timing(shape, params).seconds
        frac = gpu_s / bd.e2e_seconds  # pim_qps / gpu_qps
        fracs.append(frac)
        rows.append(
            (
                nlist,
                f"{NUM_QUERIES / bd.e2e_seconds:,.0f}",
                f"{NUM_QUERIES / gpu_s:,.0f}",
                f"{frac:.1%}",
            )
        )
    return rows, fracs


def test_gpu_comparison(sift_ds, benchmark):
    rows, fracs = benchmark.pedantic(_compare, args=(sift_ds,), rounds=1, iterations=1)
    print_table(
        f"§V-D: DRIM-ANN throughput as a fraction of the 4090 (nprobe={NPROBE_DEFAULT})",
        ("nlist", "pim QPS", "gpu QPS", "pim/gpu"),
        rows,
    )
    print(f"geomean fraction: {geomean(fracs):.1%} (paper: 21.92%, range 10-53%)")

    # Shape: the GPU wins throughput at every setting, but not absurdly.
    assert all(f < 1.0 for f in fracs)
    assert geomean(fracs) > 0.02


def test_gpu_capacity_wall():
    """The paper's PIM motivation: billion-scale overflows the 4090."""
    shape = DatasetShape(num_points=1_000_000_000, dim=128, num_queries=1)
    params = IndexParams(nlist=2**16, nprobe=8, k=10, num_subspaces=32)
    gpu = GpuModel()  # full-size device: capacity is absolute, not scaled
    assert not gpu.fits(shape, params)
    with pytest.raises(MemoryError):
        gpu.model_timing(shape, params)
