"""Extension — rack-scale throughput: QPS vs shard count.

The single-platform engine is host-synchronous: one batch occupies the
whole PIM, so sustained QPS is capped by one platform's batch time.
The cluster tier (``repro.cluster``) shards the IVF clusters across
engine replicas and scatter-gathers each batch, so S shards scan ~1/S
of the probed clusters each, in parallel — per-batch latency (and so
saturated throughput) scales with the shard count while results stay
**bit-identical** to the single-engine oracle (the merge is canonical;
shards own disjoint clusters).

Run with ``--smoke`` as the CI cluster-scaling gate: it serves the
same saturating stream through a 1-shard and a 4-shard cluster,
requires byte-equal results (equal recall by construction, also
re-measured against ground truth) and a >= 2.5x sustained-QPS gain,
and writes a machine-readable ``BENCH_cluster.json`` artifact.
"""

from repro.ann.recall import recall_at_k
from repro.cluster import (
    ClusterConfig,
    ClusterFrontend,
    build_cluster_index,
    simulate_cluster_serving,
)
from repro.core.serving import BatchingPolicy

MIN_QPS_RATIO = 2.5


def _serve_cluster(ds, quantized, engine_cfg, num_shards, num_queries, seed=0):
    """Saturated serving through a ``num_shards``-shard cluster."""
    import numpy as np

    queries = ds.queries[:num_queries]
    with build_cluster_index(
        ds.base,
        engine_cfg,
        ClusterConfig(num_shards=num_shards, replication=1),
        heat_queries=queries[: max(1, num_queries // 4)],
        prebuilt_quantized=quantized,
        seed=seed,
    ) as cluster:
        frontend = ClusterFrontend(cluster, seed=seed)
        # Everyone arrives at t=0: the stream saturates the cluster, so
        # achieved QPS measures capacity, not the arrival rate.
        arrivals = np.zeros(num_queries)
        outcome = simulate_cluster_serving(
            frontend,
            queries,
            arrivals,
            BatchingPolicy(batch_size=64, max_wait_s=1e-3),
            return_results=True,
        )
    return outcome


def _scaling_rows(ds, quantized, engine_cfg, shard_counts, num_queries):
    import numpy as np

    rows = []
    outcomes = {}
    for s in shard_counts:
        out = _serve_cluster(ds, quantized, engine_cfg, s, num_queries)
        outcomes[s] = out
        rep = out.report
        recall = recall_at_k(
            out.results.ids, ds.ground_truth[:num_queries], 10
        )
        base_qps = outcomes[shard_counts[0]].report.achieved_qps
        rows.append(
            (
                s,
                f"{rep.achieved_qps:,.0f}",
                f"{rep.achieved_qps / base_qps:.2f}x",
                f"{rep.percentile_ms(99):.2f}",
                f"{recall:.4f}",
            )
        )
        exact = np.array_equal(
            out.results.ids, outcomes[shard_counts[0]].results.ids
        )
        if not exact:
            raise AssertionError(
                f"{s}-shard cluster diverged from the 1-shard results"
            )
    return rows, outcomes


# ---------------------------------------------------------------- CLI
def run_smoke(num_queries: int = 256, min_qps_ratio: float = MIN_QPS_RATIO) -> dict:
    """CI gate: a 4-shard rack must sustain >= 2.5x the 1-shard QPS.

    Both arms serve the identical saturating stream; service times are
    the frontend's deterministic modeled batch times, so the ratio is
    noise-free. Results must be byte-equal across shard counts (the
    cluster's core claim), which makes "at equal recall" structural —
    the recall is also re-measured against ground truth for the
    artifact record.
    """
    import numpy as np

    from benchmarks.common import SEED, params_for
    from repro.core import EngineConfig, LayoutConfig, SearchParams
    from repro.core.quantized import build_quantized_index
    from repro.ann import IVFPQIndex
    from repro.data import load_dataset
    from repro.pim.config import PimSystemConfig

    ds = load_dataset(
        "sift-like-20k", seed=SEED, num_queries=num_queries, ground_truth_k=10
    )
    # Sharded engines see ~nprobe/S probes per query each, so the
    # workload needs enough per-shard parallelism for 16 DPUs to stay
    # busy: many small clusters (nlist=256), a deep probe list
    # (nprobe=16), fine split/duplication granularity, and 64-query
    # batches. Both arms use the identical config; only the shard
    # count varies.
    params = params_for(nlist=256, nprobe=16, m=16, cb=64)
    index = IVFPQIndex.build(
        ds.base,
        nlist=params.nlist,
        num_subspaces=params.num_subspaces,
        codebook_size=params.codebook_size,
        seed=SEED,
    )
    quantized = build_quantized_index(index)
    engine_cfg = EngineConfig(
        index=params,
        search=SearchParams(batch_size=64),
        system=PimSystemConfig(num_dpus=16),
        layout=LayoutConfig(min_split_size=64, max_copies=4),
    )
    record = {
        "gate": "cluster_scaling_1_to_4_shards",
        "num_queries": num_queries,
        "min_qps_ratio": min_qps_ratio,
        "ok": False,
    }
    outcomes = {}
    for shards in (1, 4):
        out = _serve_cluster(ds, quantized, engine_cfg, shards, num_queries)
        outcomes[shards] = out
        rep = out.report
        recall = recall_at_k(
            out.results.ids, ds.ground_truth[:num_queries], 10
        )
        record[f"shards_{shards}"] = {
            "achieved_qps": rep.achieved_qps,
            "p99_ms": rep.percentile_ms(99),
            "recall_at_10": recall,
            "mean_coverage": rep.mean_coverage,
        }
        print(
            f"{shards} shard(s): {rep.achieved_qps:,.0f} QPS sustained, "
            f"p99 {rep.percentile_ms(99):.2f} ms, recall@10 {recall:.4f}"
        )
    one, four = outcomes[1], outcomes[4]
    if not (
        np.array_equal(one.results.ids, four.results.ids)
        and np.array_equal(one.results.distances, four.results.distances)
    ):
        print("FAIL: 4-shard results differ from 1-shard results")
        return record
    ratio = four.report.achieved_qps / one.report.achieved_qps
    record["qps_ratio"] = ratio
    print(
        f"4 shards sustain {ratio:.2f}x the 1-shard QPS at identical "
        f"results (floor {min_qps_ratio:.1f}x)"
    )
    if ratio < min_qps_ratio:
        print(f"FAIL: 4 shards only {ratio:.2f}x the 1-shard QPS")
        return record
    record["ok"] = True
    return record


def main(argv=None) -> int:
    import argparse

    from benchmarks.common import (
        bench_dataset,
        bench_quantized,
        default_layout,
        params_for,
        print_table,
        write_bench_artifact,
    )
    from repro.core import EngineConfig, SearchParams
    from repro.pim.config import PimSystemConfig

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI cluster-scaling gate: 4 shards must sustain >= 2.5x "
        "the 1-shard QPS with byte-equal results",
    )
    parser.add_argument("--queries", type=int, default=256)
    parser.add_argument("--min-qps-ratio", type=float, default=MIN_QPS_RATIO)
    parser.add_argument(
        "--artifact",
        default="BENCH_cluster.json",
        help="where the machine-readable smoke record is written",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        record = run_smoke(args.queries, args.min_qps_ratio)
        write_bench_artifact(
            args.artifact, {"bench": "cluster_scaling_smoke", "gates": [record]}
        )
        print("OK" if record["ok"] else "FAIL")
        return 0 if record["ok"] else 1

    # Full sweep on the scaled 400k corpus (cached index).
    ds = bench_dataset()
    params = params_for()
    quantized = bench_quantized(
        ds, params.nlist, params.num_subspaces, params.codebook_size
    )
    engine_cfg = EngineConfig(
        index=params,
        search=SearchParams(batch_size=64),
        system=PimSystemConfig(num_dpus=64),
        layout=default_layout(),
    )
    rows, _ = _scaling_rows(ds, quantized, engine_cfg, (1, 2, 4), 512)
    print_table(
        "Cluster scaling: sustained QPS vs shard count (bit-equal results)",
        ("shards", "QPS", "speedup", "p99 ms", "recall@10"),
        rows,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
