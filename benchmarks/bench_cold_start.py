"""Extension — durable-index cold start: mmap load vs full rebuild.

The v2 on-disk format (``repro.core.persist``) exists so a process
restart does not pay for IVF-PQ training again: ``DrimAnnEngine.save``
writes the quantized index *and* the cluster-heat vector the layout
was generated from, and ``DrimAnnEngine.load`` memory-maps the file
and feeds the segment views straight into shard placement — no decode,
no copy, and (because the stored heat reproduces the exact layout) a
bit-identical engine: same ids, same distances, same per-kernel cycle
ledger.

Run with ``--smoke`` as the CI cold-start gate: it times a full
train-and-assemble rebuild against ``save`` + mmap ``load`` of the
same index, requires the loaded engine's search results **and** kernel
cycle ledger to be byte-equal to the rebuilt engine's, requires the
load to be >= 5x faster than the rebuild, and writes a
machine-readable ``BENCH_coldstart.json`` artifact.
"""

import time

MIN_SPEEDUP = 5.0


def _ledger(outcome) -> dict:
    return dict(sorted(outcome.breakdown.kernel_cycles.items()))


def run_smoke(num_queries: int = 128, min_speedup: float = MIN_SPEEDUP) -> dict:
    """CI gate: mmap cold start >= 5x faster than rebuild, bit-equal."""
    import os
    import tempfile

    import numpy as np

    from benchmarks.common import SEED, params_for
    from repro.core import EngineConfig, LayoutConfig, SearchParams
    from repro.core.engine import DrimAnnEngine
    from repro.data import load_dataset
    from repro.pim.config import PimSystemConfig

    ds = load_dataset(
        "sift-like-20k", seed=SEED, num_queries=num_queries, ground_truth_k=10
    )
    params = params_for(nlist=128, nprobe=8, m=16, cb=64)
    config = EngineConfig(
        index=params,
        search=SearchParams(batch_size=64),
        system=PimSystemConfig(num_dpus=16),
        layout=LayoutConfig(min_split_size=256, max_copies=2),
    )
    heat_queries = ds.queries[: max(1, num_queries // 4)]

    record = {
        "gate": "cold_start_mmap_vs_rebuild",
        "num_queries": num_queries,
        "min_speedup": min_speedup,
        "ok": False,
    }

    # Arm 1 — the price of a restart without persistence: train IVF-PQ,
    # quantize, and assemble the engine from the raw corpus.
    t0 = time.perf_counter()
    engine = DrimAnnEngine.from_config(
        ds.base, config, heat_queries=heat_queries, seed=SEED
    )
    rebuild_seconds = time.perf_counter() - t0

    fd, path = tempfile.mkstemp(suffix=".drim")
    os.close(fd)
    try:
        engine.save(path)
        record["index_bytes"] = os.path.getsize(path)
        try:
            gold = engine.search(ds.queries)
        finally:
            engine.close()

        # Arm 2 — restart with persistence: mmap the saved file and
        # reassemble. The stored cluster heat pins the layout, so this
        # engine is bit-identical, not merely equivalent.
        t0 = time.perf_counter()
        loaded = DrimAnnEngine.load(path, config=config)
        load_seconds = time.perf_counter() - t0
        try:
            warm = loaded.search(ds.queries)
        finally:
            loaded.close()
    finally:
        os.unlink(path)

    record["rebuild_seconds"] = rebuild_seconds
    record["load_seconds"] = load_seconds
    print(f"rebuild (train + assemble): {rebuild_seconds * 1e3:,.1f} ms")
    print(f"cold start (mmap load):     {load_seconds * 1e3:,.1f} ms")

    if not (
        np.array_equal(gold.results.ids, warm.results.ids)
        and np.array_equal(gold.results.distances, warm.results.distances)
    ):
        print("FAIL: loaded engine's results differ from the rebuilt engine")
        return record
    gold_cycles, warm_cycles = _ledger(gold), _ledger(warm)
    record["kernel_cycles"] = warm_cycles
    if gold_cycles != warm_cycles:
        print("FAIL: loaded engine's cycle ledger differs from rebuild:")
        print(f"  rebuild: {gold_cycles}")
        print(f"  loaded:  {warm_cycles}")
        return record
    speedup = rebuild_seconds / load_seconds
    record["speedup"] = speedup
    print(
        f"cold start is {speedup:.1f}x faster than rebuild at bit-equal "
        f"results and cycle ledger (floor {min_speedup:.1f}x)"
    )
    if speedup < min_speedup:
        print(f"FAIL: cold start only {speedup:.1f}x faster than rebuild")
        return record
    record["ok"] = True
    return record


def main(argv=None) -> int:
    import argparse

    from benchmarks.common import write_bench_artifact

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI cold-start gate: mmap load must be >= 5x faster than a "
        "full rebuild with bit-equal results and cycle ledger",
    )
    parser.add_argument("--queries", type=int, default=128)
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP)
    parser.add_argument(
        "--artifact",
        default="BENCH_coldstart.json",
        help="where the machine-readable smoke record is written",
    )
    args = parser.parse_args(argv)
    record = run_smoke(args.queries, args.min_speedup)
    if args.smoke:
        write_bench_artifact(
            args.artifact, {"bench": "cold_start_smoke", "gates": [record]}
        )
    print("OK" if record["ok"] else "FAIL")
    return 0 if record["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
