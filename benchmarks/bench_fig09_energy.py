"""Fig. 9 — End-to-end energy-efficiency comparison.

Paper: DRIM-ANN achieves 1.63–2.42x (geomean 1.97x) higher energy
efficiency than the CPU baseline on SIFT100M, despite each PIM-DIMM
drawing 13.92 W (the UPMEM server's total power exceeds the CPU
server's). Energy here is power x modeled time with the paper's power
figures; the DIMM count scales with the simulated system.
"""

import pytest

from benchmarks.common import (
    NLIST_SWEEP,
    NUM_DPUS,
    NUM_QUERIES,
    PAPER_NUM_DPUS,
    cpu_baseline,
    engine_run,
    geomean,
    params_for,
    print_table,
)
from repro.pim.config import PimSystemConfig
from repro.pim.energy import EnergyModel


def _energy(ds):
    em = EnergyModel()
    # Both servers are represented at the same silicon fraction: the
    # 64-DPU system is a 64/2530 slice of the paper's UPMEM server, the
    # CPU profile a matching slice of the Xeon (see scaled_cpu_profile).
    # Power therefore scales by the same fraction on both sides.
    from repro.pim.config import paper_system_config

    frac = NUM_DPUS / PAPER_NUM_DPUS
    pim_watts = em.pim_power(paper_system_config()) * frac
    cpu_watts = em.cpu_power() * frac
    rows = []
    ratios = []
    for nlist in NLIST_SWEEP:
        params = params_for(nlist=nlist)
        _, bd = engine_run(ds, params)
        cpu_s = cpu_baseline(ds, params).model_timing(NUM_QUERIES, params).seconds
        pim_qpj = NUM_QUERIES / (bd.e2e_seconds * pim_watts)
        cpu_qpj = NUM_QUERIES / (cpu_s * cpu_watts)
        ratios.append(pim_qpj / cpu_qpj)
        rows.append(
            (
                nlist,
                f"{pim_watts:.1f} W",
                f"{cpu_watts:.1f} W",
                f"{pim_qpj:,.0f}",
                f"{cpu_qpj:,.0f}",
                f"{ratios[-1]:.2f}x",
            )
        )
    return rows, ratios


def test_fig09_energy(sift_ds, benchmark):
    rows, ratios = benchmark.pedantic(_energy, args=(sift_ds,), rounds=1, iterations=1)
    print_table(
        "Fig. 9: energy efficiency (queries/J), SIFT-like",
        ("nlist", "pim power", "cpu power", "pim q/J", "cpu q/J", "ratio"),
        rows,
    )
    print(f"geomean efficiency ratio: {geomean(ratios):.2f}x (paper: 1.97x)")
    # Shape: PIM is more energy-efficient at its best configurations.
    assert max(ratios) > 1.0


def test_fig09_mram_gating_forecast(sift_ds, benchmark):
    """§V-B's closing note: with dynamic gating of unused MRAM the
    efficiency would improve further. Our scaled corpus uses a small
    fraction of the 64 MB/DPU, so gating is a large multiplier here."""
    from repro.pim.config import paper_system_config
    from repro.pim import PimSystemConfig

    def run():
        params = params_for(nlist=NLIST_SWEEP[2])
        _, bd = engine_run(sift_ds, params)
        em_plain = EnergyModel()
        em_gated = EnergyModel(mram_gating=True)
        cfg = paper_system_config()
        frac = NUM_DPUS / PAPER_NUM_DPUS
        # Live-MRAM fraction from the engine's own placement.
        from benchmarks.common import build_engine, default_layout

        engine = build_engine(sift_ds, params, layout=default_layout())
        used = engine.system.mram_usage().sum()
        total = NUM_DPUS * engine.system.config.dpu.mram_bytes
        util = used / total
        plain = em_plain.pim_power(cfg) * frac
        gated = em_gated.pim_power(cfg, mram_utilization=util) * frac
        return util, plain, gated

    util, plain, gated = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nMRAM gating forecast: live data fills {util:.1%} of MRAM; "
        f"power {plain:.2f} W -> {gated:.2f} W "
        f"({plain / gated:.2f}x efficiency at equal throughput)"
    )
    assert gated < plain
