"""Ablation — performance-model validation against the balanced simulator.

The paper validates its model implicitly via Fig. 10(b) (model vs
*imbalanced* system). Here we close the loop the other way: after the
load balancer runs, the simulator should approach the ideal model much
more closely than the imbalanced arm does — quantifying how much of the
model-vs-real gap is pure load imbalance (the paper's thesis) versus
other unmodeled effects (DMA setup, address arithmetic).
"""

import pytest

from benchmarks.common import (
    NLIST_SWEEP,
    NPROBE_SWEEP,
    NUM_DPUS,
    NUM_QUERIES,
    engine_run,
    geomean,
    params_for,
    print_table,
)
from repro.core.params import DatasetShape
from repro.core.perf_model import AnalyticPerfModel, HardwareProfile
from repro.pim.config import PimSystemConfig


def _validate(ds):
    shape = DatasetShape(
        num_points=ds.num_base, dim=ds.dim, num_queries=NUM_QUERIES
    )
    model = AnalyticPerfModel(
        shape,
        HardwareProfile.for_pim(PimSystemConfig(num_dpus=NUM_DPUS)),
        multiplier_less=True,
    )
    rows = []
    gaps_balanced = []
    gaps_unbalanced = []
    for nlist in (NLIST_SWEEP[1], NLIST_SWEEP[2]):
        for nprobe in (NPROBE_SWEEP[1], NPROBE_SWEEP[2]):
            params = params_for(nlist=nlist, nprobe=nprobe)
            ideal = model.split_seconds(params)
            _, bal = engine_run(ds, params)
            _, unb = engine_run(
                ds, params, layout_tag="unbalanced", with_scheduler=False
            )
            g_bal = bal.pim_seconds / ideal
            g_unb = unb.pim_seconds / ideal
            gaps_balanced.append(g_bal)
            gaps_unbalanced.append(g_unb)
            rows.append(
                (nlist, nprobe, f"{ideal * 1e3:.1f} ms",
                 f"{g_bal:.2f}x", f"{g_unb:.2f}x")
            )
    return rows, gaps_balanced, gaps_unbalanced


def test_model_validation(sift_ds, benchmark):
    rows, gaps_bal, gaps_unb = benchmark.pedantic(
        _validate, args=(sift_ds,), rounds=1, iterations=1
    )
    print_table(
        "Model validation: simulator / ideal-model time",
        ("nlist", "nprobe", "ideal", "balanced gap", "imbalanced gap"),
        rows,
    )
    print(
        f"geomean gap: balanced {geomean(gaps_bal):.2f}x, "
        f"imbalanced {geomean(gaps_unb):.2f}x — load balancing closes "
        f"{(1 - geomean(gaps_bal) / geomean(gaps_unb)):.0%} of the gap"
    )
    # The balanced system must sit much nearer the model.
    assert geomean(gaps_bal) < geomean(gaps_unb)
