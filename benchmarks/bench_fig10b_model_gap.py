"""Fig. 10(b) — Gap between the ideal performance model and the real
(imbalanced) system.

Paper: the analytic model (which ignores load imbalance) predicts
3.32–6.48x faster execution (geomean 5.23x) than DRIM-ANN *without*
load-balance optimization — that gap is the headroom the layout
optimizer and runtime scheduler then recover (Fig. 11). Both sides use
the multiplier-less conversion.
"""

import pytest

from benchmarks.common import (
    NLIST_SWEEP,
    NPROBE_SWEEP,
    NUM_DPUS,
    NUM_QUERIES,
    engine_run,
    geomean,
    params_for,
    print_table,
)
from repro.core.params import DatasetShape
from repro.core.perf_model import AnalyticPerfModel, HardwareProfile
from repro.pim.config import PimSystemConfig


def _gap_grid(ds):
    shape = DatasetShape(
        num_points=ds.num_base, dim=ds.dim, num_queries=NUM_QUERIES
    )
    profile = HardwareProfile.for_pim(PimSystemConfig(num_dpus=NUM_DPUS))
    model = AnalyticPerfModel(shape, profile, multiplier_less=True)
    rows = []
    gaps = []
    for nlist in (NLIST_SWEEP[0], NLIST_SWEEP[2]):
        for nprobe in (NPROBE_SWEEP[1], NPROBE_SWEEP[3]):
            params = params_for(nlist=nlist, nprobe=nprobe)
            ideal = model.split_seconds(params)
            _, bd = engine_run(
                ds, params, layout_tag="unbalanced", with_scheduler=False
            )
            gap = bd.pim_seconds / ideal
            gaps.append(gap)
            rows.append(
                (
                    nlist,
                    nprobe,
                    f"{ideal * 1e3:.2f} ms",
                    f"{bd.pim_seconds * 1e3:.2f} ms",
                    f"{gap:.2f}x",
                    f"{bd.mean_busy_fraction:.0%}",
                )
            )
    return rows, gaps


def test_fig10b_model_gap(sift_ds, benchmark):
    rows, gaps = benchmark.pedantic(_gap_grid, args=(sift_ds,), rounds=1, iterations=1)
    print_table(
        "Fig. 10(b): ideal model vs imbalanced DRIM-ANN",
        ("nlist", "nprobe", "ideal", "imbalanced", "gap", "DPU busy"),
        rows,
    )
    print(f"geomean gap: {geomean(gaps):.2f}x (paper: 5.23x, range 3.32-6.48x)")

    # Shape: the ideal model is consistently optimistic — imbalance is real.
    assert all(g > 1.0 for g in gaps)
