"""Ablation — runtime-scheduler policies (DESIGN.md design-choice list).

Separates the contributions of the two §IV-D mechanisms on a fixed,
fully-duplicated layout:

* static      — always replica 0 (no choice), no filter;
* predictor   — Eq. 15 least-predicted-load replica choice, no filter;
* pred+filter — the full scheduler (paper configuration).

The paper attributes the big duplication win ("2-3x when copies go
0 -> 1") to online scheduling; this bench shows how much of that is the
predictor versus the inter-batch filter.
"""

import pytest

from benchmarks.common import (
    NLIST_SWEEP,
    build_engine,
    default_layout,
    params_for,
    print_table,
)
from repro.core.scheduler import RuntimeScheduler, SchedulerConfig


def _with_policy(engine, policy, threshold):
    old = engine.scheduler.config
    return RuntimeScheduler(
        engine.plan,
        SchedulerConfig(
            lut_latency=old.lut_latency,
            per_point_calc=old.per_point_calc,
            per_point_sort=old.per_point_sort,
            filter_threshold=threshold,
            policy=policy,
        ),
    )


def _policies(ds):
    params = params_for(nlist=NLIST_SWEEP[2])
    engine = build_engine(ds, params, layout=default_layout())
    arms = (
        ("static", "static", None),
        ("predictor", "predictor", None),
        ("pred+filter", "predictor", 1.5),
    )
    rows = []
    times = {}
    for label, policy, threshold in arms:
        engine.scheduler = _with_policy(engine, policy, threshold)
        _, bd = engine.search(ds.queries)
        times[label] = bd.pim_seconds
        rows.append(
            (label, f"{bd.pim_seconds * 1e3:.2f} ms",
             f"{bd.mean_busy_fraction:.0%}")
        )
    return rows, times


def test_ablation_scheduler(sift_ds, benchmark):
    rows, times = benchmark.pedantic(_policies, args=(sift_ds,), rounds=1, iterations=1)
    print_table(
        "Scheduler ablation (fixed balanced layout)",
        ("policy", "pim time", "DPU busy"),
        rows,
    )
    # The predictor must beat static replica choice; the filter must not hurt.
    assert times["predictor"] <= times["static"]
    assert times["pred+filter"] <= times["predictor"] * 1.1
