"""Extension — tail latency under open-loop load.

The paper's load balancer is motivated by tail latency ("to alleviate
the tail latency, we propose a mixed load-balance strategy"). This
bench serves a Poisson query stream through the balanced and
id-order engines at the same arrival rate and compares the latency
distribution: imbalance inflates p99 far more than the mean, because a
single straggler batch delays everything queued behind it on the
host-synchronous PIM.

Run with ``--smoke`` as the CI micro-batching gate: it replays the
same arrival stream with ``dispatch="coalesce"`` and
``dispatch="per_query"`` at a rate past the per-query capacity knee,
checks the two serve bit-identical results, and requires coalescing to
raise sustained QPS at an equal-or-better p99 and deadline-miss rate.
The run writes a machine-readable ``BENCH_serving.json`` artifact.
"""

import pytest

from benchmarks.common import (
    NLIST_SWEEP,
    NUM_DPUS,
    build_engine,
    default_layout,
    params_for,
    print_table,
    unbalanced_layout,
)
from repro.core.serving import BatchingPolicy, PoissonArrivals, simulate_serving

RATE_QPS = 4_000
NUM = 600


def _serve(ds):
    params = params_for(nlist=NLIST_SWEEP[2])
    arrivals = PoissonArrivals(RATE_QPS).sample(NUM, seed=1)
    policy = BatchingPolicy(batch_size=64, max_wait_s=2e-3)
    rows = []
    reports = {}
    for label, layout, sched in (
        ("balanced", default_layout(), True),
        ("id-order", unbalanced_layout(), False),
    ):
        engine = build_engine(ds, params, layout=layout)
        rep = simulate_serving(
            engine, ds.queries[:NUM], arrivals, policy, with_scheduler=sched
        )
        reports[label] = rep
        rows.append(
            (
                label,
                f"{rep.mean_ms:.2f}",
                f"{rep.percentile_ms(50):.2f}",
                f"{rep.percentile_ms(95):.2f}",
                f"{rep.percentile_ms(99):.2f}",
                f"{rep.utilization:.0%}",
            )
        )
    return rows, reports


def test_serving_tail_latency(sift_ds, benchmark):
    rows, reports = benchmark.pedantic(_serve, args=(sift_ds,), rounds=1, iterations=1)
    print_table(
        f"Serving tail latency at {RATE_QPS:,} QPS Poisson (ms)",
        ("engine", "mean", "p50", "p95", "p99", "util"),
        rows,
    )
    bal, unb = reports["balanced"], reports["id-order"]
    p99_gain = unb.percentile_ms(99) / bal.percentile_ms(99)
    mean_gain = unb.mean_ms / bal.mean_ms
    print(f"balanced improves mean {mean_gain:.2f}x, p99 {p99_gain:.2f}x")
    # The balanced engine must not be worse anywhere that matters.
    assert bal.percentile_ms(99) <= unb.percentile_ms(99)
    assert bal.mean_ms <= unb.mean_ms * 1.05


# ---------------------------------------------------------------- CLI
def run_smoke(
    num_queries: int = 400,
    rate_qps: float = 12_000,
    deadline_ms: float = 25.0,
    min_qps_ratio: float = 1.2,
) -> dict:
    """CI gate: micro-batch coalescing vs per-query dispatch.

    The arrival rate sits past the per-query capacity knee (one engine
    round per query saturates the host-synchronous PIM around 6.5k QPS
    on this workload) but well inside coalescing capacity, so the gate
    checks exactly the claim micro-batching makes: higher sustained
    QPS at an equal-or-better p99 and deadline-miss rate. Service
    times are the engine's deterministic modeled batch times and the
    arrival stream is seeded, so the comparison is noise-free.
    """
    import numpy as np

    from benchmarks.common import SEED
    from repro.data import load_dataset

    ds = load_dataset(
        "sift-like-20k", seed=SEED, num_queries=num_queries, ground_truth_k=10
    )
    params = params_for(nlist=128, nprobe=8, m=16, cb=64)
    queries = ds.queries[:num_queries]
    arrivals = PoissonArrivals(rate_qps).sample(num_queries, seed=7)
    record = {
        "gate": "coalesce_vs_per_query",
        "num_queries": num_queries,
        "rate_qps": rate_qps,
        "deadline_ms": deadline_ms,
        "min_qps_ratio": min_qps_ratio,
        "ok": False,
    }
    outcomes = {}
    for dispatch in ("coalesce", "per_query"):
        policy = BatchingPolicy(
            batch_size=32,
            max_wait_s=2e-3,
            deadline_s=deadline_ms * 1e-3,
            dispatch=dispatch,
        )
        engine = build_engine(ds, params, num_dpus=16)
        try:
            outcomes[dispatch] = simulate_serving(
                engine, queries, arrivals, policy, return_results=True
            )
        finally:
            engine.close()
        out = outcomes[dispatch]
        record[dispatch] = {
            "achieved_qps": out.achieved_qps,
            "p99_ms": out.percentile_ms(99),
            "deadline_misses": out.deadline_misses,
            "utilization": out.utilization,
            "num_batches": len(out.batch_sizes),
        }
        print(
            f"{dispatch:>9}: {out.achieved_qps:,.0f} QPS sustained, "
            f"p99 {out.percentile_ms(99):.2f} ms, "
            f"{out.deadline_misses} deadline misses, "
            f"{out.utilization:.0%} util, {len(out.batch_sizes)} rounds"
        )
    co, pq = outcomes["coalesce"], outcomes["per_query"]
    if not (
        np.array_equal(co.results.ids, pq.results.ids)
        and np.array_equal(co.results.distances, pq.results.distances)
    ):
        print("FAIL: coalesced and per-query serving results differ")
        return record
    qps_ratio = co.achieved_qps / pq.achieved_qps
    record["qps_ratio"] = qps_ratio
    print(
        f"coalescing sustains {qps_ratio:.2f}x the per-query QPS "
        f"(floor {min_qps_ratio:.1f}x)"
    )
    if qps_ratio < min_qps_ratio:
        print(f"FAIL: coalescing only {qps_ratio:.2f}x per-query QPS")
        return record
    if co.percentile_ms(99) > pq.percentile_ms(99):
        print("FAIL: coalescing worsened p99")
        return record
    if co.deadline_misses > pq.deadline_misses:
        print("FAIL: coalescing worsened the deadline-miss rate")
        return record
    record["ok"] = True
    return record


def main(argv=None) -> int:
    import argparse

    from benchmarks.common import bench_dataset, write_bench_artifact

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI micro-batching gate: coalescing must raise sustained "
        "QPS at equal-or-better p99 and deadline-miss rate",
    )
    parser.add_argument("--queries", type=int, default=400)
    parser.add_argument("--rate", type=float, default=12_000)
    parser.add_argument("--deadline-ms", type=float, default=25.0)
    parser.add_argument("--min-qps-ratio", type=float, default=1.2)
    parser.add_argument(
        "--artifact",
        default="BENCH_serving.json",
        help="where the machine-readable smoke record is written",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        record = run_smoke(
            args.queries, args.rate, args.deadline_ms, args.min_qps_ratio
        )
        write_bench_artifact(
            args.artifact, {"bench": "serving_smoke", "gates": [record]}
        )
        print("OK" if record["ok"] else "FAIL")
        return 0 if record["ok"] else 1
    ds = bench_dataset()
    rows, _ = _serve(ds)
    print_table(
        f"Serving tail latency at {RATE_QPS:,} QPS Poisson (ms)",
        ("engine", "mean", "p50", "p95", "p99", "util"),
        rows,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
