"""Extension — tail latency under open-loop load.

The paper's load balancer is motivated by tail latency ("to alleviate
the tail latency, we propose a mixed load-balance strategy"). This
bench serves a Poisson query stream through the balanced and
id-order engines at the same arrival rate and compares the latency
distribution: imbalance inflates p99 far more than the mean, because a
single straggler batch delays everything queued behind it on the
host-synchronous PIM.
"""

import pytest

from benchmarks.common import (
    NLIST_SWEEP,
    NUM_DPUS,
    build_engine,
    default_layout,
    params_for,
    print_table,
    unbalanced_layout,
)
from repro.core.serving import BatchingPolicy, PoissonArrivals, simulate_serving

RATE_QPS = 4_000
NUM = 600


def _serve(ds):
    params = params_for(nlist=NLIST_SWEEP[2])
    arrivals = PoissonArrivals(RATE_QPS).sample(NUM, seed=1)
    policy = BatchingPolicy(batch_size=64, max_wait_s=2e-3)
    rows = []
    reports = {}
    for label, layout, sched in (
        ("balanced", default_layout(), True),
        ("id-order", unbalanced_layout(), False),
    ):
        engine = build_engine(ds, params, layout=layout)
        rep = simulate_serving(
            engine, ds.queries[:NUM], arrivals, policy, with_scheduler=sched
        )
        reports[label] = rep
        rows.append(
            (
                label,
                f"{rep.mean_ms:.2f}",
                f"{rep.percentile_ms(50):.2f}",
                f"{rep.percentile_ms(95):.2f}",
                f"{rep.percentile_ms(99):.2f}",
                f"{rep.utilization:.0%}",
            )
        )
    return rows, reports


def test_serving_tail_latency(sift_ds, benchmark):
    rows, reports = benchmark.pedantic(_serve, args=(sift_ds,), rounds=1, iterations=1)
    print_table(
        f"Serving tail latency at {RATE_QPS:,} QPS Poisson (ms)",
        ("engine", "mean", "p50", "p95", "p99", "util"),
        rows,
    )
    bal, unb = reports["balanced"], reports["id-order"]
    p99_gain = unb.percentile_ms(99) / bal.percentile_ms(99)
    mean_gain = unb.mean_ms / bal.mean_ms
    print(f"balanced improves mean {mean_gain:.2f}x, p99 {p99_gain:.2f}x")
    # The balanced engine must not be worse anywhere that matters.
    assert bal.percentile_ms(99) <= unb.percentile_ms(99)
    assert bal.mean_ms <= unb.mean_ms * 1.05
