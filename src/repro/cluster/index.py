"""Rack-scale sharding: one IVF-PQ index across N engine replicas.

The single-platform engine tops out at one PIM system's DPU count; the
ROADMAP's "living index at cluster scale" tier puts several platforms
behind one frontend. This module is the *data* half of that tier:

* :func:`partition_clusters` — the paper's heat-greedy allocator
  (§IV-C, Observation 3) reapplied at rack granularity: IVF clusters
  are bins-packed onto shards least-loaded-first so no shard
  concentrates the hot set;
* :class:`ClusterIndex` — the global routing index (integer centroids,
  used by the frontend for one global CL per batch) plus, per shard, a
  sub-:class:`~repro.core.quantized.QuantizedIndexData` over the
  clusters it owns and ``replication`` independently built engine
  replicas of it.

Replicas of one shard are built from the same sub-index with the same
seed, so they return **bit-identical** answers — the frontend's hedged
requests and crash failover can substitute one replica's response for
another's without perturbing results. Because shards own *disjoint*
cluster subsets and the engine's merge is the canonical
``(distance, id)`` tie-break, the union of per-shard top-k pools
contains every global top-k candidate, and the frontend's merge is
bit-identical to the single-engine oracle
(:meth:`~repro.core.quantized.QuantizedIndexData.reference_search`).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from typing import List, Optional

import numpy as np

from repro.ann.ivfpq import IVFPQIndex
from repro.core.config import EngineConfig
from repro.core.engine import DrimAnnEngine
from repro.core.layout import estimate_cluster_heat
from repro.core.persist import (
    IndexFormatError,
    _atomic_write,
    load_index_bundle,
    save_index,
)
from repro.core.quantized import QuantizedIndexData, build_quantized_index
from repro.utils import check_2d

#: Manifest identity for on-disk cluster directories.
_CLUSTER_MAGIC = "drimann-cluster-index"
CLUSTER_FORMAT_VERSION = 1


@dataclass(frozen=True)
class ClusterConfig:
    """Rack topology: how many shards, how many replicas of each.

    ``replication`` is the number of independent engine replicas
    serving every shard (1 = no redundancy). A shard stays available —
    and the cluster stays bit-exact — as long as one of its replicas
    survives.
    """

    num_shards: int = 4
    replication: int = 1

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")

    @property
    def num_nodes(self) -> int:
        return self.num_shards * self.replication


def partition_clusters(cluster_heat: np.ndarray, num_shards: int) -> np.ndarray:
    """Greedy least-loaded-first cluster→shard assignment.

    The same policy the intra-platform allocator uses for shards→DPUs
    (:func:`repro.core.layout.generate_layout`), one level up: visit
    clusters hottest-first (stable order) and place each on the shard
    with the least accumulated heat, lowest id on ties. Returns the
    owner shard id per cluster, shape ``(nlist,)``.
    """
    heat = np.asarray(cluster_heat, dtype=np.float64)
    if heat.ndim != 1:
        raise ValueError(f"cluster_heat must be 1-D, got shape {heat.shape}")
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    owner = np.zeros(len(heat), dtype=np.int64)
    shard_heat = np.zeros(num_shards)
    for cid in np.argsort(-heat, kind="stable"):
        s = int(np.argmin(shard_heat))  # lowest id wins ties
        owner[cid] = s
        shard_heat[s] += heat[cid]
    return owner


def _sub_index(
    quantized: QuantizedIndexData, owned: np.ndarray
) -> QuantizedIndexData:
    """The shard-local index over ``owned`` global cluster ids.

    Local cluster ``i`` is global cluster ``owned[i]``; point ids stay
    global, so per-shard results merge directly.
    """
    masks = quantized.tombstone_masks()
    return QuantizedIndexData(
        centroids=quantized.centroids[owned].copy(),
        codebooks=quantized.codebooks,
        cluster_ids=[quantized.cluster_ids[int(c)] for c in owned],
        cluster_codes=[quantized.cluster_codes[int(c)] for c in owned],
        tombstones=(
            None if masks is None else [masks[int(c)].copy() for c in owned]
        ),
    )


@dataclass
class ShardHandle:
    """One shard: its owned clusters, id maps, and engine replicas."""

    shard_id: int
    global_cids: np.ndarray  # (n_owned,) sorted global cluster ids
    global_to_local: np.ndarray  # (nlist,) int64, -1 where not owned
    sub_index: QuantizedIndexData
    engines: List[DrimAnnEngine] = field(default_factory=list)

    @property
    def num_replicas(self) -> int:
        return len(self.engines)

    def local_probes(self, global_probes: np.ndarray) -> np.ndarray:
        """Map a global ``(nq, nprobe)`` probe matrix to local ids.

        Probes this shard does not own become ``-1`` (the engine's
        probe-skip sentinel).
        """
        return self.global_to_local[global_probes]


class ClusterIndex:
    """A sharded IVF-PQ index: global router + per-shard engines.

    Nodes are numbered ``shard_id * replication + replica_id``; the
    frontend's :class:`~repro.faults.plan.NodeFaultPlan` indexes this
    space. Close (or use as a context manager) to release every shard
    engine's data plane.
    """

    def __init__(
        self,
        router: QuantizedIndexData,
        params,
        config: ClusterConfig,
        owner: np.ndarray,
        shards: List[ShardHandle],
    ) -> None:
        self.router = router
        self.params = params
        self.config = config
        self.owner = owner
        self.shards = shards

    # ----- topology -------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.config.num_shards

    @property
    def replication(self) -> int:
        return self.config.replication

    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    def shard_of_node(self, node_id: int) -> int:
        return node_id // self.replication

    def node_id(self, shard_id: int, replica_id: int) -> int:
        return shard_id * self.replication + replica_id

    def node_engine(self, node_id: int) -> DrimAnnEngine:
        shard = self.shards[self.shard_of_node(node_id)]
        return shard.engines[node_id % self.replication]

    # ----- search helpers ---------------------------------------------------
    def locate(self, queries: np.ndarray) -> np.ndarray:
        """Global CL: ``(nq, nprobe)`` global cluster ids, nearest first."""
        return self.router.locate(queries, self.params.nprobe)

    def locate_with_distances(self, queries: np.ndarray):
        """Global CL keeping the int64 centroid distances.

        ``(ids, dists)`` — the statistics the frontend's adaptive
        budgets are computed from (see :mod:`repro.core.adaptive`).
        """
        return self.router.locate_with_distances(queries, self.params.nprobe)

    def oracle_search(self, queries: np.ndarray):
        """The single-engine gold standard the cluster must match."""
        return self.router.reference_search(
            queries, self.params.k, self.params.nprobe
        )

    # ----- persistence ------------------------------------------------------
    def save(self, directory: str) -> None:
        """Persist the rack to ``directory`` (router + one file per shard).

        Layout: ``router.drim`` (the global routing index),
        ``shard_NNNN.drim`` (each shard's sub-index with its engines'
        intra-platform cluster heat, so a reload reproduces the exact
        DPU layout), and ``manifest.json``. The manifest is written
        *last* and atomically — a crash mid-save leaves either the old
        manifest (old rack still loadable) or no manifest (directory
        recognizably incomplete), never a manifest pointing at missing
        shard files.
        """
        os.makedirs(directory, exist_ok=True)
        save_index(self.router, os.path.join(directory, "router.drim"))
        shard_entries = []
        for shard in self.shards:
            fname = f"shard_{shard.shard_id:04d}.drim"
            heat = shard.engines[0].cluster_heat if shard.engines else None
            save_index(
                shard.sub_index,
                os.path.join(directory, fname),
                cluster_heat=heat,
            )
            shard_entries.append(
                {
                    "shard_id": shard.shard_id,
                    "file": fname,
                    "global_cids": [int(c) for c in shard.global_cids],
                }
            )
        manifest = {
            "magic": _CLUSTER_MAGIC,
            "format_version": CLUSTER_FORMAT_VERSION,
            "num_shards": self.config.num_shards,
            "replication": self.config.replication,
            "nlist": int(self.router.nlist),
            "num_subspaces": int(self.router.num_subspaces),
            "codebook_size": int(self.router.codebook_size),
            "owner": [int(s) for s in self.owner],
            "shards": shard_entries,
        }
        payload = json.dumps(manifest, indent=2, sort_keys=True)

        def _write(f) -> None:
            f.write(payload.encode("utf-8"))

        _atomic_write(os.path.join(directory, "manifest.json"), _write)

    # ----- lifecycle --------------------------------------------------------
    def close(self) -> None:
        for shard in self.shards:
            for engine in shard.engines:
                engine.close()

    def __enter__(self) -> "ClusterIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def build_cluster_index(
    base: np.ndarray,
    config: EngineConfig,
    cluster: ClusterConfig,
    *,
    heat_queries: Optional[np.ndarray] = None,
    prebuilt_quantized: Optional[QuantizedIndexData] = None,
    seed=None,
) -> ClusterIndex:
    """Train (or adopt) one global index and shard it across engines.

    ``config`` describes each *node*: every replica gets its own PIM
    system of ``config.system.num_dpus`` DPUs over its shard's
    sub-index. ``config.index.nlist`` is the global cluster count; each
    shard engine is built with ``nlist`` equal to its owned-cluster
    count (and ``nprobe`` clamped to it) — the frontend always routes
    explicit probes, so shard-local CL parameters are never exercised.

    Replicas of one shard share the sub-index and the build seed, so
    their answers are bit-identical (failover invariant). DPU-level
    fault plans and OPQ are out of scope at rack granularity and
    rejected explicitly.
    """
    if config.use_opq:
        raise ValueError(
            "cluster sharding does not support use_opq: the rotation is a "
            "corpus-level preprocess; apply it before building the cluster"
        )
    if config.faults is not None:
        raise ValueError(
            "config.faults is DPU-granularity; node faults belong to the "
            "frontend's NodeFaultPlan — pass faults=None here"
        )
    base = check_2d(base, "base")
    params = config.index
    params.validate_for(base.shape[1])

    if prebuilt_quantized is not None:
        quantized = prebuilt_quantized
    else:
        index = IVFPQIndex.build(
            base,
            nlist=params.nlist,
            num_subspaces=params.num_subspaces,
            codebook_size=params.codebook_size,
            seed=seed,
        )
        quantized = build_quantized_index(index)
    if quantized.nlist != params.nlist:
        raise ValueError(
            f"index nlist {quantized.nlist} != params.nlist {params.nlist}"
        )
    if cluster.num_shards > quantized.nlist:
        raise ValueError(
            f"{cluster.num_shards} shards need at least that many clusters, "
            f"index has {quantized.nlist}"
        )

    # Rack-granularity heat: same Eq. 15 weights the engine uses for its
    # intra-platform layout, so the two levels agree on what "hot" means.
    d, m, cb = quantized.dim, params.num_subspaces, params.codebook_size
    lut_weight = 2.0 * d * cb + d * cb + 2.0 * m * cb
    point_weight = (3.0 * m - 1.0) + 2.0
    if heat_queries is not None:
        heat = estimate_cluster_heat(
            quantized,
            heat_queries,
            params.nprobe,
            lut_weight=lut_weight,
            point_weight=point_weight,
        )
    else:
        sizes = quantized.cluster_live_sizes().astype(np.float64)
        heat = sizes * point_weight + lut_weight

    owner = partition_clusters(heat, cluster.num_shards)

    shards: List[ShardHandle] = []
    for sid in range(cluster.num_shards):
        owned = np.flatnonzero(owner == sid).astype(np.int64)
        if len(owned) == 0:
            raise ValueError(
                f"shard {sid} owns no clusters (degenerate heat vector); "
                f"reduce num_shards below {cluster.num_shards}"
            )
        g2l = np.full(quantized.nlist, -1, dtype=np.int64)
        g2l[owned] = np.arange(len(owned))
        sub = _sub_index(quantized, owned)
        shard_config = config.replace(
            index=replace(
                params,
                nlist=len(owned),
                nprobe=min(params.nprobe, len(owned)),
            ),
        )
        engines = [
            DrimAnnEngine.from_config(
                base,
                shard_config,
                heat_queries=heat_queries,
                prebuilt_quantized=sub,
                seed=seed,
            )
            for _ in range(cluster.replication)
        ]
        shards.append(
            ShardHandle(
                shard_id=sid,
                global_cids=owned,
                global_to_local=g2l,
                sub_index=sub,
                engines=engines,
            )
        )

    return ClusterIndex(
        router=quantized,
        params=params,
        config=cluster,
        owner=owner,
        shards=shards,
    )


def load_cluster_index(
    directory: str,
    config: EngineConfig,
    *,
    seed=None,
    mmap: bool = True,
) -> ClusterIndex:
    """Reopen a rack saved by :meth:`ClusterIndex.save`.

    ``config`` plays the same role as in :func:`build_cluster_index`
    (per-node system/search parameters); its index geometry must match
    the manifest. Shard engines are reassembled from the stored
    sub-indexes with their *stored* intra-platform cluster heat, so a
    reloaded rack answers bit-identically to the one that was saved —
    results and cycle ledgers both.
    """
    manifest_path = os.path.join(directory, "manifest.json")
    if not os.path.isfile(manifest_path):
        raise FileNotFoundError(
            f"no cluster manifest at {manifest_path!r}; was the directory "
            "saved with ClusterIndex.save()?"
        )
    with open(manifest_path, "r", encoding="utf-8") as f:
        try:
            manifest = json.load(f)
        except json.JSONDecodeError as exc:
            raise IndexFormatError(
                f"{manifest_path!r}: manifest is not valid JSON: {exc}"
            ) from None
    if manifest.get("magic") != _CLUSTER_MAGIC:
        raise IndexFormatError(
            f"{manifest_path!r}: not a cluster-index manifest "
            f"(magic={manifest.get('magic')!r})"
        )
    version = manifest.get("format_version")
    if version != CLUSTER_FORMAT_VERSION:
        raise IndexFormatError(
            f"{manifest_path!r} has cluster format version {version}; "
            f"this build reads {CLUSTER_FORMAT_VERSION}"
        )
    if config.use_opq:
        raise ValueError(
            "cluster sharding does not support use_opq: the rotation is a "
            "corpus-level preprocess; apply it before building the cluster"
        )
    if config.faults is not None:
        raise ValueError(
            "config.faults is DPU-granularity; node faults belong to the "
            "frontend's NodeFaultPlan — pass faults=None here"
        )
    params = config.index
    for name in ("nlist", "num_subspaces", "codebook_size"):
        want = int(manifest[name])
        got = int(getattr(params, name))
        if got != want:
            raise ValueError(
                f"config.index.{name}={got} does not match the saved "
                f"cluster at {directory!r} ({name}={want})"
            )

    cluster = ClusterConfig(
        num_shards=int(manifest["num_shards"]),
        replication=int(manifest["replication"]),
    )
    router = load_index_bundle(
        os.path.join(directory, "router.drim"), mmap=mmap
    ).index
    owner = np.asarray(manifest["owner"], dtype=np.int64)
    if owner.shape != (router.nlist,):
        raise IndexFormatError(
            f"{manifest_path!r}: owner list has {owner.shape[0]} entries, "
            f"router has {router.nlist} clusters"
        )

    shards: List[ShardHandle] = []
    for entry in manifest["shards"]:
        sid = int(entry["shard_id"])
        owned = np.asarray(entry["global_cids"], dtype=np.int64)
        shard_path = os.path.join(directory, entry["file"])
        if not os.path.isfile(shard_path):
            raise IndexFormatError(
                f"{manifest_path!r} references missing shard file "
                f"{entry['file']!r}"
            )
        bundle = load_index_bundle(shard_path, mmap=mmap)
        sub = bundle.index
        if sub.nlist != len(owned):
            raise IndexFormatError(
                f"{shard_path!r} has {sub.nlist} clusters, manifest says "
                f"shard {sid} owns {len(owned)}"
            )
        g2l = np.full(router.nlist, -1, dtype=np.int64)
        g2l[owned] = np.arange(len(owned))
        shard_config = config.replace(
            index=replace(
                params,
                nlist=len(owned),
                nprobe=min(params.nprobe, len(owned)),
            ),
        )
        engines = [
            DrimAnnEngine.from_quantized(
                sub,
                shard_config,
                cluster_heat=bundle.cluster_heat,
                seed=seed,
                index_path=shard_path,
            )
            for _ in range(cluster.replication)
        ]
        shards.append(
            ShardHandle(
                shard_id=sid,
                global_cids=owned,
                global_to_local=g2l,
                sub_index=sub,
                engines=engines,
            )
        )

    return ClusterIndex(
        router=router,
        params=params,
        config=cluster,
        owner=owner,
        shards=shards,
    )
