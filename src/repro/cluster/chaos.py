"""Cluster chaos: prove the rack tier's three robustness claims.

``repro chaos --cluster`` runs three arms over one shared workload and
index, each a seeded, deterministic experiment:

* **replicated_crash** — one node fail-stops at round 0 with
  ``replication=2``: the frontend fails over to the surviving replica
  and results stay **bit-identical** to the single-engine oracle;
* **unreplicated_crash** — the same crash with ``replication=1``: the
  dead shard's probes are uncovered, affected queries degrade with
  **accurate per-query coverage** (checked against the probe→owner
  table), and nothing raises;
* **straggler_hedged** — one node runs ``slow_factor``× slow: hedged
  requests bound the tail, so per-round e2e stays near the healthy
  baseline instead of scaling with the straggler (the no-hedging
  control arm shows the counterfactual).

Mirrors :mod:`repro.faults.chaos` one level up; not imported by
``repro.cluster.__init__``'s dependents implicitly — it pulls in the
synthetic-data stack.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List

import numpy as np

from repro.cluster.frontend import ClusterFrontend, FrontendConfig
from repro.cluster.index import ClusterConfig, build_cluster_index
from repro.core.config import EngineConfig
from repro.core.layout import LayoutConfig
from repro.core.params import IndexParams
from repro.core.quantized import build_quantized_index
from repro.ann.ivfpq import IVFPQIndex
from repro.ann.recall import recall_at_k
from repro.data.synthetic import SyntheticSpec, make_clustered_dataset
from repro.faults.plan import NodeFaultConfig, NodeFaultPlan
from repro.pim.config import PimSystemConfig


@dataclass(frozen=True)
class ClusterChaosConfig:
    """Workload shape + rack topology for the three arms."""

    num_shards: int = 4
    dpus_per_node: int = 32
    num_vectors: int = 4096
    dim: int = 32
    num_queries: int = 64
    nlist: int = 64
    nprobe: int = 8
    k: int = 10
    num_subspaces: int = 8
    codebook_size: int = 256
    slow_factor: float = 8.0  # straggler node latency multiplier
    rounds: int = 4  # search rounds per arm (p99 needs several)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")

    @classmethod
    def smoke(cls, *, seed: int = 0) -> "ClusterChaosConfig":
        """A seconds-scale run for CI."""
        return cls(
            num_shards=3,
            dpus_per_node=16,
            num_vectors=2048,
            dim=16,
            num_queries=32,
            nlist=32,
            nprobe=4,
            num_subspaces=4,
            rounds=2,
            seed=seed,
        )


@dataclass
class ClusterChaosArm:
    """Measurements from one arm."""

    name: str
    replication: int
    exact: bool  # bit-identical to the oracle, every round
    recall: float  # vs the oracle, @k (worst round)
    mean_coverage: float  # worst round
    coverage_accurate: bool  # matches the probe->owner prediction
    degraded_queries: int  # total across rounds
    node_retries: int
    hedged_requests: int
    dead_nodes: int
    raised: bool  # any round raised (must stay False)
    e2e_ms_p99: float  # p99 of per-round e2e across rounds

    def row(self) -> str:
        flag = "exact" if self.exact else "     "
        return (
            f"{self.name:20s} r={self.replication} {flag} "
            f"recall {self.recall:6.4f}  cov {self.mean_coverage:6.1%} "
            f"retries {self.node_retries:3d} hedges {self.hedged_requests:3d} "
            f"dead {self.dead_nodes:2d}  p99 {self.e2e_ms_p99:8.3f} ms"
        )


@dataclass
class ClusterChaosReport:
    """All arms, plus the healthy-baseline tail for context."""

    config: ClusterChaosConfig
    healthy_e2e_ms_p99: float = 0.0
    straggler_unhedged_e2e_ms_p99: float = 0.0
    arms: List[ClusterChaosArm] = field(default_factory=list)

    def arm(self, name: str) -> ClusterChaosArm:
        for a in self.arms:
            if a.name == name:
                return a
        raise KeyError(f"no chaos arm named {name!r}")

    def to_dict(self) -> dict:
        return {
            "config": asdict(self.config),
            "healthy_e2e_ms_p99": self.healthy_e2e_ms_p99,
            "straggler_unhedged_e2e_ms_p99": (
                self.straggler_unhedged_e2e_ms_p99
            ),
            "arms": [asdict(a) for a in self.arms],
        }

    def summary(self) -> str:
        lines = [
            f"cluster chaos: {self.config.num_shards} shards x "
            f"{self.config.dpus_per_node} DPUs, "
            f"{self.config.num_queries} queries, seed {self.config.seed}",
            f"healthy p99 {self.healthy_e2e_ms_p99:.3f} ms; "
            f"straggler without hedging p99 "
            f"{self.straggler_unhedged_e2e_ms_p99:.3f} ms",
        ]
        lines.extend(a.row() for a in self.arms)
        return "\n".join(lines)


def _run_arm(
    name: str,
    cluster,
    frontend: ClusterFrontend,
    queries: np.ndarray,
    gold,
    k: int,
    rounds: int,
) -> ClusterChaosArm:
    """Drive one frontend for ``rounds`` rounds and score it."""
    exact = True
    worst_recall = 1.0
    worst_cov = 1.0
    degraded = 0
    raised = False
    e2e_ms: List[float] = []
    retries = hedges = 0
    probes = cluster.locate(queries)
    for _ in range(rounds):
        try:
            res, rep = frontend.search(queries)
        except Exception:
            raised = True
            break
        exact = exact and bool(
            np.array_equal(res.ids, gold.ids)
            and np.array_equal(res.distances, gold.distances)
        )
        worst_recall = min(worst_recall, recall_at_k(res.ids, gold.ids, k))
        worst_cov = min(worst_cov, rep.mean_coverage)
        degraded += len(rep.degraded_queries)
        retries += rep.node_retries
        hedges += rep.hedged_requests
        e2e_ms.append(rep.e2e_seconds * 1e3)
    # Coverage prediction: a probe is covered iff its owner shard kept
    # >= 1 live replica. Uses the *final* health state, which is the
    # steady state every round after the crash round shares.
    live_shards = {
        s.shard_id
        for s in cluster.shards
        if any(
            cluster.node_id(s.shard_id, r) not in frontend.dead_nodes
            for r in range(cluster.replication)
        )
    }
    predicted = np.isin(cluster.owner[probes], sorted(live_shards)).mean(
        axis=1
    )
    last_cov = frontend_last_coverage = None
    if not raised:
        frontend_last_coverage = rep.coverage
        last_cov = np.allclose(frontend_last_coverage, predicted)
    return ClusterChaosArm(
        name=name,
        replication=cluster.replication,
        exact=exact and not raised,
        recall=worst_recall if not raised else 0.0,
        mean_coverage=worst_cov if not raised else 0.0,
        coverage_accurate=bool(last_cov) if last_cov is not None else False,
        degraded_queries=degraded,
        node_retries=retries,
        hedged_requests=hedges,
        dead_nodes=len(frontend.dead_nodes),
        raised=raised,
        e2e_ms_p99=float(np.percentile(e2e_ms, 99)) if e2e_ms else 0.0,
    )


def run_cluster_chaos(
    config: ClusterChaosConfig = ClusterChaosConfig(),
) -> ClusterChaosReport:
    """Run the three arms. Deterministic for a fixed ``config``."""
    ds = make_clustered_dataset(
        SyntheticSpec(
            num_vectors=config.num_vectors,
            dim=config.dim,
            num_components=min(config.nlist, 64),
        ),
        num_queries=config.num_queries,
        seed=config.seed,
    )
    params = IndexParams(
        nlist=config.nlist,
        nprobe=config.nprobe,
        k=config.k,
        num_subspaces=config.num_subspaces,
        codebook_size=config.codebook_size,
    )
    index = IVFPQIndex.build(
        ds.base,
        nlist=params.nlist,
        num_subspaces=params.num_subspaces,
        codebook_size=params.codebook_size,
        seed=config.seed,
    )
    quantized = build_quantized_index(index)
    engine_config = EngineConfig(
        index=params,
        system=PimSystemConfig(
            num_dpus=config.dpus_per_node,
            dpus_per_rank=min(config.dpus_per_node, 64),
        ),
        layout=LayoutConfig(max_copies=2),
    )

    def build(replication: int):
        return build_cluster_index(
            ds.base,
            engine_config,
            ClusterConfig(
                num_shards=config.num_shards, replication=replication
            ),
            heat_queries=ds.queries,
            prebuilt_quantized=quantized,
            seed=config.seed,
        )

    report = ClusterChaosReport(config=config)
    crash = NodeFaultConfig()  # explicit plans below; config stays benign

    with build(2) as replicated:
        gold = replicated.oracle_search(ds.queries)

        # Healthy baseline tail (also sanity-checks bit-exactness).
        healthy = ClusterFrontend(replicated, seed=config.seed)
        e2e = []
        for _ in range(config.rounds):
            res, rep = healthy.search(ds.queries)
            if not np.array_equal(res.ids, gold.ids):
                raise RuntimeError(
                    "healthy cluster diverged from the single-engine oracle"
                )
            e2e.append(rep.e2e_seconds * 1e3)
        report.healthy_e2e_ms_p99 = float(np.percentile(e2e, 99))
        # Hedge budget: 1.5x the slowest healthy shard path, so a
        # slow_factor-x straggler always trips it but healthy jitter
        # never does (the budget scales with the workload, keeping the
        # smoke arm honest at any size).
        hedge_after_s = 1.5 * max(rep.shard_latencies_s.values())

        # Arm 1: crash node 0 (a replica of shard 0) at round 0.
        plan = NodeFaultPlan(
            num_nodes=replicated.num_nodes,
            config=crash,
            crash_at_round={0: 0},
        )
        report.arms.append(
            _run_arm(
                "replicated_crash",
                replicated,
                ClusterFrontend(
                    replicated, node_faults=plan, seed=config.seed
                ),
                ds.queries,
                gold,
                params.k,
                config.rounds,
            )
        )

        # Arm 3: straggler node, hedging on vs off.
        slow = np.ones(replicated.num_nodes)
        slow[0] = config.slow_factor
        straggle = NodeFaultPlan(
            num_nodes=replicated.num_nodes,
            config=NodeFaultConfig(
                slow_fraction=1.0 / replicated.num_nodes,
                slow_factor=(config.slow_factor, config.slow_factor),
            ),
            slow_factors=slow,
        )
        hedge_cfg = FrontendConfig(hedge_after_s=hedge_after_s)
        report.arms.append(
            _run_arm(
                "straggler_hedged",
                replicated,
                ClusterFrontend(
                    replicated,
                    hedge_cfg,
                    node_faults=straggle,
                    seed=config.seed,
                ),
                ds.queries,
                gold,
                params.k,
                config.rounds,
            )
        )
        no_hedge = ClusterFrontend(
            replicated,
            FrontendConfig(hedge_after_s=None),
            node_faults=straggle,
            seed=config.seed,
        )
        e2e = []
        for _ in range(config.rounds):
            _, rep = no_hedge.search(ds.queries)
            e2e.append(rep.e2e_seconds * 1e3)
        report.straggler_unhedged_e2e_ms_p99 = float(np.percentile(e2e, 99))

    # Arm 2: the same crash with no redundancy.
    with build(1) as unreplicated:
        plan = NodeFaultPlan(
            num_nodes=unreplicated.num_nodes,
            config=crash,
            crash_at_round={0: 0},
        )
        report.arms.append(
            _run_arm(
                "unreplicated_crash",
                unreplicated,
                ClusterFrontend(
                    unreplicated, node_faults=plan, seed=config.seed
                ),
                ds.queries,
                gold,
                params.k,
                config.rounds,
            )
        )

    return report
