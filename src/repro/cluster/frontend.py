"""Scatter-gather frontend: deadlines, retries, hedging, failover.

The *control* half of the rack tier. One :class:`ClusterFrontend` owns
a :class:`~repro.cluster.index.ClusterIndex` and serves batched
searches by:

1. running **one global CL** against the routing index (charged once,
   like the single engine's host CL);
2. **scattering** each shard the probes it owns (the engine's explicit
   ``probes`` path — no shard re-runs CL);
3. gathering per-shard top-k with asyncio and **merging** with the
   canonical ``(distance, id)`` tie-break, which is arrival-order
   invariant — so results are bit-identical to the single-engine
   oracle no matter how shard responses interleave.

Robustness mechanics, all in **modeled** time (nothing sleeps; the
asyncio loop only orders the scatter-gather — see AL010):

* **deadline + retry/backoff** — a node that is crashed or partitioned
  costs one ``shard_deadline_s`` timeout, then the request fails over
  to the next live replica after a
  :class:`~repro.utils.backoff.BackoffPolicy` delay;
* **hedging** — when a healthy node's modeled response time exceeds
  ``hedge_after_s`` and the shard has another live replica, a hedge is
  issued there; replicas answer bit-identically, so the effective
  latency is the min of the two paths and the result is unchanged;
* **health tracking** — crashes blacklist a node permanently;
  repeated partition timeouts suspend it for
  ``suspend_rounds`` rounds (it may recover);
* **graceful degradation** — when every replica of a shard is down,
  the probes it owns are simply uncovered: affected queries return the
  best-of-the-rest with accurate per-query coverage, never an
  exception.

Determinism: node faults come pre-drawn from a seeded
:class:`~repro.faults.plan.NodeFaultPlan`; backoff jitter streams are
spawned in shard order at scatter time; the merge is order-canonical.
Two runs with the same seeds produce byte-identical reports.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.ann.ivfpq import SearchResult
from repro.cluster.index import ClusterIndex
from repro.core.adaptive import probe_budgets
from repro.core.params import ADAPTIVE_MODES, DatasetShape
from repro.core.perf_model import AnalyticPerfModel, HardwareProfile
from repro.faults.plan import NodeFaultPlan
from repro.obs.observer import EngineObserver
from repro.utils import (
    BackoffPolicy,
    check_2d,
    ensure_rng,
    merge_topk_pools,
    spawn_rngs,
)


@dataclass(frozen=True)
class FrontendConfig:
    """Frontend robustness knobs (times are modeled seconds)."""

    # A request to a dead/partitioned node is detected after this long.
    shard_deadline_s: float = 5e-3
    # Hedge to a second replica when the primary's modeled response
    # time exceeds this. None disables hedging.
    hedge_after_s: Optional[float] = 2e-3
    # Attempts per shard request across replicas (1 = no retry).
    max_attempts: int = 3
    backoff: BackoffPolicy = field(default_factory=BackoffPolicy)
    # Modeled per-request network round-trip.
    network_latency_s: float = 50e-6
    # Partition timeouts before a node is suspended, and for how long.
    suspend_after: int = 2
    suspend_rounds: int = 8
    # Admission control (used by the cluster serving loop): queries
    # beyond this many waiting at batch launch are rejected up front.
    # None disables admission control.
    admission_queue_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if self.shard_deadline_s <= 0:
            raise ValueError("shard_deadline_s must be > 0")
        if self.hedge_after_s is not None and self.hedge_after_s <= 0:
            raise ValueError("hedge_after_s must be > 0 or None")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.network_latency_s < 0:
            raise ValueError("network_latency_s must be >= 0")
        if self.suspend_after < 1:
            raise ValueError("suspend_after must be >= 1")
        if self.suspend_rounds < 0:
            raise ValueError("suspend_rounds must be >= 0")
        if (
            self.admission_queue_limit is not None
            and self.admission_queue_limit < 1
        ):
            raise ValueError("admission_queue_limit must be >= 1 or None")


@dataclass
class ShardResponse:
    """One shard's answer to one scatter round (or its failure)."""

    shard_id: int
    query_rows: np.ndarray  # batch row indices this shard served
    ids: Optional[np.ndarray] = None  # (len(query_rows), k)
    distances: Optional[np.ndarray] = None
    latency_s: float = 0.0  # modeled scatter->response time
    attempts: int = 1
    hedged: bool = False
    failed: bool = False  # every replica down / attempts exhausted

    @property
    def ok(self) -> bool:
        return not self.failed


def merge_shard_results(
    responses: List[ShardResponse], num_queries: int, k: int
) -> SearchResult:
    """Merge per-shard top-k pools into global top-k.

    Pure and **order-invariant**: shards own disjoint cluster sets, so
    no candidate appears twice, and the canonical ``(distance, id)``
    tie-break makes the selection independent of the order responses
    arrive (the hypothesis property test permutes ``responses``).
    Failed responses contribute nothing; rows some shard never served
    keep the ``-1`` / ``+inf`` fill.
    """
    pools_i: List[List[np.ndarray]] = [[] for _ in range(num_queries)]
    pools_d: List[List[np.ndarray]] = [[] for _ in range(num_queries)]
    for resp in responses:
        if not resp.ok or resp.ids is None:
            continue
        for row_local, row in enumerate(resp.query_rows):
            ids = resp.ids[row_local]
            keep = ids >= 0
            if not np.any(keep):
                continue
            pools_i[int(row)].append(ids[keep])
            pools_d[int(row)].append(resp.distances[row_local][keep])
    out_ids, out_dist = merge_topk_pools(pools_i, pools_d, num_queries, k)
    return SearchResult(ids=out_ids, distances=out_dist)


@dataclass
class ClusterReport:
    """Per-round robustness ledger for one frontend search."""

    num_queries: int
    e2e_seconds: float  # global CL + slowest shard path
    cl_seconds: float
    shard_latencies_s: Dict[int, float] = field(default_factory=dict)
    coverage: np.ndarray = field(default_factory=lambda: np.ones(0))
    node_retries: int = 0
    hedged_requests: int = 0
    failed_shards: List[int] = field(default_factory=list)
    dead_nodes: List[int] = field(default_factory=list)
    backoff_seconds: float = 0.0

    @property
    def degraded_queries(self) -> List[int]:
        return [int(q) for q in np.flatnonzero(self.coverage < 1.0)]

    @property
    def mean_coverage(self) -> float:
        if len(self.coverage) == 0:
            return 1.0
        return float(self.coverage.mean())

    def to_dict(self) -> dict:
        return {
            "num_queries": self.num_queries,
            "e2e_seconds": self.e2e_seconds,
            "cl_seconds": self.cl_seconds,
            "shard_latencies_s": {
                str(s): lat for s, lat in sorted(self.shard_latencies_s.items())
            },
            "mean_coverage": self.mean_coverage,
            "degraded_queries": self.degraded_queries,
            "node_retries": self.node_retries,
            "hedged_requests": self.hedged_requests,
            "failed_shards": sorted(self.failed_shards),
            "dead_nodes": sorted(self.dead_nodes),
            "backoff_seconds": self.backoff_seconds,
        }


@dataclass
class ClusterOutcome:
    """Results + report; unpacks like ``(results, report)``."""

    results: SearchResult
    report: ClusterReport

    def __iter__(self):
        return iter((self.results, self.report))


class _NodeCall:
    """Outcome of one modeled RPC to one node."""

    __slots__ = ("ok", "kind", "latency_s", "ids", "distances")

    def __init__(self, ok, kind, latency_s, ids=None, distances=None):
        self.ok = ok
        self.kind = kind  # "ok" | "crash" | "partition"
        self.latency_s = latency_s
        self.ids = ids
        self.distances = distances


class ClusterFrontend:
    """Asyncio scatter-gather over a :class:`ClusterIndex`.

    Stateful across calls: the round counter (which indexes the node
    fault plan), node health (crash blacklist, partition suspensions),
    and cumulative retry/hedge counters live on the frontend, exactly
    like the engine's scheduler keeps its DPU blacklist.
    """

    def __init__(
        self,
        cluster: ClusterIndex,
        config: FrontendConfig = FrontendConfig(),
        *,
        node_faults: Optional[NodeFaultPlan] = None,
        observer: Optional[EngineObserver] = None,
        cpu_profile: Optional[HardwareProfile] = None,
        seed=None,
    ) -> None:
        if node_faults is not None and node_faults.num_nodes != cluster.num_nodes:
            raise ValueError(
                f"node fault plan covers {node_faults.num_nodes} nodes but "
                f"the cluster has {cluster.num_nodes}"
            )
        self.cluster = cluster
        self.config = config
        self.node_faults = node_faults
        self.observer = observer
        self.cpu_profile = cpu_profile or HardwareProfile.for_cpu()
        self._rng = ensure_rng(seed)
        self.round_index = 0
        # Health: crashes are permanent; partitions suspend temporarily.
        self.dead_nodes: set = set()
        self._consecutive_failures: Dict[int, int] = {}
        self._suspended_until: Dict[int, int] = {}

    # ----- health ----------------------------------------------------------
    def _node_available(self, node_id: int) -> bool:
        if node_id in self.dead_nodes:
            return False
        until = self._suspended_until.get(node_id)
        return until is None or self.round_index >= until

    def _note_failure(self, node_id: int, kind: str) -> None:
        if kind == "crash":
            self.dead_nodes.add(node_id)
            return
        fails = self._consecutive_failures.get(node_id, 0) + 1
        self._consecutive_failures[node_id] = fails
        if fails >= self.config.suspend_after:
            self._suspended_until[node_id] = (
                self.round_index + 1 + self.config.suspend_rounds
            )
            self._consecutive_failures[node_id] = 0

    def _note_success(self, node_id: int) -> None:
        self._consecutive_failures[node_id] = 0

    def _replica_order(self, shard_id: int) -> List[int]:
        """Live replicas of a shard, primary rotated by round."""
        reps = self.cluster.replication
        rotation = self.round_index % reps
        order = [
            self.cluster.node_id(shard_id, (rotation + i) % reps)
            for i in range(reps)
        ]
        return [n for n in order if self._node_available(n)]

    # ----- modeled RPC -----------------------------------------------------
    def _call_node(
        self,
        node_id: int,
        queries: np.ndarray,
        probes_local: np.ndarray,
        execution: Optional[str],
        plan: Optional[str],
        adaptive: Optional[str] = None,
    ) -> _NodeCall:
        """One modeled request/response to one node."""
        deadline = self.config.shard_deadline_s
        if self.node_faults is not None:
            if self.node_faults.crashed_at(node_id, self.round_index):
                return _NodeCall(False, "crash", deadline)
            if self.node_faults.partitioned_at(node_id, self.round_index):
                return _NodeCall(False, "partition", deadline)
        engine = self.cluster.node_engine(node_id)
        res, bd = engine.search(
            queries, probes=probes_local, execution=execution, plan=plan,
            adaptive=adaptive,
        )
        slow = (
            1.0
            if self.node_faults is None
            else self.node_faults.slow_factor_of(node_id)
        )
        latency = self.config.network_latency_s + bd.e2e_seconds * slow
        return _NodeCall(True, "ok", latency, res.ids, res.distances)

    async def _query_shard(
        self,
        shard_id: int,
        query_rows: np.ndarray,
        queries: np.ndarray,
        probes_local: np.ndarray,
        execution: Optional[str],
        plan: Optional[str],
        adaptive: Optional[str],
        backoff_seed,
        report: ClusterReport,
    ) -> ShardResponse:
        """Scatter one shard's share: retries, failover, hedging."""
        cfg = self.config
        retries = cfg.backoff.sequence(seed=backoff_seed)
        elapsed = 0.0
        attempts = 0
        candidates = self._replica_order(shard_id)
        while candidates and attempts < cfg.max_attempts:
            node = candidates.pop(0)
            attempts += 1
            if attempts > 1:
                # Failover pause before re-dispatching elsewhere.
                pause = retries.next_delay()
                elapsed += pause
                report.backoff_seconds += pause
                report.node_retries += 1
                if self.observer is not None:
                    self.observer.on_node_retry()
            call = self._call_node(
                node, queries, probes_local, execution, plan, adaptive
            )
            await asyncio.sleep(0)  # yield: let sibling shards interleave
            if not call.ok:
                self._note_failure(node, call.kind)
                elapsed += call.latency_s  # one deadline burned detecting it
                candidates = [
                    n for n in candidates if self._node_available(n)
                ]
                continue
            self._note_success(node)
            latency = call.latency_s
            hedged = False
            if (
                cfg.hedge_after_s is not None
                and latency > cfg.hedge_after_s
            ):
                # The primary is past its budget: race a second replica
                # (bit-identical answers make the responses
                # interchangeable) and keep whichever path is faster.
                hedge_nodes = [
                    n
                    for n in self._replica_order(shard_id)
                    if n != node
                ]
                if hedge_nodes:
                    hedge = self._call_node(
                        hedge_nodes[0], queries, probes_local,
                        execution, plan, adaptive,
                    )
                    await asyncio.sleep(0)
                    hedged = True
                    report.hedged_requests += 1
                    if self.observer is not None:
                        self.observer.on_hedge()
                    if hedge.ok:
                        self._note_success(hedge_nodes[0])
                        latency = min(
                            latency, cfg.hedge_after_s + hedge.latency_s
                        )
                    else:
                        self._note_failure(hedge_nodes[0], hedge.kind)
            return ShardResponse(
                shard_id=shard_id,
                query_rows=query_rows,
                ids=call.ids,
                distances=call.distances,
                latency_s=elapsed + latency,
                attempts=attempts,
                hedged=hedged,
            )
        # Every replica down (or attempts exhausted): degrade, don't raise.
        report.failed_shards.append(shard_id)
        return ShardResponse(
            shard_id=shard_id,
            query_rows=query_rows,
            latency_s=elapsed,
            attempts=attempts,
            failed=True,
        )

    async def _scatter_gather(
        self,
        queries: np.ndarray,
        probes: np.ndarray,
        execution: Optional[str],
        plan: Optional[str],
        adaptive: Optional[str],
        report: ClusterReport,
    ) -> List[ShardResponse]:
        coros = []
        # One independent backoff-jitter stream per shard, in shard
        # order, freshly derived each round from the frontend's RNG.
        seeds = spawn_rngs(self._rng, self.cluster.num_shards)
        for shard in self.cluster.shards:
            lp = shard.local_probes(probes)
            rows = np.flatnonzero((lp >= 0).any(axis=1))
            if len(rows) == 0:
                continue
            coros.append(
                self._query_shard(
                    shard.shard_id,
                    rows,
                    queries[rows],
                    lp[rows],
                    execution,
                    plan,
                    adaptive,
                    seeds[shard.shard_id],
                    report,
                )
            )
        # gather() consumes every coroutine (no leaked tasks: AL012).
        return list(await asyncio.gather(*coros))

    # ----- public search ---------------------------------------------------
    def search(
        self,
        queries: np.ndarray,
        *,
        execution: Optional[str] = None,
        plan: Optional[str] = None,
        adaptive: Optional[str] = None,
    ) -> ClusterOutcome:
        """Batched cluster top-k; one fault-plan round per call.

        Bit-identical to
        :meth:`ClusterIndex.oracle_search` whenever every probed shard
        answered (always true with all replicas up, and still true
        under any fault pattern that leaves >= 1 replica per shard).

        ``adaptive`` composes the engine-level modes with the rack's
        ``probes=`` routing: ``"budget"``/``"full"`` compute per-query
        probe budgets from the *global* router distances here and
        truncate the probe matrix before scattering (shards never see
        the dropped clusters), while ``"bound"``/``"full"`` additionally
        run each shard with bound-based early termination — each
        shard's skip decisions are locally conservative, and therefore
        globally safe, because its pool is a subset of the global one.
        ``"bound"`` alone keeps results bit-identical to ``adaptive=None``.
        """
        queries = check_2d(queries, "queries")
        if queries.shape[1] != self.cluster.router.dim:
            raise ValueError(
                f"query dim {queries.shape[1]} != "
                f"index dim {self.cluster.router.dim}"
            )
        if adaptive is not None and adaptive not in ADAPTIVE_MODES:
            raise ValueError(
                f"adaptive must be one of {ADAPTIVE_MODES}, got {adaptive!r}"
            )
        nq = queries.shape[0]
        params = self.cluster.params
        if adaptive in ("budget", "full") and nq:
            probes, rr = self.cluster.locate_with_distances(queries)
            if probes.shape[1] > 1:
                budgets = probe_budgets(
                    rr, max(1, params.nprobe // 4), 2.0
                )
                probes = probes.copy()
                probes[
                    budgets[:, None] <= np.arange(probes.shape[1])[None, :]
                ] = -1
        else:
            probes = self.cluster.locate(queries)
        # Shard-level mode: budgets were applied globally above, so the
        # shards only ever add bound-based (exact) termination.
        shard_adaptive = {
            None: None,
            "off": "off",
            "bound": "bound",
            "budget": "off",
            "full": "bound",
        }[adaptive]
        cl_s = self._host_cl_seconds(nq)

        report = ClusterReport(
            num_queries=nq, e2e_seconds=0.0, cl_seconds=cl_s
        )
        responses = asyncio.run(
            self._scatter_gather(
                queries, probes, execution, plan, shard_adaptive, report
            )
        )

        results = merge_shard_results(responses, nq, params.k)

        # Coverage: which of each query's nprobe probes reached a live
        # shard. Failed shards drop exactly the probes they own;
        # budget-truncated (-1) slots were never requested and stay
        # covered.
        covered = np.ones(probes.shape, dtype=bool)
        responded = {r.shard_id for r in responses if r.ok}
        requested = probes >= 0
        probe_owner = self.cluster.owner[np.maximum(probes, 0)]
        for shard in self.cluster.shards:
            if shard.shard_id not in responded:
                covered &= (probe_owner != shard.shard_id) | ~requested
        report.coverage = covered.mean(axis=1)
        for resp in responses:
            report.shard_latencies_s[resp.shard_id] = resp.latency_s
        report.e2e_seconds = cl_s + max(
            (r.latency_s for r in responses), default=0.0
        )
        report.dead_nodes = sorted(self.dead_nodes)

        obs = self.observer
        if obs is not None:
            obs.on_dead_nodes(len(self.dead_nodes))
            obs.on_coverage(report.mean_coverage)

        self.round_index += 1
        return ClusterOutcome(results=results, report=report)

    def _host_cl_seconds(self, num_queries: int) -> float:
        """Modeled host time for the one global CL of a batch."""
        shape = DatasetShape(
            num_points=self.cluster.router.num_points,
            dim=self.cluster.router.dim,
            num_queries=num_queries,
        )
        model = AnalyticPerfModel(shape, self.cpu_profile)
        return model.phase(self.cluster.params, "CL").seconds
