"""Cluster serving loop: micro-batching + admission control.

Replays a timestamped query stream through a
:class:`~repro.cluster.frontend.ClusterFrontend`, reusing the exact
micro-batch window mechanics of :mod:`repro.core.serving`
(:class:`~repro.core.serving.MicroBatcher`) and layering the one
policy a rack frontend adds over a single engine: **admission
control**. The shed/degrade deadline policy acts at batch *launch* —
by then a doomed query has already queued and inflated everyone's
wait. Admission control acts at batch *formation*: when the number of
waiting queries exceeds ``FrontendConfig.admission_queue_limit``, the
youngest arrivals past the limit are rejected up front (they never
occupy the window), bounding queue growth under overload the way the
obs queue-depth gauge motivates.

Rejected queries keep the ``-1`` / ``+inf`` fill in returned results
and are counted as ``admission_rejected`` on the
:class:`~repro.core.serving.ServingReport`, which this loop extends
with the frontend's robustness ledger (hedges, node retries, dead
nodes, mean coverage).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ann.ivfpq import SearchResult
from repro.cluster.frontend import ClusterFrontend
from repro.core.results import ServingOutcome
from repro.core.serving import BatchingPolicy, MicroBatcher, ServingReport


def simulate_cluster_serving(
    frontend: ClusterFrontend,
    queries: np.ndarray,
    arrivals_s: np.ndarray,
    policy: BatchingPolicy = BatchingPolicy(),
    *,
    return_results: bool = False,
    execution: Optional[str] = None,
    plan: Optional[str] = None,
) -> ServingOutcome:
    """Replay a query stream through the cluster frontend.

    One micro-batch = one frontend round (one node-fault-plan round).
    Service time is the frontend's modeled ``e2e_seconds`` (global CL
    plus the slowest shard path, including backoff and hedging), so
    tail latency reflects stragglers exactly as the chaos harness
    measures them.
    """
    queries = np.asarray(queries)
    arrivals_s = np.asarray(arrivals_s, dtype=np.float64)
    if len(arrivals_s) != len(queries):
        raise ValueError(
            f"{len(arrivals_s)} arrivals != {len(queries)} queries"
        )
    if np.any(np.diff(arrivals_s) < 0):
        raise ValueError("arrivals must be sorted")
    n = len(queries)
    limit = frontend.config.admission_queue_limit
    obs = frontend.observer
    completion = np.full(n, np.nan)
    served = np.zeros(n, dtype=bool)
    batch_sizes: List[int] = []
    busy = 0.0
    shed = 0
    rejected = 0
    misses = 0
    degraded = 0
    retries = 0
    hedges = 0
    backoff = 0.0
    coverage_parts: List[np.ndarray] = []
    out_ids: Optional[np.ndarray] = None
    out_dist: Optional[np.ndarray] = None

    batcher = MicroBatcher(arrivals_s, policy)
    frontend_free_at = 0.0
    i = 0
    while i < n:
        batch = batcher.next_batch(i, frontend_free_at)
        members, launch, j = batch.members, batch.launch, batch.next_index
        if obs is not None:
            obs.on_queue_depth(len(members))
        if limit is not None and len(members) > limit:
            # Admission control: the oldest `limit` waiters keep their
            # slots; younger arrivals are rejected before queueing so
            # the backlog cannot grow without bound.
            dropped = len(members) - limit
            rejected += dropped
            if obs is not None:
                obs.on_admission_reject(dropped)
            members = members[:limit]
        if policy.deadline_s is not None and policy.overload_policy == "shed":
            viable = launch - arrivals_s[members] <= policy.deadline_s
            dropped = int(np.count_nonzero(~viable))
            shed += dropped
            if dropped and obs is not None:
                obs.on_shed(dropped)
            members = members[viable]
        if len(members) == 0:
            i = j
            continue
        res, rep = frontend.search(
            queries[members], execution=execution, plan=plan
        )
        if return_results:
            if out_ids is None:
                k = res.ids.shape[1]
                out_ids = np.full((n, k), -1, dtype=res.ids.dtype)
                out_dist = np.full((n, k), np.inf, dtype=res.distances.dtype)
            out_ids[members] = res.ids
            out_dist[members] = res.distances
        service = rep.e2e_seconds
        done = launch + service
        completion[members] = done
        served[members] = True
        busy += service
        frontend_free_at = done
        batch_sizes.append(len(members))
        if obs is not None:
            obs.on_serving_batch(len(members))
            for lat in done - arrivals_s[members]:
                obs.on_query_latency(float(lat))
        if policy.deadline_s is not None:
            new_misses = int(
                np.count_nonzero(
                    done - arrivals_s[members] > policy.deadline_s
                )
            )
            misses += new_misses
            if new_misses and obs is not None:
                obs.on_deadline_miss(new_misses)
        degraded += len(rep.degraded_queries)
        retries += rep.node_retries
        hedges += rep.hedged_requests
        backoff += rep.backoff_seconds
        coverage_parts.append(rep.coverage)
        i = j

    makespan = 0.0
    if served.any():
        makespan = float(completion[served].max() - arrivals_s.min())
    coverage = (
        np.concatenate(coverage_parts) if coverage_parts else np.ones(0)
    )
    report = ServingReport(
        latencies_s=(completion - arrivals_s)[served],
        batch_sizes=batch_sizes,
        busy_seconds=busy,
        makespan_s=makespan,
        shed_queries=shed,
        deadline_misses=misses,
        degraded_queries=degraded,
        node_retries=retries,
        backoff_seconds=backoff,
        admission_rejected=rejected,
        hedged_requests=hedges,
        dead_nodes=len(frontend.dead_nodes),
        mean_coverage=float(coverage.mean()) if len(coverage) else 1.0,
    )
    results = None
    if return_results and out_ids is not None:
        results = SearchResult(ids=out_ids, distances=out_dist)
    return ServingOutcome(
        report,
        metrics=obs.snapshot() if obs is not None else None,
        results=results,
    )
