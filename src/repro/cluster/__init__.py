"""Rack-scale serving: sharded engines behind one robust frontend.

* :mod:`repro.cluster.index` — heat-partitioned shards, replicated
  engines, the global routing index;
* :mod:`repro.cluster.frontend` — asyncio scatter-gather with
  deadlines, retry/backoff failover, hedging, health tracking, and
  per-query coverage accounting;
* :mod:`repro.cluster.serving` — micro-batched serving with admission
  control on top of the frontend;
* :mod:`repro.cluster.chaos` — the harness behind
  ``repro chaos --cluster`` (imported explicitly; it pulls in the
  synthetic-data stack).

See ``docs/fault_tolerance.md`` ("Cluster failover") for the failure
matrix and ``docs/architecture.md`` for where this layer sits.
"""

from repro.cluster.frontend import (
    ClusterFrontend,
    ClusterOutcome,
    ClusterReport,
    FrontendConfig,
    ShardResponse,
    merge_shard_results,
)
from repro.cluster.index import (
    ClusterConfig,
    ClusterIndex,
    ShardHandle,
    build_cluster_index,
    load_cluster_index,
    partition_clusters,
)
from repro.cluster.serving import simulate_cluster_serving

__all__ = [
    "ClusterConfig",
    "ClusterFrontend",
    "ClusterIndex",
    "ClusterOutcome",
    "ClusterReport",
    "FrontendConfig",
    "ShardHandle",
    "ShardResponse",
    "build_cluster_index",
    "load_cluster_index",
    "merge_shard_results",
    "partition_clusters",
    "simulate_cluster_serving",
]
