"""Product quantization (PQ) with asymmetric distance computation.

PQ (Jégou et al., ref [24] of the paper) splits a d-dimensional vector
into ``M`` sub-vectors of d/M dimensions each and quantizes every
sub-space independently with its own ``CB``-entry codebook, compressing
each vector to ``M`` small integers. The paper's entire cluster-searching
phase runs on PQ codes:

* **LC (LUT construction)** — for a (query, cluster) pair, compute the
  squared distance between the query-residual's sub-vectors and every
  codebook entry: an ``(M, CB)`` table.
* **DC (distance calculation)** — per point: gather M table entries by
  the point's codes and sum.

This module is the reference implementation; ``repro.pim.kernels``
re-implements LC/DC with DPU cost accounting on top of the same
codebooks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ann.distance import adc_lookup_distances, l2_sq
from repro.ann.kmeans import kmeans_fit
from repro.utils import check_2d, spawn_rngs
from repro.utils.cast_cache import CastCache


@dataclass
class ProductQuantizer:
    """A trained product quantizer.

    Attributes
    ----------
    codebooks: ``(M, CB, dsub)`` float32 — per-sub-space centroids.
    """

    codebooks: np.ndarray

    def __post_init__(self) -> None:
        cb = np.asarray(self.codebooks, dtype=np.float32)
        if cb.ndim != 3:
            raise ValueError(f"codebooks must be 3-D (M, CB, dsub), got {cb.shape}")
        self.codebooks = cb
        # Cached float64 cast for the per-batch LC hot path.
        self._codebooks_f64 = CastCache(np.float64)

    def codebooks_float64(self) -> np.ndarray:
        """Cached float64 cast of the codebooks (read-only).

        Lazy so instances restored by pickle (which bypasses
        ``__post_init__``) still work.
        """
        cache = self.__dict__.get("_codebooks_f64")
        if cache is None:
            cache = self._codebooks_f64 = CastCache(np.float64)
        return cache.cast(self.codebooks)

    def invalidate_caches(self) -> None:
        """Drop derived caches after mutating ``codebooks`` in place."""
        cache = self.__dict__.get("_codebooks_f64")
        if cache is not None:
            cache.invalidate()

    # ----- shape properties -------------------------------------------------
    @property
    def num_subspaces(self) -> int:
        """M — sub-vectors per point."""
        return self.codebooks.shape[0]

    @property
    def codebook_size(self) -> int:
        """CB — entries per sub-space codebook."""
        return self.codebooks.shape[1]

    @property
    def dsub(self) -> int:
        return self.codebooks.shape[2]

    @property
    def dim(self) -> int:
        return self.num_subspaces * self.dsub

    @property
    def code_dtype(self) -> np.dtype:
        return np.dtype(np.uint8 if self.codebook_size <= 256 else np.uint16)

    # ----- train / encode / decode ------------------------------------------
    @classmethod
    def train(
        cls,
        x: np.ndarray,
        num_subspaces: int,
        codebook_size: int = 256,
        *,
        max_iter: int = 20,
        sample_size: Optional[int] = 65536,
        seed=None,
    ) -> "ProductQuantizer":
        """Train per-sub-space codebooks with independent k-means runs."""
        x = check_2d(x, "x").astype(np.float64, copy=False)
        d = x.shape[1]
        if d % num_subspaces != 0:
            raise ValueError(
                f"dimension {d} not divisible by num_subspaces {num_subspaces}"
            )
        if codebook_size > x.shape[0]:
            raise ValueError(
                f"codebook_size {codebook_size} exceeds training points {x.shape[0]}"
            )
        dsub = d // num_subspaces
        rngs = spawn_rngs(seed, num_subspaces)
        books = np.empty((num_subspaces, codebook_size, dsub), dtype=np.float32)
        for m in range(num_subspaces):
            sub = x[:, m * dsub : (m + 1) * dsub]
            km = kmeans_fit(
                sub,
                codebook_size,
                max_iter=max_iter,
                sample_size=sample_size,
                seed=rngs[m],
            )
            books[m] = km.centroids
        return cls(codebooks=books)

    def encode(self, x: np.ndarray, block: int = 8192) -> np.ndarray:
        """Quantize rows of ``x`` to ``(n, M)`` codes."""
        x = check_2d(x, "x").astype(np.float64, copy=False)
        if x.shape[1] != self.dim:
            raise ValueError(f"x dim {x.shape[1]} != pq dim {self.dim}")
        n = x.shape[0]
        m, dsub = self.num_subspaces, self.dsub
        codes = np.empty((n, m), dtype=self.code_dtype)
        for i0 in range(0, n, block):
            i1 = min(i0 + block, n)
            for j in range(m):
                sub = x[i0:i1, j * dsub : (j + 1) * dsub]
                d = l2_sq(sub, self.codebooks[j])
                codes[i0:i1, j] = np.argmin(d, axis=1)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct approximate vectors from codes, ``(n, d)`` float32."""
        codes = check_2d(codes, "codes")
        if codes.shape[1] != self.num_subspaces:
            raise ValueError(
                f"codes have {codes.shape[1]} sub-codes, expected {self.num_subspaces}"
            )
        parts = [
            self.codebooks[j, codes[:, j].astype(np.intp)]
            for j in range(self.num_subspaces)
        ]
        return np.concatenate(parts, axis=1)

    # ----- ADC --------------------------------------------------------------
    def build_lut(self, residual: np.ndarray) -> np.ndarray:
        """LC phase for one query residual: ``(M, CB)`` partial distances.

        ``residual`` is the (query - centroid) vector of length d.
        Entry ``[j, c]`` is the squared L2 distance between the j-th
        sub-vector of the residual and codebook entry c of sub-space j.
        """
        residual = np.asarray(residual, dtype=np.float64).ravel()
        if residual.shape[0] != self.dim:
            raise ValueError(f"residual dim {residual.shape[0]} != {self.dim}")
        m, dsub = self.num_subspaces, self.dsub
        sub = residual.reshape(m, dsub)
        diff = sub[:, None, :] - self.codebooks_float64()
        return np.einsum("mcd,mcd->mc", diff, diff)

    def build_luts(self, residuals: np.ndarray) -> np.ndarray:
        """Vectorized LC for a batch: ``(q, d)`` residuals → ``(q, M, CB)``."""
        residuals = check_2d(residuals, "residuals").astype(np.float64, copy=False)
        if residuals.shape[1] != self.dim:
            raise ValueError(f"residual dim {residuals.shape[1]} != {self.dim}")
        m, dsub = self.num_subspaces, self.dsub
        sub = residuals.reshape(-1, m, dsub)
        diff = sub[:, :, None, :] - self.codebooks_float64()[None]
        return np.einsum("qmcd,qmcd->qmc", diff, diff)

    def adc_distances(self, residual: np.ndarray, codes: np.ndarray) -> np.ndarray:
        """LUT build + gather-sum: approximate distances for one query."""
        lut = self.build_lut(residual)
        return adc_lookup_distances(lut, codes)

    def quantization_error(self, x: np.ndarray) -> float:
        """Mean squared reconstruction error over rows of ``x``."""
        codes = self.encode(x)
        rec = self.decode(codes).astype(np.float64)
        diff = x.astype(np.float64) - rec
        return float(np.mean(np.einsum("ij,ij->i", diff, diff)))

    # ----- SDC --------------------------------------------------------------
    def sdc_tables(self) -> np.ndarray:
        """Symmetric-distance tables: ``(M, CB, CB)`` float64.

        ``table[j, a, b]`` is the squared L2 distance between codebook
        entries a and b of sub-space j. SDC (paper §II-A) quantizes the
        *query* too and looks distances up between code pairs — cheaper
        at query time (no per-query LUT construction) but strictly less
        accurate than ADC because the query inherits quantization
        error. DRIM-ANN adopts ADC; SDC is provided for comparison.
        """
        cb = self.codebooks.astype(np.float64)
        diff = cb[:, :, None, :] - cb[:, None, :, :]
        return np.einsum("mabd,mabd->mab", diff, diff)

    def sdc_distances(
        self, query_codes: np.ndarray, codes: np.ndarray, tables: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """SDC distances between one encoded query and ``(n, M)`` codes.

        ``tables`` may be passed to amortize :meth:`sdc_tables` across
        queries.
        """
        query_codes = np.asarray(query_codes).ravel()
        codes = check_2d(codes, "codes")
        m = self.num_subspaces
        if query_codes.shape[0] != m:
            raise ValueError(
                f"query has {query_codes.shape[0]} sub-codes, expected {m}"
            )
        if codes.shape[1] != m:
            raise ValueError(f"codes have {codes.shape[1]} sub-codes, expected {m}")
        if tables is None:
            tables = self.sdc_tables()
        sel = tables[np.arange(m), query_codes.astype(np.intp)]  # (M, CB)
        return sel[np.arange(m)[None, :], codes.astype(np.intp)].sum(
            axis=1, dtype=np.float64
        )
