"""IVF-PQ: the cluster-based ANNS reference implementation.

This is the algorithm of the paper's Fig. 1 in its host-only form —
the same five phases (CL, RC, LC, DC, TS) executed with vectorized
NumPy. It serves three roles in the repository:

1. the **functional gold standard** the PIM engine must match exactly
   (same index state → identical top-k results);
2. the algorithmic core of the **Faiss-CPU baseline**
   (``repro.baselines.cpu`` adds the 32-thread roofline timing model);
3. a usable ANN library in its own right (examples use it directly).

Residual encoding: points are PQ-encoded on their residual to the
owning coarse centroid (``x - centroid``), matching Faiss's
IVFPQ-with-residual and the paper's RC phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ann.distance import batched_adc_lookup
from repro.ann.heap import topk_smallest
from repro.ann.ivf import IVFIndex
from repro.ann.opq import OPQ
from repro.ann.pq import ProductQuantizer
from repro.utils import check_2d


@dataclass
class SearchResult:
    """Top-k output of a batched search."""

    ids: np.ndarray  # (q, k) int64, -1 padding when < k candidates
    distances: np.ndarray  # (q, k) float64, +inf padding

    def __post_init__(self) -> None:
        if self.ids.shape != self.distances.shape:
            raise ValueError(
                f"ids shape {self.ids.shape} != distances shape {self.distances.shape}"
            )

    @property
    def k(self) -> int:
        return self.ids.shape[1]


@dataclass
class IVFPQIndex:
    """IVF coarse index + per-list PQ codes.

    Attributes
    ----------
    ivf: the coarse quantizer and inverted lists (point ids).
    pq: the trained product quantizer (on residuals).
    codes: per-cluster ``(len, M)`` code arrays, aligned with
        ``ivf.lists``.
    rotation: optional OPQ rotation applied to vectors and queries.
    """

    ivf: IVFIndex
    pq: ProductQuantizer
    codes: List[np.ndarray]
    rotation: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if len(self.codes) != self.ivf.nlist:
            raise ValueError(
                f"{len(self.codes)} code arrays != nlist {self.ivf.nlist}"
            )
        for i, (ids, c) in enumerate(zip(self.ivf.lists, self.codes)):
            if len(ids) != len(c):
                raise ValueError(
                    f"cluster {i}: {len(ids)} ids but {len(c)} codes"
                )

    # ----- construction -------------------------------------------------
    @classmethod
    def build(
        cls,
        base: np.ndarray,
        *,
        nlist: int,
        num_subspaces: int,
        codebook_size: int = 256,
        use_opq: bool = False,
        train_sample: Optional[int] = 65536,
        seed=None,
    ) -> "IVFPQIndex":
        """Train coarse quantizer + (O)PQ and encode the corpus.

        The PQ is trained on residuals (point minus owning centroid),
        the standard IVFPQ recipe.
        """
        base = check_2d(base, "base")
        rotation = None
        work = base.astype(np.float64, copy=False)
        if use_opq:
            opq = OPQ.train(
                work,
                num_subspaces,
                codebook_size,
                sample_size=train_sample,
                seed=seed,
            )
            rotation = opq.rotation
            work = work @ rotation.T

        ivf = IVFIndex.build(work, nlist, seed=seed)
        assign = np.empty(work.shape[0], dtype=np.int64)
        for cid, ids in enumerate(ivf.lists):
            assign[ids] = cid
        residuals = work - ivf.centroids[assign].astype(np.float64)

        pq = ProductQuantizer.train(
            residuals,
            num_subspaces,
            codebook_size,
            sample_size=train_sample,
            seed=seed,
        )
        all_codes = pq.encode(residuals)
        codes = [all_codes[ids] for ids in ivf.lists]
        return cls(ivf=ivf, pq=pq, codes=codes, rotation=rotation)

    def add(self, vectors: np.ndarray, ids: Optional[np.ndarray] = None) -> np.ndarray:
        """Insert new vectors into the index (assign + encode + append).

        Codebooks and centroids are *not* retrained — the standard
        incremental-update contract (the paper's intro cites SPFresh
        for the billion-scale version of this problem). Returns the ids
        assigned to the new vectors. Note that a
        :class:`~repro.core.engine.DrimAnnEngine` built from this index
        holds a static layout; rebuild the engine after bulk inserts.
        """
        vectors = check_2d(vectors, "vectors")
        if vectors.shape[1] != self.dim:
            raise ValueError(f"vector dim {vectors.shape[1]} != index dim {self.dim}")
        n_new = vectors.shape[0]
        if ids is None:
            start = max((int(l.max()) for l in self.ivf.lists if len(l)), default=-1) + 1
            ids = np.arange(start, start + n_new, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (n_new,):
                raise ValueError(f"ids shape {ids.shape} != ({n_new},)")

        work = self._apply_rotation(vectors)
        assign = self.ivf.locate(work, 1)[:, 0]
        residuals = work - self.ivf.centroids.astype(np.float64)[assign]
        codes = self.pq.encode(residuals)
        for cid in np.unique(assign):
            mask = assign == cid
            self.ivf.lists[cid] = np.concatenate([self.ivf.lists[cid], ids[mask]])
            self.codes[cid] = np.concatenate([self.codes[cid], codes[mask]])
        return ids

    # ----- properties ----------------------------------------------------
    @property
    def nlist(self) -> int:
        return self.ivf.nlist

    @property
    def dim(self) -> int:
        return self.ivf.dim

    @property
    def num_points(self) -> int:
        return self.ivf.num_points

    def _apply_rotation(self, x: np.ndarray) -> np.ndarray:
        if self.rotation is None:
            return x.astype(np.float64, copy=False)
        return x.astype(np.float64, copy=False) @ self.rotation.T

    # ----- search ---------------------------------------------------------
    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int,
        *,
        rerank: int = 0,
        base: Optional[np.ndarray] = None,
    ) -> SearchResult:
        """Batched five-phase search (CL→RC→LC→DC→TS), host-only.

        Vectorized per (query, probed-cluster) pair; results are exact
        with respect to the quantized representation (ADC distances).

        ``rerank > 0`` retrieves ``max(rerank, k)`` ADC candidates and
        re-scores them with exact distances against ``base`` (the raw
        corpus, which must be supplied) — the classic IVFPQ+refine
        recipe that lifts recall past the PQ ceiling at the cost of
        ``rerank`` raw-vector reads per query. The PIM engine does not
        use it (the paper's pipeline is pure ADC); it is a host-side
        library feature.
        """
        queries = check_2d(queries, "queries")
        if queries.shape[1] != self.dim:
            raise ValueError(f"query dim {queries.shape[1]} != index dim {self.dim}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if rerank:
            if base is None:
                raise ValueError("rerank requires the raw corpus via base=")
            coarse = self.search(queries, max(rerank, k), nprobe)
            return self._rerank_exact(queries, coarse, k, base)
        qrot = self._apply_rotation(queries)

        # CL: locate nprobe clusters per query.
        probes = self.ivf.locate(qrot, nprobe)

        nq = qrot.shape[0]
        out_ids = np.full((nq, k), -1, dtype=np.int64)
        out_dist = np.full((nq, k), np.inf, dtype=np.float64)

        # RC + LC, batched over all (query, probe) pairs at once.
        cents = self.ivf.centroids.astype(np.float64)[probes.ravel()]
        residuals = np.repeat(qrot, nprobe, axis=0) - cents
        luts = self.pq.build_luts(residuals).reshape(
            nq, nprobe, self.pq.num_subspaces, self.pq.codebook_size
        )

        # DC + TS, grouped by cluster id so each cluster's codes are
        # gathered once per batch (cache-friendly, mirrors Faiss).
        flat_probe = probes.ravel()
        flat_query = np.repeat(np.arange(nq), nprobe)
        order = np.argsort(flat_probe, kind="stable")
        # Accumulate per-query candidate pools.
        pool_d: List[List[np.ndarray]] = [[] for _ in range(nq)]
        pool_i: List[List[np.ndarray]] = [[] for _ in range(nq)]
        sorted_probe = flat_probe[order]
        bounds = np.flatnonzero(
            np.diff(sorted_probe, prepend=-1)
        )  # start of each cluster-id run
        for s_idx, start in enumerate(bounds):
            end = bounds[s_idx + 1] if s_idx + 1 < len(bounds) else len(order)
            cid = int(sorted_probe[start])
            ids = self.ivf.lists[cid]
            if len(ids) == 0:
                continue
            codes = self.codes[cid]
            sel = order[start:end]
            qids = flat_query[sel]
            pidx = sel % nprobe
            qluts = luts[qids, pidx]  # (g, M, CB)
            d = batched_adc_lookup(qluts, codes)  # (g, n_c)
            for row, qid in enumerate(qids):
                pool_d[qid].append(d[row])
                pool_i[qid].append(ids)

        for qid in range(nq):
            if not pool_d[qid]:
                continue
            dall = np.concatenate(pool_d[qid])
            iall = np.concatenate(pool_i[qid])
            kk = min(k, len(dall))
            idx, vals = topk_smallest(dall, kk)
            out_ids[qid, :kk] = iall[idx]
            out_dist[qid, :kk] = vals
        return SearchResult(ids=out_ids, distances=out_dist)

    def _rerank_exact(
        self,
        queries: np.ndarray,
        coarse: SearchResult,
        k: int,
        base: np.ndarray,
    ) -> SearchResult:
        """Re-score ADC candidates with exact L2 on raw vectors."""
        from repro.ann.distance import l2_sq

        base = check_2d(base, "base")
        nq = queries.shape[0]
        out_ids = np.full((nq, k), -1, dtype=np.int64)
        out_dist = np.full((nq, k), np.inf, dtype=np.float64)
        qf = queries.astype(np.float64)
        for qi in range(nq):
            cand = coarse.ids[qi][coarse.ids[qi] >= 0]
            if not len(cand):
                continue
            d = l2_sq(qf[qi : qi + 1], base[cand].astype(np.float64))[0]
            kk = min(k, len(d))
            sel, vals = topk_smallest(d, kk)
            out_ids[qi, :kk] = cand[sel]
            out_dist[qi, :kk] = vals
        return SearchResult(ids=out_ids, distances=out_dist)
