"""k-means clustering (k-means++ init, Lloyd iterations, mini-batch).

Used twice in the system, exactly as in the paper's stack:

* as the IVF coarse quantizer (``nlist`` centroids over the corpus);
* inside product quantization, once per sub-space (``CB`` centroids
  over d/M-dimensional sub-vectors).

Implementation follows the vectorization guidance of the HPC guides:
assignment is one blocked GEMM-based distance computation per
iteration, centroid updates are ``np.add.at`` scatter-adds — no Python
loops over points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ann.distance import l2_sq_blocked
from repro.utils import check_2d, ensure_rng


@dataclass
class KMeans:
    """Fitted k-means model."""

    centroids: np.ndarray  # (k, d) float32
    inertia: float  # final sum of squared distances
    n_iter: int  # Lloyd iterations actually run

    @property
    def k(self) -> int:
        return self.centroids.shape[0]

    @property
    def dim(self) -> int:
        return self.centroids.shape[1]

    def assign(self, x: np.ndarray, block: int = 8192) -> np.ndarray:
        """Nearest-centroid id for each row of ``x``."""
        x = check_2d(x, "x")
        out = np.empty(x.shape[0], dtype=np.int64)
        for i0 in range(0, x.shape[0], block):
            i1 = min(i0 + block, x.shape[0])
            d = l2_sq_blocked(x[i0:i1], self.centroids)
            out[i0:i1] = np.argmin(d, axis=1)
        return out


def _kmeanspp_init(
    x: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centroids by D^2 sampling."""
    n = x.shape[0]
    centroids = np.empty((k, x.shape[1]), dtype=np.float64)
    first = rng.integers(0, n)
    centroids[0] = x[first]
    # Distance of every point to its nearest chosen centroid so far.
    d2 = l2_sq_blocked(x, centroids[0:1]).ravel()
    for i in range(1, k):
        total = d2.sum()
        if total <= 0:
            # All points coincide with chosen centroids; fill uniformly.
            centroids[i:] = x[rng.integers(0, n, size=k - i)]
            break
        probs = d2 / total
        nxt = rng.choice(n, p=probs)
        centroids[i] = x[nxt]
        d2 = np.minimum(d2, l2_sq_blocked(x, centroids[i : i + 1]).ravel())
    return centroids


def kmeans_fit(
    x: np.ndarray,
    k: int,
    *,
    max_iter: int = 25,
    tol: float = 1e-4,
    sample_size: Optional[int] = None,
    seed=None,
) -> KMeans:
    """Fit k-means with k-means++ init and Lloyd iterations.

    Parameters
    ----------
    sample_size: if given and smaller than ``len(x)``, train on a random
        subsample (the standard IVF practice for large corpora; Faiss
        defaults to ~256 points per centroid).
    tol: stop when the relative inertia improvement falls below this.

    Empty clusters are repaired each iteration by re-seeding them at the
    points currently farthest from their assigned centroid.
    """
    x = check_2d(x, "x").astype(np.float64, copy=False)
    n = x.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = ensure_rng(seed)

    if sample_size is not None and sample_size < n:
        idx = rng.choice(n, size=sample_size, replace=False)
        xt = x[idx]
    else:
        xt = x

    centroids = _kmeanspp_init(xt, k, rng)
    prev_inertia = np.inf
    inertia = np.inf
    it = 0
    assign = np.zeros(xt.shape[0], dtype=np.int64)
    for it in range(1, max_iter + 1):
        d = l2_sq_blocked(xt, centroids)
        assign = np.argmin(d, axis=1)
        mind = d[np.arange(xt.shape[0]), assign]
        inertia = float(mind.sum())

        counts = np.bincount(assign, minlength=k).astype(np.float64)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assign, xt)
        nonempty = counts > 0
        centroids[nonempty] = sums[nonempty] / counts[nonempty, None]

        empty = np.flatnonzero(~nonempty)
        if len(empty):
            far = np.argsort(-mind, kind="stable")[: len(empty)]
            centroids[empty] = xt[far]

        if prev_inertia - inertia <= tol * max(prev_inertia, 1e-12):
            break
        prev_inertia = inertia

    return KMeans(
        centroids=centroids.astype(np.float32), inertia=inertia, n_iter=it
    )


def minibatch_kmeans_fit(
    x: np.ndarray,
    k: int,
    *,
    batch_size: int = 4096,
    max_iter: int = 60,
    init_sample: int = 16384,
    seed=None,
) -> KMeans:
    """Mini-batch k-means (Sculley 2010) for corpus-scale training.

    Each iteration draws a random batch, assigns it, and moves each
    touched centroid toward its batch members with a per-centroid
    learning rate of 1/count — O(batch * k * d) per step instead of
    O(n * k * d). Quality is slightly below full Lloyd (higher inertia)
    but build time on large corpora drops by an order of magnitude,
    which is why Faiss-scale systems train coarse quantizers this way.
    """
    x = check_2d(x, "x").astype(np.float64, copy=False)
    n = x.shape[0]
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    rng = ensure_rng(seed)

    init_idx = rng.choice(n, size=min(init_sample, n), replace=False)
    centroids = _kmeanspp_init(x[init_idx], k, rng)
    counts = np.zeros(k, dtype=np.float64)

    for _ in range(max_iter):
        batch = x[rng.integers(0, n, size=min(batch_size, n))]
        d = l2_sq_blocked(batch, centroids)
        assign = np.argmin(d, axis=1)
        # Per-centroid incremental mean update.
        batch_counts = np.bincount(assign, minlength=k).astype(np.float64)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assign, batch)
        touched = batch_counts > 0
        counts[touched] += batch_counts[touched]
        lr = batch_counts[touched] / counts[touched]
        means = sums[touched] / batch_counts[touched, None]
        centroids[touched] += lr[:, None] * (means - centroids[touched])

    # Final inertia on a sample (full pass would defeat the purpose).
    sample = x[rng.choice(n, size=min(4 * batch_size, n), replace=False)]
    d = l2_sq_blocked(sample, centroids)
    inertia = float(d.min(axis=1).sum() * (n / len(sample)))
    return KMeans(
        centroids=centroids.astype(np.float32), inertia=inertia, n_iter=max_iter
    )
