"""Inverted-file (IVF) coarse index.

The cluster-locating half of cluster-based ANNS: a k-means coarse
quantizer over the corpus plus per-cluster inverted lists of member
point ids. DRIM-ANN's layout optimizer (``repro.core.layout``) consumes
this structure, splits/duplicates its clusters, and places the pieces on
simulated DPUs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.ann.distance import l2_sq_blocked
from repro.ann.heap import topk_smallest
from repro.ann.kmeans import kmeans_fit
from repro.utils import check_2d


@dataclass
class IVFIndex:
    """Coarse quantizer + inverted lists.

    Attributes
    ----------
    centroids: ``(nlist, d)`` float32 cluster centers.
    lists: per-cluster int64 arrays of base-point ids.
    """

    centroids: np.ndarray
    lists: List[np.ndarray]

    def __post_init__(self) -> None:
        self.centroids = check_2d(
            np.asarray(self.centroids, dtype=np.float32), "centroids"
        )
        if len(self.lists) != self.centroids.shape[0]:
            raise ValueError(
                f"{len(self.lists)} lists != {self.centroids.shape[0]} centroids"
            )
        self.lists = [np.asarray(l, dtype=np.int64) for l in self.lists]

    @property
    def nlist(self) -> int:
        return self.centroids.shape[0]

    @property
    def dim(self) -> int:
        return self.centroids.shape[1]

    @property
    def num_points(self) -> int:
        return int(sum(len(l) for l in self.lists))

    def list_sizes(self) -> np.ndarray:
        return np.array([len(l) for l in self.lists], dtype=np.int64)

    @classmethod
    def build(
        cls,
        base: np.ndarray,
        nlist: int,
        *,
        max_iter: int = 20,
        train_sample: Optional[int] = None,
        seed=None,
    ) -> "IVFIndex":
        """Train the coarse quantizer and populate inverted lists."""
        base = check_2d(base, "base")
        if train_sample is None:
            # Faiss-style default: cap training set at ~256 pts/centroid.
            train_sample = min(base.shape[0], max(nlist * 64, 16384))
        km = kmeans_fit(
            base, nlist, max_iter=max_iter, sample_size=train_sample, seed=seed
        )
        assign = km.assign(base)
        order = np.argsort(assign, kind="stable")
        sorted_assign = assign[order]
        bounds = np.searchsorted(sorted_assign, np.arange(nlist + 1))
        lists = [
            order[bounds[i] : bounds[i + 1]].astype(np.int64) for i in range(nlist)
        ]
        return cls(centroids=km.centroids, lists=lists)

    def locate(self, queries: np.ndarray, nprobe: int) -> np.ndarray:
        """CL phase: the ``nprobe`` nearest cluster ids per query.

        Returns ``(q, nprobe)`` int64, nearest first.
        """
        queries = check_2d(queries, "queries")
        if not 1 <= nprobe <= self.nlist:
            raise ValueError(f"nprobe must be in [1, {self.nlist}], got {nprobe}")
        d = l2_sq_blocked(queries, self.centroids)
        idx, _ = topk_smallest(d, nprobe, axis=1)
        return idx.astype(np.int64)

    def imbalance_factor(self) -> float:
        """Faiss's imbalance metric: n * sum(s_i^2) / (sum s_i)^2, >= 1.

        1.0 means perfectly even lists; real corpora typically land in
        1.2–3 (the heavy tail the paper's splitter attacks).
        """
        sizes = self.list_sizes().astype(np.float64)
        total = sizes.sum()
        if total == 0:
            return 1.0
        return float(len(sizes) * np.square(sizes).sum() / total**2)
