"""Cluster-based ANNS substrate: the algorithms DRIM-ANN builds on.

This package is a from-scratch, NumPy-vectorized implementation of the
IVF-PQ family (the paper's "general ANNS engine supporting IVF-PQ and
its variants including OPQ"): k-means coarse quantization, product
quantization with asymmetric distance computation (ADC), optimized
product quantization (OPQ), inverted-file indexes, exact search, top-k
utilities, and recall metrics.
"""

from repro.ann.distance import l2_sq, l2_sq_blocked, adc_lookup_distances
from repro.ann.kmeans import KMeans, kmeans_fit, minibatch_kmeans_fit
from repro.ann.pq import ProductQuantizer
from repro.ann.opq import OPQ
from repro.ann.ivf import IVFIndex
from repro.ann.ivfpq import IVFPQIndex, SearchResult
from repro.ann.flat import FlatIndex
from repro.ann.recall import recall_at_k
from repro.ann.heap import topk_smallest, BoundedMaxHeap

__all__ = [
    "l2_sq",
    "l2_sq_blocked",
    "adc_lookup_distances",
    "KMeans",
    "kmeans_fit",
    "minibatch_kmeans_fit",
    "ProductQuantizer",
    "OPQ",
    "IVFIndex",
    "IVFPQIndex",
    "SearchResult",
    "FlatIndex",
    "recall_at_k",
    "topk_smallest",
    "BoundedMaxHeap",
]
