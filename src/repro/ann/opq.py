"""Optimized Product Quantization (OPQ).

OPQ (Ge et al., ref [16] of the paper) learns an orthogonal rotation
``R`` applied to vectors before PQ so that variance is balanced across
sub-spaces and quantization error drops. DRIM-ANN's engine "supports
IVF-PQ and its variants, including OPQ and DPQ" — rotation is a host-side
preprocessing step, so on the PIM side nothing changes except that
queries are rotated before residual computation.

Training alternates (the non-parametric OPQ-NP procedure):

1. fix R, train/encode PQ on rotated data;
2. fix codes, solve the orthogonal Procrustes problem
   ``min_R |R x - decode(codes)|`` via SVD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ann.pq import ProductQuantizer
from repro.utils import check_2d, ensure_rng


@dataclass
class OPQ:
    """A trained rotation + product quantizer pair."""

    rotation: np.ndarray  # (d, d) orthogonal, float64
    pq: ProductQuantizer

    def __post_init__(self) -> None:
        r = np.asarray(self.rotation, dtype=np.float64)
        if r.ndim != 2 or r.shape[0] != r.shape[1]:
            raise ValueError(f"rotation must be square, got {r.shape}")
        if r.shape[0] != self.pq.dim:
            raise ValueError(
                f"rotation dim {r.shape[0]} != pq dim {self.pq.dim}"
            )
        self.rotation = r

    @property
    def dim(self) -> int:
        return self.pq.dim

    def rotate(self, x: np.ndarray) -> np.ndarray:
        """Apply the learned rotation: ``x @ R.T``."""
        x = check_2d(x, "x").astype(np.float64, copy=False)
        return x @ self.rotation.T

    def encode(self, x: np.ndarray) -> np.ndarray:
        return self.pq.encode(self.rotate(x))

    def decode_rotated(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct in *rotated* space (for error measurement)."""
        return self.pq.decode(codes)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Reconstruct in the original space: ``decode_rotated @ R``."""
        return self.pq.decode(codes).astype(np.float64) @ self.rotation

    def quantization_error(self, x: np.ndarray) -> float:
        x = check_2d(x, "x").astype(np.float64, copy=False)
        rec = self.decode(self.encode(x))
        diff = x - rec
        return float(np.mean(np.einsum("ij,ij->i", diff, diff)))

    @classmethod
    def train(
        cls,
        x: np.ndarray,
        num_subspaces: int,
        codebook_size: int = 256,
        *,
        num_rounds: int = 8,
        pq_iter: int = 8,
        sample_size: Optional[int] = 32768,
        seed=None,
    ) -> "OPQ":
        """Alternating minimization of rotation and codebooks."""
        x = check_2d(x, "x").astype(np.float64, copy=False)
        rng = ensure_rng(seed)
        n, d = x.shape
        if sample_size is not None and sample_size < n:
            idx = rng.choice(n, size=sample_size, replace=False)
            xt = x[idx]
        else:
            xt = x

        rotation = np.eye(d)
        pq: Optional[ProductQuantizer] = None
        for _ in range(max(1, num_rounds)):
            xr = xt @ rotation.T
            pq = ProductQuantizer.train(
                xr,
                num_subspaces,
                codebook_size,
                max_iter=pq_iter,
                sample_size=None,
                seed=rng,
            )
            rec = pq.decode(pq.encode(xr)).astype(np.float64)
            # Orthogonal Procrustes: R = U V^T of SVD(rec^T xt).
            u, _s, vt = np.linalg.svd(rec.T @ xt, full_matrices=False)
            rotation = u @ vt
        assert pq is not None
        return cls(rotation=rotation, pq=pq)
