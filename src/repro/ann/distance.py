"""Squared-L2 distance kernels.

All distance math in the library runs through these functions, in
float64 accumulation for integer inputs (uint8 corpora would overflow
float32 dot products at d=128 only marginally, but exactness of ground
truth matters more than the last 10% of throughput here).

The key vectorization trick is the classical expansion
``|q - x|^2 = |q|^2 - 2 q.x + |x|^2`` which turns the pairwise distance
matrix into one GEMM plus two rank-1 updates — the same structure
Faiss uses on CPU.
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_2d, check_same_dim


def l2_sq(queries: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Pairwise squared L2 distances, shape ``(q, n)``.

    Exact (clamped at 0 to kill tiny negative rounding residue).
    """
    q = check_2d(queries, "queries").astype(np.float64, copy=False)
    x = check_2d(points, "points").astype(np.float64, copy=False)
    check_same_dim(q, x, "queries", "points")
    qq = np.einsum("ij,ij->i", q, q)[:, None]
    xx = np.einsum("ij,ij->i", x, x)[None, :]
    d = qq + xx - 2.0 * (q @ x.T)
    np.maximum(d, 0.0, out=d)
    return d


def l2_sq_blocked(
    queries: np.ndarray, points: np.ndarray, block: int = 16384
) -> np.ndarray:
    """Like :func:`l2_sq` but computed in column blocks.

    Bounds the working set to ``q * block`` doubles; used by the
    brute-force ground-truth pass over large corpora.
    """
    q = check_2d(queries, "queries").astype(np.float64, copy=False)
    x = check_2d(points, "points").astype(np.float64, copy=False)
    check_same_dim(q, x, "queries", "points")
    n = x.shape[0]
    if n <= block:
        return l2_sq(q, x)
    out = np.empty((q.shape[0], n), dtype=np.float64)
    qq = np.einsum("ij,ij->i", q, q)[:, None]
    for n0 in range(0, n, block):
        n1 = min(n0 + block, n)
        xb = x[n0:n1]
        xx = np.einsum("ij,ij->i", xb, xb)[None, :]
        d = qq + xx - 2.0 * (q @ xb.T)
        np.maximum(d, 0.0, out=d)
        out[:, n0:n1] = d
    return out


def adc_lookup_distances(lut: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """Asymmetric-distance computation from a per-query LUT.

    Parameters
    ----------
    lut: ``(M, CB)`` float array — partial squared distances between one
        query's residual sub-vectors and every codebook entry.
    codes: ``(n, M)`` uint codes of the candidate points.

    Returns
    -------
    ``(n,)`` float64 approximate squared distances: for each point, the
    sum over sub-spaces of the LUT entry selected by its code. This is
    exactly the DC phase of the paper (Fig. 1): M gathers + (M-1) adds
    per point, no multiplications.
    """
    lut = np.asarray(lut)
    codes = check_2d(codes, "codes")
    if lut.ndim != 2:
        raise ValueError(f"lut must be 2-D (M, CB), got shape {lut.shape}")
    m = lut.shape[0]
    if codes.shape[1] != m:
        raise ValueError(f"codes have {codes.shape[1]} sub-codes, lut has {m} rows")
    # Gather: lut[j, codes[:, j]] summed over j, fully vectorized.
    return lut[np.arange(m)[None, :], codes.astype(np.intp)].sum(
        axis=1, dtype=np.float64
    )


def batched_adc_lookup(luts: np.ndarray, codes: np.ndarray) -> np.ndarray:
    """ADC for a batch of queries sharing one candidate code list.

    ``luts`` has shape ``(q, M, CB)``; returns ``(q, n)``.
    """
    luts = np.asarray(luts)
    if luts.ndim != 3:
        raise ValueError(f"luts must be 3-D (q, M, CB), got {luts.shape}")
    codes = check_2d(codes, "codes")
    m = luts.shape[1]
    if codes.shape[1] != m:
        raise ValueError(f"codes have {codes.shape[1]} sub-codes, luts have {m}")
    gathered = luts[:, np.arange(m)[None, :], codes.astype(np.intp)]
    return gathered.sum(axis=2, dtype=np.float64)
