"""Top-k utilities.

Two implementations with different purposes:

* :func:`topk_smallest` — vectorized ``argpartition`` top-k, used by the
  host-side reference path (this is how Faiss-CPU effectively behaves).
* :class:`BoundedMaxHeap` — an explicit binary max-heap with *operation
  counting*, mirroring the heap a DPU tasklet maintains during the TS
  (top-k sorting) phase. The paper models TS cost as
  ``C_TS = Q*P*C*(log K - 1)`` — i.e. per candidate, a constant-ish
  number of comparisons plus a log K sift when it beats the current
  worst. The counting heap lets the PIM kernels charge cycles for the
  work actually done rather than the worst case.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.topk_merge import topk_canonical  # noqa: F401


def topk_smallest(
    values: np.ndarray, k: int, axis: int = -1
) -> Tuple[np.ndarray, np.ndarray]:
    """Indices and values of the k smallest entries, sorted ascending.

    Returns ``(indices, values)`` with shape ``values.shape`` except the
    reduced axis has length ``min(k, size)``.
    """
    values = np.asarray(values)
    size = values.shape[axis]
    k = min(k, size)
    if k <= 0:
        raise ValueError(f"k must be >= 1, got {k}")
    if k == size:
        idx = np.argsort(values, axis=axis, kind="stable")
    else:
        part = np.argpartition(values, k - 1, axis=axis)
        idx = np.take(part, np.arange(k), axis=axis)
        sub = np.take_along_axis(values, idx, axis=axis)
        order = np.argsort(sub, axis=axis, kind="stable")
        idx = np.take_along_axis(idx, order, axis=axis)
    return idx, np.take_along_axis(values, idx, axis=axis)


# topk_canonical is re-exported above from repro.utils.topk_merge (the
# shared home of the canonical (distance, id) merge, so the cluster tier
# can use it without import cycles).


class BoundedMaxHeap:
    """Fixed-capacity max-heap of (distance, id) keeping the k smallest.

    ``push`` returns the number of comparison operations performed, so a
    simulator can convert real work into cycles. Ties on distance are
    broken arbitrarily (matches hardware behaviour; recall metrics don't
    depend on tie order).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._d = np.empty(capacity, dtype=np.float64)
        self._i = np.empty(capacity, dtype=np.int64)
        self._n = 0

    def __len__(self) -> int:
        return self._n

    @property
    def worst(self) -> float:
        """Current k-th smallest distance (root of the max-heap)."""
        return self._d[0] if self._n else np.inf

    def push(self, dist: float, ident: int) -> int:
        """Offer a candidate; returns comparison count for cost models."""
        ops = 1  # compare against worst / capacity check
        if self._n < self.capacity:
            # Sift up.
            j = self._n
            self._d[j] = dist
            self._i[j] = ident
            self._n += 1
            while j > 0:
                parent = (j - 1) >> 1
                ops += 1
                if self._d[parent] < self._d[j]:
                    self._swap(parent, j)
                    j = parent
                else:
                    break
            return ops
        if dist >= self._d[0]:
            return ops
        # Replace root, sift down.
        self._d[0] = dist
        self._i[0] = ident
        j = 0
        n = self._n
        while True:
            left = 2 * j + 1
            right = left + 1
            largest = j
            if left < n:
                ops += 1
                if self._d[left] > self._d[largest]:
                    largest = left
            if right < n:
                ops += 1
                if self._d[right] > self._d[largest]:
                    largest = right
            if largest == j:
                break
            self._swap(largest, j)
            j = largest
        return ops

    def _swap(self, a: int, b: int) -> None:
        self._d[a], self._d[b] = self._d[b], self._d[a]
        self._i[a], self._i[b] = self._i[b], self._i[a]

    def result(self) -> Tuple[np.ndarray, np.ndarray]:
        """Extract ``(ids, distances)`` sorted ascending by distance."""
        order = np.argsort(self._d[: self._n], kind="stable")
        return self._i[order].copy(), self._d[order].copy()
