"""Exact (flat) index — brute-force search used for ground truth and
for small-scale sanity checks of the approximate indexes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ann.heap import topk_smallest
from repro.ann.distance import l2_sq_blocked
from repro.ann.ivfpq import SearchResult
from repro.utils import check_2d, check_same_dim


@dataclass
class FlatIndex:
    """Stores the raw corpus; search is an exact blocked scan."""

    base: np.ndarray

    def __post_init__(self) -> None:
        self.base = check_2d(self.base, "base")

    @property
    def num_points(self) -> int:
        return self.base.shape[0]

    @property
    def dim(self) -> int:
        return self.base.shape[1]

    def search(self, queries: np.ndarray, k: int) -> SearchResult:
        queries = check_2d(queries, "queries")
        check_same_dim(self.base, queries, "base", "queries")
        if not 1 <= k <= self.num_points:
            raise ValueError(f"k must be in [1, {self.num_points}], got {k}")
        d = l2_sq_blocked(queries, self.base)
        idx, vals = topk_smallest(d, k, axis=1)
        return SearchResult(ids=idx.astype(np.int64), distances=vals)
