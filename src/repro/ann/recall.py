"""Recall metrics.

The paper's accuracy constraint is ``recall@10 >= 0.8``: the fraction of
the true top-10 neighbors present in the returned top-10. We implement
the general ``recall@k`` (a.k.a. k-recall@k) plus the 1-recall@k variant
(is the single true nearest neighbor in the returned top-k) used by some
ANN papers.
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_2d


def recall_at_k(
    result_ids: np.ndarray, ground_truth: np.ndarray, k: int
) -> float:
    """k-recall@k: |returned top-k ∩ true top-k| / k, averaged over queries.

    ``result_ids`` may have -1 padding (counted as misses).
    """
    result_ids = check_2d(result_ids, "result_ids")
    ground_truth = check_2d(ground_truth, "ground_truth")
    if result_ids.shape[0] != ground_truth.shape[0]:
        raise ValueError(
            f"{result_ids.shape[0]} result rows != {ground_truth.shape[0]} gt rows"
        )
    if result_ids.shape[1] < k:
        raise ValueError(f"results have {result_ids.shape[1]} cols, need k={k}")
    if ground_truth.shape[1] < k:
        raise ValueError(f"ground truth has {ground_truth.shape[1]} cols, need k={k}")
    hits = 0
    res = result_ids[:, :k]
    gt = ground_truth[:, :k]
    for r, g in zip(res, gt):
        hits += len(np.intersect1d(r[r >= 0], g, assume_unique=False))
    return hits / (res.shape[0] * k)


def one_recall_at_k(
    result_ids: np.ndarray, ground_truth: np.ndarray, k: int
) -> float:
    """1-recall@k: fraction of queries whose true NN is in the top-k."""
    result_ids = check_2d(result_ids, "result_ids")
    ground_truth = check_2d(ground_truth, "ground_truth")
    if result_ids.shape[1] < k:
        raise ValueError(f"results have {result_ids.shape[1]} cols, need k={k}")
    nn = ground_truth[:, 0][:, None]
    return float(np.mean(np.any(result_ids[:, :k] == nn, axis=1)))
