"""Shared testing support: canonical configurations and golden runs.

This subpackage is the single source of truth for the *canonical
configurations* — small, fully deterministic engine setups whose
behaviour is frozen by the regression harness in ``tests/`` (recall
against the exact brute-force oracle, per-kernel and end-to-end cycle
counts). ``tools/update_goldens.py`` regenerates the stored goldens
from the same definitions, so the tests and the updater can never
drift apart.
"""

from repro.testing.goldens import (
    CANONICAL_CONFIGS,
    GOLDEN_ADAPTIVE_MODES,
    brute_force_topk,
    build_canonical_engine,
    canonical_dataset,
    oracle_recall,
    run_canonical,
    run_all_adaptive,
    run_all_canonical,
)

__all__ = [
    "CANONICAL_CONFIGS",
    "GOLDEN_ADAPTIVE_MODES",
    "brute_force_topk",
    "build_canonical_engine",
    "canonical_dataset",
    "oracle_recall",
    "run_canonical",
    "run_all_adaptive",
    "run_all_canonical",
]
