"""Canonical configurations and golden-run capture.

Three small engine configurations exercise the main behavioural axes
(split+replicated layouts, multiplier-less vs multiplier LC, balanced
vs unreplicated placement) on the deterministic ``sift-like-20k``
preset. Everything is seeded, so a golden run — recall@10 against the
exact brute-force oracle plus per-kernel and end-to-end cycle counts —
is reproducible bit-for-bit and can be frozen in
``tests/fixtures/golden_cycles.json``.

The regression tests (``tests/test_golden_cycles.py``,
``tests/test_diff_exact.py``) and the regeneration script
(``tools/update_goldens.py``) both import from here; the definitions
cannot drift apart. See ``docs/testing.md`` for when regenerating the
goldens is legitimate.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Optional

import numpy as np

from repro.ann import IVFPQIndex
from repro.ann.heap import topk_smallest
from repro.core import (
    DrimAnnEngine,
    EngineConfig,
    IndexParams,
    LayoutConfig,
    SearchParams,
)
from repro.core.quantized import build_quantized_index
from repro.data import load_dataset
from repro.pim.config import PimSystemConfig

#: Dataset shared by every canonical config (fully seeded synthetic).
DATASET_PRESET = "sift-like-20k"
DATASET_SEED = 0
DATASET_QUERIES = 150
ENGINE_SEED = 0
K = 10
BATCH_SIZE = 32

#: The frozen configurations. Order and contents are part of the
#: golden contract: adding/renaming a config requires regenerating
#: the goldens (see tools/update_goldens.py).
CANONICAL_CONFIGS: Dict[str, dict] = {
    "base-balanced": dict(
        nlist=64, nprobe=8, m=16, cb=64, num_dpus=16, num_queries=120,
        layout=dict(min_split_size=400, max_copies=2),
        multiplier_less=True,
    ),
    "split-replicated": dict(
        nlist=32, nprobe=4, m=8, cb=32, num_dpus=8, num_queries=60,
        layout=dict(min_split_size=200, max_copies=3),
        multiplier_less=True,
    ),
    "mul-unreplicated": dict(
        nlist=64, nprobe=8, m=16, cb=64, num_dpus=16, num_queries=60,
        layout=dict(min_split_size=None, max_copies=0),
        multiplier_less=False,
    ),
}


@lru_cache(maxsize=1)
def canonical_dataset():
    """The dataset every canonical config runs on (process-cached)."""
    return load_dataset(
        DATASET_PRESET,
        seed=DATASET_SEED,
        num_queries=DATASET_QUERIES,
        ground_truth_k=K,
    )


@lru_cache(maxsize=None)
def _quantized(nlist: int, m: int, cb: int):
    ds = canonical_dataset()
    index = IVFPQIndex.build(
        ds.base, nlist=nlist, num_subspaces=m, codebook_size=cb, seed=0
    )
    return build_quantized_index(index)


def canonical_config(
    name: str,
    *,
    execution: Optional[str] = None,
    plan: Optional[str] = None,
    shard_workers: int = 0,
    shard_pool: str = "persistent",
    kernel_backend: Optional[str] = None,
) -> EngineConfig:
    """The :class:`EngineConfig` for one canonical config name."""
    c = CANONICAL_CONFIGS[name]
    params = IndexParams(
        nlist=c["nlist"], nprobe=c["nprobe"], k=K,
        num_subspaces=c["m"], codebook_size=c["cb"],
    )
    search_kwargs = dict(
        batch_size=BATCH_SIZE, multiplier_less=c["multiplier_less"]
    )
    if execution is not None:
        search_kwargs["execution"] = execution
    if plan is not None:
        search_kwargs["plan"] = plan
    if kernel_backend is not None:
        search_kwargs["kernel_backend"] = kernel_backend
    search = SearchParams(**search_kwargs)
    return EngineConfig(
        index=params,
        search=search,
        system=PimSystemConfig(
            num_dpus=c["num_dpus"],
            shard_workers=shard_workers,
            shard_pool=shard_pool,
        ),
        layout=LayoutConfig(**c["layout"]),
    )


def build_canonical_engine(
    name: str,
    *,
    execution: Optional[str] = None,
    plan: Optional[str] = None,
    shard_workers: int = 0,
    shard_pool: str = "persistent",
    kernel_backend: Optional[str] = None,
    index_path: Optional[str] = None,
) -> DrimAnnEngine:
    """A fresh engine for one canonical config (index reuse is cached).

    With ``index_path``, the engine takes the durable round trip
    instead: build, ``save(index_path)``, close, and return
    ``DrimAnnEngine.load`` of the file — the engine every
    save/load-bit-exactness test compares against the frozen goldens.
    """
    c = CANONICAL_CONFIGS[name]
    ds = canonical_dataset()
    config = canonical_config(
        name,
        execution=execution,
        plan=plan,
        shard_workers=shard_workers,
        shard_pool=shard_pool,
        kernel_backend=kernel_backend,
    )
    engine = DrimAnnEngine.from_config(
        ds.base,
        config,
        heat_queries=ds.queries[:50],
        prebuilt_quantized=_quantized(c["nlist"], c["m"], c["cb"]),
        seed=ENGINE_SEED,
    )
    if index_path is None:
        return engine
    try:
        engine.save(index_path)
    finally:
        engine.close()
    return DrimAnnEngine.load(index_path, config=config)


def brute_force_topk(
    base: np.ndarray, queries: np.ndarray, k: int, block: int = 64
) -> np.ndarray:
    """Exact integer L2 top-k ids — the oracle the engine is graded on.

    Works in int64 throughout (uint8 inputs cannot overflow), blocked
    over queries to bound the distance matrix.
    """
    b = base.astype(np.int64)
    q = queries.astype(np.int64)
    bb = np.einsum("ij,ij->i", b, b)[None, :]
    out = np.empty((len(q), k), dtype=np.int64)
    for i0 in range(0, len(q), block):
        qc = q[i0 : i0 + block]
        d = np.einsum("ij,ij->i", qc, qc)[:, None] + bb - 2 * (qc @ b.T)
        sel, _ = topk_smallest(d, k, axis=1)
        out[i0 : i0 + block] = sel
    return out


def oracle_recall(result_ids: np.ndarray, oracle_ids: np.ndarray) -> float:
    """recall@k of engine ids against the brute-force oracle ids."""
    k = oracle_ids.shape[1]
    hits = sum(
        len(np.intersect1d(r[r >= 0], g))
        for r, g in zip(result_ids, oracle_ids)
    )
    return hits / (len(oracle_ids) * k)


def run_canonical(
    name: str,
    *,
    execution: Optional[str] = None,
    plan: Optional[str] = None,
    shard_workers: int = 0,
    adaptive: Optional[str] = None,
    kernel_backend: Optional[str] = None,
) -> dict:
    """One golden run: recall vs the oracle + frozen cycle counts.

    ``adaptive`` selects the query-adaptive probing mode for the run
    (``None`` leaves the engine default, i.e. ``"off"``). The
    ``adaptive="off"`` cells must stay bit-identical to the frozen
    goldens; the ``bound``/``budget`` cells are frozen separately in
    ``tests/fixtures/golden_adaptive.json``. ``kernel_backend``
    forces a kernel backend (``None`` leaves the default ``"auto"``);
    every backend must reproduce the same frozen goldens byte-equal.
    """
    c = CANONICAL_CONFIGS[name]
    ds = canonical_dataset()
    engine = build_canonical_engine(
        name, execution=execution, plan=plan, shard_workers=shard_workers,
        kernel_backend=kernel_backend,
    )
    queries = ds.queries[: c["num_queries"]]
    try:
        outcome = engine.search(queries, adaptive=adaptive)
        res, bd = outcome.results, outcome.breakdown
    finally:
        engine.close()
    oracle = brute_force_topk(ds.base, queries, K)
    per_dpu = np.array([d.total_cycles for d in engine.system.dpus])
    record = {
        "recall_at_10": oracle_recall(res.ids, oracle),
        "kernel_cycles": {
            kname: v for kname, v in sorted(bd.kernel_cycles.items())
        },
        "total_kernel_cycles": float(sum(bd.kernel_cycles.values())),
        "e2e_cycles_max_dpu": float(per_dpu.max()),
        "e2e_cycles_sum": float(per_dpu.sum()),
        "num_queries": int(c["num_queries"]),
    }
    if outcome.adaptive is not None:
        record["total_probes_executed"] = int(
            np.sum(outcome.adaptive.probes_executed)
        )
    return record


def run_all_canonical() -> Dict[str, dict]:
    """Golden runs for every canonical config, in definition order."""
    return {name: run_canonical(name) for name in CANONICAL_CONFIGS}


#: The adaptive modes frozen in tests/fixtures/golden_adaptive.json.
GOLDEN_ADAPTIVE_MODES = ("bound", "budget")


def run_all_adaptive() -> Dict[str, Dict[str, dict]]:
    """Golden adaptive runs: ``{config: {mode: record}}``."""
    return {
        name: {
            mode: run_canonical(name, adaptive=mode)
            for mode in GOLDEN_ADAPTIVE_MODES
        }
        for name in CANONICAL_CONFIGS
    }
