"""Command-line interface.

::

    python -m repro info
    python -m repro index build   --preset sift-like-20k --nlist 128 \
                                  --out index.drim
    python -m repro index info    index.drim
    python -m repro index verify  index.drim
    python -m repro index compact index.drim
    python -m repro search --preset sift-like-20k --nlist 128 --nprobe 8
    python -m repro model  --points 100000000 --dim 128 --queries 10000 \
                           --nlist 16384 --nprobe 96
    python -m repro tune   --preset sift-like-20k --constraint 0.7
    python -m repro serve  --rate 5000 --metrics-out metrics.json
    python -m repro chaos  --smoke
    python -m repro lint   --strict
    python -m repro sanitize --json

`index` is the durable-lifecycle group: `index build` trains +
quantizes and writes the versioned on-disk format (v2 binary by
default — the mmap cold-start path of ``DrimAnnEngine.load``),
`index info` reads the header without decoding payloads,
`index verify` checks structure + per-segment checksums, and
`index compact` drops tombstoned points and atomically rewrites the
file. `build` is the deprecated v1 alias (`index build --format v1`).
`search`/`serve`/`chaos` accept ``--index PATH`` to run from a saved
index instead of retraining; `search` runs the simulated engine end to
end and reports recall and the timing breakdown (``--profile`` adds
the per-phase metrics profile); `model` evaluates the analytic
performance model at any scale (no simulation); `tune` runs the
Bayesian-optimization DSE against measured recall; `serve` replays an
open-loop stream (``--metrics-out`` dumps the observability snapshot);
`lint` runs the static analyzer (resource contracts, cost-claim
cross-checks, AST rules, the drimsan concurrency rules, trace
invariants — see ``docs/static_analysis.md``; ``--sanitize`` folds the
dynamic sanitizer's findings in); `sanitize` runs the drimsan dynamic
prong standalone — an instrumented pool-backed search whose arena
lifecycle events are replayed through a vector-clock happens-before
checker.

Every subcommand accepts ``--json``, which prints one machine-readable
envelope on stdout::

    {"command": ..., "config": ..., "results": ..., "metrics": ...}

``config`` echoes the exact configuration the results came from (for
engine-backed commands, an :class:`~repro.core.config.EngineConfig`
dict round-trippable via ``EngineConfig.from_dict``); ``metrics`` is a
:class:`~repro.obs.registry.MetricsSnapshot` dict when observability
was on, else ``null``. Human-readable progress moves to stderr so
stdout stays parseable.

Flag spellings are canonical across subcommands (``--nlist``,
``--nprobe``, ``--seed``, ``--out``, ``--dpus``, ``--queries``); the
long index spellings ``--num-subspaces`` / ``--codebook-size`` /
``--topk`` are accepted as aliases of ``--m`` / ``--cb`` / ``--k``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional


def _add_index_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--nlist", type=int, default=128, help="IVF cluster count")
    p.add_argument("--nprobe", type=int, default=8,
                   help="clusters probed per query")
    p.add_argument("--k", "--topk", dest="k", type=int, default=10,
                   help="neighbors returned")
    p.add_argument("--m", "--num-subspaces", dest="m", type=int, default=32,
                   help="PQ sub-spaces (M)")
    p.add_argument("--cb", "--codebook-size", dest="cb", type=int, default=128,
                   help="codebook entries (CB)")


def _add_json_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--json", action="store_true", dest="as_json",
        help='machine-readable {"command","config","results","metrics"} '
             "envelope on stdout",
    )


def _say(args, msg: str) -> None:
    """Progress/human output; moves to stderr under ``--json``."""
    print(msg, file=sys.stderr if args.as_json else sys.stdout)


def _emit(
    args,
    config: Dict[str, Any],
    results: Dict[str, Any],
    metrics: Optional[Dict[str, Any]] = None,
) -> None:
    """Print the shared ``--json`` envelope (no-op in text mode)."""
    if not args.as_json:
        return
    print(json.dumps(
        {
            "command": args.command,
            "config": config,
            "results": results,
            "metrics": metrics,
        },
        indent=2,
    ))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DRIM-ANN reproduction: ANN search on simulated DRAM-PIMs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    i = sub.add_parser("info", help="version, presets, default hardware")
    _add_json_arg(i)

    b = sub.add_parser(
        "build",
        help="train + quantize an index, save to legacy .npz "
             "(deprecated alias of `index build --format v1`)",
    )
    b.add_argument("--preset", default="sift-like-20k")
    b.add_argument("--seed", type=int, default=0)
    b.add_argument("--out", required=True, help="output .npz path")
    _add_index_args(b)
    _add_json_arg(b)

    ix = sub.add_parser(
        "index",
        help="durable index lifecycle: build, inspect, verify, compact",
    )
    ixs = ix.add_subparsers(dest="index_command", required=True)

    ib = ixs.add_parser(
        "build", help="train + quantize, write the v2 binary index file"
    )
    ib.add_argument("--preset", default="sift-like-20k")
    ib.add_argument("--seed", type=int, default=0)
    ib.add_argument("--out", required=True, help="output index path")
    ib.add_argument("--format", dest="fmt", default="v2",
                    choices=("v2", "v1"),
                    help="on-disk format: v2 binary (default, mmap-able) "
                         "or legacy v1 .npz")
    _add_index_args(ib)
    _add_json_arg(ib)

    ii = ixs.add_parser(
        "info", help="header-only inspection of an index file"
    )
    ii.add_argument("path", help="index file (v1 .npz or v2 binary)")
    _add_json_arg(ii)

    iv = ixs.add_parser(
        "verify",
        help="structural + checksum validation; non-zero exit on corruption",
    )
    iv.add_argument("path", help="index file (v1 .npz or v2 binary)")
    _add_json_arg(iv)

    ic = ixs.add_parser(
        "compact",
        help="drop tombstoned points and rewrite the file atomically",
    )
    ic.add_argument("path", help="index file to compact")
    ic.add_argument("--out",
                    help="write the compacted index here instead of "
                         "replacing the input in place")
    _add_json_arg(ic)

    s = sub.add_parser("search", help="run the simulated engine end to end")
    s.add_argument("--preset", default="sift-like-20k")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--index", help="prebuilt index file (`repro index build` "
                                   "v2 binary or legacy `repro build` .npz)")
    s.add_argument("--dpus", type=int, default=32)
    s.add_argument("--queries", type=int, default=200)
    s.add_argument("--execution", default="batched",
                   choices=("batched", "chunked", "per_query"),
                   help="query execution mode: whole-matrix batched "
                        "(default), batch_size chunks, or one query per "
                        "round (differential baseline)")
    s.add_argument("--shard-workers", type=int, default=0,
                   help="worker processes for shard scans (0 = serial; "
                        "results are bit-identical either way)")
    s.add_argument("--plan", default="auto",
                   choices=("auto", "serial", "vectorized", "pool"),
                   help="data-plane strategy per round: planner-chosen "
                        "(default), serial loop, stacked vectorized scan, "
                        "or persistent worker pool — all bit-identical")
    s.add_argument("--kernel-backend", default="auto",
                   choices=("auto", "numpy", "numba"),
                   help="host kernel implementation for scans/LUT builds: "
                        "auto (compiled numba when importable, else fused "
                        "NumPy), or force one — bit-identical results and "
                        "identical cycle ledgers either way")
    s.add_argument("--adaptive", default="off",
                   choices=("off", "bound", "budget", "full"),
                   help="query-adaptive probing: off (fixed nprobe), "
                        "bound (exact early termination, bit-identical "
                        "results), budget (per-query nprobe from the "
                        "centroid-distance gap profile), or full (both)")
    s.add_argument("--shard-pool", default="persistent",
                   choices=("persistent", "percall"),
                   help="worker pool flavor when --shard-workers > 1: "
                        "persistent zero-copy workers (default) or the "
                        "legacy per-call process pool")
    s.add_argument("--no-balance", action="store_true",
                   help="id-order layout, static scheduling (Fig. 11 baseline)")
    s.add_argument("--opq", action="store_true", help="OPQ preprocessing")
    s.add_argument("--profile", action="store_true",
                   help="enable observability; print the per-phase profile")
    s.add_argument("--metrics-out", metavar="PATH",
                   help="write the metrics snapshot (.prom -> Prometheus "
                        "text, else JSON); implies observability")
    _add_index_args(s)
    _add_json_arg(s)

    m = sub.add_parser("model", help="evaluate the analytic model (any scale)")
    m.add_argument("--points", "--num-points", dest="points", type=int,
                   required=True)
    m.add_argument("--dim", type=int, default=128)
    m.add_argument("--queries", type=int, default=10000)
    m.add_argument("--dpus", type=int, default=2530)
    m.add_argument("--compute-scale", type=float, default=1.0)
    m.add_argument("--with-mul", action="store_true",
                   help="disable the multiplier-less conversion")
    _add_index_args(m)
    _add_json_arg(m)

    t = sub.add_parser("tune", help="Bayesian-optimization DSE")
    t.add_argument("--preset", default="sift-like-20k")
    t.add_argument("--seed", type=int, default=0)
    t.add_argument("--constraint", type=float, default=0.7,
                   help="recall@k constraint")
    t.add_argument("--iterations", type=int, default=16)
    t.add_argument("--dpus", type=int, default=32)
    _add_json_arg(t)

    v = sub.add_parser("serve", help="simulate an open-loop query stream")
    v.add_argument("--preset", default="sift-like-20k")
    v.add_argument("--seed", type=int, default=0)
    v.add_argument("--index", help="prebuilt index file to serve from "
                                   "(skips training)")
    v.add_argument("--rate", "--qps", dest="rate", type=float, default=5000,
                   help="arrival QPS")
    v.add_argument("--queries", type=int, default=300)
    v.add_argument("--dpus", type=int, default=32)
    v.add_argument("--batch-size", type=int, default=64)
    v.add_argument("--max-wait-ms", type=float, default=2.0)
    v.add_argument("--deadline-ms", type=float, default=None,
                   help="per-query arrival->completion deadline; served "
                        "queries past it count as misses")
    v.add_argument("--dispatch", default="coalesce",
                   choices=("coalesce", "per_query"),
                   help="micro-batch coalescing (default) or one engine "
                        "round per arrival (the no-batching baseline)")
    v.add_argument("--plan", default="auto",
                   choices=("auto", "serial", "vectorized", "pool"),
                   help="data-plane strategy for every serving round")
    v.add_argument("--shard-workers", type=int, default=0,
                   help="worker processes for shard scans (0 = serial)")
    v.add_argument("--kernel-backend", default="auto",
                   choices=("auto", "numpy", "numba"),
                   help="host kernel implementation for scans/LUT builds "
                        "(bit-identical results either way)")
    v.add_argument("--metrics-out", metavar="PATH",
                   help="write the metrics snapshot (.prom -> Prometheus "
                        "text, else JSON); implies observability")
    _add_index_args(v)
    _add_json_arg(v)

    be = sub.add_parser(
        "bench", help="host-side microbenchmarks (kernel backends)"
    )
    bes = be.add_subparsers(dest="bench_command", required=True)
    bk = bes.add_parser(
        "kernels",
        help="time every registered kernel backend against the staged "
             "reference kernels and check bit-exactness",
    )
    bk.add_argument("--repeats", type=int, default=5,
                    help="timing repetitions per kernel (best-of)")
    bk.add_argument("--seed", type=int, default=0)
    bk.add_argument("--artifact", metavar="PATH",
                    help="also write the record as a bench artifact JSON")
    _add_json_arg(bk)

    c = sub.add_parser(
        "characterize", help="measure the paper's Observations 1-3 on a preset"
    )
    c.add_argument("--preset", default="sift-like-20k")
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--nlist", type=int, default=128)
    c.add_argument("--nprobe", type=int, default=8)
    _add_json_arg(c)

    f = sub.add_parser(
        "frontier", help="recall/throughput Pareto frontier over a small grid"
    )
    f.add_argument("--preset", default="sift-like-20k")
    f.add_argument("--seed", type=int, default=0)
    f.add_argument("--dpus", type=int, default=32)
    _add_json_arg(f)

    def _float_list(text: str):
        return tuple(float(v) for v in text.split(",") if v)

    ch = sub.add_parser(
        "chaos",
        help="fault-injection sweep: recall/availability vs fail-stop rate",
    )
    ch.add_argument("--smoke", action="store_true",
                    help="seconds-scale sweep for CI (overrides sizes)")
    ch.add_argument("--index", help="prebuilt index file to sweep over "
                                    "(skips training; geometry must match)")
    ch.add_argument("--seed", type=int, default=0)
    ch.add_argument("--dpus", type=int, default=64)
    ch.add_argument("--vectors", type=int, default=4096)
    ch.add_argument("--queries", type=int, default=64)
    ch.add_argument("--nlist", type=int, default=64, help="IVF cluster count")
    ch.add_argument("--nprobe", type=int, default=8,
                    help="clusters probed per query")
    ch.add_argument("--k", "--topk", dest="k", type=int, default=10,
                    help="neighbors returned")
    ch.add_argument("--m", "--num-subspaces", dest="m", type=int, default=8,
                    help="PQ sub-spaces (M)")
    ch.add_argument("--cb", "--codebook-size", dest="cb", type=int,
                    default=256, help="codebook entries (CB)")
    ch.add_argument("--rates", type=_float_list, default=None,
                    metavar="R,R,...",
                    help="fail-stop fractions to sweep (default 0,0.02,0.05,0.1)")
    ch.add_argument("--stragglers", type=float, default=0.0,
                    help="fraction of DPUs running derated")
    ch.add_argument("--transient-rate", type=float, default=0.0,
                    help="per-(DPU, batch) transient kernel fault probability")
    ch.add_argument("--timeout-rate", type=float, default=0.0,
                    help="per-batch results-gather timeout probability")
    ch.add_argument("--no-dup", action="store_true",
                    help="disable cluster duplication (no failover replicas)")
    ch.add_argument("--cluster", action="store_true",
                    help="rack-tier chaos instead: dead-shard failover, "
                         "graceful degradation, and straggler hedging "
                         "across sharded engine replicas")
    ch.add_argument("--shards", type=int, default=4,
                    help="engine shards behind the frontend (--cluster)")
    ch.add_argument("--slow-factor", type=float, default=8.0,
                    help="straggler node latency multiplier (--cluster)")
    _add_json_arg(ch)

    def _int_list(text: str):
        return tuple(int(v) for v in text.split(",") if v)

    li = sub.add_parser(
        "lint",
        help="static analysis: resource contracts, cost claims, AST rules",
    )
    li.add_argument("--strict", action="store_true",
                    help="exit non-zero on any error-severity finding")
    li.add_argument("--select",
                    help="comma list of checker families to run "
                         "(resources,costs,ast,concurrency,trace)")
    li.add_argument("--sanitize", action="store_true",
                    help="also run the dynamic drimsan pass (instrumented "
                         "pool-backed search) and merge its findings")
    li.add_argument("--trace",
                    help="check a Chrome trace JSON's timeline invariants "
                         "(runs only the trace family unless --select is given)")
    li.add_argument("--kernel-module", action="append", default=[],
                    metavar="MODULE",
                    help="extra contract module to cross-check "
                         "(dotted name or .py path; repeatable)")
    li.add_argument("--root",
                    help="package directory to AST-lint "
                         "(default: the installed repro package)")
    li.add_argument("--min-severity", default="info",
                    choices=["info", "warning", "error"],
                    help="hide findings below this severity in text output")
    li.add_argument("--grid-nlist", type=_int_list, default=None,
                    metavar="N,N,...", help="DSE grid nlist values to vet")
    li.add_argument("--grid-m", type=_int_list, default=None,
                    metavar="M,M,...", help="DSE grid M values to vet")
    li.add_argument("--grid-cb", type=_int_list, default=None,
                    metavar="CB,CB,...", help="DSE grid CB values to vet")
    li.add_argument("--grid-tasklets", type=_int_list, default=None,
                    metavar="T,T,...", help="tasklet counts to vet the grid at")
    _add_json_arg(li)

    sa = sub.add_parser(
        "sanitize",
        help="dynamic concurrency sanitizer: instrumented pool-backed "
             "search + happens-before checks on the arena lifecycle",
    )
    sa.add_argument("--strict", action="store_true",
                    help="exit non-zero on any error-severity finding")
    sa.add_argument("--config", default="split-replicated",
                    help="canonical engine config to drive (default: "
                         "split-replicated)")
    sa.add_argument("--workers", type=int, default=2,
                    help="persistent pool workers for the sanitized run")
    sa.add_argument("--trace-out", metavar="PATH",
                    help="also export the arena event timeline as Chrome "
                         "trace JSON")
    sa.add_argument("--min-severity", default="info",
                    choices=["info", "warning", "error"],
                    help="hide findings below this severity in text output")
    _add_json_arg(sa)
    return parser


def _write_metrics(path: str, snapshot) -> None:
    """``.prom`` suffix -> Prometheus text exposition, else JSON."""
    if path.endswith(".prom"):
        snapshot.write_prometheus(path)
    else:
        snapshot.write_json(path)


# ---------------------------------------------------------------- commands
def _cmd_info(args) -> int:
    import repro
    from repro.data import list_presets
    from repro.pim.config import DpuConfig, PimSystemConfig

    dpu = DpuConfig()
    cfg = PimSystemConfig()
    _say(args, f"repro {repro.__version__} — DRIM-ANN reproduction (SC 2025)")
    _say(args, f"dataset presets: {', '.join(list_presets())}")
    _say(
        args,
        f"default DPU: {dpu.frequency_hz / 1e6:.0f} MHz, "
        f"{dpu.num_tasklets} tasklets, "
        f"{dpu.mram_bytes // 2**20} MB MRAM, {dpu.wram_bytes // 1024} KB WRAM, "
        f"mul={32}x add",
    )
    _say(
        args,
        f"default system: {cfg.num_dpus} DPUs, "
        f"host channel {cfg.transfer.host_bandwidth_bytes_per_s / 1e9:.1f} GB/s",
    )
    _emit(
        args,
        config={},
        results={
            "version": repro.__version__,
            "presets": list(list_presets()),
            "dpu": {
                "frequency_hz": dpu.frequency_hz,
                "num_tasklets": dpu.num_tasklets,
                "mram_bytes": dpu.mram_bytes,
                "wram_bytes": dpu.wram_bytes,
            },
            "system": {
                "num_dpus": cfg.num_dpus,
                "host_bandwidth_bytes_per_s":
                    cfg.transfer.host_bandwidth_bytes_per_s,
            },
        },
    )
    return 0


def _params(args):
    from repro.core import IndexParams

    return IndexParams(
        nlist=args.nlist,
        nprobe=args.nprobe,
        k=args.k,
        num_subspaces=args.m,
        codebook_size=args.cb,
    )


def _train_and_write(args, fmt: str) -> int:
    """Shared body of ``repro build`` and ``repro index build``."""
    from dataclasses import asdict

    from repro.ann import IVFPQIndex
    from repro.core.persist import save_index, write_v1
    from repro.core.quantized import build_quantized_index
    from repro.data import load_dataset

    params = _params(args)
    _say(args, f"loading {args.preset} ...")
    ds = load_dataset(args.preset, seed=args.seed)
    _say(args, f"training IVF-PQ (nlist={params.nlist}, M={params.num_subspaces}, "
               f"CB={params.codebook_size}) ...")
    index = IVFPQIndex.build(
        ds.base,
        nlist=params.nlist,
        num_subspaces=params.num_subspaces,
        codebook_size=params.codebook_size,
        seed=args.seed,
    )
    quant = build_quantized_index(index)
    if fmt == "v1":
        write_v1(quant, args.out)
    else:
        from repro.core.adaptive import cluster_radii_sq

        save_index(quant, args.out, cluster_radii=cluster_radii_sq(quant))
    _say(args, f"wrote {args.out} ({fmt}): {quant.num_points} points, "
               f"{quant.nlist} clusters, dim {quant.dim}")
    _emit(
        args,
        config={
            "preset": args.preset,
            "seed": args.seed,
            "format": fmt,
            "index": asdict(params),
        },
        results={
            "out": args.out,
            "format": fmt,
            "num_points": quant.num_points,
            "nlist": quant.nlist,
            "dim": quant.dim,
        },
    )
    return 0


def _cmd_build(args) -> int:
    return _train_and_write(args, "v1")


def _cmd_index(args) -> int:
    args.command = f"index {args.index_command}"
    if args.index_command == "build":
        return _train_and_write(args, args.fmt)
    if args.index_command == "info":
        return _cmd_index_info(args)
    if args.index_command == "verify":
        return _cmd_index_verify(args)
    return _cmd_index_compact(args)


def _cmd_index_info(args) -> int:
    from repro.core.persist import index_info

    info = index_info(args.path)
    _say(args, f"{args.path}: {info['container']} "
               f"(format v{info['format_version']})")
    _say(args, f"  {info['num_points']} points, {info['nlist']} clusters, "
               f"dim {info['dim']}, M={info['num_subspaces']}, "
               f"CB={info['codebook_size']}")
    _say(args, f"  tombstones: {info['num_tombstones']} "
               f"({info['tombstone_ratio']:.1%})")
    _say(args, f"  cluster heat: {'yes' if info['has_cluster_heat'] else 'no'}"
               f", OPQ: {'yes' if info['has_opq'] else 'no'}"
               f", radii: {'yes' if info['has_cluster_radii'] else 'no'}"
               f", {info['file_bytes']} bytes on disk")
    _emit(args, config={"path": args.path}, results=info)
    return 0


def _cmd_index_verify(args) -> int:
    from repro.core.persist import verify_index

    report = verify_index(args.path)
    if report["ok"]:
        _say(args, f"{args.path}: OK "
                   f"({report['checked_segments']} segments verified)")
    else:
        for err in report["errors"]:
            _say(args, f"{args.path}: {err}")
    _emit(args, config={"path": args.path}, results=report)
    return 0 if report["ok"] else 1


def _cmd_index_compact(args) -> int:
    from repro.core.persist import load_index_bundle, save_index

    from repro.core.adaptive import cluster_radii_sq

    bundle = load_index_bundle(args.path, mmap=False)
    removed = bundle.index.num_tombstones
    compacted = bundle.index.compact()
    target = args.out or args.path
    save_index(
        compacted,
        target,
        cluster_heat=bundle.cluster_heat,
        preprocessor=bundle.preprocessor,
        cluster_radii=cluster_radii_sq(compacted),
    )
    _say(args, f"compacted {args.path} -> {target}: dropped {removed} "
               f"tombstones, {compacted.num_points} points remain")
    _emit(
        args,
        config={"path": args.path, "out": args.out},
        results={
            "out": target,
            "removed_tombstones": removed,
            "num_points": compacted.num_points,
        },
    )
    return 0


def _profile_lines(snapshot) -> List[str]:
    """Per-phase profile rows from the ``drimann_phase_seconds`` series."""
    rows = [f"{'phase':>6s} {'total ms':>10s} {'mean ms':>9s} "
            f"{'batches':>8s}"]
    for s in snapshot.series("drimann_phase_seconds"):
        n = s["count"]
        if not n:
            continue
        rows.append(
            f"{s['labels']['phase']:>6s} {s['sum'] * 1e3:>10.3f} "
            f"{s['sum'] / n * 1e3:>9.3f} {n:>8d}"
        )
    return rows


def _cmd_search(args) -> int:
    from repro.ann import recall_at_k
    from repro.core import DrimAnnEngine, EngineConfig, LayoutConfig, SearchParams
    from repro.core.persist import load_index
    from repro.data import load_dataset
    from repro.obs import ObsConfig
    from repro.pim.config import PimSystemConfig

    params = _params(args)
    _say(args, f"loading {args.preset} ...")
    ds = load_dataset(
        args.preset, seed=args.seed, num_queries=args.queries, ground_truth_k=params.k
    )
    quant = load_index(args.index) if args.index else None
    layout = (
        LayoutConfig(min_split_size=None, max_copies=0, allocation="id_order")
        if args.no_balance
        else LayoutConfig()
    )
    obs_on = bool(args.profile or args.metrics_out or args.as_json)
    config = EngineConfig(
        index=params,
        search=SearchParams(
            execution=args.execution, plan=args.plan, adaptive=args.adaptive,
            kernel_backend=args.kernel_backend,
        ),
        layout=layout,
        system=PimSystemConfig(
            num_dpus=args.dpus, shard_workers=args.shard_workers,
            shard_pool=args.shard_pool, kernel_backend=args.kernel_backend,
        ),
        use_opq=args.opq,
        obs=ObsConfig(enabled=obs_on),
    )
    _say(args, f"building engine ({args.dpus} DPUs) ...")
    engine = DrimAnnEngine.from_config(
        ds.base,
        config,
        heat_queries=None if args.no_balance else ds.queries[: args.queries // 4],
        prebuilt_quantized=quant,
        seed=args.seed,
    )
    try:
        outcome = engine.search(ds.queries, with_scheduler=not args.no_balance)
    finally:
        engine.close()
    rec = recall_at_k(outcome.results.ids, ds.ground_truth, params.k)
    _say(args, f"\nrecall@{params.k} = {rec:.3f}")
    _say(args, outcome.breakdown.summary())
    if args.profile and outcome.metrics is not None and not args.as_json:
        print("\nper-phase profile:")
        for line in _profile_lines(outcome.metrics):
            print(line)
    if args.metrics_out and outcome.metrics is not None:
        _write_metrics(args.metrics_out, outcome.metrics)
        _say(args, f"wrote metrics snapshot to {args.metrics_out}")
    _emit(
        args,
        config={
            "preset": args.preset,
            "seed": args.seed,
            "queries": args.queries,
            "index_path": args.index,
            "no_balance": args.no_balance,
            "engine": config.to_dict(),
        },
        results={
            "recall_at_k": rec,
            "k": params.k,
            "breakdown": outcome.breakdown.to_dict(),
            "adaptive": (
                None if outcome.adaptive is None
                else outcome.adaptive.to_dict()
            ),
        },
        metrics=None if outcome.metrics is None else outcome.metrics.to_dict(),
    )
    return 0


def _cmd_model(args) -> int:
    from dataclasses import asdict

    from repro.core import AnalyticPerfModel, DatasetShape, HardwareProfile
    from repro.pim.config import PimSystemConfig

    params = _params(args)
    shape = DatasetShape(
        num_points=args.points, dim=args.dim, num_queries=args.queries
    )
    cfg = PimSystemConfig(num_dpus=args.dpus).with_compute_scale(args.compute_scale)
    pim = AnalyticPerfModel(
        shape,
        HardwareProfile.for_pim(cfg),
        multiplier_less=not args.with_mul,
    )
    cpu = AnalyticPerfModel(shape, HardwareProfile.for_cpu())
    t_pim = pim.split_seconds(params)
    t_cpu = cpu.total_seconds(params)
    estimates = pim.estimate(params)
    _say(args, f"{'phase':>6s} {'pim ms':>10s} {'bound':>8s} {'c2io':>8s}")
    for phase, est in estimates.items():
        _say(
            args,
            f"{phase:>6s} {est.seconds * 1e3:>10.3f} "
            f"{'compute' if est.compute_bound else 'IO':>8s} {est.c2io:>8.3f}",
        )
    _say(args, f"\npim (CL on host, overlapped): {t_pim * 1e3:.2f} ms "
               f"({args.queries / t_pim:,.0f} QPS)")
    _say(args, f"cpu baseline:                 {t_cpu * 1e3:.2f} ms "
               f"({args.queries / t_cpu:,.0f} QPS)")
    _say(args, f"modeled speedup:              {t_cpu / t_pim:.2f}x")
    _emit(
        args,
        config={
            "points": args.points,
            "dim": args.dim,
            "queries": args.queries,
            "dpus": args.dpus,
            "compute_scale": args.compute_scale,
            "multiplier_less": not args.with_mul,
            "index": asdict(params),
        },
        results={
            "phases": {
                phase: {
                    "seconds": est.seconds,
                    "compute_bound": est.compute_bound,
                    "c2io": est.c2io,
                }
                for phase, est in estimates.items()
            },
            "pim_seconds": t_pim,
            "cpu_seconds": t_cpu,
            "pim_qps": args.queries / t_pim,
            "cpu_qps": args.queries / t_cpu,
            "speedup": t_cpu / t_pim,
        },
    )
    return 0


def _cmd_tune(args) -> int:
    from dataclasses import asdict

    from repro.ann import IVFPQIndex, recall_at_k
    from repro.core import DatasetShape, DesignSpaceExplorer, HardwareProfile
    from repro.core.quantized import build_quantized_index
    from repro.data import load_dataset
    from repro.pim.config import PimSystemConfig

    _say(args, f"loading {args.preset} ...")
    ds = load_dataset(args.preset, seed=args.seed, num_queries=150, ground_truth_k=10)
    shape = DatasetShape(num_points=ds.num_base, dim=ds.dim, num_queries=150)
    dse = DesignSpaceExplorer(
        shape,
        HardwareProfile.for_pim(PimSystemConfig(num_dpus=args.dpus)),
        nlist_values=[64, 128, 256],
        nprobe_values=[2, 4, 8, 16],
        m_values=[16, 32],
        cb_values=[64, 128],
    )
    cache = {}

    def oracle(params) -> float:
        key = (params.nlist, params.num_subspaces, params.codebook_size)
        if key not in cache:
            idx = IVFPQIndex.build(
                ds.base,
                nlist=params.nlist,
                num_subspaces=params.num_subspaces,
                codebook_size=params.codebook_size,
                seed=args.seed,
            )
            cache[key] = build_quantized_index(idx)
        res = cache[key].reference_search(ds.queries, params.k, params.nprobe)
        rec = recall_at_k(res.ids, ds.ground_truth, params.k)
        _say(args, f"  nlist={params.nlist} nprobe={params.nprobe} "
                   f"M={params.num_subspaces} CB={params.codebook_size}: "
                   f"recall {rec:.3f}")
        return rec

    result = dse.explore(
        oracle, args.constraint, num_iterations=args.iterations, seed=args.seed
    )
    tune_config = {
        "preset": args.preset,
        "seed": args.seed,
        "constraint": args.constraint,
        "iterations": args.iterations,
        "dpus": args.dpus,
    }
    if not result.found_feasible:
        _say(args, "no feasible configuration found — relax the constraint")
        _emit(
            args,
            config=tune_config,
            results={
                "found_feasible": False,
                "oracle_calls": result.oracle_calls,
            },
        )
        return 1
    p = result.best_params
    _say(
        args,
        f"\nbest: nlist={p.nlist} nprobe={p.nprobe} M={p.num_subspaces} "
        f"CB={p.codebook_size} (recall {result.best_accuracy:.3f}, "
        f"modeled {result.best_modeled_seconds * 1e3:.2f} ms/batch, "
        f"{result.oracle_calls} oracle calls)",
    )
    _emit(
        args,
        config=tune_config,
        results={
            "found_feasible": True,
            "best_params": asdict(p),
            "best_recall": result.best_accuracy,
            "best_modeled_seconds": result.best_modeled_seconds,
            "oracle_calls": result.oracle_calls,
        },
    )
    return 0


def _cmd_serve(args) -> int:
    from repro.core import (
        BatchingPolicy,
        DrimAnnEngine,
        EngineConfig,
        PoissonArrivals,
        simulate_serving,
    )
    from repro.data import load_dataset
    from repro.obs import ObsConfig
    from repro.pim.config import PimSystemConfig

    params = _params(args)
    _say(args, f"loading {args.preset} ...")
    ds = load_dataset(args.preset, seed=args.seed, num_queries=args.queries)
    obs_on = bool(args.metrics_out or args.as_json)
    config = EngineConfig(
        index=params,
        system=PimSystemConfig(
            num_dpus=args.dpus, shard_workers=args.shard_workers,
            kernel_backend=args.kernel_backend,
        ),
        obs=ObsConfig(enabled=obs_on),
    )
    quant = None
    if args.index:
        from repro.core.persist import load_index

        quant = load_index(args.index)
    _say(args, f"building engine ({args.dpus} DPUs) ...")
    engine = DrimAnnEngine.from_config(
        ds.base,
        config,
        heat_queries=ds.queries[: args.queries // 4],
        prebuilt_quantized=quant,
        seed=args.seed,
    )
    arrivals = PoissonArrivals(args.rate).sample(args.queries, seed=args.seed)
    try:
        outcome = simulate_serving(
            engine,
            ds.queries,
            arrivals,
            BatchingPolicy(
                batch_size=args.batch_size,
                max_wait_s=args.max_wait_ms * 1e-3,
                deadline_s=(
                    None if args.deadline_ms is None
                    else args.deadline_ms * 1e-3
                ),
                dispatch=args.dispatch,
            ),
            plan=args.plan,
        )
    finally:
        engine.close()
    _say(args, f"\nserving at {args.rate:,.0f} QPS Poisson:")
    _say(args, outcome.report.summary())
    if args.metrics_out and outcome.metrics is not None:
        _write_metrics(args.metrics_out, outcome.metrics)
        _say(args, f"wrote metrics snapshot to {args.metrics_out}")
    _emit(
        args,
        config={
            "preset": args.preset,
            "seed": args.seed,
            "rate_qps": args.rate,
            "queries": args.queries,
            "batch_size": args.batch_size,
            "max_wait_ms": args.max_wait_ms,
            "deadline_ms": args.deadline_ms,
            "dispatch": args.dispatch,
            "plan": args.plan,
            "engine": config.to_dict(),
        },
        results=outcome.report.to_dict(),
        metrics=None if outcome.metrics is None else outcome.metrics.to_dict(),
    )
    return 0


def _cmd_characterize(args) -> int:
    from repro.ann import IVFIndex
    from repro.data import (
        AccessStats,
        ClusterSizeStats,
        intrinsic_dimension_estimate,
        load_dataset,
    )

    _say(args, f"loading {args.preset} ...")
    ds = load_dataset(args.preset, seed=args.seed, num_queries=300)
    idim = intrinsic_dimension_estimate(ds.base)
    _say(args, f"intrinsic dimension: {idim:.1f} of {ds.dim} ambient")
    ivf = IVFIndex.build(ds.base, nlist=args.nlist, seed=args.seed)
    s = ClusterSizeStats.from_sizes(ivf.list_sizes())
    _say(
        args,
        f"cluster sizes: mean {s.mean:.0f}, max {s.max:.0f}, "
        f"imbalance {s.imbalance_factor:.2f}, gini {s.gini:.2f}",
    )
    probes = ivf.locate(ds.queries.astype(float), args.nprobe)
    a = AccessStats.from_probes(probes, ivf.nlist, batch_size=64)
    _say(
        args,
        f"access skew: top cluster {a.top1_share:.1%}, hottest 10% "
        f"{a.top10pct_share:.1%}, zipf {a.zipf_exponent:.2f}, "
        f"batch contention {a.mean_batch_contention:.1f}",
    )
    _emit(
        args,
        config={
            "preset": args.preset,
            "seed": args.seed,
            "nlist": args.nlist,
            "nprobe": args.nprobe,
        },
        results={
            "intrinsic_dimension": idim,
            "ambient_dimension": ds.dim,
            "cluster_sizes": {
                "mean": s.mean,
                "max": s.max,
                "imbalance_factor": s.imbalance_factor,
                "gini": s.gini,
            },
            "access": {
                "top1_share": a.top1_share,
                "top10pct_share": a.top10pct_share,
                "zipf_exponent": a.zipf_exponent,
                "mean_batch_contention": a.mean_batch_contention,
            },
        },
    )
    return 0


def _cmd_frontier(args) -> int:
    from dataclasses import asdict

    from repro.core import DatasetShape, HardwareProfile
    from repro.core.accuracy import measure_accuracy_table
    from repro.core.frontier import knee_point, pareto_frontier
    from repro.core.perf_model import AnalyticPerfModel
    from repro.data import load_dataset
    from repro.pim.config import PimSystemConfig

    _say(args, f"loading {args.preset} ...")
    ds = load_dataset(args.preset, seed=args.seed, num_queries=150, ground_truth_k=10)
    _say(args, "measuring the accuracy table (one index per nlist/M/CB) ...")
    table = measure_accuracy_table(
        ds.base,
        ds.queries,
        ds.ground_truth,
        nlist_values=[64, 128],
        nprobe_values=[1, 2, 4, 8, 16],
        m_values=[16, 32],
        cb_values=[64],
        seed=args.seed,
    )
    model = AnalyticPerfModel(
        DatasetShape(num_points=ds.num_base, dim=ds.dim, num_queries=150),
        HardwareProfile.for_pim(PimSystemConfig(num_dpus=args.dpus)),
        multiplier_less=True,
    )
    frontier = pareto_frontier(table, model)
    _say(args, f"\n{'recall@10':>10s} {'ms/batch':>9s}  configuration")
    for p in frontier:
        _say(
            args,
            f"{p.recall:>10.3f} {p.modeled_seconds * 1e3:>9.2f}  "
            f"nlist={p.params.nlist} nprobe={p.params.nprobe} "
            f"M={p.params.num_subspaces} CB={p.params.codebook_size}",
        )
    knee = knee_point(frontier)
    _say(
        args,
        f"\nknee (suggested default): nlist={knee.params.nlist} "
        f"nprobe={knee.params.nprobe} M={knee.params.num_subspaces} "
        f"CB={knee.params.codebook_size} (recall {knee.recall:.3f})",
    )
    _emit(
        args,
        config={"preset": args.preset, "seed": args.seed, "dpus": args.dpus},
        results={
            "frontier": [
                {
                    "recall": p.recall,
                    "modeled_seconds": p.modeled_seconds,
                    "params": asdict(p.params),
                }
                for p in frontier
            ],
            "knee": {
                "recall": knee.recall,
                "modeled_seconds": knee.modeled_seconds,
                "params": asdict(knee.params),
            },
        },
    )
    return 0


def _cmd_chaos(args) -> int:
    import dataclasses

    from repro.faults.chaos import ChaosConfig, run_chaos

    if args.cluster:
        return _cmd_chaos_cluster(args)
    prebuilt = None
    if args.index:
        from repro.core.persist import load_index

        prebuilt = load_index(args.index)
    if args.smoke:
        config = ChaosConfig.smoke(duplicate=not args.no_dup, seed=args.seed)
        if args.rates:
            config = dataclasses.replace(config, fail_stop_rates=args.rates)
    else:
        config = ChaosConfig(
            num_dpus=args.dpus,
            num_vectors=args.vectors,
            num_queries=args.queries,
            nlist=args.nlist,
            nprobe=args.nprobe,
            k=args.k,
            num_subspaces=args.m,
            codebook_size=args.cb,
            fail_stop_rates=args.rates or (0.0, 0.02, 0.05, 0.10),
            straggler_fraction=args.stragglers,
            transient_rate=args.transient_rate,
            transfer_timeout_rate=args.timeout_rate,
            duplicate=not args.no_dup,
            seed=args.seed,
        )
    report = run_chaos(config, prebuilt_quantized=prebuilt)
    _say(args, report.summary())
    d = report.to_dict()
    _emit(args, config=d["config"], results={"points": d["points"]})
    # The sweep is diagnostic: degraded points are expected output, not
    # a failure. Only a crash (exception) fails the command.
    return 0


def _cmd_chaos_cluster(args) -> int:
    from repro.cluster.chaos import ClusterChaosConfig, run_cluster_chaos

    if args.smoke:
        config = ClusterChaosConfig.smoke(seed=args.seed)
    else:
        config = ClusterChaosConfig(
            num_shards=args.shards,
            num_vectors=args.vectors,
            num_queries=args.queries,
            nlist=args.nlist,
            nprobe=args.nprobe,
            k=args.k,
            num_subspaces=args.m,
            codebook_size=args.cb,
            slow_factor=args.slow_factor,
            seed=args.seed,
        )
    report = run_cluster_chaos(config)
    _say(args, report.summary())
    d = report.to_dict()
    _emit(args, config=d["config"], results={
        "arms": d["arms"],
        "healthy_e2e_ms_p99": d["healthy_e2e_ms_p99"],
        "straggler_unhedged_e2e_ms_p99": d["straggler_unhedged_e2e_ms_p99"],
    })
    # Unlike the diagnostic DPU sweep, the cluster arms carry hard
    # claims CI relies on: replicated failover stays bit-exact, an
    # unreplicated crash degrades (accurately, without raising), and
    # hedging bounds the straggler tail below the unhedged control.
    replicated = report.arm("replicated_crash")
    unreplicated = report.arm("unreplicated_crash")
    straggler = report.arm("straggler_hedged")
    ok = (
        replicated.exact
        and not replicated.raised
        and not unreplicated.raised
        and unreplicated.mean_coverage < 1.0
        and unreplicated.coverage_accurate
        and not straggler.raised
        and straggler.exact
        and straggler.e2e_ms_p99 < report.straggler_unhedged_e2e_ms_p99
    )
    if not ok:
        _say(args, "cluster chaos claims FAILED")
    return 0 if ok else 1


def _cmd_lint(args) -> int:
    from repro.analysis.findings import Severity
    from repro.analysis.runner import FAMILIES, LintOptions, run_lint

    if args.select:
        families = tuple(f.strip() for f in args.select.split(",") if f.strip())
        bad = set(families) - set(FAMILIES)
        if bad:
            _say(args, f"unknown checker families: {', '.join(sorted(bad))} "
                       f"(expected a subset of {', '.join(FAMILIES)})")
            _emit(
                args,
                config={"families": sorted(families)},
                results={"error": "unknown checker families"},
            )
            return 2
    elif args.trace:
        # --trace alone runs the trace checker standalone.
        families = ("trace",)
    else:
        families = ("resources", "costs", "ast", "concurrency")

    defaults = LintOptions()
    options = LintOptions(
        families=families,
        root=args.root,
        trace_path=args.trace,
        kernel_modules=tuple(args.kernel_module),
        grid_nlist=args.grid_nlist or defaults.grid_nlist,
        grid_m=args.grid_m or defaults.grid_m,
        grid_cb=args.grid_cb or defaults.grid_cb,
        grid_tasklets=args.grid_tasklets or defaults.grid_tasklets,
    )
    report = run_lint(options)
    sanitize_stats = None
    if args.sanitize:
        from repro.analysis.sanitizer import run_sanitize

        _say(args, "running dynamic sanitizer (instrumented pool search)...")
        san_findings, sanitize_stats = run_sanitize()
        report.extend(san_findings)
    if args.as_json:
        results = json.loads(report.to_json())
        if sanitize_stats is not None:
            results["sanitize"] = sanitize_stats
        _emit(
            args,
            config={
                "families": list(families),
                "strict": args.strict,
                "sanitize": args.sanitize,
                "root": args.root,
                "trace": args.trace,
                "kernel_modules": list(args.kernel_module),
            },
            results=results,
        )
    else:
        print(report.format_text(min_severity=Severity.parse(args.min_severity)))
    return report.exit_code(strict=args.strict)


def _cmd_sanitize(args) -> int:
    from repro.analysis.findings import Report, Severity
    from repro.analysis.sanitizer import run_sanitize

    _say(
        args,
        f"sanitizing the shared-memory data plane "
        f"({args.config}, {args.workers} workers)...",
    )
    findings, stats = run_sanitize(
        config=args.config,
        shard_workers=args.workers,
        trace_path=args.trace_out,
    )
    report = Report()
    report.extend(findings)
    if args.as_json:
        results = json.loads(report.to_json())
        results["sanitize"] = stats
        _emit(
            args,
            config={
                "config": args.config,
                "workers": args.workers,
                "strict": args.strict,
                "trace_out": args.trace_out,
            },
            results=results,
        )
    else:
        _say(
            args,
            f"recorded {stats['num_events']} arena events across "
            f"{stats['num_processes']} processes",
        )
        print(report.format_text(min_severity=Severity.parse(args.min_severity)))
    return report.exit_code(strict=args.strict)


def _cmd_bench(args) -> int:
    args.command = f"bench {args.bench_command}"
    return _cmd_bench_kernels(args)


def _cmd_bench_kernels(args) -> int:
    from repro.pim.backend.microbench import format_record, run_microbench

    _say(args, "timing kernel backends against the staged reference ...")
    record = run_microbench(repeats=args.repeats, seed=args.seed)
    if not args.as_json:
        print(format_record(record))
    if args.artifact:
        with open(args.artifact, "w") as f:
            json.dump(record, f, indent=2, sort_keys=True)
            f.write("\n")
        _say(args, f"wrote {args.artifact}")
    _emit(
        args,
        config={"repeats": args.repeats, "seed": args.seed},
        results=record,
    )
    return 0 if record["gate_ok"] else 1


_COMMANDS = {
    "info": _cmd_info,
    "build": _cmd_build,
    "index": _cmd_index,
    "search": _cmd_search,
    "model": _cmd_model,
    "tune": _cmd_tune,
    "serve": _cmd_serve,
    "bench": _cmd_bench,
    "characterize": _cmd_characterize,
    "frontier": _cmd_frontier,
    "chaos": _cmd_chaos,
    "lint": _cmd_lint,
    "sanitize": _cmd_sanitize,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
