"""Metric primitives and the registry that owns them.

Four metric kinds, no external dependencies:

* :class:`Counter` — monotonically increasing total;
* :class:`Gauge` — last-written value (queue depth, predicted load);
* :class:`Histogram` — fixed-bucket distribution (cumulative-bucket
  semantics in the Prometheus exposition, raw per-bucket counts held
  internally);
* :class:`~repro.obs.sketch.PercentileSketch` — streaming quantiles
  for unbounded sample streams (serving latency).

Metrics are identified by ``(name, labels)``; the registry enforces
one kind per name, hands out get-or-create handles, and snapshots the
whole family into a :class:`MetricsSnapshot` that exports to JSON or
Prometheus text. Handles are plain attribute-bumping objects so the
hot path costs one dict lookup at acquisition and one float add per
observation.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.sketch import PercentileSketch

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_TIME_BUCKETS",
]

#: Log-spaced latency buckets (seconds): 1 µs … 10 s.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        self.value += amount


class Gauge:
    """A value that can go up and down; reads report the last write."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (upper-bound buckets plus +Inf overflow)."""

    __slots__ = ("bounds", "counts", "total", "count", "_min", "_max")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"bucket bounds must be strictly increasing: {bounds}")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last = overflow (+Inf)
        self.total = 0.0
        self.count = 0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-interpolated percentile (``q`` in [0, 100]).

        Coarser than the sketch — accuracy is bounded by bucket width —
        but enough for dashboards over the fixed phase buckets.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * (self.count - 1)
        cum = 0
        for i, n in enumerate(self.counts):
            if n == 0:
                continue
            if rank < cum + n:
                lo = self.bounds[i - 1] if i > 0 else min(self._min, self.bounds[0])
                hi = self.bounds[i] if i < len(self.bounds) else self._max
                if n == 1 or hi <= lo:
                    return max(min(hi, self._max), self._min)
                frac = (rank - cum) / (n - 1) if n > 1 else 0.0
                return lo + frac * (hi - lo)
            cum += n
        return self._max

    def to_dict(self) -> dict:
        return {
            "buckets": [
                {"le": b, "count": c} for b, c in zip(self.bounds, self.counts)
            ]
            + [{"le": "+Inf", "count": self.counts[-1]}],
            "sum": self.total,
            "count": self.count,
            "mean": self.mean,
        }


_KINDS = {
    "counter": Counter,
    "gauge": Gauge,
    "histogram": Histogram,
    "sketch": PercentileSketch,
}


class MetricsRegistry:
    """Owns every metric of one engine/serving run."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], object] = {}
        self._kind: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    # ----- get-or-create handles -------------------------------------------
    def _get(
        self,
        kind: str,
        name: str,
        help: str,
        factory: Callable[[], object],
        labels: Dict[str, str],
    ) -> object:
        known = self._kind.get(name)
        if known is None:
            self._kind[name] = kind
            if help:
                self._help[name] = help
        elif known != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {known}, "
                f"requested as a {kind}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory()
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get("counter", name, help, Counter, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get("gauge", name, help, Gauge, labels)

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_TIME_BUCKETS,
        help: str = "",
        **labels: str,
    ) -> Histogram:
        return self._get(
            "histogram", name, help, lambda: Histogram(buckets), labels
        )

    def sketch(
        self,
        name: str,
        relative_accuracy: float = 0.01,
        help: str = "",
        **labels: str,
    ) -> PercentileSketch:
        return self._get(
            "sketch",
            name,
            help,
            lambda: PercentileSketch(relative_accuracy),
            labels,
        )

    # ----- introspection ----------------------------------------------------
    def names(self) -> List[str]:
        return sorted(self._kind)

    def kind_of(self, name: str) -> Optional[str]:
        return self._kind.get(name)

    def snapshot(self) -> "MetricsSnapshot":
        """Freeze the current state into an exportable snapshot."""
        samples: List[dict] = []
        for (name, labels), metric in sorted(self._metrics.items()):
            kind = self._kind[name]
            entry = {
                "name": name,
                "kind": kind,
                "labels": dict(labels),
                "help": self._help.get(name, ""),
            }
            if kind in ("counter", "gauge"):
                entry["value"] = metric.value
            else:
                entry.update(metric.to_dict())
            samples.append(entry)
        return MetricsSnapshot(samples=samples)


@dataclass(frozen=True)
class MetricsSnapshot:
    """A frozen, export-ready view of a registry.

    The JSON form groups samples by kind; the Prometheus form follows
    the text exposition format (histograms as cumulative ``_bucket``
    series, sketches as quantile summaries).
    """

    samples: List[dict] = field(default_factory=list)

    # ----- lookups (tests, CLI) --------------------------------------------
    def find(self, name: str, **labels: str) -> Optional[dict]:
        want = _label_key(labels)
        for s in self.samples:
            if s["name"] == name and _label_key(s["labels"]) == want:
                return s
        return None

    def value(self, name: str, **labels: str) -> float:
        """Counter/gauge value; 0.0 when the series was never touched."""
        s = self.find(name, **labels)
        if s is None:
            return 0.0
        if "value" not in s:
            raise ValueError(f"metric {name!r} is a {s['kind']}, not a scalar")
        return s["value"]

    def names(self) -> List[str]:
        return sorted({s["name"] for s in self.samples})

    def series(self, name: str) -> List[dict]:
        return [s for s in self.samples if s["name"] == name]

    # ----- exporters --------------------------------------------------------
    def to_dict(self) -> dict:
        grouped: Dict[str, List[dict]] = {
            "counters": [],
            "gauges": [],
            "histograms": [],
            "sketches": [],
        }
        kind_key = {
            "counter": "counters",
            "gauge": "gauges",
            "histogram": "histograms",
            "sketch": "sketches",
        }
        for s in self.samples:
            entry = {k: v for k, v in s.items() if k not in ("kind", "help")}
            grouped[kind_key[s["kind"]]].append(entry)
        return grouped

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write_json(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())

    def to_prometheus(self) -> str:
        """Prometheus text exposition format."""
        lines: List[str] = []
        seen_header = set()
        for s in self.samples:
            name, kind, labels = s["name"], s["kind"], s["labels"]
            if name not in seen_header:
                seen_header.add(name)
                if s.get("help"):
                    lines.append(f"# HELP {name} {s['help']}")
                prom_type = {
                    "counter": "counter",
                    "gauge": "gauge",
                    "histogram": "histogram",
                    "sketch": "summary",
                }[kind]
                lines.append(f"# TYPE {name} {prom_type}")
            if kind in ("counter", "gauge"):
                lines.append(f"{name}{_prom_labels(labels)} {_fmt(s['value'])}")
            elif kind == "histogram":
                cum = 0
                for bucket in s["buckets"]:
                    cum += bucket["count"]
                    le = (
                        "+Inf"
                        if bucket["le"] == "+Inf"
                        else _fmt(bucket["le"])
                    )
                    lines.append(
                        f"{name}_bucket{_prom_labels(labels, le=le)} {cum}"
                    )
                lines.append(f"{name}_sum{_prom_labels(labels)} {_fmt(s['sum'])}")
                lines.append(f"{name}_count{_prom_labels(labels)} {s['count']}")
            else:  # sketch -> summary
                for q in (50.0, 95.0, 99.0):
                    lines.append(
                        f"{name}{_prom_labels(labels, quantile=_fmt(q / 100.0))} "
                        f"{_fmt(s[f'p{q:g}'])}"
                    )
                lines.append(f"{name}_sum{_prom_labels(labels)} {_fmt(s['sum'])}")
                lines.append(f"{name}_count{_prom_labels(labels)} {s['count']}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_prometheus(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_prometheus())


def _prom_labels(labels: Dict[str, str], **extra: str) -> str:
    items = sorted({**labels, **extra}.items())
    if not items:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in items)
    return "{" + body + "}"


def _fmt(v: float) -> str:
    f = float(v)
    if f == int(f) and abs(f) < 1e15:
        return str(int(f))
    return repr(f)
