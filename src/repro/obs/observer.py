"""The engine-facing observability surface.

:class:`EngineObserver` is the single object the engine, scheduler,
PIM system, and serving loop talk to. Each instrumentation site calls
one narrow ``on_*`` hook; the observer fans the event out to the
metric catalog below and (via its :class:`~repro.obs.spans.SpanRecorder`)
to the Chrome tracer. The engine holds ``Optional[EngineObserver]``,
so a disabled run pays exactly one ``is not None`` check per site —
that is the whole 2%-overhead story.

Metric catalog (all prefixed ``drimann_``):

===============================================  =========  ==========================
metric                                           kind       labels
===============================================  =========  ==========================
engine_queries_total                             counter
engine_batches_total                             counter
phase_seconds                                    histogram  phase (CL/RC/LC/DC/TS/…)
span_seconds                                     histogram  span, track
dpu_busy_cycles_total                            counter    dpu
scheduler_tasks_total                            counter    dpu
scheduler_predicted_cycles                       gauge      dpu
scheduler_deferred_total                         counter
scheduler_uncovered_total                        counter
scheduler_dead_dpus                              gauge
scheduler_failover_tasks_total                   counter
pim_kernel_cycles_total                          counter    kernel
pim_mram_bytes_total                             counter    direction, access
pim_dma_transactions_total                       counter
pim_wram_peak_bytes                              gauge
pim_transfer_seconds_total                       counter    op
pim_transfer_timeouts_total                      counter
pim_transient_retries_total                      counter
pim_failed_tasks_total                           counter
pim_plan_decisions_total                         counter    path
pim_pool_fallbacks_total                         counter    reason
kernel_backend_total                             counter    backend
kernel_fallbacks_total                           counter    reason
faults_dead_dpus                                 gauge
faults_degraded_queries_total                    counter
faults_backoff_seconds_total                     counter
serving_queue_depth                              gauge
serving_batch_occupancy                          histogram
serving_shed_total                               counter
serving_deadline_misses_total                    counter
serving_latency_seconds                          sketch
index_load_seconds                               histogram  phase (open/assemble)
index_tombstone_ratio                            gauge
probes_executed                                  histogram
adaptive_stops_total                             counter    reason (bound/budget/exhausted)
===============================================  =========  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional, Tuple

from repro.obs.registry import MetricsRegistry, MetricsSnapshot
from repro.obs.spans import SpanRecorder

__all__ = ["ObsConfig", "EngineObserver"]

#: Buckets for batch occupancy (query counts, not seconds).
OCCUPANCY_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0)

#: Buckets for per-query executed probes (cluster counts, not seconds).
PROBE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


@dataclass(frozen=True)
class ObsConfig:
    """Switchboard for the observability layer.

    ``enabled=False`` (the default) means ``create()`` returns ``None``
    and the engine runs the uninstrumented fast path.
    """

    enabled: bool = False
    latency_accuracy: float = 0.01

    def __post_init__(self) -> None:
        if not 0.0 < self.latency_accuracy < 1.0:
            raise ValueError(
                "latency_accuracy must be in (0, 1), got "
                f"{self.latency_accuracy}"
            )

    def create(
        self, tracer: Any = None, frequency_hz: float = 450e6
    ) -> Optional["EngineObserver"]:
        if not self.enabled:
            return None
        return EngineObserver(self, tracer=tracer, frequency_hz=frequency_hz)

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "latency_accuracy": self.latency_accuracy,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ObsConfig":
        return cls(**d)


class EngineObserver:
    """Fans instrumentation events out to metrics and trace spans."""

    def __init__(
        self,
        config: ObsConfig = ObsConfig(enabled=True),
        tracer: Any = None,
        frequency_hz: float = 450e6,
    ) -> None:
        self.config = config
        self.registry = MetricsRegistry()
        self.spans = SpanRecorder(
            registry=self.registry, tracer=tracer, frequency_hz=frequency_hz
        )

    # ----- engine ----------------------------------------------------------
    def on_search_start(self, num_queries: int) -> None:
        self.registry.counter(
            "drimann_engine_queries_total", help="queries accepted by search()"
        ).inc(num_queries)

    def on_phase(self, phase: str, seconds: float, *, detail: str = "") -> None:
        """One modeled engine phase (CL, RC, LC, DC, TS, transfer, host)."""
        self.registry.histogram(
            "drimann_phase_seconds",
            help="modeled per-phase time per batch",
            phase=phase,
        ).observe(seconds)
        self.spans.record(phase, seconds, track=f"phase:{phase}", detail=detail)

    def on_batch(self) -> None:
        self.registry.counter(
            "drimann_engine_batches_total", help="PIM batches executed"
        ).inc()

    # ----- adaptive probing ------------------------------------------------
    def on_probes_executed(self, count: int) -> None:
        """Clusters actually scanned (and charged) for one query."""
        self.registry.histogram(
            "drimann_probes_executed",
            buckets=PROBE_BUCKETS,
            help="clusters scanned per query under adaptive probing",
        ).observe(float(count))

    def on_adaptive_stop(self, reason: str) -> None:
        """Why one query stopped probing (bound/budget/exhausted)."""
        self.registry.counter(
            "drimann_adaptive_stops_total",
            help="adaptive-probing stop decisions by reason",
            reason=reason,
        ).inc()

    # ----- index lifecycle -------------------------------------------------
    def on_index_load(self, phase: str, seconds: float) -> None:
        """One cold-start phase: ``open`` (mmap/decode) or ``assemble``."""
        self.registry.histogram(
            "drimann_index_load_seconds",
            help="cold-start time per load phase",
            phase=phase,
        ).observe(seconds)
        self.spans.record(phase, seconds, track="cold_start")

    def on_tombstones(self, ratio: float) -> None:
        """Current deleted fraction of the index (0 after compaction)."""
        self.registry.gauge(
            "drimann_index_tombstone_ratio",
            help="fraction of stored points that are tombstoned",
        ).set(ratio)

    # ----- scheduler -------------------------------------------------------
    def on_schedule(
        self,
        tasks_per_dpu: Iterable[Tuple[int, float]],
        predicted_cycles: Iterable[Tuple[int, float]],
        deferred: int,
        uncovered: int,
        dead_dpus: int,
    ) -> None:
        reg = self.registry
        for dpu, count in tasks_per_dpu:
            reg.counter(
                "drimann_scheduler_tasks_total",
                help="tasks assigned per DPU",
                dpu=dpu,
            ).inc(count)
        for dpu, cycles in predicted_cycles:
            reg.gauge(
                "drimann_scheduler_predicted_cycles",
                help="predicted cycle load per DPU for the last batch",
                dpu=dpu,
            ).set(cycles)
        if deferred:
            reg.counter(
                "drimann_scheduler_deferred_total",
                help="tasks deferred past the filter threshold",
            ).inc(deferred)
        if uncovered:
            reg.counter(
                "drimann_scheduler_uncovered_total",
                help="tasks with no live replica (coverage loss)",
            ).inc(uncovered)
        reg.gauge(
            "drimann_scheduler_dead_dpus",
            help="DPUs currently blacklisted by the scheduler",
        ).set(dead_dpus)

    def on_failover(self, num_tasks: int) -> None:
        self.registry.counter(
            "drimann_scheduler_failover_tasks_total",
            help="tasks re-issued on replica DPUs after faults",
        ).inc(num_tasks)

    # ----- PIM system ------------------------------------------------------
    def on_kernel(
        self, kernel: str, dpu: int, cycles: float, traffic: Any
    ) -> None:
        reg = self.registry
        reg.counter(
            "drimann_pim_kernel_cycles_total",
            help="DPU cycles charged per kernel",
            kernel=kernel,
        ).inc(cycles)
        reg.counter(
            "drimann_dpu_busy_cycles_total",
            help="busy cycles per DPU",
            dpu=dpu,
        ).inc(cycles)
        if traffic is not None:
            seq = traffic.sequential_read + traffic.sequential_write
            rnd = traffic.random_read + traffic.random_write
            if seq:
                reg.counter(
                    "drimann_pim_mram_bytes_total",
                    help="MRAM bytes moved",
                    direction="rw",
                    access="sequential",
                ).inc(seq)
            if rnd:
                reg.counter(
                    "drimann_pim_mram_bytes_total",
                    help="MRAM bytes moved",
                    direction="rw",
                    access="random",
                ).inc(rnd)
            if traffic.transactions:
                reg.counter(
                    "drimann_pim_dma_transactions_total",
                    help="MRAM<->WRAM DMA transactions",
                ).inc(traffic.transactions)

    def on_wram_peak(self, peak_bytes: float) -> None:
        g = self.registry.gauge(
            "drimann_pim_wram_peak_bytes",
            help="largest WRAM working set seen",
        )
        if peak_bytes > g.value:
            g.set(peak_bytes)

    def on_transfer(self, op: str, seconds: float) -> None:
        self.registry.counter(
            "drimann_pim_transfer_seconds_total",
            help="host<->DPU transfer time by operation",
            op=op,
        ).inc(seconds)
        self.spans.record(op, seconds, track="transfer")

    def on_transfer_timeout(self) -> None:
        self.registry.counter(
            "drimann_pim_transfer_timeouts_total",
            help="gather timeouts that forced a retry",
        ).inc()

    def on_transient_retry(self, num_tasks: int = 1) -> None:
        self.registry.counter(
            "drimann_pim_transient_retries_total",
            help="tasks retried after transient kernel faults",
        ).inc(num_tasks)

    def on_failed_tasks(self, num_tasks: int) -> None:
        self.registry.counter(
            "drimann_pim_failed_tasks_total",
            help="tasks lost to fail-stop DPUs in a batch",
        ).inc(num_tasks)

    def on_plan_decision(self, path: str) -> None:
        """Execution-planner choice for one round (serial/vectorized/pool)."""
        self.registry.counter(
            "drimann_pim_plan_decisions_total",
            help="data-plane path chosen per round",
            path=path,
        ).inc()

    def on_pool_fallback(self, reason: str) -> None:
        """A worker-pool degradation to the serial path (never silent)."""
        self.registry.counter(
            "drimann_pim_pool_fallbacks_total",
            help="pool failures/fallbacks to in-process execution",
            reason=reason,
        ).inc()

    def on_kernel_backend(self, backend: str) -> None:
        """The kernel backend a batch resolved to (numpy/numba)."""
        self.registry.counter(
            "drimann_kernel_backend_total",
            help="batches executed per resolved kernel backend",
            backend=backend,
        ).inc()

    def on_kernel_fallback(self, reason: str) -> None:
        """A kernel-backend degradation to numpy (never silent)."""
        self.registry.counter(
            "drimann_kernel_fallbacks_total",
            help="kernel-backend fallbacks to the numpy implementation",
            reason=reason,
        ).inc()

    # ----- faults ----------------------------------------------------------
    def on_faults(self, stats: Any) -> None:
        """Absorb a finalized FaultStats into gauges/counters."""
        if stats is None:
            return
        reg = self.registry
        reg.gauge(
            "drimann_faults_dead_dpus",
            help="DPUs observed dead by the fault layer",
        ).set(len(stats.dead_dpus))
        reg.counter(
            "drimann_faults_degraded_queries_total",
            help="queries answered with reduced cluster coverage",
        ).inc(len(stats.degraded_queries))
        reg.counter(
            "drimann_faults_backoff_seconds_total",
            help="time spent in failover backoff",
        ).inc(stats.backoff_seconds)

    # ----- serving ---------------------------------------------------------
    def on_queue_depth(self, depth: int) -> None:
        self.registry.gauge(
            "drimann_serving_queue_depth",
            help="queries waiting when a batch launched",
        ).set(depth)

    def on_serving_batch(self, occupancy: int) -> None:
        self.registry.histogram(
            "drimann_serving_batch_occupancy",
            buckets=OCCUPANCY_BUCKETS,
            help="queries per launched batch",
        ).observe(occupancy)

    def on_shed(self, num_queries: int = 1) -> None:
        self.registry.counter(
            "drimann_serving_shed_total",
            help="queries shed by the overload policy",
        ).inc(num_queries)

    def on_deadline_miss(self, num_queries: int = 1) -> None:
        self.registry.counter(
            "drimann_serving_deadline_misses_total",
            help="completed queries that missed the deadline",
        ).inc(num_queries)

    def on_admission_reject(self, num_queries: int = 1) -> None:
        self.registry.counter(
            "drimann_serving_admission_rejected_total",
            help="queries rejected up front by admission control",
        ).inc(num_queries)

    # ----- cluster ---------------------------------------------------------
    def on_node_retry(self, num_requests: int = 1) -> None:
        self.registry.counter(
            "drimann_cluster_node_retries_total",
            help="shard requests re-dispatched to another replica",
        ).inc(num_requests)

    def on_hedge(self, num_requests: int = 1) -> None:
        self.registry.counter(
            "drimann_cluster_hedges_total",
            help="hedged shard requests issued past the latency budget",
        ).inc(num_requests)

    def on_dead_nodes(self, num_nodes: int) -> None:
        self.registry.gauge(
            "drimann_cluster_dead_nodes",
            help="engine replicas blacklisted as crashed",
        ).set(num_nodes)

    def on_coverage(self, coverage: float) -> None:
        self.registry.gauge(
            "drimann_cluster_coverage",
            help="mean fraction of probes served in the last round",
        ).set(coverage)

    def on_query_latency(self, seconds: float) -> None:
        self.registry.sketch(
            "drimann_serving_latency_seconds",
            relative_accuracy=self.config.latency_accuracy,
            help="end-to-end per-query serving latency",
        ).add(seconds)

    # ----- export ----------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        return self.registry.snapshot()
