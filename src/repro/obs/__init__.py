"""repro.obs — dependency-free observability for the DRIM-ANN engine.

Counters, gauges, fixed-bucket histograms, and streaming percentile
sketches behind a :class:`MetricsRegistry`; span-based timing that
unifies with the Chrome tracer in :mod:`repro.pim.trace`; JSON and
Prometheus-text exporters via :class:`MetricsSnapshot`. The engine
talks to all of it through :class:`EngineObserver`, created from
:class:`ObsConfig` (disabled by default — a ``None`` observer costs
one pointer check per instrumentation site).
"""

from repro.obs.observer import EngineObserver, ObsConfig
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.sketch import PercentileSketch
from repro.obs.spans import SpanRecord, SpanRecorder

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "EngineObserver",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "ObsConfig",
    "PercentileSketch",
    "SpanRecord",
    "SpanRecorder",
]
