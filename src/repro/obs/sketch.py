"""Streaming percentile sketches for serving-latency tails.

A serving run at production rates sees millions of per-query latencies;
retaining every sample to call ``np.percentile`` at the end is exactly
the kind of unbounded state a long-lived engine cannot afford. The
sketch here is the log-bucketed design of DDSketch (Masson et al.,
VLDB'19): values are binned at indices ``ceil(log_gamma(v))`` with
``gamma = (1 + a) / (1 - a)``, which guarantees every quantile estimate
is within *relative* accuracy ``a`` of the true value — a 1% sketch
reports a 10 ms p99 as something in [9.9 ms, 10.1 ms] — using O(log
range) integer counters and no floats beyond the running sum.

Sketches merge losslessly (bucket-wise addition), so per-shard or
per-window sketches can be combined into a global tail estimate.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

__all__ = ["PercentileSketch"]

# Values below this collapse into the zero bucket: latencies this small
# are below any clock's resolution and would need unbounded negative
# bucket indices otherwise.
_MIN_INDEXABLE = 1e-12


class PercentileSketch:
    """Mergeable quantile sketch with bounded relative error.

    Accepts non-negative samples (latencies, byte counts, cycle
    counts). ``percentile(q)`` is guaranteed to be within
    ``relative_accuracy`` of the exact sample percentile.
    """

    __slots__ = (
        "relative_accuracy",
        "_gamma",
        "_log_gamma",
        "_buckets",
        "_zero_count",
        "count",
        "total",
        "_min",
        "_max",
    )

    def __init__(self, relative_accuracy: float = 0.01) -> None:
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        self.relative_accuracy = relative_accuracy
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._buckets: Dict[int, int] = {}
        self._zero_count = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ----- ingest -----------------------------------------------------------
    def add(self, value: float) -> None:
        """Fold one sample in. Values must be >= 0."""
        value = float(value)
        if value < 0.0 or math.isnan(value):
            raise ValueError(f"sketch values must be >= 0, got {value}")
        if value < _MIN_INDEXABLE:
            self._zero_count += 1
        else:
            index = math.ceil(math.log(value) / self._log_gamma)
            self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.total += value
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def merge(self, other: "PercentileSketch") -> None:
        """Fold another sketch in (must share the accuracy setting)."""
        if other.relative_accuracy != self.relative_accuracy:
            raise ValueError(
                "cannot merge sketches with different relative accuracies "
                f"({self.relative_accuracy} vs {other.relative_accuracy})"
            )
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n
        self._zero_count += other._zero_count
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # ----- query ------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in [0, 100]).

        Uses the same rank convention as ``np.percentile`` (rank
        ``q/100 * (n - 1)``), so accuracy tests can compare directly.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * (self.count - 1)
        cum = self._zero_count
        if rank < cum:
            return 0.0
        for index in sorted(self._buckets):
            cum += self._buckets[index]
            if rank < cum:
                # Midpoint of the bucket's value range, the estimator
                # that realizes the relative-accuracy guarantee.
                value = 2.0 * self._gamma ** index / (self._gamma + 1.0)
                return min(max(value, self._min), self._max)
        return self._max

    def quantiles(
        self, qs: Tuple[float, ...] = (50.0, 95.0, 99.0)
    ) -> Dict[str, float]:
        """The standard serving tail summary, JSON-ready."""
        return {f"p{q:g}": self.percentile(q) for q in qs}

    # ----- export -----------------------------------------------------------
    def to_dict(self) -> dict:
        out = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "relative_accuracy": self.relative_accuracy,
        }
        out.update(self.quantiles())
        return out

    def bucket_items(self) -> List[Tuple[int, int]]:
        """(log-index, count) pairs, for tests and merging diagnostics."""
        items = sorted(self._buckets.items())
        if self._zero_count:
            items.insert(0, (-(2 ** 31), self._zero_count))
        return items

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PercentileSketch(n={self.count}, p50={self.percentile(50):.3g}, "
            f"p99={self.percentile(99):.3g})"
        )
