"""Span-based timing that unifies with the DPU Chrome tracer.

DPU kernels already land on per-DPU cycle timelines via
:class:`~repro.pim.trace.Tracer`; host-side phases (CL, scheduling,
batch assembly) and modeled per-phase aggregates had no equivalent.
A :class:`SpanRecorder` closes that gap:

* ``record(name, seconds)`` appends a span to a named *host track* —
  when a Tracer is attached the span becomes a regular
  :class:`~repro.pim.trace.TraceEvent` on a reserved track id, so the
  exported Chrome trace shows host phases side by side with DPU rows;
* ``span(name)`` is a context manager measuring wall time for real
  host work (CLI profiling);
* with a registry attached, every span also feeds the
  ``drimann_span_seconds`` histogram (labeled by span name).

With neither a tracer nor a registry attached every call is a cheap
no-op — a couple of attribute checks — which is what keeps the
observability layer inside its disabled-overhead budget.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

from repro.obs.registry import DEFAULT_TIME_BUCKETS, MetricsRegistry

__all__ = ["SpanRecord", "SpanRecorder"]

#: Metric fed by every recorded span (labels: ``span``, ``track``).
SPAN_METRIC = "drimann_span_seconds"


@dataclass(frozen=True)
class SpanRecord:
    """One recorded span on a host track (seconds timeline)."""

    name: str
    track: str
    start_s: float
    end_s: float
    detail: str = ""

    @property
    def seconds(self) -> float:
        return self.end_s - self.start_s


class SpanRecorder:
    """Records named spans onto per-track, monotonically advancing
    timelines.

    Each track keeps a cursor: a recorded span starts where the
    previous one on that track ended, so the emitted TraceEvents never
    overlap and pass the ``repro lint`` trace invariants.
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Any = None,
        frequency_hz: float = 450e6,
    ) -> None:
        if frequency_hz <= 0:
            raise ValueError(f"frequency_hz must be > 0, got {frequency_hz}")
        self.registry = registry
        self.tracer = tracer
        self.frequency_hz = frequency_hz
        self._cursor: Dict[str, float] = {}

    # ----- recording --------------------------------------------------------
    def record(
        self,
        name: str,
        seconds: float,
        *,
        track: str = "host",
        detail: str = "",
    ) -> SpanRecord:
        """Append a span of known duration (modeled or measured)."""
        if seconds < 0:
            raise ValueError(f"span duration must be >= 0, got {seconds}")
        start = self._cursor.get(track, 0.0)
        end = start + seconds
        self._cursor[track] = end
        rec = SpanRecord(
            name=name, track=track, start_s=start, end_s=end, detail=detail
        )
        if self.registry is not None:
            self.registry.histogram(
                SPAN_METRIC,
                buckets=DEFAULT_TIME_BUCKETS,
                help="span durations by name and track",
                span=name,
                track=track,
            ).observe(seconds)
        if self.tracer is not None:
            tid = self.tracer.host_track(track)
            self.tracer.record(
                name,
                tid,
                start * self.frequency_hz,
                end * self.frequency_hz,
                detail,
            )
        return rec

    @contextmanager
    def span(
        self, name: str, *, track: str = "host", detail: str = ""
    ) -> Iterator[None]:
        """Measure a real host-side block with ``time.perf_counter``."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.record(
                name, time.perf_counter() - t0, track=track, detail=detail
            )

    # ----- introspection ----------------------------------------------------
    def track_seconds(self, track: str = "host") -> float:
        """Total recorded time on a track (its cursor position)."""
        return self._cursor.get(track, 0.0)

    @property
    def enabled(self) -> bool:
        return self.registry is not None or self.tracer is not None
