"""Static analysis of the DRIM-ANN reproduction (``repro lint``).

Three checker families validate, *without running the simulator*, the
claims the simulator's credibility rests on:

* :mod:`repro.analysis.resources` — evaluates each PIM kernel's
  declared :class:`~repro.analysis.contracts.ResourceContract` against
  a ``DpuConfig``/``IndexParams`` combination (or a whole DSE grid):
  WRAM fit, MRAM capacity under duplication, UPMEM DMA alignment and
  transfer-size constraints, tasklet pipeline underfill.
* :mod:`repro.analysis.costcheck` — cross-checks the kernels' analytic
  instruction mixes and memory traffic against the contracts and
  against instruction-by-instruction execution on the
  :mod:`repro.pim.microcode` micro-interpreter.
* :mod:`repro.analysis.astlint` — stdlib-``ast`` lint rules over the
  package source (kernel traffic accounting, RNG discipline, float
  arithmetic in integer paths, mutable dataclass defaults).
* :mod:`repro.analysis.concurrency` — the drimsan static prong:
  concurrency & determinism rules (AL006–AL012) over the shared-memory
  data plane (segment lifecycle pairing on a per-function CFG with
  exception edges, fork-unsafe module state, unseeded RNG, unordered
  iteration, wall-clock in results, unstable sorts, leaked workers).

Plus a trace-invariant checker (:mod:`repro.analysis.tracecheck`) for
recorded or exported execution traces, and the drimsan dynamic prong
(:mod:`repro.analysis.sanitizer`, ``repro sanitize``): an opt-in arena
lifecycle recorder with a vector-clock happens-before checker for
use-after-unlink, double-unlink, write-after-publish, and orphaned
segments.

:func:`repro.analysis.runner.run_lint` orchestrates the families; the
CLI entry point is ``python -m repro lint``.
"""

from repro.analysis.contracts import KernelShape, ResourceContract, WramTerm
from repro.analysis.findings import Finding, Report, Severity

__all__ = [
    "Finding",
    "KernelShape",
    "LintOptions",
    "Report",
    "ResourceContract",
    "Severity",
    "WramTerm",
    "run_lint",
]


def __getattr__(name: str) -> object:
    # The runner pulls in the kernel modules (which themselves declare
    # contracts from this package), so it is loaded lazily to keep
    # ``repro.pim.kernels -> repro.analysis.contracts`` cycle-free.
    if name in ("run_lint", "LintOptions"):
        from repro.analysis import runner

        return getattr(runner, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
