"""drimsan dynamic prong: arena lifecycle recording + happens-before checks.

The static rules in :mod:`repro.analysis.concurrency` reason about the
shared-memory data plane without running it. This module is the
runtime complement: an opt-in event recorder that the arena and pool in
:mod:`repro.pim.parallel` call into at every segment lifecycle point
(``create``/``write``/``publish``/``attach``/``view``/``close``/
``unlink``), plus a checker that replays the recorded events against a
happens-before order built from per-process vector clocks.

Mechanics
---------

* :func:`enable` arms the recorder in the calling (owner) process and
  names a *spool directory*. Owner-side events accumulate in memory;
  worker processes (seeded via :func:`worker_init`, flushed via
  :func:`flush_worker_events`) append theirs to one JSONL file per pid
  in the spool.
* Every event carries a vector-clock snapshot. Clocks tick on each
  local event and merge whenever a pipe message crosses the
  owner/worker boundary (the pool piggybacks a clock slot on every
  protocol message) and when a worker starts (seeded from the owner's
  clock at spawn, which orders ``publish`` before the worker's
  ``attach``).
* :func:`check_arena_events` flags **use-after-unlink** (an access
  ordered after the segment's unlink), **double-unlink**,
  **write-after-publish** (the owner mutating the arena after workers
  may have attached), and **orphaned segments** (created, never
  unlinked).
* :func:`emit_to_tracer` mirrors the events onto per-process host
  tracks of a :class:`~repro.pim.trace.Tracer`, so the sanitized run's
  Chrome trace shows the arena timeline next to the DPU timelines;
  :func:`repro.analysis.tracecheck.check_arena_order` validates the
  per-process ordering invariants on the same events.
* :func:`run_sanitize` is the ``repro sanitize`` entry point: it runs a
  small canonical pool-backed search with the recorder armed and
  reports both checkers' findings (zero on a healthy data plane).

Events are deliberately tiny (no payloads, only names/keys/clocks): a
sanitized run stays within a few hundred events, so recording overhead
is irrelevant next to process spawn.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.findings import Finding, Severity

#: Vector clock wire form: sorted ``((pid, count), ...)`` pairs.
Clock = Tuple[Tuple[int, int], ...]

#: Event kinds the data plane records, in typical lifecycle order.
EVENT_KINDS = (
    "create",  # owner allocated the segment
    "write",   # owner copied one array into the segment (data= key)
    "publish", # owner handed the segment name to workers (pre-spawn)
    "attach",  # a process mapped an existing segment
    "view",    # a process built a zero-copy array view (data= key)
    "close",   # a process released its mapping
    "unlink",  # the owner removed the segment name
)

#: Access kinds that must never be ordered after the segment's unlink.
_ACCESS_KINDS = ("attach", "view", "write")


__all__ = [
    "ArenaEvent",
    "active",
    "check_arena_events",
    "collect_events",
    "disable",
    "emit_to_tracer",
    "enable",
    "happens_before",
    "run_sanitize",
]

@dataclass(frozen=True)
class ArenaEvent:
    """One recorded lifecycle event with its vector-clock snapshot."""

    seq: int  # per-process monotonic sequence number
    pid: int
    kind: str
    segment: str
    key: Optional[str]  # array key for write/view events
    clock: Clock

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "pid": self.pid,
            "kind": self.kind,
            "segment": self.segment,
            "key": self.key,
            "clock": [list(pair) for pair in self.clock],
        }

    @classmethod
    def from_dict(cls, rec: Dict[str, Any]) -> "ArenaEvent":
        return cls(
            seq=int(rec["seq"]),
            pid=int(rec["pid"]),
            kind=str(rec["kind"]),
            segment=str(rec["segment"]),
            key=rec.get("key"),
            clock=tuple(
                (int(p), int(c)) for p, c in rec.get("clock", ())
            ),
        )


class _State:
    """Per-process recorder state (armed/clock/buffered events)."""

    def __init__(self) -> None:
        self.enabled = False
        self.spool: Optional[str] = None
        self.clock: Dict[int, int] = {}
        self.seq = 0
        self.events: List[ArenaEvent] = []
        self.lock = threading.Lock()

    def reset(self) -> None:
        self.enabled = False
        self.spool = None
        self.clock = {}
        self.seq = 0
        self.events = []


_STATE = _State()


# ---------------------------------------------------------------------------
# Recorder control (owner process)
# ---------------------------------------------------------------------------

def enable(spool_dir: str) -> None:
    """Arm the recorder; worker events spool to ``spool_dir`` as JSONL."""
    with _STATE.lock:
        _STATE.reset()
        _STATE.enabled = True
        _STATE.spool = spool_dir
    os.makedirs(spool_dir, exist_ok=True)


def disable() -> None:
    """Disarm the recorder and drop any buffered state."""
    with _STATE.lock:
        _STATE.reset()


def active() -> bool:
    """Whether the recorder is armed in this process."""
    return _STATE.enabled


def spool_dir() -> Optional[str]:
    """The armed recorder's spool directory (None when disarmed)."""
    return _STATE.spool


def record_event(kind: str, segment: str, key: Optional[str] = None) -> None:
    """Record one lifecycle event (no-op when the recorder is disarmed)."""
    if not _STATE.enabled:
        return
    pid = os.getpid()
    with _STATE.lock:
        _STATE.clock[pid] = _STATE.clock.get(pid, 0) + 1
        _STATE.seq += 1
        snapshot: Clock = tuple(sorted(_STATE.clock.items()))
        _STATE.events.append(
            ArenaEvent(
                seq=_STATE.seq,
                pid=pid,
                kind=kind,
                segment=segment,
                key=key,
                clock=snapshot,
            )
        )


def clock_snapshot() -> Optional[Clock]:
    """Current vector clock for piggybacking on a pipe message."""
    if not _STATE.enabled:
        return None
    with _STATE.lock:
        return tuple(sorted(_STATE.clock.items()))


def merge_clock(clock: Optional[Clock]) -> None:
    """Fold a received clock into ours (message receipt = sync point)."""
    if clock is None or not _STATE.enabled:
        return
    with _STATE.lock:
        for pid, count in clock:
            if count > _STATE.clock.get(int(pid), 0):
                _STATE.clock[int(pid)] = int(count)


# ---------------------------------------------------------------------------
# Worker-side hooks
# ---------------------------------------------------------------------------

def worker_init(spool: str, parent_clock: Optional[Clock]) -> None:
    """Arm the recorder inside a pool worker.

    Called at worker entry with the owner's clock snapshot taken at
    spawn time — this is what orders the owner's ``publish`` before the
    worker's ``attach``. Under ``fork`` the child inherits the owner's
    buffered events; they are cleared here so each event is reported by
    exactly one process.
    """
    with _STATE.lock:
        _STATE.enabled = True
        _STATE.spool = spool
        _STATE.events = []
        _STATE.seq = 0
        _STATE.clock = dict(_STATE.clock)  # unshare (fork) before merging
    merge_clock(parent_clock)


def flush_worker_events() -> None:
    """Append this worker's buffered events to its spool file."""
    if not _STATE.enabled or _STATE.spool is None:
        return
    with _STATE.lock:
        events, _STATE.events = _STATE.events, []
        path = os.path.join(_STATE.spool, f"events-{os.getpid()}.jsonl")
    if not events:
        return
    try:
        with open(path, "a", encoding="utf-8") as f:
            for ev in events:
                f.write(json.dumps(ev.to_dict()) + "\n")
    except OSError:  # spool gone (owner tore down first): drop, don't crash
        pass


# ---------------------------------------------------------------------------
# Collection
# ---------------------------------------------------------------------------

def load_spool(spool: str) -> List[ArenaEvent]:
    """Load every worker's spooled events from ``spool``."""
    events: List[ArenaEvent] = []
    try:
        names = sorted(os.listdir(spool))
    except OSError:
        return events
    for name in names:
        if not name.endswith(".jsonl"):
            continue
        try:
            with open(os.path.join(spool, name), encoding="utf-8") as f:
                for line in f:
                    line = line.strip()
                    if line:
                        events.append(ArenaEvent.from_dict(json.loads(line)))
        except (OSError, ValueError, KeyError):
            continue
    return events


def collect_events() -> List[ArenaEvent]:
    """Owner-buffered events plus everything workers spooled so far."""
    with _STATE.lock:
        owner = list(_STATE.events)
        spool = _STATE.spool
    spooled = load_spool(spool) if spool else []
    return sorted(owner + spooled, key=lambda e: (e.pid, e.seq))


# ---------------------------------------------------------------------------
# Happens-before checker
# ---------------------------------------------------------------------------

def happens_before(a: ArenaEvent, b: ArenaEvent) -> bool:
    """True when ``a`` is ordered strictly before ``b``.

    Standard vector-clock test: ``a``'s own tick is visible in ``b``'s
    snapshot. Same-process events are totally ordered by construction
    (the local component ticks on every event).
    """
    if a is b:
        return False
    a_own = dict(a.clock).get(a.pid, 0)
    b_seen = dict(b.clock).get(a.pid, 0)
    if a.pid == b.pid:
        return a.seq < b.seq
    return a_own <= b_seen


def _finding(
    rule: str,
    message: str,
    *,
    segment: str,
    severity: Severity = Severity.ERROR,
    data: Optional[Dict[str, Any]] = None,
) -> Finding:
    payload: Dict[str, Any] = {"segment": segment}
    if data:
        payload.update(data)
    return Finding(
        checker="sanitizer",
        rule=rule,
        severity=severity,
        message=message,
        data=payload,
    )


def check_arena_events(events: Iterable[ArenaEvent]) -> List[Finding]:
    """Replay recorded events against the happens-before order."""
    findings: List[Finding] = []
    by_segment: Dict[str, List[ArenaEvent]] = {}
    for ev in events:
        by_segment.setdefault(ev.segment, []).append(ev)

    for segment in sorted(by_segment):
        evs = sorted(by_segment[segment], key=lambda e: (e.pid, e.seq))
        unlinks = [e for e in evs if e.kind == "unlink"]
        publishes = [e for e in evs if e.kind == "publish"]
        creates = [e for e in evs if e.kind == "create"]

        if len(unlinks) > 1:
            findings.append(
                _finding(
                    "double-unlink",
                    f"segment {segment!r} unlinked {len(unlinks)} times "
                    f"(pids {sorted({e.pid for e in unlinks})}); a segment "
                    f"name must be removed exactly once",
                    segment=segment,
                    data={"pids": sorted({e.pid for e in unlinks})},
                )
            )

        if creates and not unlinks:
            findings.append(
                _finding(
                    "orphaned-segment",
                    f"segment {segment!r} was created by pid "
                    f"{creates[0].pid} but never unlinked; it outlives the "
                    f"run unless the atexit sweep catches it",
                    segment=segment,
                    data={"pid": creates[0].pid},
                )
            )

        for unlink in unlinks:
            for ev in evs:
                if ev.kind not in _ACCESS_KINDS:
                    continue
                if happens_before(unlink, ev):
                    findings.append(
                        _finding(
                            "use-after-unlink",
                            f"pid {ev.pid} performed {ev.kind!r}"
                            f"{f' of {ev.key!r}' if ev.key else ''} on "
                            f"segment {segment!r} after pid {unlink.pid} "
                            f"unlinked it; the mapping is undefined",
                            segment=segment,
                            data={"kind": ev.kind, "pid": ev.pid,
                                  "unlink_pid": unlink.pid, "key": ev.key},
                        )
                    )

        for publish in publishes:
            for ev in evs:
                if ev.kind != "write":
                    continue
                if happens_before(publish, ev):
                    findings.append(
                        _finding(
                            "write-after-publish",
                            f"pid {ev.pid} wrote {ev.key!r} into segment "
                            f"{segment!r} after it was published to "
                            f"workers; readers may observe the mutation "
                            f"mid-scan",
                            segment=segment,
                            data={"pid": ev.pid, "key": ev.key},
                        )
                    )

    return findings


# ---------------------------------------------------------------------------
# Trace integration + the `repro sanitize` driver
# ---------------------------------------------------------------------------

def emit_to_tracer(events: Iterable[ArenaEvent], tracer: Any) -> None:
    """Mirror events onto per-process host tracks of a Tracer.

    Each process gets an ``arena pid N`` track; events land as
    zero-duration markers at their per-process sequence number, so the
    exported Chrome trace shows the arena lifecycle interleaved with
    the DPU timelines.
    """
    for ev in sorted(events, key=lambda e: (e.pid, e.seq)):
        tid = tracer.host_track(f"arena pid {ev.pid}")
        name = f"arena:{ev.kind}"
        detail = ev.segment if ev.key is None else f"{ev.segment}:{ev.key}"
        tracer.record(name, tid, float(ev.seq), float(ev.seq), detail=detail)


def run_sanitize(
    *,
    config: str = "split-replicated",
    shard_workers: int = 2,
    trace_path: Optional[str] = None,
) -> Tuple[List[Finding], Dict[str, Any]]:
    """Run one canonical pool-backed search with the recorder armed.

    Builds the named canonical engine with a persistent worker pool,
    searches the canonical query set, closes the engine, then replays
    the recorded arena events through :func:`check_arena_events` and
    :func:`repro.analysis.tracecheck.check_arena_order`. A healthy data
    plane reports zero findings.

    Returns ``(findings, stats)`` where ``stats`` summarizes the run
    (event/process/segment counts) for the CLI envelope.
    """
    import tempfile

    from repro.analysis import tracecheck
    from repro.testing import (
        CANONICAL_CONFIGS,
        build_canonical_engine,
        canonical_dataset,
    )

    if config not in CANONICAL_CONFIGS:
        raise ValueError(
            f"config must be one of {sorted(CANONICAL_CONFIGS)}, got {config!r}"
        )

    events: List[ArenaEvent] = []
    with tempfile.TemporaryDirectory(prefix="drimsan-") as spool:
        enable(spool)
        try:
            engine = build_canonical_engine(
                config, plan="pool", shard_workers=shard_workers
            )
            try:
                queries = canonical_dataset().queries[
                    : CANONICAL_CONFIGS[config]["num_queries"]
                ]
                engine.search(queries)
            finally:
                engine.close()
            events = collect_events()
        finally:
            disable()

    findings = check_arena_events(events)
    findings += tracecheck.check_arena_order(events)

    if trace_path is not None:
        from repro.pim.trace import Tracer

        tracer = Tracer()
        emit_to_tracer(events, tracer)
        tracer.export_chrome_trace(trace_path)

    stats: Dict[str, Any] = {
        "config": config,
        "shard_workers": shard_workers,
        "num_events": len(events),
        "num_processes": len({e.pid for e in events}),
        "segments": sorted({e.segment for e in events}),
        "kinds": {
            kind: sum(1 for e in events if e.kind == kind)
            for kind in EVENT_KINDS
        },
        "findings": len(findings),
    }
    return findings, stats
