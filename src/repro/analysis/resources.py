"""Resource-contract checker: WRAM/MRAM/DMA/tasklet feasibility.

Evaluates the kernels' declared :class:`ResourceContract`\\ s against a
``DpuConfig``/``IndexParams`` combination — or a whole DSE grid —
without running the simulator. This is the check a PIM engine must do
before dispatch: a configuration whose ADC LUT, square LUT, heaps and
staging buffers do not fit the 64 KB WRAM cannot run at all, and is
better rejected at lint time than mid-sweep.

WRAM residency model (documented in ``docs/static_analysis.md``):

* *shared* contract terms (ADC LUT, square LUT, query/residual
  windows) persist across the RC→LC→DC→TS phases of a task and are
  deduplicated by label across kernels (max bytes wins);
* *per-tasklet* terms replicate per resident tasklet; terms labeled
  ``*_staging`` share one streaming buffer (max wins), everything else
  (heaps) sums; each tasklet additionally owns a stack.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.contracts import (
    DMA_ALIGN_BYTES,
    DMA_MAX_BYTES,
    DMA_MIN_BYTES,
    KernelShape,
)
from repro.analysis.findings import Finding, Severity
from repro.pim.config import DpuConfig
from repro.pim.kernels import KERNEL_CONTRACTS


@dataclass(frozen=True)
class WramModel:
    """Knobs of the residency model that are not per-kernel."""

    stack_bytes_per_tasklet: int = 256  # shallow kernels, tuned stacks
    warn_fill_fraction: float = 0.95  # warn when this close to the cap

    def __post_init__(self) -> None:
        if self.stack_bytes_per_tasklet < 0:
            raise ValueError("stack_bytes_per_tasklet must be >= 0")
        if not 0 < self.warn_fill_fraction <= 1:
            raise ValueError("warn_fill_fraction must be in (0, 1]")


def _contracts(include_cl: bool) -> Iterable:
    for name, contract in KERNEL_CONTRACTS.items():
        if name == "CL" and not include_cl:
            continue  # CL runs on the host in the default placement
        yield contract


def wram_breakdown(
    shape: KernelShape,
    dpu: DpuConfig,
    *,
    include_cl: bool = False,
    model: WramModel = WramModel(),
) -> Dict[str, float]:
    """Named resident-WRAM terms (bytes) for one configuration.

    Returns shared terms under their contract labels, per-tasklet terms
    under ``"tasklets:<label>"`` (already multiplied by the tasklet
    count), and the tasklet stacks under ``"tasklets:stack"``.
    """
    shared: Dict[str, float] = {}
    staging = 0.0
    per_tasklet_other: Dict[str, float] = {}
    for contract in _contracts(include_cl):
        for term in contract.wram_terms(shape):
            if term.per_tasklet:
                if term.label.endswith("staging"):
                    staging = max(staging, term.bytes)
                else:
                    per_tasklet_other[term.label] = max(
                        per_tasklet_other.get(term.label, 0.0), term.bytes
                    )
            else:
                shared[term.label] = max(shared.get(term.label, 0.0), term.bytes)
    t = dpu.num_tasklets
    out = dict(shared)
    out["tasklets:staging"] = staging * t
    for label, nbytes in per_tasklet_other.items():
        out[f"tasklets:{label}"] = nbytes * t
    out["tasklets:stack"] = float(model.stack_bytes_per_tasklet * t)
    return out


def wram_total(
    shape: KernelShape,
    dpu: DpuConfig,
    *,
    include_cl: bool = False,
    model: WramModel = WramModel(),
) -> float:
    return sum(
        wram_breakdown(shape, dpu, include_cl=include_cl, model=model).values()
    )


def _config_label(shape: KernelShape, dpu: DpuConfig) -> str:
    return (
        f"(M={shape.m}, CB={shape.cb}, k={shape.k}, d={shape.d}, "
        f"tasklets={dpu.num_tasklets})"
    )


# ------------------------------------------------------------- checkers
def check_wram(
    shape: KernelShape,
    dpu: DpuConfig,
    *,
    include_cl: bool = False,
    model: WramModel = WramModel(),
) -> List[Finding]:
    breakdown = wram_breakdown(shape, dpu, include_cl=include_cl, model=model)
    total = sum(breakdown.values())
    cap = dpu.wram_bytes
    data = {
        "total_bytes": total,
        "capacity_bytes": cap,
        "breakdown": breakdown,
        "m": shape.m,
        "cb": shape.cb,
        "k": shape.k,
        "num_tasklets": dpu.num_tasklets,
    }
    label = _config_label(shape, dpu)
    if total > cap:
        worst = max(breakdown, key=breakdown.get)
        return [
            Finding(
                checker="resources",
                rule="wram-overflow",
                severity=Severity.ERROR,
                message=(
                    f"config {label}: resident WRAM {total:,.0f} B exceeds "
                    f"the {cap:,} B budget (largest term: {worst} = "
                    f"{breakdown[worst]:,.0f} B)"
                ),
                data=data,
            )
        ]
    if total > model.warn_fill_fraction * cap:
        return [
            Finding(
                checker="resources",
                rule="wram-pressure",
                severity=Severity.WARNING,
                message=(
                    f"config {label}: resident WRAM {total:,.0f} B is "
                    f"{total / cap:.0%} of the {cap:,} B budget"
                ),
                data=data,
            )
        ]
    return []


def check_mram(
    shape: KernelShape,
    dpu: DpuConfig,
    *,
    num_points: int,
    num_dpus: int,
    duplication_factor: float = 1.0,
) -> List[Finding]:
    """Static per-DPU MRAM estimate: codes + ids under duplication,
    plus the broadcast codebooks and square LUT."""
    if num_points <= 0 or num_dpus <= 0:
        raise ValueError("num_points and num_dpus must be > 0")
    if duplication_factor < 1.0:
        raise ValueError("duplication_factor must be >= 1.0")
    points_per_dpu = -(-num_points // num_dpus)  # ceil
    per_point = shape.m * shape.code_bytes + 8  # codes + int64 id
    codebook = shape.m * shape.cb * shape.dsub * 2  # int16 broadcast
    total = points_per_dpu * per_point * duplication_factor + codebook
    cap = dpu.mram_bytes
    data = {
        "total_bytes": total,
        "capacity_bytes": cap,
        "points_per_dpu": points_per_dpu,
        "duplication_factor": duplication_factor,
    }
    if total > cap:
        return [
            Finding(
                checker="resources",
                rule="mram-overflow",
                severity=Severity.ERROR,
                message=(
                    f"~{points_per_dpu:,} points/DPU x {per_point} B x "
                    f"{duplication_factor:.2f} duplication = {total / 2**20:,.1f} MB "
                    f"exceeds the {cap / 2**20:,.0f} MB MRAM budget"
                ),
                data=data,
            )
        ]
    if total > 0.9 * cap:
        return [
            Finding(
                checker="resources",
                rule="mram-pressure",
                severity=Severity.WARNING,
                message=(
                    f"per-DPU MRAM estimate {total / 2**20:,.1f} MB is over 90% "
                    f"of the {cap / 2**20:,.0f} MB budget; duplication headroom "
                    f"is nearly exhausted"
                ),
                data=data,
            )
        ]
    return []


def check_dma(shape: KernelShape, *, include_cl: bool = False) -> List[Finding]:
    """UPMEM DMA constraints: 8-byte alignment, 8–2048-byte transfers."""
    findings: List[Finding] = []
    for contract in _contracts(include_cl):
        for label, nbytes in contract.dma_transfers(shape).items():
            where = f"{contract.kernel} transfer {label!r} ({nbytes:,.0f} B)"
            if nbytes < DMA_MIN_BYTES:
                findings.append(
                    Finding(
                        checker="resources",
                        rule="dma-undersized",
                        severity=Severity.WARNING,
                        message=(
                            f"{where} is below the {DMA_MIN_BYTES}-byte DMA "
                            f"minimum and will be padded"
                        ),
                        data={"kernel": contract.kernel, "bytes": nbytes},
                    )
                )
            elif nbytes % DMA_ALIGN_BYTES:
                findings.append(
                    Finding(
                        checker="resources",
                        rule="dma-misaligned",
                        severity=Severity.WARNING,
                        message=(
                            f"{where} is not {DMA_ALIGN_BYTES}-byte aligned; "
                            f"UPMEM DMA pads or splits unaligned transfers"
                        ),
                        data={"kernel": contract.kernel, "bytes": nbytes},
                    )
                )
            if nbytes > DMA_MAX_BYTES:
                findings.append(
                    Finding(
                        checker="resources",
                        rule="dma-split",
                        severity=Severity.INFO,
                        message=(
                            f"{where} exceeds the {DMA_MAX_BYTES}-byte DMA "
                            f"maximum and is issued as "
                            f"{-(-int(nbytes) // DMA_MAX_BYTES)} bursts"
                        ),
                        data={"kernel": contract.kernel, "bytes": nbytes},
                    )
                )
    return findings


def check_tasklets(dpu: DpuConfig) -> List[Finding]:
    """Pipeline underfill: tasklets below the revisit depth cap IPC."""
    if dpu.num_tasklets >= dpu.pipeline_depth:
        return []
    ipc = dpu.effective_ipc
    return [
        Finding(
            checker="resources",
            rule="tasklet-underfill",
            severity=Severity.WARNING,
            message=(
                f"{dpu.num_tasklets} tasklets cannot fill the "
                f"{dpu.pipeline_depth}-stage pipeline: IPC capped at {ipc:.2f}"
            ),
            data={
                "num_tasklets": dpu.num_tasklets,
                "pipeline_depth": dpu.pipeline_depth,
                "effective_ipc": ipc,
            },
        )
    ]


def check_config(
    shape: KernelShape,
    dpu: DpuConfig,
    *,
    include_cl: bool = False,
    model: WramModel = WramModel(),
    num_points: Optional[int] = None,
    num_dpus: Optional[int] = None,
    duplication_factor: float = 1.0,
) -> List[Finding]:
    """All resource checks for one (shape, DPU) combination."""
    findings = check_wram(shape, dpu, include_cl=include_cl, model=model)
    findings += check_dma(shape, include_cl=include_cl)
    findings += check_tasklets(dpu)
    if num_points is not None and num_dpus is not None:
        findings += check_mram(
            shape,
            dpu,
            num_points=num_points,
            num_dpus=num_dpus,
            duplication_factor=duplication_factor,
        )
    return findings


def check_dse_grid(
    *,
    dim: int,
    nlist_values: Sequence[int],
    m_values: Sequence[int],
    cb_values: Sequence[int],
    tasklet_values: Sequence[int] = (16,),
    k: int = 10,
    dpu: Optional[DpuConfig] = None,
    num_points: Optional[int] = None,
    num_dpus: Optional[int] = None,
    multiplier_less: bool = True,
    include_cl: bool = False,
    model: WramModel = WramModel(),
) -> List[Finding]:
    """Statically validate every (nlist, M, CB, tasklets) grid point.

    ``nprobe`` does not change the DPU resident set (CL is host-placed
    by default) and is not enumerated. Points whose M does not divide
    the dimension are reported as infeasible outright, matching the DSE
    pruning. Returns one finding per infeasible/flagged point.
    """
    base_dpu = dpu if dpu is not None else DpuConfig()
    findings: List[Finding] = []
    for tasklets in tasklet_values:
        cfg = DpuConfig(
            frequency_hz=base_dpu.frequency_hz,
            num_tasklets=tasklets,
            pipeline_depth=base_dpu.pipeline_depth,
            wram_bytes=base_dpu.wram_bytes,
            mram_bytes=base_dpu.mram_bytes,
            mram_bandwidth_bytes_per_s=base_dpu.mram_bandwidth_bytes_per_s,
            mram_random_derate=base_dpu.mram_random_derate,
            mram_dma_setup_cycles=base_dpu.mram_dma_setup_cycles,
            compute_scale=base_dpu.compute_scale,
        )
        findings += check_tasklets(cfg)
        for nlist, m, cb in itertools.product(nlist_values, m_values, cb_values):
            if dim % m != 0:
                findings.append(
                    Finding(
                        checker="resources",
                        rule="dim-indivisible",
                        severity=Severity.INFO,
                        message=(
                            f"grid point M={m} does not divide dim {dim}; "
                            f"the DSE prunes it"
                        ),
                        data={"m": m, "dim": dim},
                    )
                )
                continue
            shape = KernelShape(
                g=1,
                d=dim,
                m=m,
                cb=cb,
                dsub=dim // m,
                k=k,
                code_bytes=1 if cb <= 256 else 2,
                multiplier_less=multiplier_less,
            )
            point = check_wram(shape, cfg, include_cl=include_cl, model=model)
            point += check_dma(shape, include_cl=include_cl)
            if num_points is not None and num_dpus is not None:
                point += check_mram(
                    shape, cfg, num_points=num_points, num_dpus=num_dpus
                )
            for f in point:
                f.data.setdefault("nlist", nlist)
            findings += point
    return findings


def infeasible_grid_points(findings: Iterable[Finding]) -> List[Dict]:
    """The error-severity grid points from :func:`check_dse_grid`."""
    out = []
    for f in findings:
        if f.severity == Severity.ERROR:
            out.append(
                {
                    "rule": f.rule,
                    "nlist": f.data.get("nlist"),
                    "m": f.data.get("m"),
                    "cb": f.data.get("cb"),
                    "num_tasklets": f.data.get("num_tasklets"),
                }
            )
    return out
