"""Symbolic resource contracts for PIM kernels.

A :class:`ResourceContract` is a kernel's *claim*, in closed form, of
what it consumes as a function of its shape parameters: the
instruction mix it executes, the MRAM traffic it moves, the WRAM it
keeps resident, and the DMA transfer granularities it issues. Each
kernel module under :mod:`repro.pim.kernels` declares a ``CONTRACT``;
the checkers in :mod:`repro.analysis.resources` and
:mod:`repro.analysis.costcheck` evaluate those claims against hardware
configurations (ahead of any simulation) and against measured
instruction counts from the :mod:`repro.pim.microcode` interpreter.

Shape parameters use the paper's Table I vocabulary: ``g`` tasks
(query × cluster pairs) per invocation, ``d`` ambient dimension, ``m``
PQ sub-spaces, ``cb`` codebook entries, ``dsub = d / m`` dims per
sub-space, ``n`` candidate points (or centroids) scanned, ``k`` heap
size kept.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace
from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

from repro.pim.isa import InstructionMix
from repro.pim.memory import MemoryTraffic

if TYPE_CHECKING:  # import-cycle-free: annotation only
    from repro.core.params import IndexParams

# UPMEM DMA engine constraints (Gómez-Luna et al. characterization):
# MRAM<->WRAM transfers must be 8-byte aligned and between 8 and 2048
# bytes; larger streams are split into bursts, smaller ones padded.
DMA_MIN_BYTES = 8
DMA_MAX_BYTES = 2048
DMA_ALIGN_BYTES = 8

# Resident square-LUT footprint for the multiplier-less conversion on
# 8-bit operands: after codebook subtraction the residual range is
# ±(3 * 255) = ±765, so the table holds 2*765+1 entries of 4 bytes
# (§III-A; see repro.core.square_lut.SquareLut.for_bit_width).
SQUARE_LUT_MAX_ABS_8BIT = 3 * 255
SQUARE_LUT_ENTRY_BYTES = 4


def square_lut_bytes(operand_bits: int = 8, levels: int = 3) -> int:
    """WRAM bytes of a resident square LUT for ``operand_bits`` data."""
    max_abs = levels * (2**operand_bits - 1)
    return (2 * max_abs + 1) * SQUARE_LUT_ENTRY_BYTES


@dataclass(frozen=True)
class KernelShape:
    """Shape parameters a contract is evaluated at."""

    g: int = 1  # tasks (query × cluster pairs) in this invocation
    d: int = 0  # ambient dimension D
    m: int = 0  # PQ sub-spaces M
    cb: int = 0  # codebook entries CB
    dsub: int = 0  # dims per sub-space (d == m * dsub)
    n: int = 0  # points (DC/TS) or centroids (CL) scanned
    k: int = 0  # heap size kept (K for TS, nprobe for CL)
    code_bytes: int = 1  # bytes per PQ code element (1 iff CB <= 256)
    bits_lut: int = 32  # ADC LUT entry width B_l
    # Per-tasklet MRAM streaming buffer the engine stages DMA bursts
    # through (<= DMA_MAX_BYTES; one buffer, reused across phases).
    dma_burst: int = 1024
    multiplier_less: bool = True  # §III-A square-LUT conversion on/off
    square_lut_misses: int = 0  # out-of-window lookups (16-bit operands)

    def __post_init__(self) -> None:
        for f in fields(self):
            v = getattr(self, f.name)
            if f.type == "int" and v < 0:
                raise ValueError(f"{f.name} must be >= 0, got {v}")
        if self.m and self.dsub and self.d and self.m * self.dsub != self.d:
            raise ValueError(
                f"inconsistent shape: m*dsub = {self.m * self.dsub} != d = {self.d}"
            )

    @property
    def lut_entry_bytes(self) -> int:
        return self.bits_lut // 8

    @property
    def adc_lut_bytes(self) -> int:
        """One per-task ADC LUT: M × CB entries of B_l bits."""
        return self.m * self.cb * self.lut_entry_bytes

    def replace(self, **kw: object) -> "KernelShape":
        return replace(self, **kw)

    @classmethod
    def from_index_params(
        cls,
        params: "IndexParams",
        *,
        dim: int,
        g: int = 1,
        n: int = 0,
        multiplier_less: bool = True,
        bits_lut: int = 32,
    ) -> "KernelShape":
        """Shape for one task under :class:`~repro.core.params.IndexParams`."""
        m = params.num_subspaces
        cb = params.codebook_size
        if dim % m != 0:
            raise ValueError(f"dim {dim} not divisible by num_subspaces {m}")
        return cls(
            g=g,
            d=dim,
            m=m,
            cb=cb,
            dsub=dim // m,
            n=n,
            k=params.k,
            code_bytes=1 if cb <= 256 else 2,
            bits_lut=bits_lut,
            multiplier_less=multiplier_less,
        )


@dataclass(frozen=True)
class WramTerm:
    """One named WRAM allocation a kernel keeps resident."""

    label: str
    bytes: float
    per_tasklet: bool = False  # replicated per resident tasklet?


@dataclass(frozen=True)
class ResourceContract:
    """A kernel's closed-form resource claim.

    All four callables take a :class:`KernelShape`; the analyzer never
    executes the kernel to evaluate them.
    """

    kernel: str  # "RC" | "LC" | "DC" | "CL" | "TS" (or a fixture name)
    instruction_mix: Callable[[KernelShape], InstructionMix]
    memory_traffic: Callable[[KernelShape], MemoryTraffic]
    wram_terms: Callable[[KernelShape], List[WramTerm]] = lambda shape: []
    dma_transfers: Callable[[KernelShape], Dict[str, float]] = lambda shape: {}
    notes: str = ""

    def wram_bytes(self, shape: KernelShape, num_tasklets: int) -> float:
        """Total resident WRAM at ``num_tasklets`` concurrent tasklets."""
        total = 0.0
        for term in self.wram_terms(shape):
            total += term.bytes * (num_tasklets if term.per_tasklet else 1)
        return total


# ---------------------------------------------------------------- diffs
_REL_TOL = 1e-9
_ABS_TOL = 1e-6


def mix_delta(
    claimed: InstructionMix, measured: InstructionMix
) -> Dict[str, Tuple[float, float]]:
    """Per-class ``{name: (claimed, measured)}`` for classes that differ."""
    out: Dict[str, Tuple[float, float]] = {}
    for f in fields(InstructionMix):
        c = getattr(claimed, f.name)
        m = getattr(measured, f.name)
        if not math.isclose(c, m, rel_tol=_REL_TOL, abs_tol=_ABS_TOL):
            out[f.name] = (c, m)
    return out


def traffic_delta(
    claimed: MemoryTraffic, measured: MemoryTraffic
) -> Dict[str, Tuple[float, float]]:
    """Per-counter ``{name: (claimed, measured)}`` for counters that differ."""
    out: Dict[str, Tuple[float, float]] = {}
    for f in fields(MemoryTraffic):
        c = getattr(claimed, f.name)
        m = getattr(measured, f.name)
        if not math.isclose(c, m, rel_tol=_REL_TOL, abs_tol=_ABS_TOL):
            out[f.name] = (c, m)
    return out
