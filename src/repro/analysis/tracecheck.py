"""Trace-invariant checker for per-DPU execution timelines.

Works on live :class:`~repro.pim.trace.TraceEvent` streams and on
exported Chrome trace-event JSON (``repro lint --trace trace.json``).
The ``TraceEvent`` dataclass itself only rejects negative durations at
construction; everything cross-event must be checked after the fact:

* **overlap** — two events on one DPU timeline overlapping in time
  (a DPU executes one kernel at a time; overlap means the scheduler
  double-booked it or cycle accounting drifted);
* **batch monotonicity** — batch indices must be non-decreasing in
  start order on every DPU (a later batch never starts before an
  earlier one finishes dispatching on that DPU);
* **negative duration** — possible in hand-edited or foreign JSON;
* **retry ordering** — a retried kernel execution (the fault layer
  marks these with ``#retryN`` in the event detail) must start at or
  after its original attempt ends on the same DPU timeline: a retry
  that begins before the attempt it replaces finished means the
  injected backoff was not charged.

:func:`check_arena_order` extends the family to the shared-memory data
plane: it validates the *per-process* ordering invariants of arena
lifecycle events recorded by :mod:`repro.analysis.sanitizer` (map
before use, nothing after close, no double-attach). The cross-process
invariants (use-after-unlink and friends) need the vector-clock
happens-before order and live in the sanitizer itself.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.analysis.findings import Finding, Severity

# Tolerance for float cycle/timestamp comparisons.
_EPS = 1e-9


def _overlap_finding(
    tid: Any, prev: Tuple[Any, ...], nxt: Tuple[Any, ...], unit: str
) -> Finding:
    return Finding(
        checker="trace",
        rule="event-overlap",
        severity=Severity.ERROR,
        message=(
            f"DPU {tid}: {nxt[2]!r} starts at {nxt[0]:g} {unit} before "
            f"{prev[2]!r} ends at {prev[1]:g} {unit}; a DPU runs one "
            f"kernel at a time"
        ),
        data={"dpu": tid, "events": [prev[2], nxt[2]]},
    )


def _batch_finding(tid: Any, prev_batch: Any, batch: Any, name: str) -> Finding:
    return Finding(
        checker="trace",
        rule="batch-regression",
        severity=Severity.ERROR,
        message=(
            f"DPU {tid}: event {name!r} carries batch {batch} after batch "
            f"{prev_batch} already started; batch indices must be "
            f"non-decreasing per DPU"
        ),
        data={"dpu": tid, "batch": batch, "previous_batch": prev_batch},
    )


def _retry_finding(
    tid: Any, name: str, detail: str, start: float, orig_end: float, unit: str
) -> Finding:
    return Finding(
        checker="trace",
        rule="retry-before-original",
        severity=Severity.ERROR,
        message=(
            f"DPU {tid}: retry {name!r} ({detail!r}) starts at {start:g} "
            f"{unit} but the original attempt ends at {orig_end:g} {unit}; "
            f"a retry must wait out its backoff after the attempt it "
            f"replaces"
        ),
        data={"dpu": tid, "event": name, "detail": detail},
    )


def _check_timeline(
    tid: Any,
    events: Sequence[Tuple[Any, ...]],
    unit: str,
) -> List[Finding]:
    """``events`` are (start, end, name, batch[, detail]) per-DPU tuples."""
    findings: List[Finding] = []
    ordered = sorted(events, key=lambda e: (e[0], e[1]))

    def _detail(ev: Tuple[Any, ...]) -> str:
        return str(ev[4]) if len(ev) > 4 and ev[4] is not None else ""

    # Retry ordering needs a pre-pass: a retry recorded entirely before
    # its original attempt must still be flagged, so collect every
    # non-retry attempt's latest end per (name, batch, detail) first.
    attempt_end: Dict[Tuple[Any, ...], float] = {}
    for ev in ordered:
        detail = _detail(ev)
        if detail and "#retry" not in detail:
            key = (ev[2], ev[3], detail)
            attempt_end[key] = max(attempt_end.get(key, ev[1]), ev[1])
    for ev in ordered:
        detail = _detail(ev)
        if "#retry" not in detail:
            continue
        start, _, name, batch = ev[:4]
        base = detail.split("#retry", 1)[0]
        orig_end = attempt_end.get((name, batch, base))
        if orig_end is not None and start < orig_end - _EPS:
            findings.append(
                _retry_finding(tid, name, detail, start, orig_end, unit)
            )

    prev = None
    prev_batch = None
    for ev in ordered:
        start, end, name, batch = ev[:4]
        if end < start - _EPS:
            findings.append(
                Finding(
                    checker="trace",
                    rule="negative-duration",
                    severity=Severity.ERROR,
                    message=(
                        f"DPU {tid}: event {name!r} ends at {end:g} {unit} "
                        f"before it starts at {start:g} {unit}"
                    ),
                    data={"dpu": tid, "event": name},
                )
            )
        if prev is not None and start < prev[1] - _EPS:
            findings.append(_overlap_finding(tid, prev, ev, unit))
        if batch is not None:
            if prev_batch is not None and batch < prev_batch:
                findings.append(_batch_finding(tid, prev_batch, batch, name))
            prev_batch = batch if prev_batch is None else max(prev_batch, batch)
        prev = ev
    return findings


def _arena_finding(rule: str, message: str, pid: Any, segment: str) -> Finding:
    return Finding(
        checker="trace",
        rule=rule,
        severity=Severity.ERROR,
        message=message,
        data={"pid": pid, "segment": segment},
    )


def check_arena_order(events: Iterable[Any]) -> List[Finding]:
    """Per-process ordering invariants over arena lifecycle events.

    ``events`` are :class:`~repro.analysis.sanitizer.ArenaEvent`-like
    objects (``pid``/``seq``/``kind``/``segment`` attributes). Within
    one process's timeline for one segment:

    * **use-before-map** — ``view``/``write``/``close``/``unlink``
      before the process created or attached the segment;
    * **event-after-close** — any event after the process released its
      mapping, except the owner's ``unlink`` (which legitimately
      follows its own ``close``);
    * **double-attach** — a second ``create``/``attach`` without an
      intervening ``close`` (leaks the first mapping).
    """
    per_timeline: Dict[Tuple[Any, str], List[Any]] = {}
    for ev in events:
        per_timeline.setdefault((ev.pid, ev.segment), []).append(ev)

    findings: List[Finding] = []
    for (pid, segment) in sorted(per_timeline):
        evs = sorted(per_timeline[(pid, segment)], key=lambda e: e.seq)
        mapped = False
        closed = False
        ever_mapped = False
        for ev in evs:
            if closed and ev.kind != "unlink":
                findings.append(
                    _arena_finding(
                        "arena-event-after-close",
                        f"pid {pid}: {ev.kind!r} on segment {segment!r} "
                        f"after the process closed its mapping",
                        pid, segment,
                    )
                )
                continue
            if ev.kind in ("create", "attach"):
                if mapped:
                    findings.append(
                        _arena_finding(
                            "arena-double-attach",
                            f"pid {pid}: {ev.kind!r} on segment "
                            f"{segment!r} while already mapped; the first "
                            f"mapping leaks",
                            pid, segment,
                        )
                    )
                mapped = True
                ever_mapped = True
                closed = False
            elif ev.kind in ("view", "write", "close"):
                if not mapped:
                    findings.append(
                        _arena_finding(
                            "arena-use-before-map",
                            f"pid {pid}: {ev.kind!r} on segment "
                            f"{segment!r} before the process mapped it",
                            pid, segment,
                        )
                    )
                if ev.kind == "close":
                    closed = True
                    mapped = False
            elif ev.kind == "unlink":
                # The owner's unlink legitimately follows its own close
                # (the name outlives the mapping); only an unlink by a
                # process that never mapped the segment is malformed.
                if not ever_mapped:
                    findings.append(
                        _arena_finding(
                            "arena-use-before-map",
                            f"pid {pid}: 'unlink' on segment {segment!r} "
                            f"by a process that never mapped it",
                            pid, segment,
                        )
                    )
    return findings


def check_events(events: Iterable[Any]) -> List[Finding]:
    """Check live ``TraceEvent``-like objects (cycles timeline)."""
    per_dpu: Dict[object, List[Tuple[Any, ...]]] = {}
    findings: List[Finding] = []
    for e in events:
        if e.dpu_id < 0:
            findings.append(
                Finding(
                    checker="trace",
                    rule="invalid-dpu-id",
                    severity=Severity.ERROR,
                    message=f"event {e.name!r} has negative dpu_id {e.dpu_id}",
                    data={"dpu": e.dpu_id, "event": e.name},
                )
            )
            continue
        per_dpu.setdefault(e.dpu_id, []).append(
            (e.start_cycle, e.end_cycle, e.name, e.batch, getattr(e, "detail", ""))
        )
    for tid in sorted(per_dpu):
        findings += _check_timeline(tid, per_dpu[tid], "cycles")
    return findings


def check_tracer(tracer: Any) -> List[Finding]:
    """Check a live :class:`~repro.pim.trace.Tracer`."""
    return check_events(tracer.events)


def check_chrome_trace(path: str) -> List[Finding]:
    """Check an exported Chrome trace-event JSON file.

    Accepts both the ``{"traceEvents": [...]}`` object form and a bare
    event array. Metadata events (``"ph": "M"``) are skipped.
    """
    try:
        with open(path, encoding="utf-8") as f:
            payload = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [
            Finding(
                checker="trace",
                rule="unreadable-trace",
                severity=Severity.ERROR,
                message=f"cannot read trace {path!r}: {exc}",
                file=path,
            )
        ]
    records = payload.get("traceEvents") if isinstance(payload, dict) else payload
    if not isinstance(records, list):
        return [
            Finding(
                checker="trace",
                rule="malformed-trace",
                severity=Severity.ERROR,
                message=(
                    f"{path!r} is not a Chrome trace: expected a "
                    f"traceEvents array"
                ),
                file=path,
            )
        ]
    per_tid: Dict[object, List[Tuple[Any, ...]]] = {}
    findings: List[Finding] = []
    for rec in records:
        if not isinstance(rec, dict) or rec.get("ph") == "M":
            continue
        if rec.get("ph") != "X":
            continue  # only complete events carry durations
        try:
            ts = float(rec["ts"])
            dur = float(rec.get("dur", 0.0))
        except (KeyError, TypeError, ValueError):
            findings.append(
                Finding(
                    checker="trace",
                    rule="malformed-event",
                    severity=Severity.WARNING,
                    message=f"event without numeric ts/dur: {rec.get('name')!r}",
                    file=path,
                )
            )
            continue
        key = (rec.get("pid", 0), rec.get("tid", 0))
        ev_args = rec.get("args", {})
        batch = ev_args.get("batch")
        per_tid.setdefault(key, []).append(
            (ts, ts + dur, str(rec.get("name", "?")), batch, ev_args.get("detail"))
        )
    for (pid, tid), evs in sorted(per_tid.items(), key=lambda kv: str(kv[0])):
        for f in _check_timeline(tid, evs, "us"):
            f.data.setdefault("pid", pid)
            findings.append(f)
    return findings
