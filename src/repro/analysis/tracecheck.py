"""Trace-invariant checker for per-DPU execution timelines.

Works on live :class:`~repro.pim.trace.TraceEvent` streams and on
exported Chrome trace-event JSON (``repro lint --trace trace.json``).
The ``TraceEvent`` dataclass itself only rejects negative durations at
construction; everything cross-event must be checked after the fact:

* **overlap** — two events on one DPU timeline overlapping in time
  (a DPU executes one kernel at a time; overlap means the scheduler
  double-booked it or cycle accounting drifted);
* **batch monotonicity** — batch indices must be non-decreasing in
  start order on every DPU (a later batch never starts before an
  earlier one finishes dispatching on that DPU);
* **negative duration** — possible in hand-edited or foreign JSON;
* **retry ordering** — a retried kernel execution (the fault layer
  marks these with ``#retryN`` in the event detail) must start at or
  after its original attempt ends on the same DPU timeline: a retry
  that begins before the attempt it replaces finished means the
  injected backoff was not charged.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.analysis.findings import Finding, Severity

# Tolerance for float cycle/timestamp comparisons.
_EPS = 1e-9


def _overlap_finding(tid, prev, nxt, unit: str) -> Finding:
    return Finding(
        checker="trace",
        rule="event-overlap",
        severity=Severity.ERROR,
        message=(
            f"DPU {tid}: {nxt[2]!r} starts at {nxt[0]:g} {unit} before "
            f"{prev[2]!r} ends at {prev[1]:g} {unit}; a DPU runs one "
            f"kernel at a time"
        ),
        data={"dpu": tid, "events": [prev[2], nxt[2]]},
    )


def _batch_finding(tid, prev_batch, batch, name) -> Finding:
    return Finding(
        checker="trace",
        rule="batch-regression",
        severity=Severity.ERROR,
        message=(
            f"DPU {tid}: event {name!r} carries batch {batch} after batch "
            f"{prev_batch} already started; batch indices must be "
            f"non-decreasing per DPU"
        ),
        data={"dpu": tid, "batch": batch, "previous_batch": prev_batch},
    )


def _retry_finding(tid, name, detail, start, orig_end, unit: str) -> Finding:
    return Finding(
        checker="trace",
        rule="retry-before-original",
        severity=Severity.ERROR,
        message=(
            f"DPU {tid}: retry {name!r} ({detail!r}) starts at {start:g} "
            f"{unit} but the original attempt ends at {orig_end:g} {unit}; "
            f"a retry must wait out its backoff after the attempt it "
            f"replaces"
        ),
        data={"dpu": tid, "event": name, "detail": detail},
    )


def _check_timeline(
    tid,
    events: Sequence[Tuple],
    unit: str,
) -> List[Finding]:
    """``events`` are (start, end, name, batch[, detail]) per-DPU tuples."""
    findings: List[Finding] = []
    ordered = sorted(events, key=lambda e: (e[0], e[1]))

    def _detail(ev) -> str:
        return str(ev[4]) if len(ev) > 4 and ev[4] is not None else ""

    # Retry ordering needs a pre-pass: a retry recorded entirely before
    # its original attempt must still be flagged, so collect every
    # non-retry attempt's latest end per (name, batch, detail) first.
    attempt_end: Dict[Tuple, float] = {}
    for ev in ordered:
        detail = _detail(ev)
        if detail and "#retry" not in detail:
            key = (ev[2], ev[3], detail)
            attempt_end[key] = max(attempt_end.get(key, ev[1]), ev[1])
    for ev in ordered:
        detail = _detail(ev)
        if "#retry" not in detail:
            continue
        start, _, name, batch = ev[:4]
        base = detail.split("#retry", 1)[0]
        orig_end = attempt_end.get((name, batch, base))
        if orig_end is not None and start < orig_end - _EPS:
            findings.append(
                _retry_finding(tid, name, detail, start, orig_end, unit)
            )

    prev = None
    prev_batch = None
    for ev in ordered:
        start, end, name, batch = ev[:4]
        if end < start - _EPS:
            findings.append(
                Finding(
                    checker="trace",
                    rule="negative-duration",
                    severity=Severity.ERROR,
                    message=(
                        f"DPU {tid}: event {name!r} ends at {end:g} {unit} "
                        f"before it starts at {start:g} {unit}"
                    ),
                    data={"dpu": tid, "event": name},
                )
            )
        if prev is not None and start < prev[1] - _EPS:
            findings.append(_overlap_finding(tid, prev, ev, unit))
        if batch is not None:
            if prev_batch is not None and batch < prev_batch:
                findings.append(_batch_finding(tid, prev_batch, batch, name))
            prev_batch = batch if prev_batch is None else max(prev_batch, batch)
        prev = ev
    return findings


def check_events(events: Iterable) -> List[Finding]:
    """Check live ``TraceEvent``-like objects (cycles timeline)."""
    per_dpu: Dict[object, List[Tuple]] = {}
    findings: List[Finding] = []
    for e in events:
        if e.dpu_id < 0:
            findings.append(
                Finding(
                    checker="trace",
                    rule="invalid-dpu-id",
                    severity=Severity.ERROR,
                    message=f"event {e.name!r} has negative dpu_id {e.dpu_id}",
                    data={"dpu": e.dpu_id, "event": e.name},
                )
            )
            continue
        per_dpu.setdefault(e.dpu_id, []).append(
            (e.start_cycle, e.end_cycle, e.name, e.batch, getattr(e, "detail", ""))
        )
    for tid in sorted(per_dpu):
        findings += _check_timeline(tid, per_dpu[tid], "cycles")
    return findings


def check_tracer(tracer) -> List[Finding]:
    """Check a live :class:`~repro.pim.trace.Tracer`."""
    return check_events(tracer.events)


def check_chrome_trace(path: str) -> List[Finding]:
    """Check an exported Chrome trace-event JSON file.

    Accepts both the ``{"traceEvents": [...]}`` object form and a bare
    event array. Metadata events (``"ph": "M"``) are skipped.
    """
    try:
        with open(path, encoding="utf-8") as f:
            payload = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [
            Finding(
                checker="trace",
                rule="unreadable-trace",
                severity=Severity.ERROR,
                message=f"cannot read trace {path!r}: {exc}",
                file=path,
            )
        ]
    records = payload.get("traceEvents") if isinstance(payload, dict) else payload
    if not isinstance(records, list):
        return [
            Finding(
                checker="trace",
                rule="malformed-trace",
                severity=Severity.ERROR,
                message=(
                    f"{path!r} is not a Chrome trace: expected a "
                    f"traceEvents array"
                ),
                file=path,
            )
        ]
    per_tid: Dict[object, List[Tuple]] = {}
    findings: List[Finding] = []
    for rec in records:
        if not isinstance(rec, dict) or rec.get("ph") == "M":
            continue
        if rec.get("ph") != "X":
            continue  # only complete events carry durations
        try:
            ts = float(rec["ts"])
            dur = float(rec.get("dur", 0.0))
        except (KeyError, TypeError, ValueError):
            findings.append(
                Finding(
                    checker="trace",
                    rule="malformed-event",
                    severity=Severity.WARNING,
                    message=f"event without numeric ts/dur: {rec.get('name')!r}",
                    file=path,
                )
            )
            continue
        key = (rec.get("pid", 0), rec.get("tid", 0))
        ev_args = rec.get("args", {})
        batch = ev_args.get("batch")
        per_tid.setdefault(key, []).append(
            (ts, ts + dur, str(rec.get("name", "?")), batch, ev_args.get("detail"))
        )
    for (pid, tid), evs in sorted(per_tid.items(), key=lambda kv: str(kv[0])):
        for f in _check_timeline(tid, evs, "us"):
            f.data.setdefault("pid", pid)
            findings.append(f)
    return findings
