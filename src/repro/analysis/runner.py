"""Lint orchestration: wire the checker families into one report.

The default run mirrors what the simulator would actually execute: the
shipped engine defaults plus the CLI ``tune`` DSE grid, checked against
the default ``DpuConfig``. ``LintOptions`` widens any of it — other
grids, extra contract modules (``--kernel-module``), a trace file
(``--trace``), or a different source root.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.analysis import astlint, concurrency, costcheck, resources, tracecheck
from repro.analysis.contracts import KernelShape
from repro.analysis.findings import Report
from repro.core.params import IndexParams
from repro.pim.config import DpuConfig

#: Family names accepted by ``--select``.
FAMILIES = ("resources", "costs", "ast", "concurrency", "trace")

# The CLI `tune` DSE grid — the sweep `repro lint` vets by default.
_DEFAULT_GRID_NLIST = (64, 128, 256)
_DEFAULT_GRID_M = (16, 32)
_DEFAULT_GRID_CB = (64, 128)
_DEFAULT_GRID_TASKLETS = (16,)


@dataclass(frozen=True)
class LintOptions:
    """One lint invocation's configuration."""

    families: Tuple[str, ...] = ("resources", "costs", "ast", "concurrency")
    root: Optional[str] = None  # package dir; default: installed repro
    trace_path: Optional[str] = None
    kernel_modules: Tuple[str, ...] = ()
    # Engine defaults the resource checker validates.
    params: IndexParams = field(
        default_factory=lambda: IndexParams(
            nlist=128, nprobe=8, k=10, num_subspaces=32, codebook_size=128
        )
    )
    dim: int = 128
    dpu: DpuConfig = field(default_factory=DpuConfig)
    # DSE grid swept by the resource checker.
    grid_nlist: Tuple[int, ...] = _DEFAULT_GRID_NLIST
    grid_m: Tuple[int, ...] = _DEFAULT_GRID_M
    grid_cb: Tuple[int, ...] = _DEFAULT_GRID_CB
    grid_tasklets: Tuple[int, ...] = _DEFAULT_GRID_TASKLETS

    def __post_init__(self) -> None:
        unknown = set(self.families) - set(FAMILIES)
        if unknown:
            raise ValueError(
                f"unknown checker families {sorted(unknown)}; "
                f"expected a subset of {FAMILIES}"
            )


def _default_root() -> str:
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def run_lint(options: LintOptions = LintOptions()) -> Report:
    """Run the selected checker families; returns the merged report."""
    report = Report()

    if "resources" in options.families:
        shape = KernelShape.from_index_params(options.params, dim=options.dim)
        report.extend(resources.check_config(shape, options.dpu))
        report.extend(
            resources.check_dse_grid(
                dim=options.dim,
                nlist_values=options.grid_nlist,
                m_values=options.grid_m,
                cb_values=options.grid_cb,
                tasklet_values=options.grid_tasklets,
                k=options.params.k,
                dpu=options.dpu,
            )
        )

    if "costs" in options.families:
        report.extend(costcheck.check_builtin_contracts())
        for module in options.kernel_modules:
            report.extend(costcheck.check_contract_module(module))

    if "ast" in options.families:
        root = options.root or _default_root()
        report.extend(astlint.lint_tree(root))

    if "concurrency" in options.families:
        root = options.root or _default_root()
        report.extend(concurrency.lint_tree(root))

    if "trace" in options.families and options.trace_path:
        report.extend(tracecheck.check_chrome_trace(options.trace_path))

    return report
