"""drimsan static prong: concurrency & determinism rules AL006-AL012.

The PR-5 data plane made the engine genuinely concurrent — persistent
worker processes over a :mod:`multiprocessing.shared_memory` arena —
and that code class carries hazards the cost-model linter
(:mod:`repro.analysis.astlint`) never looks at: leaked segments, state
silently captured by forked workers, and nondeterminism sneaking into
result-producing paths. These rules police them statically (stdlib
``ast``, no dependencies):

* ``shm-lifecycle`` (AL006) — a ``SharedShardArena.create/attach`` (or
  raw ``SharedMemory``) handle must reach ``close()``/``unlink()`` or
  escape the function (returned, stored on an object, passed onward)
  on **every** path, including exception edges. Checked with a small
  per-function control-flow graph; ``with`` acquisition is always
  clean (``__exit__`` closes).
* ``fork-unsafe-state`` (AL007) — a function handed to
  ``Process``/``Thread`` (or ``pool.submit``) that reads module-level
  mutable state: under ``fork`` the worker sees a silent snapshot,
  under ``spawn`` a fresh empty object — either way the two processes
  silently diverge.
* ``unseeded-rng`` (AL008) — stdlib ``random`` calls. AL002 already
  fences ``np.random``; this closes the other door. All randomness
  routes through :func:`repro.utils.rng.ensure_rng`.
* ``unordered-iteration`` (AL009) — iterating a ``set`` (literal,
  ``set()`` call, set union/intersection, or a local/module name bound
  to one) without ``sorted(...)``: iteration order varies across
  processes and hash seeds, so any merge, top-k feed, or serialized
  output built from it is nondeterministic.
* ``wallclock-in-result`` (AL010) — ``time.time()`` / ``os.getpid()``
  (and friends) flowing into a function's return value. Wall-clock
  belongs in the observability layer, never in results.
* ``unstable-sort`` (AL011) — ``argsort`` without ``kind="stable"`` in
  result-producing packages (``core/``, ``ann/``, ``pim/``): numpy's
  default introsort breaks ties by memory layout, so equal keys land
  in platform-dependent order.
* ``leaked-worker`` (AL012) — a ``Thread``/``Process``/executor
  constructed, possibly started, and then dropped without being
  joined, shut down, or handed to an owner that will. Also covers
  asyncio: a task from ``asyncio.create_task``/``ensure_future`` that
  is never awaited, cancelled, gathered, or stored runs (or silently
  dies with a swallowed exception) past the function's awareness —
  the cluster frontend's scatter-gather must consume every task.

Escape hatch: a function may opt out of one rule by declaring
``drimsan: allow <rule-id>`` in its docstring — the same explicit,
reviewable pattern AL001 uses for pure kernel helpers.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.findings import Finding, Severity

__all__ = ["RULE_IDS", "lint_file", "lint_source", "lint_tree"]

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: rule id -> AL number (the ``data`` payload carries both spellings).
RULE_IDS: Dict[str, str] = {
    "shm-lifecycle": "AL006",
    "fork-unsafe-state": "AL007",
    "unseeded-rng": "AL008",
    "unordered-iteration": "AL009",
    "wallclock-in-result": "AL010",
    "unstable-sort": "AL011",
    "leaked-worker": "AL012",
}

_ARENA_FACTORIES = {"create", "attach"}
_WORKER_FACTORIES = {
    "Thread",
    "Process",
    "ThreadPoolExecutor",
    "ProcessPoolExecutor",
    "Pool",
}
_WORKER_DISCHARGE_METHODS = {
    "join",
    "shutdown",
    "close",
    "terminate",
    "kill",
    "cancel",
}
#: asyncio task factories AL012 also polices. Matched with their head
#: (``asyncio.create_task`` / ``loop.create_task`` / bare import), so a
#: ``TaskGroup.create_task`` — whose group owns the task — stays exempt.
_ASYNC_TASK_FACTORIES = {"create_task", "ensure_future"}
_ASYNC_TASK_HEADS = {"", "asyncio", "loop"}
_WALLCLOCK_SOURCES = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "os.getpid",
    "os.getppid",
    "uuid.uuid1",
    "uuid.uuid4",
}
_STABLE_SORT_KINDS = {"stable", "mergesort"}


def _norm(path: str) -> str:
    return path.replace(os.sep, "/")


def _dotted(node: ast.AST) -> Optional[str]:
    """'np.random.default_rng' for nested Attribute/Name chains."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _finding(
    rule: str, message: str, path: str, node: ast.AST,
    severity: Severity = Severity.ERROR,
) -> Finding:
    return Finding(
        checker="concurrency",
        rule=rule,
        severity=severity,
        message=message,
        file=_norm(path),
        line=getattr(node, "lineno", None),
        data={"id": RULE_IDS[rule]},
    )


def _functions(tree: ast.Module) -> Iterator[_FuncDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk one scope's body without descending into nested defs.

    Nested functions are their own scopes (each is analyzed on its own
    pass), so rules that iterate per-function must not double-count
    their statements.
    """
    stack = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _opted_out(fn: Optional[_FuncDef], rule: str) -> bool:
    if fn is None:
        return False
    doc = ast.get_docstring(fn) or ""
    return f"drimsan: allow {rule}" in doc


def _mentions(node: ast.AST, var: str) -> bool:
    return any(
        isinstance(sub, ast.Name) and sub.id == var
        for sub in ast.walk(node)
    )


# ---------------------------------------------------------------------------
# AL006: a small per-function CFG with exception edges
# ---------------------------------------------------------------------------

class _Cfg:
    """Statement-level control-flow graph of one function body.

    Nodes are statements; edges split into normal successors and
    exception successors (any statement may raise into the innermost
    enclosing handler/finally, or out of the function). ``finally``
    blocks additionally flow to EXIT, overapproximating the
    exception-propagation and return paths through them — sound for
    leak checking, occasionally adding spurious-but-harmless paths.
    """

    EXIT = -1

    def __init__(self, fn: _FuncDef) -> None:
        self.nodes: List[ast.stmt] = []
        self.normal: Dict[int, Set[int]] = {}
        self.exc: Dict[int, Set[int]] = {}
        _, exits = self._build_body(fn.body, (), None, None, None)
        for nid in exits:
            self.normal[nid].add(self.EXIT)

    # ----- construction ----------------------------------------------------
    def _new(self, stmt: ast.stmt, exc_targets: Sequence[int]) -> int:
        nid = len(self.nodes)
        self.nodes.append(stmt)
        self.normal[nid] = set()
        self.exc[nid] = set(exc_targets) if exc_targets else {self.EXIT}
        return nid

    def _build_body(
        self,
        body: Sequence[ast.stmt],
        exc_targets: Sequence[int],
        break_sink: Optional[List[int]],
        continue_target: Optional[int],
        finally_entry: Optional[int],
    ) -> Tuple[Optional[int], List[int]]:
        """Wire one statement list; returns (entry node, exit nodes).

        ``break_sink`` collects break-statement nodes for the enclosing
        loop; ``finally_entry`` is where returns must detour first.
        """
        body_entry: Optional[int] = None
        prev_exits: List[int] = []
        for stmt in body:
            entry, exits = self._build_stmt(
                stmt, exc_targets, break_sink, continue_target, finally_entry
            )
            if entry is None:
                continue
            for p in prev_exits:
                self.normal[p].add(entry)
            if body_entry is None:
                body_entry = entry
            prev_exits = exits
            if not exits:  # return/raise/break/continue: flow stops here
                break
        return body_entry, prev_exits

    def _build_stmt(
        self,
        stmt: ast.stmt,
        exc_targets: Sequence[int],
        break_sink: Optional[List[int]],
        continue_target: Optional[int],
        finally_entry: Optional[int],
    ) -> Tuple[Optional[int], List[int]]:
        if isinstance(stmt, ast.If):
            nid = self._new(stmt, exc_targets)
            exits: List[int] = []
            for branch in (stmt.body, stmt.orelse):
                if not branch:
                    exits.append(nid)
                    continue
                b_entry, b_exits = self._build_body(
                    branch, exc_targets, break_sink, continue_target,
                    finally_entry,
                )
                if b_entry is not None:
                    self.normal[nid].add(b_entry)
                    exits.extend(b_exits)
                else:
                    exits.append(nid)
            return nid, exits

        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            nid = self._new(stmt, exc_targets)
            breaks: List[int] = []
            b_entry, b_exits = self._build_body(
                stmt.body, exc_targets, breaks, nid, finally_entry
            )
            if b_entry is not None:
                self.normal[nid].add(b_entry)
                for e in b_exits:
                    self.normal[e].add(nid)
            exits = [nid] + breaks
            if stmt.orelse:
                e_entry, e_exits = self._build_body(
                    stmt.orelse, exc_targets, break_sink, continue_target,
                    finally_entry,
                )
                if e_entry is not None:
                    self.normal[nid].add(e_entry)
                    exits = e_exits + breaks
            return nid, exits

        if isinstance(stmt, ast.Try):
            return self._build_try(
                stmt, exc_targets, break_sink, continue_target, finally_entry
            )

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            nid = self._new(stmt, exc_targets)
            b_entry, b_exits = self._build_body(
                stmt.body, exc_targets, break_sink, continue_target,
                finally_entry,
            )
            if b_entry is not None:
                self.normal[nid].add(b_entry)
                return nid, b_exits
            return nid, [nid]

        # Simple statements (incl. nested defs, treated as opaque).
        nid = self._new(stmt, exc_targets)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            if isinstance(stmt, ast.Return) and finally_entry is not None:
                self.normal[nid].add(finally_entry)
            elif isinstance(stmt, ast.Return):
                self.normal[nid].add(self.EXIT)
            # Raise: the exc edge set at _new already points at the
            # handler/finally/EXIT.
            return nid, []
        if isinstance(stmt, ast.Break):
            if break_sink is not None:
                break_sink.append(nid)
            return nid, []
        if isinstance(stmt, ast.Continue):
            if continue_target is not None:
                self.normal[nid].add(continue_target)
            return nid, []
        return nid, [nid]

    def _build_try(
        self,
        stmt: ast.Try,
        exc_targets: Sequence[int],
        break_sink: Optional[List[int]],
        continue_target: Optional[int],
        finally_entry: Optional[int],
    ) -> Tuple[Optional[int], List[int]]:
        fin_entry: Optional[int] = None
        fin_exits: List[int] = []
        if stmt.finalbody:
            fin_entry, fin_exits = self._build_body(
                stmt.finalbody, exc_targets, break_sink, continue_target,
                finally_entry,
            )
            # The finally also runs on exception-propagation and return
            # paths, after which control leaves the function.
            for e in fin_exits:
                self.normal[e].add(self.EXIT)

        handler_entries: List[int] = []
        handler_exits: List[int] = []
        h_exc = list(exc_targets) + ([fin_entry] if fin_entry is not None else [])
        for handler in stmt.handlers:
            h_entry, h_exits = self._build_body(
                handler.body, h_exc, break_sink, continue_target,
                fin_entry if fin_entry is not None else finally_entry,
            )
            if h_entry is not None:
                handler_entries.append(h_entry)
                handler_exits.extend(h_exits)

        inner_exc = handler_entries + (
            [fin_entry] if fin_entry is not None else list(exc_targets)
        )
        entry, b_exits = self._build_body(
            stmt.body, inner_exc or exc_targets, break_sink, continue_target,
            fin_entry if fin_entry is not None else finally_entry,
        )
        if stmt.orelse:
            e_entry, e_exits = self._build_body(
                stmt.orelse,
                [fin_entry] if fin_entry is not None else exc_targets,
                break_sink, continue_target,
                fin_entry if fin_entry is not None else finally_entry,
            )
            if e_entry is not None:
                for e in b_exits:
                    self.normal[e].add(e_entry)
                b_exits = e_exits
        tail = b_exits + handler_exits
        if fin_entry is not None:
            for e in tail:
                self.normal[e].add(fin_entry)
            return entry if entry is not None else fin_entry, fin_exits
        return entry, tail


def _is_arena_acquire(value: ast.expr) -> bool:
    if not isinstance(value, ast.Call):
        return False
    dotted = _dotted(value.func)
    if dotted is None:
        return False
    parts = dotted.split(".")
    if parts[-1] == "SharedMemory":
        return True
    return (
        len(parts) >= 2
        and parts[-1] in _ARENA_FACTORIES
        and parts[-2].endswith("Arena")
    )


def _stmt_parts(stmt: ast.stmt) -> List[ast.AST]:
    """The expressions a CFG node itself evaluates.

    Compound statements appear in the CFG as their header (the body
    statements are separate nodes), so classification must not peek
    into the body — an ``if`` whose body closes the handle does not
    discharge it on the else edge.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    return [stmt]


def _stmt_discharges(stmt: ast.stmt, var: str) -> bool:
    """Does this statement close, unlink, or leak-proof ``var``?

    Discharging moves: ``var.close()`` / ``var.unlink()`` (attempted
    counts — the mapping is gone either way), returning or yielding
    ``var``, passing ``var`` (or ``var.attr``) to any call, storing it
    on an attribute/subscript, aliasing it, capturing it in a nested
    scope, or rebinding the name.
    """
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return _mentions(stmt, var)  # closure capture: ownership moved
    if isinstance(stmt, ast.If) and _test_guards_var(stmt.test, var):
        # `if var is not None: ... var.close() ...` — when the handle is
        # live the guard is true, so a discharge anywhere in the body
        # covers every live path through this node.
        if any(_part_discharges(s, var) for s in stmt.body):
            return True
    for part in _stmt_parts(stmt):
        if _part_discharges(part, var):
            return True
    return False


def _test_guards_var(test: ast.expr, var: str) -> bool:
    """True for ``if var:`` / ``if var is not None:`` guard shapes."""
    if isinstance(test, ast.Name) and test.id == var:
        return True
    if (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and test.left.id == var
        and len(test.ops) == 1
        and isinstance(test.ops[0], ast.IsNot)
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        return True
    return False


def _part_discharges(part: ast.AST, var: str) -> bool:
    for node in ast.walk(part):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in (f"{var}.close", f"{var}.unlink"):
                return True
            arg_exprs = list(node.args) + [kw.value for kw in node.keywords]
            if any(_mentions(a, var) for a in arg_exprs):
                return True
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and _mentions(node.value, var):
                return True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if _mentions(node.value, var):
                        return True
                if isinstance(target, ast.Name) and target.id == var:
                    return True  # rebinding: old handle is out of scope here
                if isinstance(target, ast.Name) and _mentions(node.value, var):
                    return True  # alias: the other name owns it now
    return False


def _check_shm_lifecycle(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for fn in _functions(tree):
        if _opted_out(fn, "shm-lifecycle"):
            continue
        acquires: List[Tuple[ast.stmt, str]] = []
        for stmt in ast.walk(fn):
            value: Optional[ast.expr] = None
            target: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                value, target = stmt.value, stmt.targets[0]
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value, target = stmt.value, stmt.target
            if (
                value is not None
                and isinstance(target, ast.Name)
                and _is_arena_acquire(value)
            ):
                acquires.append((stmt, target.id))
        if not acquires:
            continue
        cfg = _Cfg(fn)
        with_nodes = {
            id(item.context_expr)
            for stmt in ast.walk(fn)
            if isinstance(stmt, (ast.With, ast.AsyncWith))
            for item in stmt.items
        }
        node_of = {id(s): i for i, s in enumerate(cfg.nodes)}
        for acq_stmt, var in acquires:
            acq_id = node_of.get(id(acq_stmt))
            if acq_id is None:
                continue  # inside a nested def: analyzed there
            assert isinstance(acq_stmt, (ast.Assign, ast.AnnAssign))
            acq_value = acq_stmt.value
            if acq_value is not None and id(acq_value) in with_nodes:
                continue  # `with ... as var`: __exit__ closes
            if _leaks_on_some_path(cfg, acq_id, var):
                findings.append(
                    _finding(
                        "shm-lifecycle",
                        f"shared-memory handle {var!r} acquired here can "
                        f"leave {fn.name!r} without reaching close()/"
                        f"unlink() (exception paths count); wrap it in "
                        f"try/finally or a with-block",
                        path,
                        acq_stmt,
                    )
                )
    return findings


def _leaks_on_some_path(cfg: _Cfg, acq_id: int, var: str) -> bool:
    """Worklist over the CFG: can a LIVE handle reach function exit?"""
    work = list(cfg.normal[acq_id])  # exc edge from the acquire itself
    seen: Set[int] = set()           # means the assignment never happened
    while work:
        nid = work.pop()
        if nid == _Cfg.EXIT:
            return True
        if nid in seen:
            continue
        seen.add(nid)
        if _stmt_discharges(cfg.nodes[nid], var):
            continue  # handle is safe past this point on this path
        work.extend(cfg.normal[nid])
        work.extend(cfg.exc[nid])
    return False


# ---------------------------------------------------------------------------
# AL007: fork-unsafe module state
# ---------------------------------------------------------------------------

def _is_mutable_value(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                          ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        dotted = _dotted(value.func)
        if dotted is None:
            return False
        return dotted.split(".")[-1] in {
            "set", "list", "dict", "defaultdict", "deque", "OrderedDict",
            "Counter", "open",
        }
    return False


def _module_mutable_names(tree: ast.Module) -> Dict[str, int]:
    mutable: Dict[str, int] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if not _is_mutable_value(value):
            continue
        for t in targets:
            if isinstance(t, ast.Name):
                mutable[t.id] = stmt.lineno
    return mutable


def _worker_entry_names(tree: ast.Module) -> Set[str]:
    """Function names handed to Process/Thread targets or pool.submit."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        tail = dotted.split(".")[-1] if dotted else ""
        if tail in ("Process", "Thread"):
            for kw in node.keywords:
                if kw.arg == "target" and isinstance(kw.value, ast.Name):
                    names.add(kw.value.id)
        elif tail == "submit" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Name):
                names.add(first.id)
    return names


def _check_fork_unsafe_state(tree: ast.Module, path: str) -> List[Finding]:
    mutable = _module_mutable_names(tree)
    if not mutable:
        return []
    workers = _worker_entry_names(tree)
    if not workers:
        return []
    findings: List[Finding] = []
    for fn in _functions(tree):
        if fn.name not in workers or _opted_out(fn, "fork-unsafe-state"):
            continue
        touched: Dict[str, int] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                for name in node.names:
                    if name in mutable:
                        touched.setdefault(name, node.lineno)
            elif isinstance(node, ast.Name) and node.id in mutable:
                touched.setdefault(node.id, node.lineno)
        for name in sorted(touched):
            findings.append(
                _finding(
                    "fork-unsafe-state",
                    f"worker entry {fn.name!r} reads module-level mutable "
                    f"state {name!r} (defined at line {mutable[name]}): a "
                    f"forked worker sees a silent snapshot and a spawned "
                    f"one a fresh object — pass it through the task "
                    f"payload instead",
                    path,
                    fn,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# AL008: stdlib random
# ---------------------------------------------------------------------------

def _check_unseeded_rng(tree: ast.Module, path: str) -> List[Finding]:
    if _norm(path).endswith("utils/rng.py"):
        return []
    imported: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                imported.add(alias.asname or alias.name)
    findings: List[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None:
            continue
        parts = dotted.split(".")
        hit = (len(parts) >= 2 and parts[0] == "random") or (
            len(parts) == 1 and parts[0] in imported
        )
        if hit:
            findings.append(
                _finding(
                    "unseeded-rng",
                    f"stdlib {dotted}() call: randomness outside the "
                    f"single-seed discipline — route through "
                    f"repro.utils.rng.ensure_rng so whole-system runs "
                    f"replay from one integer",
                    path,
                    node,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# AL009: unordered set iteration
# ---------------------------------------------------------------------------

_UNWRAP_CALLS = {"list", "tuple", "iter", "enumerate", "reversed"}


def _set_typed_names(scope: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in _walk_scope(scope):
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None or not _is_set_expr(value, set()):
            continue
        for t in targets:
            if isinstance(t, ast.Name):
                names.add(t.id)
    return names


def _is_set_expr(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func)
        if dotted in ("set", "frozenset"):
            return True
        if dotted in _UNWRAP_CALLS and node.args:
            return _is_set_expr(node.args[0], set_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _check_unordered_iteration(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    scopes: List[ast.AST] = [tree]
    scopes.extend(_functions(tree))
    module_sets = _set_typed_names(tree)
    for scope in scopes:
        fn = scope if isinstance(
            scope, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) else None
        if _opted_out(fn, "unordered-iteration"):
            continue
        set_names = set(module_sets)
        if fn is not None:
            set_names |= _set_typed_names(fn)
        for node in _walk_scope(scope):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it, set_names):
                    findings.append(
                        _finding(
                            "unordered-iteration",
                            "iterating a set: order varies across "
                            "processes and hash seeds, so anything built "
                            "from this loop (merges, top-k feeds, "
                            "serialized output) is nondeterministic — "
                            "wrap the iterable in sorted(...)",
                            path,
                            it,
                        )
                    )
    return findings


# ---------------------------------------------------------------------------
# AL010: wall-clock / pid in returned values
# ---------------------------------------------------------------------------

def _wallclock_exempt(path: str) -> bool:
    p = _norm(path)
    return (
        p.endswith("utils/timing.py")
        or "/obs/" in p
        or "/analysis/" in p
    )


def _contains_wallclock_call(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            dotted = _dotted(sub.func)
            if dotted in _WALLCLOCK_SOURCES:
                return True
    return False


def _check_wallclock_in_result(tree: ast.Module, path: str) -> List[Finding]:
    if _wallclock_exempt(path):
        return []
    findings: List[Finding] = []
    for fn in _functions(tree):
        if _opted_out(fn, "wallclock-in-result"):
            continue
        tainted: Set[str] = set()
        for stmt in _walk_scope(fn):
            if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = stmt.value
                if value is None:
                    continue
                dirty = _contains_wallclock_call(value) or any(
                    isinstance(s, ast.Name) and s.id in tainted
                    for s in ast.walk(value)
                )
                if not dirty:
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for t in targets:
                    if isinstance(t, ast.Name):
                        tainted.add(t.id)
        for stmt in _walk_scope(fn):
            if not isinstance(stmt, ast.Return) or stmt.value is None:
                continue
            if _contains_wallclock_call(stmt.value) or any(
                isinstance(s, ast.Name) and s.id in tainted
                for s in ast.walk(stmt.value)
            ):
                findings.append(
                    _finding(
                        "wallclock-in-result",
                        f"{fn.name!r} returns a value derived from "
                        f"wall-clock/pid: results must replay bit-exactly "
                        f"from the seed — wall-clock belongs in the "
                        f"observability layer",
                        path,
                        stmt,
                    )
                )
        # Comparisons/logging of wall-clock inside the function are fine;
        # only returned values are policed.
    return findings


# ---------------------------------------------------------------------------
# AL011: unstable argsort in result paths
# ---------------------------------------------------------------------------

def _unstable_sort_scoped(path: str) -> bool:
    p = _norm(path)
    return any(seg in p for seg in ("/core/", "/ann/", "/pim/", "/cluster/"))


def _check_unstable_sort(tree: ast.Module, path: str) -> List[Finding]:
    if not _unstable_sort_scoped(path):
        return []
    findings: List[Finding] = []
    opted: Set[int] = set()
    for fn in _functions(tree):
        if _opted_out(fn, "unstable-sort"):
            opted.update(id(n) for n in ast.walk(fn))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or id(node) in opted:
            continue
        dotted = _dotted(node.func)
        tail = None
        if dotted is not None:
            tail = dotted.split(".")[-1]
        elif isinstance(node.func, ast.Attribute):
            tail = node.func.attr  # method call on a non-Name chain
        if tail != "argsort":
            continue
        kind = None
        for kw in node.keywords:
            if kw.arg == "kind" and isinstance(kw.value, ast.Constant):
                kind = kw.value.value
        if kind not in _STABLE_SORT_KINDS:
            findings.append(
                _finding(
                    "unstable-sort",
                    "argsort without kind='stable' in a result-producing "
                    "path: numpy's default introsort orders equal keys by "
                    "memory layout, so ties land platform-dependently",
                    path,
                    node,
                )
            )
    return findings


# ---------------------------------------------------------------------------
# AL012: leaked worker threads/processes/executors
# ---------------------------------------------------------------------------

def _check_leaked_worker(tree: ast.Module, path: str) -> List[Finding]:
    findings: List[Finding] = []
    for fn in _functions(tree):
        if _opted_out(fn, "leaked-worker"):
            continue
        spawned: List[Tuple[ast.stmt, str, str]] = []
        for stmt in _walk_scope(fn):
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if not isinstance(stmt.value, ast.Call):
                continue
            dotted = _dotted(stmt.value.func)
            if dotted is None:
                continue
            head, _, tail = dotted.rpartition(".")
            if tail in _WORKER_FACTORIES:
                spawned.append((stmt, target.id, tail))
            elif (
                tail in _ASYNC_TASK_FACTORIES
                and (head in _ASYNC_TASK_HEADS or head.endswith("_loop"))
            ):
                spawned.append((stmt, target.id, f"asyncio task ({tail})"))
        for stmt, var, kind in spawned:
            if _worker_discharged(fn, stmt, var):
                continue
            findings.append(
                _finding(
                    "leaked-worker",
                    f"{kind} {var!r} is created in {fn.name!r} but never "
                    f"joined, shut down, or handed to an owner; the "
                    f"worker outlives the function unsupervised",
                    path,
                    stmt,
                )
            )
    return findings


def _worker_discharged(fn: _FuncDef, acq_stmt: ast.stmt, var: str) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None and "." in dotted:
                head, _, tail = dotted.rpartition(".")
                if head == var and tail in _WORKER_DISCHARGE_METHODS:
                    return True
            arg_exprs = list(node.args) + [kw.value for kw in node.keywords]
            if any(_mentions(a, var) for a in arg_exprs):
                return True
        elif isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
            if node.value is not None and _mentions(node.value, var):
                return True
        elif isinstance(node, ast.Await):
            # `await task` (or `await gather(task, ...)`, caught above
            # via the call-argument check) consumes the task.
            if _mentions(node.value, var):
                return True
        elif isinstance(node, ast.Assign) and node is not acq_stmt:
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    if _mentions(node.value, var):
                        return True
                if isinstance(target, ast.Name) and _mentions(node.value, var):
                    return True
    return False


# ---------------------------------------------------------------------------
# Entry points (mirror astlint's: source / file / tree)
# ---------------------------------------------------------------------------

_ALL_RULES = (
    _check_shm_lifecycle,
    _check_fork_unsafe_state,
    _check_unseeded_rng,
    _check_unordered_iteration,
    _check_wallclock_in_result,
    _check_unstable_sort,
    _check_leaked_worker,
)


def lint_source(source: str, path: str) -> List[Finding]:
    """Run every concurrency rule on one source string at ``path``."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                checker="concurrency",
                rule="syntax-error",
                severity=Severity.ERROR,
                message=f"cannot parse: {exc.msg}",
                file=_norm(path),
                line=exc.lineno,
            )
        ]
    findings: List[Finding] = []
    for rule in _ALL_RULES:
        findings += rule(tree, path)
    return findings


def lint_file(path: str) -> List[Finding]:
    with open(path, encoding="utf-8") as f:
        return lint_source(f.read(), path)


def lint_tree(root: str) -> List[Finding]:
    """Lint every ``.py`` file under ``root`` (a package directory)."""
    findings: List[Finding] = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames if d not in ("__pycache__", ".git")
        )
        for name in sorted(filenames):
            if name.endswith(".py"):
                findings += lint_file(os.path.join(dirpath, name))
    return findings
