"""Finding/report model shared by every checker family.

A :class:`Finding` is one diagnostic: which checker produced it, which
rule fired, how severe it is, where it points (``file:line`` when the
subject is source code, a config/shape description otherwise), and a
machine-readable ``data`` payload. A :class:`Report` aggregates
findings, renders them for humans or as JSON, and decides the process
exit code (``--strict`` fails on any error-severity finding).
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


class Severity(enum.IntEnum):
    """Ordered severity levels; higher is worse."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()

    @classmethod
    def parse(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; expected one of "
                f"{[s.name.lower() for s in cls]}"
            ) from None


@dataclass(frozen=True)
class Finding:
    """One diagnostic from one checker rule."""

    checker: str  # family: "resources" | "costs" | "ast" | "trace"
    rule: str  # e.g. "wram-overflow", "rng-bypass"
    severity: Severity
    message: str
    file: Optional[str] = None
    line: Optional[int] = None
    data: Dict[str, Any] = field(default_factory=dict)

    @property
    def location(self) -> str:
        if self.file is None:
            return "-"
        return self.file if self.line is None else f"{self.file}:{self.line}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "checker": self.checker,
            "rule": self.rule,
            "severity": str(self.severity),
            "message": self.message,
            "file": self.file,
            "line": self.line,
            "data": self.data,
        }

    def format(self) -> str:
        return (
            f"{str(self.severity):7s} {self.checker}/{self.rule} "
            f"{self.location}: {self.message}"
        )


@dataclass
class Report:
    """Aggregated findings from one lint run."""

    findings: List[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def sorted(self) -> List[Finding]:
        return sorted(
            self.findings,
            key=lambda f: (-int(f.severity), f.checker, f.file or "", f.line or 0),
        )

    # ----- queries ------------------------------------------------------
    def by_severity(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return self.by_severity(Severity.WARNING)

    def count(self, severity: Severity) -> int:
        return len(self.by_severity(severity))

    # ----- rendering ----------------------------------------------------
    def summary(self) -> str:
        return (
            f"{len(self.findings)} finding(s): "
            f"{self.count(Severity.ERROR)} error(s), "
            f"{self.count(Severity.WARNING)} warning(s), "
            f"{self.count(Severity.INFO)} info"
        )

    def format_text(self, *, min_severity: Severity = Severity.INFO) -> str:
        lines = [
            f.format() for f in self.sorted() if f.severity >= min_severity
        ]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_json(self, *, indent: Optional[int] = 2) -> str:
        payload = {
            "findings": [f.to_dict() for f in self.sorted()],
            "counts": {
                str(s): self.count(s) for s in Severity
            },
        }
        return json.dumps(payload, indent=indent)

    def exit_code(self, *, strict: bool = False) -> int:
        """0 unless ``strict`` and at least one error-severity finding."""
        return 1 if strict and self.errors else 0
